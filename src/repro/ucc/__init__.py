"""Unique column combinations (minimal keys of a relation instance)."""

from .discovery import UCCResult, discover_uccs

__all__ = ["UCCResult", "discover_uccs"]
