"""Unique column combination (UCC) discovery — minimal keys of a relation.

The paper's related work cites the hybrid key-discovery algorithm of
Giannella & Wyss [7]; this module provides the modern hybrid take
(HyUCC-style), built entirely from parts this library already has:

* ``X`` is a UCC iff no two rows agree on all of ``X`` — equivalently,
  ``X`` intersects the *difference set* of every row pair.  Minimal
  UCCs are therefore exactly the minimal hitting sets of the difference
  sets (the dual of FastFDs' per-attribute covers).
* Instead of materializing all ``O(|r|²)`` difference sets, the
  discovery samples some (sorted-neighborhood, like HyFD), proposes the
  minimal hitting sets of the sample, and *validates* each candidate
  with a stripped partition.  An invalid candidate yields a violating
  row pair whose difference set joins the sample — every round grows
  the negative knowledge, so the loop terminates with the exact answer.

The fixed point is provably the set of minimal UCCs: a validated
candidate cannot have a uniquely-identifying proper subset (the subset
would hit the sampled difference sets too, contradicting hitting-set
minimality), and every true minimal UCC keeps reappearing among the
candidates until it validates.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import List, Optional, Set

from ..algorithms.fastfds import minimal_hitting_sets
from ..core.base import Deadline
from ..core.sampling import AgreeSetSampler
from ..partitions.stripped import StrippedPartition
from ..relational import attrset
from ..relational.attrset import AttrSet
from ..relational.relation import Relation
from ..relational.schema import RelationSchema


@dataclass
class UCCResult:
    """Minimal UCCs plus provenance counters."""

    schema: RelationSchema
    uccs: List[AttrSet]
    elapsed_seconds: float = 0.0
    rounds: int = 0
    validations: int = 0
    sampled_difference_sets: int = 0
    #: Arity bound the discovery ran under (None = unbounded).
    max_arity: Optional[int] = None

    def format(self) -> List[str]:
        """Human-readable UCC list."""
        return [self.schema.format_attr_set(u) for u in self.uccs]


def discover_uccs(
    relation: Relation,
    time_limit: Optional[float] = None,
    deadline: Optional[Deadline] = None,
    max_arity: Optional[int] = None,
) -> UCCResult:
    """Find all minimal unique column combinations of ``relation``.

    Pass ``deadline`` to share a driver's existing
    :class:`~repro.core.base.Deadline`/``RunContext`` (its budget then
    bounds this pass too); otherwise ``time_limit`` builds a fresh one.

    ``max_arity`` bounds the answer to UCCs of at most that many
    attributes: wide tables can have exponentially many minimal keys,
    and callers like :class:`~repro.multitable.SchemaGraph` only care
    about small ones.  The bound is sound *and* complete below the cut:
    every minimal UCC with ``<= max_arity`` attributes is returned
    (a hitting-set candidate under the bound that would shadow it must
    itself be a unique subset, contradicting the UCC's minimality),
    and none above it ever validates a partition.
    """
    if max_arity is not None and max_arity < 1:
        raise ValueError(f"max_arity must be >= 1, got {max_arity}")
    if deadline is None:
        deadline = Deadline(time_limit, "ucc")
    start = time.perf_counter()
    n_cols = relation.n_cols
    full = attrset.full_set(n_cols)

    if relation.n_rows < 2:
        # every set (even ∅) is unique; the single minimal UCC is ∅
        return UCCResult(
            schema=relation.schema,
            uccs=[attrset.EMPTY],
            elapsed_seconds=time.perf_counter() - start,
            max_arity=max_arity,
        )

    singletons = [
        StrippedPartition.for_attribute(relation, attr) for attr in range(n_cols)
    ]
    sampler = AgreeSetSampler(relation, singletons)
    agree_sets, _ = sampler.sample_round()
    # duplicate rows (full agree set) make *no* set unique except by
    # treating the duplicates as equal — a full agree set has an empty
    # difference set, which no candidate can hit: no UCC exists at all.
    diff_sets: Set[AttrSet] = {full & ~agree for agree in agree_sets}
    if _has_duplicate_rows(relation, deadline):
        return UCCResult(
            schema=relation.schema,
            uccs=[],
            elapsed_seconds=time.perf_counter() - start,
            max_arity=max_arity,
        )

    result = UCCResult(schema=relation.schema, uccs=[], max_arity=max_arity)
    result.sampled_difference_sets = len(diff_sets)

    while True:
        deadline.check()
        result.rounds += 1
        candidates = minimal_hitting_sets(sorted(diff_sets), deadline)
        if max_arity is not None:
            candidates = [
                c for c in candidates if attrset.count(c) <= max_arity
            ]
        confirmed: List[AttrSet] = []
        new_evidence = False
        for candidate in candidates:
            deadline.check()
            result.validations += 1
            violation = _find_violating_pair(relation, candidate)
            if violation is None:
                confirmed.append(candidate)
            else:
                diff = full & ~relation.agree_set(*violation)
                if diff not in diff_sets:
                    diff_sets.add(diff)
                    new_evidence = True
        if not new_evidence:
            result.uccs = sorted(confirmed)
            break

    result.sampled_difference_sets = len(diff_sets)
    result.elapsed_seconds = time.perf_counter() - start
    return result


def _has_duplicate_rows(
    relation: Relation, deadline: Optional[Deadline] = None
) -> bool:
    matrix = relation.matrix()
    seen = set()
    for row in range(relation.n_rows):
        if deadline is not None and row % 4096 == 0:
            deadline.check()
        key = matrix[row].tobytes()
        if key in seen:
            return True
        seen.add(key)
    return False


def _find_violating_pair(relation: Relation, attrs: AttrSet):
    """Two rows agreeing on all of ``attrs`` (None if unique)."""
    partition = StrippedPartition.for_attrs(relation, attrs)
    for cluster in partition.clusters:
        return cluster[0], cluster[1]
    return None
