"""CSV input/output for relations.

The benchmark data sets in the paper are plain CSV files; this module
loads them into :class:`~repro.relational.relation.Relation` objects,
normalizing the usual null spellings to the library's null marker.
"""

from __future__ import annotations

import csv
import io
from pathlib import Path
from typing import Iterable, List, Optional, Sequence, Set, Union

from .null import NULL, NullSemantics
from .relation import Relation
from .schema import RelationSchema

#: Field spellings treated as missing values when loading CSV data.
DEFAULT_NULL_MARKERS: Set[str] = {"", "null", "NULL", "?", "NA", "N/A", "na", "-"}


def read_csv(
    path: Union[str, Path],
    *,
    has_header: bool = True,
    delimiter: str = ",",
    null_markers: Optional[Iterable[str]] = None,
    semantics: Union[str, NullSemantics] = NullSemantics.EQ,
    max_rows: Optional[int] = None,
) -> Relation:
    """Load a CSV file into a relation.

    Args:
        path: the CSV file.
        has_header: first line holds column names; otherwise an
            anonymous ``col0..colN`` schema is created.
        delimiter: field separator.
        null_markers: field values mapped to the null marker
            (defaults to :data:`DEFAULT_NULL_MARKERS`).
        semantics: null semantics for the DIIS encoding.
        max_rows: optional row cap (fragment loading).
    """
    with open(path, "r", newline="", encoding="utf-8") as handle:
        return read_csv_text(
            handle.read(),
            has_header=has_header,
            delimiter=delimiter,
            null_markers=null_markers,
            semantics=semantics,
            max_rows=max_rows,
        )


def read_csv_text(
    text: str,
    *,
    has_header: bool = True,
    delimiter: str = ",",
    null_markers: Optional[Iterable[str]] = None,
    semantics: Union[str, NullSemantics] = NullSemantics.EQ,
    max_rows: Optional[int] = None,
) -> Relation:
    """Parse CSV content from a string (see :func:`read_csv`)."""
    markers = set(null_markers) if null_markers is not None else DEFAULT_NULL_MARKERS
    reader = csv.reader(io.StringIO(text), delimiter=delimiter)
    rows: List[List[object]] = []
    schema: Optional[RelationSchema] = None
    for line_no, record in enumerate(reader):
        if line_no == 0 and has_header:
            schema = RelationSchema(record)
            continue
        if max_rows is not None and len(rows) >= max_rows:
            break
        rows.append([NULL if field in markers else field for field in record])
    if schema is None and rows:
        schema = RelationSchema.of_width(len(rows[0]))
    if schema is None:
        raise ValueError("CSV input is empty and has no header")
    return Relation.from_rows(rows, schema, semantics)


def write_csv(
    relation: Relation,
    path: Union[str, Path],
    *,
    delimiter: str = ",",
    null_marker: str = "",
) -> None:
    """Write a relation back to CSV (nulls become ``null_marker``)."""
    with open(path, "w", newline="", encoding="utf-8") as handle:
        writer = csv.writer(handle, delimiter=delimiter)
        writer.writerow(relation.schema.names)
        for row in relation.iter_rows():
            writer.writerow(
                [null_marker if value is NULL else value for value in row]
            )


def to_csv_text(
    relation: Relation, *, delimiter: str = ",", null_marker: str = ""
) -> str:
    """Render a relation as CSV text."""
    buffer = io.StringIO()
    writer = csv.writer(buffer, delimiter=delimiter)
    writer.writerow(relation.schema.names)
    for row in relation.iter_rows():
        writer.writerow([null_marker if value is NULL else value for value in row])
    return buffer.getvalue()
