"""CSV input/output for relations.

The benchmark data sets in the paper are plain CSV files; this module
loads them into :class:`~repro.relational.relation.Relation` objects,
normalizing the usual null spellings to the library's null marker.

Malformed input is governed by an ``on_bad_row`` policy: ``"raise"``
(default) rejects ragged rows with a
:class:`~repro.relational.schema.SchemaError` naming the offending
line; ``"skip"`` quarantines them; ``"pad"`` pads short rows with nulls
(and truncates long ones) so every row fits the schema.  Quarantined
and repaired row counts surface through telemetry (a ``csv_quarantine``
event and the ``io.quarantined_rows`` counter).
"""

from __future__ import annotations

import csv
import io
from pathlib import Path
from typing import Iterable, List, Optional, Set, Union

from ..resilience import faults
from ..telemetry import current_tracer
from .null import NULL, NullSemantics
from .relation import Relation
from .schema import RelationSchema, SchemaError

#: Field spellings treated as missing values when loading CSV data.
DEFAULT_NULL_MARKERS: Set[str] = {"", "null", "NULL", "?", "NA", "N/A", "na", "-"}

#: Valid bad-row policies.
ON_BAD_ROW_POLICIES = ("raise", "skip", "pad")


def _check_policy(on_bad_row: str) -> None:
    if on_bad_row not in ON_BAD_ROW_POLICIES:
        raise ValueError(
            f"on_bad_row must be one of {ON_BAD_ROW_POLICIES}, got {on_bad_row!r}"
        )


def read_csv(
    path: Union[str, Path],
    *,
    has_header: bool = True,
    delimiter: str = ",",
    null_markers: Optional[Iterable[str]] = None,
    semantics: Union[str, NullSemantics] = NullSemantics.EQ,
    max_rows: Optional[int] = None,
    on_bad_row: str = "raise",
    encoding: str = "utf-8",
) -> Relation:
    """Load a CSV file into a relation.

    Args:
        path: the CSV file.
        has_header: first line holds column names; otherwise an
            anonymous ``col0..colN`` schema is created.
        delimiter: field separator.
        null_markers: field values mapped to the null marker
            (defaults to :data:`DEFAULT_NULL_MARKERS`).
        semantics: null semantics for the DIIS encoding.
        max_rows: optional row cap (fragment loading).
        on_bad_row: ``"raise"``/``"skip"``/``"pad"`` policy for ragged
            rows and (in this function) undecodable bytes.
        encoding: text encoding of the file.
    """
    _check_policy(on_bad_row)
    with open(path, "rb") as handle:
        data = handle.read()
    try:
        text = data.decode(encoding)
    except UnicodeDecodeError as exc:
        if on_bad_row == "raise":
            line = data.count(b"\n", 0, exc.start) + 1
            raise SchemaError(
                f"CSV line {line}: undecodable {encoding} byte at offset "
                f"{exc.start} (byte {data[exc.start]:#04x})"
            ) from exc
        # Tolerant policies keep going with replacement characters; the
        # incident is surfaced the same way quarantined rows are.
        text = data.decode(encoding, errors="replace")
        current_tracer().event(
            "csv_quarantine",
            kind="decode",
            policy=on_bad_row,
            encoding=encoding,
            byte_offset=exc.start,
        )
    return read_csv_text(
        text,
        has_header=has_header,
        delimiter=delimiter,
        null_markers=null_markers,
        semantics=semantics,
        max_rows=max_rows,
        on_bad_row=on_bad_row,
    )


def read_csv_text(
    text: str,
    *,
    has_header: bool = True,
    delimiter: str = ",",
    null_markers: Optional[Iterable[str]] = None,
    semantics: Union[str, NullSemantics] = NullSemantics.EQ,
    max_rows: Optional[int] = None,
    on_bad_row: str = "raise",
) -> Relation:
    """Parse CSV content from a string (see :func:`read_csv`)."""
    _check_policy(on_bad_row)
    markers = set(null_markers) if null_markers is not None else DEFAULT_NULL_MARKERS
    reader = csv.reader(io.StringIO(text), delimiter=delimiter)
    rows: List[List[object]] = []
    schema: Optional[RelationSchema] = None
    width: Optional[int] = None
    quarantined = 0
    padded = 0
    chaos = faults.armed()
    for index, record in enumerate(reader):
        line = reader.line_num  # physical line (records may span lines)
        if index == 0 and has_header:
            schema = RelationSchema(record)
            width = len(record)
            continue
        if not record:
            continue  # blank line — never data, under any policy
        if max_rows is not None and len(rows) >= max_rows:
            break
        if chaos:
            record = faults.corrupt_csv_row(record)
        if width is None:
            width = len(record)
        if len(record) != width:
            if on_bad_row == "raise":
                raise SchemaError(
                    f"CSV line {line}: expected {width} fields, "
                    f"got {len(record)}"
                )
            if on_bad_row == "skip":
                quarantined += 1
                continue
            padded += 1
            mapped = [
                NULL if field in markers else field for field in record[:width]
            ]
            rows.append(mapped + [NULL] * (width - len(mapped)))
            continue
        rows.append([NULL if field in markers else field for field in record])
    if quarantined or padded:
        tracer = current_tracer()
        tracer.event(
            "csv_quarantine",
            kind="ragged_row",
            policy=on_bad_row,
            quarantined=quarantined,
            padded=padded,
        )
        tracer.counter("io.quarantined_rows").inc(quarantined + padded)
    if schema is None and rows:
        schema = RelationSchema.of_width(len(rows[0]))
    if schema is None:
        raise ValueError("CSV input is empty and has no header")
    return Relation.from_rows(rows, schema, semantics)


def write_csv(
    relation: Relation,
    path: Union[str, Path],
    *,
    delimiter: str = ",",
    null_marker: str = "",
) -> None:
    """Write a relation back to CSV (nulls become ``null_marker``)."""
    with open(path, "w", newline="", encoding="utf-8") as handle:
        writer = csv.writer(handle, delimiter=delimiter)
        writer.writerow(relation.schema.names)
        for row in relation.iter_rows():
            writer.writerow(
                [null_marker if value is NULL else value for value in row]
            )


def to_csv_text(
    relation: Relation, *, delimiter: str = ",", null_marker: str = ""
) -> str:
    """Render a relation as CSV text."""
    buffer = io.StringIO()
    writer = csv.writer(buffer, delimiter=delimiter)
    writer.writerow(relation.schema.names)
    for row in relation.iter_rows():
        writer.writerow([null_marker if value is NULL else value for value in row])
    return buffer.getvalue()
