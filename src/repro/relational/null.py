"""Null-marker semantics for FD discovery and ranking.

The paper (§V-B) evaluates the two most common interpretations of
missing values:

* ``null = null`` — a null marker is treated like any other value: two
  null occurrences in the same column agree with each other.
* ``null ≠ null`` — every null occurrence is unique: it agrees with
  nothing, not even another null in the same column.

The semantics only affects how the DIIS encoder assigns codes to null
occurrences (see :mod:`repro.relational.encoding`); every algorithm
downstream operates on codes and is oblivious to the choice.
"""

from __future__ import annotations

import enum

#: The canonical in-memory representation of a missing value.  CSV input
#: maps empty fields and common markers ("", "NULL", "?", "NA") to this.
NULL = None


class NullSemantics(enum.Enum):
    """How null markers compare with each other during discovery."""

    #: Two nulls in the same column are considered equal (the default in
    #: the paper's main experiments, Table II).
    EQ = "null=null"

    #: Every null occurrence is a fresh value equal to nothing.
    NEQ = "null!=null"

    @classmethod
    def parse(cls, value: "str | NullSemantics") -> "NullSemantics":
        """Accept enum members or their string spellings ('eq'/'neq'/...)."""
        if isinstance(value, NullSemantics):
            return value
        normalized = str(value).strip().lower()
        aliases = {
            "eq": cls.EQ,
            "null=null": cls.EQ,
            "equal": cls.EQ,
            "neq": cls.NEQ,
            "null!=null": cls.NEQ,
            "unequal": cls.NEQ,
        }
        try:
            return aliases[normalized]
        except KeyError:
            raise ValueError(f"unknown null semantics {value!r}") from None


def is_null(value: object) -> bool:
    """Return True if ``value`` is the null marker."""
    return value is NULL
