"""Attribute sets as integer bitmasks.

Every hot path in the discovery algorithms manipulates sets of column
indices.  Representing those sets as Python ints (bit ``i`` set means
column ``i`` is a member) makes subset tests, unions and intersections
single machine operations and makes attribute sets hashable for free.

The functions here are the only place bit fiddling happens; the rest of
the code base speaks in terms of "attribute sets" and column indices.
"""

from __future__ import annotations

from typing import Iterable, Iterator, List

AttrSet = int

EMPTY: AttrSet = 0


def singleton(attr: int) -> AttrSet:
    """Return the attribute set containing exactly ``attr``."""
    return 1 << attr


def from_attrs(attrs: Iterable[int]) -> AttrSet:
    """Build an attribute set from an iterable of column indices."""
    mask = 0
    for attr in attrs:
        mask |= 1 << attr
    return mask


def full_set(n_attrs: int) -> AttrSet:
    """Return the set of all ``n_attrs`` columns ``{0, ..., n_attrs - 1}``."""
    return (1 << n_attrs) - 1


def contains(attr_set: AttrSet, attr: int) -> bool:
    """Return True if column ``attr`` is a member of ``attr_set``."""
    return bool(attr_set >> attr & 1)


def is_subset(small: AttrSet, big: AttrSet) -> bool:
    """Return True if ``small`` is a (non-strict) subset of ``big``."""
    return small & ~big == 0


def is_proper_subset(small: AttrSet, big: AttrSet) -> bool:
    """Return True if ``small`` is a strict subset of ``big``."""
    return small != big and small & ~big == 0


def add(attr_set: AttrSet, attr: int) -> AttrSet:
    """Return ``attr_set`` with column ``attr`` added."""
    return attr_set | (1 << attr)


def remove(attr_set: AttrSet, attr: int) -> AttrSet:
    """Return ``attr_set`` with column ``attr`` removed."""
    return attr_set & ~(1 << attr)


def difference(left: AttrSet, right: AttrSet) -> AttrSet:
    """Return the set difference ``left - right``."""
    return left & ~right


def complement(attr_set: AttrSet, n_attrs: int) -> AttrSet:
    """Return ``R - attr_set`` for a schema of ``n_attrs`` columns."""
    return full_set(n_attrs) & ~attr_set


def count(attr_set: AttrSet) -> int:
    """Return the cardinality of the attribute set."""
    return bin(attr_set).count("1")


def iter_attrs(attr_set: AttrSet) -> Iterator[int]:
    """Yield the member column indices of ``attr_set`` in ascending order."""
    while attr_set:
        low = attr_set & -attr_set
        yield low.bit_length() - 1
        attr_set ^= low


def to_list(attr_set: AttrSet) -> List[int]:
    """Return the member column indices as a sorted list."""
    return list(iter_attrs(attr_set))


def lowest(attr_set: AttrSet) -> int:
    """Return the smallest member of a non-empty attribute set."""
    if not attr_set:
        raise ValueError("empty attribute set has no lowest member")
    return (attr_set & -attr_set).bit_length() - 1


def highest(attr_set: AttrSet) -> int:
    """Return the largest member of a non-empty attribute set."""
    if not attr_set:
        raise ValueError("empty attribute set has no highest member")
    return attr_set.bit_length() - 1


def iter_subsets(attr_set: AttrSet) -> Iterator[AttrSet]:
    """Yield every subset of ``attr_set``, including EMPTY and itself.

    Uses the standard sub-mask enumeration trick; the number of subsets
    is ``2**count(attr_set)`` so callers should keep the input small.
    """
    sub = attr_set
    while True:
        yield sub
        if sub == 0:
            return
        sub = (sub - 1) & attr_set


def format_attrs(attr_set: AttrSet, names: List[str]) -> str:
    """Render an attribute set using human-readable column names."""
    if attr_set == EMPTY:
        return "∅"
    return ",".join(names[a] for a in iter_attrs(attr_set))
