"""Domain independent indexing scheme (DIIS, paper §IV-F).

A DIIS for an attribute ``A`` is a bijective mapping from the active
domain ``adom_r(A)`` onto ``{0, ..., |adom_r(A)| - 1}``.  Compressing
every column to dense integer codes makes stripped-partition refinement
an array-indexing operation (Algorithm 5 allocates its ``sets_array`` by
code) and makes FD validation domain independent: the algorithms never
look at raw values again.

Null markers are encoded according to the chosen
:class:`~repro.relational.null.NullSemantics`:

* ``EQ``  — all nulls in a column share one code (they agree).
* ``NEQ`` — each null occurrence receives a fresh, unique code (it
  agrees with nothing).

The boolean null mask is kept alongside the codes because the ranking
component needs to tell null occurrences apart from regular values.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

import numpy as np

from .null import NullSemantics, is_null


@dataclass(frozen=True)
class EncodedColumn:
    """One DIIS-encoded column.

    Attributes:
        codes: dense int codes, one per row (``np.int64``).
        null_mask: True where the original value was a null marker.
        cardinality: number of distinct codes (``max(codes) + 1``).
        decoder: code -> original value; null codes decode to ``None``.
            Under ``EQ`` semantics all nulls share one ``None`` entry;
            under ``NEQ`` :func:`encode_column` appends a separate
            ``None`` entry per null occurrence, so the decoder always
            covers every code (``len(decoder) == cardinality``).
    """

    codes: np.ndarray
    null_mask: np.ndarray
    cardinality: int
    decoder: Tuple[object, ...]

    def decode(self, code: int) -> object:
        """Return the original value for ``code`` (None for null codes)."""
        if code < len(self.decoder):
            return self.decoder[code]
        return None


def encode_column(values: Sequence[object], semantics: NullSemantics) -> EncodedColumn:
    """DIIS-encode one column of raw values.

    Non-null values are assigned codes in first-occurrence order, which
    keeps encoding deterministic for a given input.  Null handling
    follows ``semantics`` (see module docstring).
    """
    n_rows = len(values)
    codes = np.empty(n_rows, dtype=np.int64)
    null_mask = np.zeros(n_rows, dtype=bool)
    mapping: Dict[object, int] = {}
    decoder: List[object] = []
    null_code = -1
    next_code = 0

    for i, value in enumerate(values):
        if is_null(value):
            null_mask[i] = True
            if semantics is NullSemantics.EQ:
                if null_code < 0:
                    null_code = next_code
                    next_code += 1
                    decoder.append(None)
                codes[i] = null_code
            else:
                codes[i] = next_code
                next_code += 1
                decoder.append(None)
        else:
            code = mapping.get(value)
            if code is None:
                code = next_code
                mapping[value] = code
                next_code += 1
                decoder.append(value)
            codes[i] = code

    return EncodedColumn(
        codes=codes,
        null_mask=null_mask,
        cardinality=next_code,
        decoder=tuple(decoder),
    )


def reencode_dense(codes: np.ndarray) -> Tuple[np.ndarray, int]:
    """Re-map arbitrary int codes onto ``0..k-1`` preserving equality.

    Used when deriving fragments of a relation: row projection can leave
    gaps in the code space, and Algorithm 5 wants codes usable as array
    indices.
    """
    unique, dense = np.unique(codes, return_inverse=True)
    return dense.astype(np.int64), int(len(unique))
