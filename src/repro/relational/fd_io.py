"""JSON (de)serialization of FD covers.

Discovery on large inputs is expensive; persisting the cover lets later
sessions skip it (e.g. seed an
:class:`~repro.incremental.maintainer.IncrementalFDMaintainer`).  FDs
are stored by *column name*, so a cover survives column reordering and
documents itself.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import List, Union

from . import attrset
from .fd import FD, FDSet
from .schema import RelationSchema

FORMAT_VERSION = 1


def cover_payload(fds: FDSet, schema: RelationSchema) -> dict:
    """The cover as a JSON-friendly dict (embeddable in larger documents).

    :meth:`~repro.core.result.DiscoveryResult.to_json` and the
    :mod:`repro.service` result store embed this payload instead of a
    nested JSON string so stored results stay greppable.
    """
    return {
        "format": "repro-fd-cover",
        "version": FORMAT_VERSION,
        "columns": schema.names,
        "fds": [
            {
                "lhs": [schema.name_of(a) for a in attrset.iter_attrs(fd.lhs)],
                "rhs": [schema.name_of(a) for a in attrset.iter_attrs(fd.rhs)],
            }
            for fd in fds
        ],
    }


def cover_from_payload(payload: dict, schema: RelationSchema) -> FDSet:
    """Rebuild a cover from :func:`cover_payload`, validating ``schema``.

    The stored column list must be a subset of the target schema's
    columns (names resolve positions, so extra columns in the target
    are fine; missing ones are an error).
    """
    if payload.get("format") != "repro-fd-cover":
        raise ValueError("not a repro FD cover document")
    if payload.get("version") != FORMAT_VERSION:
        raise ValueError(f"unsupported cover format version {payload.get('version')}")
    missing = [c for c in payload.get("columns", []) if c not in schema]
    if missing:
        raise ValueError(f"cover references unknown columns: {missing}")
    fds = FDSet()
    for entry in payload.get("fds", []):
        lhs = attrset.from_attrs(schema.index_of(name) for name in entry["lhs"])
        rhs = attrset.from_attrs(schema.index_of(name) for name in entry["rhs"])
        fds.add(FD(lhs, rhs))
    return fds


def cover_to_json(fds: FDSet, schema: RelationSchema) -> str:
    """Serialize a cover against its schema to a JSON string."""
    return json.dumps(cover_payload(fds, schema), indent=2, sort_keys=True)


def cover_from_json(text: str, schema: RelationSchema) -> FDSet:
    """Parse a serialized cover (see :func:`cover_from_payload`)."""
    return cover_from_payload(json.loads(text), schema)


def save_cover(fds: FDSet, schema: RelationSchema, path: Union[str, Path]) -> None:
    """Write a cover to a JSON file."""
    Path(path).write_text(cover_to_json(fds, schema) + "\n", encoding="utf-8")


def load_cover(path: Union[str, Path], schema: RelationSchema) -> FDSet:
    """Read a cover from a JSON file."""
    return cover_from_json(Path(path).read_text(encoding="utf-8"), schema)
