"""Functional dependencies and FD sets.

An :class:`FD` is a pair of attribute-set bitmasks ``lhs -> rhs``.
Discovery algorithms output left-reduced covers where every RHS is a
single attribute; the cover module later merges equal LHSs into
multi-attribute RHSs for canonical covers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, Iterable, Iterator, List, Optional, Sequence, Union

from . import attrset
from .attrset import AttrSet
from .schema import RelationSchema


@dataclass(frozen=True, order=True)
class FD:
    """A functional dependency ``lhs -> rhs`` over bitmask attribute sets."""

    lhs: AttrSet
    rhs: AttrSet

    def __post_init__(self) -> None:
        if self.rhs == attrset.EMPTY:
            raise ValueError("an FD must have a non-empty RHS")
        if self.lhs & self.rhs:
            raise ValueError("FD is not in standard form: LHS and RHS overlap")

    @classmethod
    def of(
        cls,
        lhs: Iterable[Union[str, int]],
        rhs: Union[str, int, Iterable[Union[str, int]]],
        schema: Optional[RelationSchema] = None,
    ) -> "FD":
        """Build an FD from column names/indices (names need ``schema``)."""

        def resolve(col: Union[str, int]) -> int:
            if isinstance(col, int):
                return col
            if schema is None:
                raise ValueError("column names require a schema")
            return schema.index_of(col)

        lhs_mask = attrset.from_attrs(resolve(c) for c in lhs)
        if isinstance(rhs, (str, int)):
            rhs_mask = attrset.singleton(resolve(rhs))
        else:
            rhs_mask = attrset.from_attrs(resolve(c) for c in rhs)
        return cls(lhs_mask, rhs_mask)

    @property
    def lhs_size(self) -> int:
        """Number of LHS attributes."""
        return attrset.count(self.lhs)

    @property
    def rhs_size(self) -> int:
        """Number of RHS attributes."""
        return attrset.count(self.rhs)

    @property
    def attribute_occurrences(self) -> int:
        """Total attribute occurrences (the paper's ``||.||`` per FD)."""
        return self.lhs_size + self.rhs_size

    def split(self) -> Iterator["FD"]:
        """Yield the singleton-RHS FDs ``lhs -> A`` for each ``A`` in rhs."""
        for a in attrset.iter_attrs(self.rhs):
            yield FD(self.lhs, attrset.singleton(a))

    def format(self, schema: RelationSchema) -> str:
        """Human-readable rendering with column names."""
        return (
            f"{schema.format_attr_set(self.lhs)} -> "
            f"{schema.format_attr_set(self.rhs)}"
        )

    def __str__(self) -> str:
        lhs = ",".join(str(a) for a in attrset.iter_attrs(self.lhs)) or "∅"
        rhs = ",".join(str(a) for a in attrset.iter_attrs(self.rhs))
        return f"{lhs} -> {rhs}"


class FDSet:
    """A mutable collection of FDs with convenience metrics.

    Stored as a set of :class:`FD`; iteration order is normalized
    (sorted) so reports are deterministic.
    """

    __slots__ = ("_fds",)

    def __init__(self, fds: Iterable[FD] = ()):
        self._fds = set(fds)

    def add(self, fd: FD) -> None:
        """Insert an FD (no-op if already present)."""
        self._fds.add(fd)

    def discard(self, fd: FD) -> None:
        """Remove an FD if present."""
        self._fds.discard(fd)

    def __contains__(self, fd: object) -> bool:
        return fd in self._fds

    def __len__(self) -> int:
        return len(self._fds)

    def __iter__(self) -> Iterator[FD]:
        return iter(sorted(self._fds))

    def __eq__(self, other: object) -> bool:
        if isinstance(other, FDSet):
            return self._fds == other._fds
        return NotImplemented

    def __hash__(self) -> int:
        return hash(frozenset(self._fds))

    def __repr__(self) -> str:
        return f"FDSet({len(self._fds)} FDs)"

    def copy(self) -> "FDSet":
        """Shallow copy."""
        return FDSet(self._fds)

    def as_frozenset(self) -> FrozenSet[FD]:
        """Immutable snapshot of the member FDs."""
        return frozenset(self._fds)

    def split(self) -> "FDSet":
        """Expand every FD to singleton-RHS form."""
        out = FDSet()
        for fd in self._fds:
            for part in fd.split():
                out.add(part)
        return out

    @property
    def attribute_occurrences(self) -> int:
        """Total attribute occurrences, the paper's ``||Σ||`` measure."""
        return sum(fd.attribute_occurrences for fd in self._fds)

    def format(self, schema: RelationSchema) -> List[str]:
        """Render all member FDs with column names, sorted."""
        return [fd.format(schema) for fd in self]


def normalize_singleton_cover(fds: Iterable[FD]) -> FDSet:
    """Return the singleton-RHS expansion of ``fds`` as an FDSet.

    This is the normal form in which discovery algorithm outputs are
    compared in tests: two left-reduced covers are equal iff their
    singleton expansions are equal as sets.
    """
    out = FDSet()
    for fd in fds:
        for part in fd.split():
            out.add(part)
    return out
