"""Relational substrate: schemas, DIIS-encoded relations, FDs, CSV I/O."""

from . import attrset
from .attrset import AttrSet
from .encoding import EncodedColumn, encode_column
from .fd import FD, FDSet, normalize_singleton_cover
from .fd_io import cover_from_json, cover_to_json, load_cover, save_cover
from .io import read_csv, read_csv_text, to_csv_text, write_csv
from .null import NULL, NullSemantics, is_null
from .relation import Relation
from .schema import RelationSchema, SchemaError

__all__ = [
    "AttrSet",
    "EncodedColumn",
    "FD",
    "FDSet",
    "NULL",
    "NullSemantics",
    "Relation",
    "RelationSchema",
    "SchemaError",
    "attrset",
    "cover_from_json",
    "cover_to_json",
    "encode_column",
    "is_null",
    "load_cover",
    "normalize_singleton_cover",
    "read_csv",
    "save_cover",
    "read_csv_text",
    "to_csv_text",
    "write_csv",
]
