"""Relation schemas: ordered, named column collections.

The paper assumes a total order on the attributes of a relation schema
``R = {A1, ..., An}`` so that columns can be identified by positive
integers (we use 0-based indices).  :class:`RelationSchema` provides the
name <-> index mapping used throughout the library.
"""

from __future__ import annotations

from typing import Iterable, Iterator, List, Sequence, Union

from . import attrset
from .attrset import AttrSet


class SchemaError(ValueError):
    """Raised for malformed schemas or unknown column references."""


class RelationSchema:
    """An ordered sequence of uniquely named attributes (columns)."""

    __slots__ = ("_names", "_index")

    def __init__(self, names: Sequence[str]):
        names = list(names)
        if not names:
            raise SchemaError("a relation schema must have at least one column")
        seen = set()
        for name in names:
            if not isinstance(name, str) or not name:
                raise SchemaError(f"column names must be non-empty strings, got {name!r}")
            if name in seen:
                raise SchemaError(f"duplicate column name {name!r}")
            seen.add(name)
        self._names: List[str] = names
        self._index = {name: i for i, name in enumerate(names)}

    @classmethod
    def of_width(cls, n_cols: int, prefix: str = "col") -> "RelationSchema":
        """Build an anonymous schema ``prefix0, prefix1, ...``."""
        if n_cols <= 0:
            raise SchemaError("schema width must be positive")
        return cls([f"{prefix}{i}" for i in range(n_cols)])

    @property
    def names(self) -> List[str]:
        """The column names in schema order (copy; mutations are ignored)."""
        return list(self._names)

    def __len__(self) -> int:
        return len(self._names)

    def __iter__(self) -> Iterator[str]:
        return iter(self._names)

    def __contains__(self, name: object) -> bool:
        return name in self._index

    def __eq__(self, other: object) -> bool:
        return isinstance(other, RelationSchema) and self._names == other._names

    def __hash__(self) -> int:
        return hash(tuple(self._names))

    def __repr__(self) -> str:
        return f"RelationSchema({self._names!r})"

    def name_of(self, attr: int) -> str:
        """Return the name of column index ``attr``."""
        try:
            return self._names[attr]
        except IndexError:
            raise SchemaError(f"column index {attr} out of range for {self!r}") from None

    def index_of(self, name: str) -> int:
        """Return the column index of ``name``."""
        try:
            return self._index[name]
        except KeyError:
            raise SchemaError(f"unknown column {name!r}") from None

    def attr_set(self, columns: Iterable[Union[str, int]]) -> AttrSet:
        """Build an attribute-set bitmask from column names or indices."""
        mask = attrset.EMPTY
        for col in columns:
            mask = attrset.add(mask, self.resolve(col))
        return mask

    def resolve(self, column: Union[str, int]) -> int:
        """Normalize a column reference (name or index) to an index."""
        if isinstance(column, str):
            return self.index_of(column)
        if isinstance(column, int):
            if not 0 <= column < len(self._names):
                raise SchemaError(f"column index {column} out of range for {self!r}")
            return column
        raise SchemaError(f"column reference must be str or int, got {column!r}")

    def all_attrs(self) -> AttrSet:
        """Return the attribute set of the full schema."""
        return attrset.full_set(len(self._names))

    def format_attr_set(self, attr_set: AttrSet) -> str:
        """Render an attribute-set bitmask with this schema's names."""
        return attrset.format_attrs(attr_set, self._names)

    def project(self, columns: Sequence[Union[str, int]]) -> "RelationSchema":
        """Return a new schema restricted to ``columns`` (in given order)."""
        return RelationSchema([self.name_of(self.resolve(c)) for c in columns])
