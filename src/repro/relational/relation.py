"""In-memory relations over DIIS-encoded columns.

A :class:`Relation` is the single data representation every discovery
algorithm in this library consumes.  It stores one
:class:`~repro.relational.encoding.EncodedColumn` per schema attribute
plus a lazily materialized row-major code matrix used for fast agree-set
computation during sampling.

Relations are immutable: fragment operations (row/column projection)
return new relations with densely re-encoded codes so that Algorithm 5
can keep using codes as array indices.
"""

from __future__ import annotations

import hashlib
from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Union

import numpy as np

from . import attrset
from .attrset import AttrSet
from .encoding import EncodedColumn, encode_column, reencode_dense
from .null import NULL, NullSemantics
from .schema import RelationSchema, SchemaError


class Relation:
    """A finite multiset of rows over a :class:`RelationSchema`.

    Note the departure from the paper's set-of-tuples model: we keep
    duplicate rows (real CSV inputs have them; ncvoter's duplicate
    voter_id rows in Table I are the paper's own example).  Duplicates
    never affect which FDs hold.
    """

    __slots__ = ("schema", "semantics", "n_rows", "_columns", "_matrix", "_fingerprint")

    def __init__(
        self,
        schema: RelationSchema,
        columns: Sequence[EncodedColumn],
        semantics: NullSemantics,
        n_rows: int,
    ):
        if len(columns) != len(schema):
            raise SchemaError(
                f"schema has {len(schema)} columns but {len(columns)} encoded columns given"
            )
        self.schema = schema
        self.semantics = semantics
        self.n_rows = n_rows
        self._columns: Tuple[EncodedColumn, ...] = tuple(columns)
        self._matrix: Optional[np.ndarray] = None
        self._fingerprint: Optional[str] = None

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    @classmethod
    def from_rows(
        cls,
        rows: Sequence[Sequence[object]],
        schema: Optional[Union[RelationSchema, Sequence[str]]] = None,
        semantics: Union[str, NullSemantics] = NullSemantics.EQ,
    ) -> "Relation":
        """Build a relation from row tuples of raw Python values.

        ``None`` entries are null markers.  If no schema is given an
        anonymous ``col0..colN`` schema is created.
        """
        semantics = NullSemantics.parse(semantics)
        rows = list(rows)
        if schema is None:
            width = len(rows[0]) if rows else 1
            schema = RelationSchema.of_width(width)
        elif not isinstance(schema, RelationSchema):
            schema = RelationSchema(schema)
        n_cols = len(schema)
        for i, row in enumerate(rows):
            if len(row) != n_cols:
                raise SchemaError(f"row {i} has {len(row)} values, expected {n_cols}")
        columns = [
            encode_column([row[c] for row in rows], semantics) for c in range(n_cols)
        ]
        return cls(schema, columns, semantics, len(rows))

    @classmethod
    def from_columns(
        cls,
        columns: "Dict[str, Sequence[object]]",
        semantics: Union[str, NullSemantics] = NullSemantics.EQ,
    ) -> "Relation":
        """Build a relation from a ``{name: values}`` mapping."""
        semantics = NullSemantics.parse(semantics)
        schema = RelationSchema(list(columns.keys()))
        lengths = {len(values) for values in columns.values()}
        if len(lengths) > 1:
            raise SchemaError(f"columns have differing lengths: {sorted(lengths)}")
        n_rows = lengths.pop() if lengths else 0
        encoded = [encode_column(list(values), semantics) for values in columns.values()]
        return cls(schema, encoded, semantics, n_rows)

    # ------------------------------------------------------------------
    # Basic accessors
    # ------------------------------------------------------------------

    @property
    def n_cols(self) -> int:
        """Number of columns in the schema."""
        return len(self.schema)

    @property
    def n_values(self) -> int:
        """Total number of data value occurrences (#values in Table IV)."""
        return self.n_rows * self.n_cols

    def column(self, attr: int) -> EncodedColumn:
        """The encoded column for index ``attr``."""
        return self._columns[attr]

    def codes(self, attr: int) -> np.ndarray:
        """The DIIS code array of column ``attr`` (one entry per row)."""
        return self._columns[attr].codes

    def cardinality(self, attr: int) -> int:
        """Number of distinct codes in column ``attr``."""
        return self._columns[attr].cardinality

    def null_mask(self, attr: int) -> np.ndarray:
        """Boolean per-row mask of null occurrences in column ``attr``."""
        return self._columns[attr].null_mask

    def value(self, row: int, attr: int) -> object:
        """Decode the raw value at ``(row, attr)`` (None for nulls)."""
        col = self._columns[attr]
        if col.null_mask[row]:
            return NULL
        return col.decode(int(col.codes[row]))

    def row_values(self, row: int) -> Tuple[object, ...]:
        """Decode an entire row back to raw values."""
        return tuple(self.value(row, a) for a in range(self.n_cols))

    def iter_rows(self) -> Iterable[Tuple[object, ...]]:
        """Yield decoded rows in order."""
        for i in range(self.n_rows):
            yield self.row_values(i)

    def matrix(self) -> np.ndarray:
        """Row-major ``(n_rows, n_cols)`` int64 code matrix (lazy)."""
        if self._matrix is None:
            if self.n_rows == 0:
                self._matrix = np.empty((0, self.n_cols), dtype=np.int64)
            else:
                self._matrix = np.column_stack([c.codes for c in self._columns])
        return self._matrix

    def fingerprint(self) -> str:
        """Stable SHA-256 content fingerprint of this relation (hex digest).

        The digest covers the schema names, the null semantics, and
        every column's DIIS codes, null mask and decoder values, so any
        cell edit, null flip, column rename, or semantics switch yields
        a different fingerprint.  It is deliberately **row-order
        sensitive**: hashing the encoded matrices is a single cheap
        pass with no sorting, and callers that key caches by
        fingerprint (see :mod:`repro.service`) treat a reordered load
        as a distinct dataset.  Cached after the first call — relations
        are immutable, so the digest can never go stale.
        """
        if self._fingerprint is None:
            digest = hashlib.sha256()
            digest.update(b"repro-relation-v1")
            digest.update(self.semantics.value.encode("utf-8"))
            digest.update(str(self.n_rows).encode("ascii"))
            for name in self.schema.names:
                digest.update(b"\x00" + name.encode("utf-8"))
            for col in self._columns:
                digest.update(b"\x01")
                digest.update(np.ascontiguousarray(col.codes).tobytes())
                digest.update(np.packbits(col.null_mask).tobytes())
                for value in col.decoder:
                    digest.update(b"\x02" + repr(value).encode("utf-8"))
            self._fingerprint = digest.hexdigest()
        return self._fingerprint

    def null_count(self) -> int:
        """Total number of null occurrences in the relation (#⊥)."""
        return int(sum(c.null_mask.sum() for c in self._columns))

    def __len__(self) -> int:
        return self.n_rows

    def __repr__(self) -> str:
        return (
            f"Relation({self.n_rows} rows x {self.n_cols} cols, "
            f"{self.semantics.value})"
        )

    # ------------------------------------------------------------------
    # Agree sets
    # ------------------------------------------------------------------

    def agree_set(self, row_a: int, row_b: int) -> AttrSet:
        """The agree set ``ag(t, t')``: columns where the rows match."""
        matrix = self.matrix()
        equal = matrix[row_a] == matrix[row_b]
        mask = attrset.EMPTY
        for col in np.nonzero(equal)[0]:
            mask = attrset.add(mask, int(col))
        return mask

    # ------------------------------------------------------------------
    # Fragments
    # ------------------------------------------------------------------

    def project_rows(self, row_indices: Sequence[int]) -> "Relation":
        """Return the fragment containing only ``row_indices`` (in order).

        Codes are densely re-encoded so downstream array indexing stays
        tight; decoded values are preserved.
        """
        idx = np.asarray(row_indices, dtype=np.int64)
        new_columns = []
        for col in self._columns:
            sub_codes = col.codes[idx]
            dense, n_codes = reencode_dense(sub_codes)
            unique = np.unique(sub_codes)
            decoder = tuple(col.decode(int(c)) for c in unique)
            new_columns.append(
                EncodedColumn(
                    codes=dense,
                    null_mask=col.null_mask[idx].copy(),
                    cardinality=n_codes,
                    decoder=decoder,
                )
            )
        return Relation(self.schema, new_columns, self.semantics, int(len(idx)))

    def head(self, n_rows: int) -> "Relation":
        """The fragment made of the first ``n_rows`` rows."""
        n_rows = min(n_rows, self.n_rows)
        return self.project_rows(range(n_rows))

    def project_columns(self, columns: Sequence[Union[str, int]]) -> "Relation":
        """Return the fragment containing only the given columns."""
        indices = [self.schema.resolve(c) for c in columns]
        new_schema = self.schema.project(indices)
        new_columns = [self._columns[i] for i in indices]
        return Relation(new_schema, new_columns, self.semantics, self.n_rows)

    def append_rows(self, new_rows: Sequence[Sequence[object]]) -> "Relation":
        """Return a new relation with ``new_rows`` appended.

        Existing DIIS codes are preserved (old row indices keep their
        meaning); new values extend each column's code space.  This is
        the substrate for incremental FD maintenance.
        """
        new_rows = [list(row) for row in new_rows]
        for i, row in enumerate(new_rows):
            if len(row) != self.n_cols:
                raise SchemaError(
                    f"appended row {i} has {len(row)} values, expected {self.n_cols}"
                )
        if not new_rows:
            return self

        new_columns = []
        for attr, col in enumerate(self._columns):
            mapping: Dict[object, int] = {}
            null_code = -1
            for code, value in enumerate(col.decoder):
                if value is None:
                    if self.semantics is NullSemantics.EQ:
                        null_code = code
                else:
                    mapping[value] = code
            next_code = col.cardinality
            decoder = list(col.decoder)
            extra_codes = []
            extra_nulls = []
            for row in new_rows:
                value = row[attr]
                if value is NULL or value is None:
                    extra_nulls.append(True)
                    if self.semantics is NullSemantics.EQ:
                        if null_code < 0:
                            null_code = next_code
                            next_code += 1
                            decoder.append(None)
                        extra_codes.append(null_code)
                    else:
                        extra_codes.append(next_code)
                        next_code += 1
                        decoder.append(None)
                else:
                    extra_nulls.append(False)
                    code = mapping.get(value)
                    if code is None:
                        code = next_code
                        mapping[value] = code
                        next_code += 1
                        decoder.append(value)
                    extra_codes.append(code)
            new_columns.append(
                EncodedColumn(
                    codes=np.concatenate(
                        [col.codes, np.asarray(extra_codes, dtype=np.int64)]
                    ),
                    null_mask=np.concatenate(
                        [col.null_mask, np.asarray(extra_nulls, dtype=bool)]
                    ),
                    cardinality=next_code,
                    decoder=tuple(decoder),
                )
            )
        return Relation(
            self.schema, new_columns, self.semantics, self.n_rows + len(new_rows)
        )

    def with_semantics(self, semantics: Union[str, NullSemantics]) -> "Relation":
        """Re-encode the relation under different null semantics."""
        semantics = NullSemantics.parse(semantics)
        if semantics is self.semantics:
            return self
        raw_columns = {}
        for i, name in enumerate(self.schema.names):
            raw_columns[name] = [self.value(r, i) for r in range(self.n_rows)]
        return Relation.from_columns(raw_columns, semantics)
