"""Sorted-neighborhood non-FD sampling (paper §IV-B, HyFD [16]).

Non-FDs are witnessed by tuple pairs: the agree set ``ag(t, t')`` of any
two distinct rows implies the non-FD ``ag(t,t') ↛ R − ag(t,t')``.
Comparing all ``O(|r|²)`` pairs is what makes FDEP row-bound, so the
hybrid algorithms *sample* pairs instead: within each cluster of each
singleton stripped partition, rows are sorted (the sorted-neighborhood
method of Hernández & Stolfo) and each row is compared with its
neighbour at distance ``w``.  Rows that share a value and sort next to
each other are likely to agree on much more, so the sampled agree sets
are large and each one kills many candidate FDs at once.

DHyFD samples only once, with window 1, before its first validation
round (re-sampling "would only cause computational overheads", §IV-H).
HyFD keeps the sampler around and grows the window whenever validation
invalidates too many FDs.

Agree-set computation goes through
:mod:`repro.partitions.kernels` — the numpy backend compares a whole
round's row pairs in one shot and packs the agreement bitmasks with
``np.packbits``; the python backend is the per-pair reference.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Set, Tuple

import numpy as np

from ..partitions import kernels
from ..partitions.stripped import StrippedPartition
from ..relational import attrset
from ..relational.attrset import AttrSet
from ..relational.relation import Relation


def row_sort_keys(matrix: np.ndarray) -> List[bytes]:
    """Per-row sort keys: the row's full byte content.

    Sorting cluster rows by whole-row content is what makes neighbours
    likely to share long agree sets (the sorted-neighborhood method).
    Shared between the in-process sampler and pool workers so both sort
    identically.
    """
    return [row.tobytes() for row in matrix]


def sort_clusters_by_content(
    clusters: Sequence[Sequence[int]], row_keys: Sequence[bytes]
) -> List[np.ndarray]:
    """Sort each cluster's rows by their full-row content keys."""
    return [
        np.asarray(sorted(cluster, key=lambda row: row_keys[row]), dtype=np.int64)
        for cluster in clusters
    ]


def window_pairs(
    sorted_clusters: Sequence[np.ndarray], window: int
) -> Optional[Tuple[np.ndarray, np.ndarray]]:
    """All neighbour pairs at distance ``window``, as two row arrays.

    Returns ``None`` when no cluster is long enough to yield a pair.
    """
    rows_a = [c[:-window] for c in sorted_clusters if len(c) > window]
    if not rows_a:
        return None
    rows_b = [c[window:] for c in sorted_clusters if len(c) > window]
    return np.concatenate(rows_a), np.concatenate(rows_b)


class SampleStats:
    """Bookkeeping for one sampling round."""

    __slots__ = ("comparisons", "new_agree_sets")

    def __init__(self, comparisons: int = 0, new_agree_sets: int = 0):
        self.comparisons = comparisons
        self.new_agree_sets = new_agree_sets

    @property
    def efficiency(self) -> float:
        """New non-FDs per comparison; HyFD's switch signal."""
        if self.comparisons == 0:
            return 0.0
        return self.new_agree_sets / self.comparisons


class AgreeSetSampler:
    """Progressive sorted-neighborhood sampler over singleton partitions."""

    def __init__(
        self,
        relation: Relation,
        partitions: Sequence[StrippedPartition],
        backend: Optional[str] = None,
    ):
        self.relation = relation
        self.backend = backend
        self.matrix = relation.matrix()
        self._full = attrset.full_set(relation.n_cols)
        #: Per-attribute clusters with rows pre-sorted by full row content.
        row_keys = row_sort_keys(self.matrix)
        self._sorted_clusters: List[List[np.ndarray]] = [
            sort_clusters_by_content(partition.clusters, row_keys)
            for partition in partitions
        ]
        #: Next window distance to run, per attribute.
        self._windows = [1] * len(self._sorted_clusters)
        self.seen: Set[AttrSet] = set()

    def sample_round(self) -> Tuple[Set[AttrSet], SampleStats]:
        """Compare neighbours at each attribute's current window distance.

        Returns the *new* agree sets found this round plus stats; the
        per-attribute window then advances so the next round compares
        strictly new pairs.
        """
        stats = SampleStats()
        new_sets: Set[AttrSet] = set()
        for attr, clusters in enumerate(self._sorted_clusters):
            window = self._windows[attr]
            pairs = window_pairs(clusters, window)
            if pairs is not None:
                pairs_a, pairs_b = pairs
                stats.comparisons += len(pairs_a)
                for agree in kernels.agree_masks(
                    self.matrix, pairs_a, pairs_b, backend=self.backend
                ):
                    if agree != self._full and agree not in self.seen:
                        # duplicate rows agree everywhere — a trivial
                        # "non-FD" that cannot invalidate anything
                        self.seen.add(agree)
                        new_sets.add(agree)
            self._windows[attr] = window + 1
        stats.new_agree_sets = len(new_sets)
        return new_sets, stats

    def exhausted(self) -> bool:
        """True when every cluster has been fully windowed."""
        for attr, clusters in enumerate(self._sorted_clusters):
            window = self._windows[attr]
            if any(len(cluster) > window for cluster in clusters):
                return False
        return True

    def _agree_mask(self, row_a: int, row_b: int) -> AttrSet:
        """Agree set of one row pair (kept as the single-pair interface)."""
        return kernels.agree_masks(
            self.matrix,
            np.asarray([row_a], dtype=np.int64),
            np.asarray([row_b], dtype=np.int64),
            backend=self.backend,
        )[0]


def initial_sample(
    relation: Relation,
    partitions: Sequence[StrippedPartition],
    backend: Optional[str] = None,
    executor=None,
) -> Set[AttrSet]:
    """DHyFD's one-shot wide sample: a single window-1 round.

    When an active :class:`~repro.parallel.ParallelExecutor` is passed,
    the per-attribute windows are split across pool workers; the merged
    agree-set union equals the serial round exactly (per-attribute work
    is independent and the union deduplicates).  Any pool failure falls
    back to the serial sampler.
    """
    if executor is not None and executor.active:
        from ..parallel import PoolBrokenError, sample_initial

        try:
            agree_sets, _comparisons = sample_initial(executor, partitions)
            return agree_sets
        except PoolBrokenError:
            pass
    sampler = AgreeSetSampler(relation, partitions, backend=backend)
    agree_sets, _ = sampler.sample_round()
    return agree_sets


def all_agree_sets(
    relation: Relation, backend: Optional[str] = None
) -> Set[AttrSet]:
    """The exact agree-set cover from *all* distinct row pairs.

    This is FDEP's quadratic negative-cover computation; only viable on
    relations with modest row counts.  Trivial full-schema agree sets
    from duplicate rows are dropped (they imply no non-FD).
    """
    full = attrset.full_set(relation.n_cols)
    agree_sets = kernels.pairwise_agree_sets(relation.matrix(), backend=backend)
    agree_sets.discard(full)
    return agree_sets
