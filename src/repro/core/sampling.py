"""Sorted-neighborhood non-FD sampling (paper §IV-B, HyFD [16]).

Non-FDs are witnessed by tuple pairs: the agree set ``ag(t, t')`` of any
two distinct rows implies the non-FD ``ag(t,t') ↛ R − ag(t,t')``.
Comparing all ``O(|r|²)`` pairs is what makes FDEP row-bound, so the
hybrid algorithms *sample* pairs instead: within each cluster of each
singleton stripped partition, rows are sorted (the sorted-neighborhood
method of Hernández & Stolfo) and each row is compared with its
neighbour at distance ``w``.  Rows that share a value and sort next to
each other are likely to agree on much more, so the sampled agree sets
are large and each one kills many candidate FDs at once.

DHyFD samples only once, with window 1, before its first validation
round (re-sampling "would only cause computational overheads", §IV-H).
HyFD keeps the sampler around and grows the window whenever validation
invalidates too many FDs.
"""

from __future__ import annotations

from typing import List, Sequence, Set, Tuple

import numpy as np

from ..partitions.stripped import StrippedPartition
from ..relational import attrset
from ..relational.attrset import AttrSet
from ..relational.relation import Relation


class SampleStats:
    """Bookkeeping for one sampling round."""

    __slots__ = ("comparisons", "new_agree_sets")

    def __init__(self, comparisons: int = 0, new_agree_sets: int = 0):
        self.comparisons = comparisons
        self.new_agree_sets = new_agree_sets

    @property
    def efficiency(self) -> float:
        """New non-FDs per comparison; HyFD's switch signal."""
        if self.comparisons == 0:
            return 0.0
        return self.new_agree_sets / self.comparisons


class AgreeSetSampler:
    """Progressive sorted-neighborhood sampler over singleton partitions."""

    def __init__(self, relation: Relation, partitions: Sequence[StrippedPartition]):
        self.relation = relation
        self.matrix = relation.matrix()
        self._full = attrset.full_set(relation.n_cols)
        #: Per-attribute clusters with rows pre-sorted by full row content.
        self._sorted_clusters: List[List[List[int]]] = []
        row_keys = [row.tobytes() for row in self.matrix]
        for partition in partitions:
            clusters = [
                sorted(cluster, key=lambda row: row_keys[row])
                for cluster in partition.clusters
            ]
            self._sorted_clusters.append(clusters)
        #: Next window distance to run, per attribute.
        self._windows = [1] * len(self._sorted_clusters)
        self.seen: Set[AttrSet] = set()

    def sample_round(self) -> Tuple[Set[AttrSet], SampleStats]:
        """Compare neighbours at each attribute's current window distance.

        Returns the *new* agree sets found this round plus stats; the
        per-attribute window then advances so the next round compares
        strictly new pairs.
        """
        stats = SampleStats()
        new_sets: Set[AttrSet] = set()
        for attr, clusters in enumerate(self._sorted_clusters):
            window = self._windows[attr]
            for cluster in clusters:
                for i in range(len(cluster) - window):
                    row_a, row_b = cluster[i], cluster[i + window]
                    stats.comparisons += 1
                    agree = self._agree_mask(row_a, row_b)
                    if agree != self._full and agree not in self.seen:
                        # duplicate rows agree everywhere — a trivial
                        # "non-FD" that cannot invalidate anything
                        self.seen.add(agree)
                        new_sets.add(agree)
            self._windows[attr] = window + 1
        stats.new_agree_sets = len(new_sets)
        return new_sets, stats

    def exhausted(self) -> bool:
        """True when every cluster has been fully windowed."""
        for attr, clusters in enumerate(self._sorted_clusters):
            window = self._windows[attr]
            if any(len(cluster) > window for cluster in clusters):
                return False
        return True

    def _agree_mask(self, row_a: int, row_b: int) -> AttrSet:
        equal = self.matrix[row_a] == self.matrix[row_b]
        mask = attrset.EMPTY
        for col in np.nonzero(equal)[0]:
            mask = attrset.add(mask, int(col))
        return mask


def initial_sample(
    relation: Relation, partitions: Sequence[StrippedPartition]
) -> Set[AttrSet]:
    """DHyFD's one-shot wide sample: a single window-1 round."""
    sampler = AgreeSetSampler(relation, partitions)
    agree_sets, _ = sampler.sample_round()
    return agree_sets


def all_agree_sets(relation: Relation) -> Set[AttrSet]:
    """The exact agree-set cover from *all* distinct row pairs.

    This is FDEP's quadratic negative-cover computation; only viable on
    relations with modest row counts.  Trivial full-schema agree sets
    from duplicate rows are dropped (they imply no non-FD).
    """
    matrix = relation.matrix()
    n_rows = relation.n_rows
    full = attrset.full_set(relation.n_cols)
    agree_sets: Set[AttrSet] = set()
    for i in range(n_rows):
        row_i = matrix[i]
        for j in range(i + 1, n_rows):
            equal = row_i == matrix[j]
            mask = attrset.EMPTY
            for col in np.nonzero(equal)[0]:
                mask = attrset.add(mask, int(col))
            if mask != full:
                agree_sets.add(mask)
    return agree_sets
