"""DHyFD — the paper's dynamic hybrid FD-discovery algorithm (Alg. 6).

The strategy in one paragraph: induct a first approximation of the FD
set from one wide sampling round, then validate the extended FD-tree
level by level.  Validation uses whatever stripped partition the DDM
currently assigns to a node (a singleton at first), violations are fed
back through synergized induction, and after each level the
efficiency–inefficiency ratio decides whether the DDM should refine its
partitions up to this level — switching to a row-based, memory-heavier
mode exactly when the evidence says many FDs above will be *valid* and
therefore worth the finer partitions.

Top-k mode (:meth:`~repro.core.base.DiscoveryAlgorithm.discover_top_k`)
threads a :class:`~repro.ranking.topk.TopKTracker` through the same
search: confirmed FDs are measured lazily through a side
:class:`~repro.partitions.cache.PartitionCache` (the null-inclusive
redundancy of ``X -> A`` is ``||pi_X||``), candidate nodes whose cheap
redundancy bound (smallest singleton partition of the LHS) falls
strictly below the running k-th redundancy are skipped — they stay in
the tree so minimality invariants hold, but are never validated or
confirmed — and the level loop terminates early once no reachable node
can enter the top-k.
"""

from __future__ import annotations

from typing import List, Optional, Set, Tuple

from ..fdtree.extended import ExtendedFDTree, ExtFDNode
from ..fdtree.induction import synergized_induct
from ..memplane import tier_for
from ..memplane.arena import current_arena
from ..parallel import ParallelExecutor, PoolBrokenError, resolve_jobs
from ..parallel import config as parallel_config
from ..parallel import merge_validation_outcomes
from ..parallel import validate_level as parallel_validate_level
from ..partitions.cache import PartitionCache
from ..ranking.topk import TopKTracker
from ..relational import attrset
from ..relational.attrset import AttrSet
from ..relational.fd import FD, FDSet, normalize_singleton_cover
from ..relational.relation import Relation
from ..resilience import RunBudget
from ..telemetry import current_tracer
from .base import (
    CHECKPOINT_FORMAT,
    CHECKPOINT_VERSION,
    Deadline,
    DiscoveryAlgorithm,
    RunContext,
)
from .ddm import DynamicDataManager
from .ratio import DEFAULT_RATIO_THRESHOLD, LevelDecision
from .result import DiscoveryStats
from .sampling import initial_sample
from .validation import ValidationResult, validate_fd


class _DegradationState:
    """Run-local flags the memory sentinel's ladder flips."""

    __slots__ = ("no_refine",)

    def __init__(self) -> None:
        self.no_refine = False

    def disable_refinement(self) -> int:
        """Pin the ratio decision to "don't spend"; frees nothing itself."""
        self.no_refine = True
        return 0


def _shed_arena() -> int:
    """Ladder rung: evict the dataset arena's unpinned entries."""
    arena = current_arena()
    return arena.shed() if arena is not None else 0


def _checkpoint_payload(
    relation: Relation,
    tree: ExtendedFDTree,
    confirmed: List[Tuple[AttrSet, AttrSet]],
    applied: Set[AttrSet],
    validation_level: int,
    validated_fds: int,
) -> dict:
    """The JSON-friendly resume snapshot at one level boundary.

    Everything needed to re-enter the level loop: the candidate tree
    as ``[lhs, rhs]`` bitmask pairs, the exactly-validated pairs, the
    violation LHSs already inducted, and the validated-level watermark.
    Partitions are deliberately absent — the DDM rebuilds singletons on
    resume and re-refines on its own evidence; the cover is invariant
    to that choice (same guarantee as ``enable_ddm_updates=False``).
    """
    return {
        "format": CHECKPOINT_FORMAT,
        "version": CHECKPOINT_VERSION,
        "algorithm": "dhyfd",
        "n_cols": relation.n_cols,
        "semantics": relation.semantics.value,
        "validation_level": validation_level,
        "validated_fds": validated_fds,
        "tree": sorted(
            [node.path(), node.rhs]
            for node in tree.iter_fd_nodes()
            if not node.deleted and node.rhs
        ),
        "confirmed": [[lhs, rhs] for lhs, rhs in confirmed],
        "applied": sorted(applied),
    }


def _rebuild_from_checkpoint(state: dict, n_cols: int):
    """Rebuild the level-loop state from a checkpoint payload.

    Returns ``(tree, confirmed, applied, validation_level,
    validated_fds)`` or ``None`` when the payload is malformed — a
    rejected checkpoint degrades to a (sound) cold start.
    """
    try:
        validation_level = int(state["validation_level"])
        validated_fds = int(state["validated_fds"])
        pairs = [(int(lhs), int(rhs)) for lhs, rhs in state["tree"]]
        confirmed = [(int(lhs), int(rhs)) for lhs, rhs in state["confirmed"]]
        applied = {int(lhs) for lhs in state["applied"]}
    except (KeyError, TypeError, ValueError):
        return None
    if validation_level < 1 or not pairs:
        return None
    full = attrset.full_set(n_cols)
    tree = ExtendedFDTree(n_cols)
    for lhs, rhs in pairs:
        if lhs < 0 or (lhs | full) != full or (rhs | full) != full or not rhs:
            return None
        tree.add_fd(lhs, rhs)
    return tree, confirmed, applied, validation_level, validated_fds


class DHyFD(DiscoveryAlgorithm):
    """Dynamic hybrid FD discovery (paper Algorithm 6)."""

    name = "dhyfd"

    def __init__(
        self,
        ratio_threshold: float = DEFAULT_RATIO_THRESHOLD,
        time_limit: Optional[float] = None,
        enable_ddm_updates: bool = True,
        enable_initial_sampling: bool = True,
        backend: Optional[str] = None,
        jobs: Optional[int] = None,
        parallel_min_rows: Optional[int] = None,
        parallel_min_candidates: Optional[int] = None,
        budget: Optional[RunBudget] = None,
        on_limit: str = "raise",
    ):
        """Args:
            ratio_threshold: efficiency/inefficiency level above which
                the DDM refines partitions (paper tunes this to 3.0).
            time_limit: optional wall-clock cap in seconds.
            enable_ddm_updates: ablation switch; False never refines,
                so every validation starts from singleton partitions.
            enable_initial_sampling: ablation switch; False skips the
                one-shot sorted-neighborhood sample, so the first
                FD-tree approximation comes from root validation alone
                and every refinement burden falls on validation.
            backend: partition-kernel backend (``"python"`` or
                ``"numpy"``); ``None`` uses the process default (see
                :mod:`repro.partitions.kernels`).
            jobs: worker-process count for level validation and the
                initial sample; ``0``/``"auto"`` means one per core,
                ``None`` uses the process default (``REPRO_FD_JOBS`` /
                the CLI's ``--jobs``).  Covers and stats are identical
                for every value — see :mod:`repro.parallel`.
            parallel_min_rows: don't go parallel below this many rows
                (``None`` uses the :mod:`repro.parallel.config` default).
            parallel_min_candidates: don't dispatch a level with fewer
                validated candidates than this.
            budget: optional :class:`~repro.resilience.RunBudget`
                (memory/RSS ceilings enforced via a degradation ladder:
                evict refined partitions → pin no-refinement → shrink
                the worker pool → abort).
            on_limit: ``"raise"`` (default) or ``"partial"`` — see
                :meth:`DiscoveryAlgorithm.discover`.
        """
        super().__init__(time_limit, budget=budget, on_limit=on_limit)
        self.ratio_threshold = ratio_threshold
        self.enable_ddm_updates = enable_ddm_updates
        self.enable_initial_sampling = enable_initial_sampling
        self.backend = backend
        self.jobs = jobs
        self.parallel_min_rows = parallel_min_rows
        self.parallel_min_candidates = parallel_min_candidates

    def _make_executor(self, relation: Relation) -> Optional[ParallelExecutor]:
        """An executor for this run, or None when the serial path wins."""
        jobs = resolve_jobs(self.jobs)
        min_rows = (
            parallel_config.DEFAULT_MIN_PARALLEL_ROWS
            if self.parallel_min_rows is None
            else self.parallel_min_rows
        )
        if jobs <= 1 or relation.n_rows < min_rows:
            return None
        return ParallelExecutor(relation, jobs=jobs, backend=self.backend)

    def _find_fds(
        self, relation: Relation, deadline: Deadline
    ) -> Tuple[FDSet, DiscoveryStats]:
        executor = self._make_executor(relation)
        try:
            return self._find_fds_impl(relation, deadline, executor)
        finally:
            if executor is not None:
                executor.close()

    def _find_top_k(
        self, relation: Relation, k: int, deadline: Deadline
    ) -> Tuple[FDSet, DiscoveryStats]:
        """Rank-aware search: skip validating lattice regions that
        cannot reach the running k-th redundancy (see ``tracker`` in
        :meth:`_find_fds_impl`)."""
        tracker = TopKTracker(k)
        executor = self._make_executor(relation)
        try:
            fds, stats = self._find_fds_impl(
                relation, deadline, executor, tracker=tracker
            )
        finally:
            if executor is not None:
                executor.close()
        stats.pruned_candidates += tracker.pruned_candidates
        return fds, stats

    def _find_fds_impl(
        self,
        relation: Relation,
        deadline: Deadline,
        executor: Optional[ParallelExecutor],
        tracker: Optional[TopKTracker] = None,
    ) -> Tuple[FDSet, DiscoveryStats]:
        stats = DiscoveryStats()
        tracer = current_tracer()
        n_cols = relation.n_cols
        all_attrs = attrset.full_set(n_cols)

        ddm = DynamicDataManager(relation, backend=self.backend)
        stats.partition_memory_peak_bytes = ddm.memory_bytes()
        tree = ExtendedFDTree(n_cols)
        tree.add_fd(attrset.EMPTY, all_attrs)

        # --- resilience wiring (active only when driven by discover())
        degraded = _DegradationState()
        #: Exactly-validated (lhs, rhs) pairs — the sound anytime core.
        #: Full-relation validation is definitive, so entries never need
        #: to be retracted when later levels find more violations.
        confirmed: List[Tuple[AttrSet, AttrSet]] = []

        # --- top-k wiring: a side cache measures the exact redundancy
        # of confirmed FDs (the null-inclusive redundancy of X -> A is
        # ||pi_X||), lazily — an FD whose cheap bound (smallest
        # singleton partition on its LHS, or the exact partition when
        # already cached) falls strictly below the running k-th
        # redundancy can never enter the top-k, so its partition is
        # never built.  The same bound gates *validation*: a candidate
        # node is skipped entirely when nothing in its subtree (every
        # descendant FD has a superset LHS, hence a no-larger
        # redundancy) can reach the threshold.
        measure_cache = (
            PartitionCache(
                relation,
                backend=self.backend,
                shared=tier_for(relation, self.backend),
            )
            if tracker is not None
            else None
        )

        def _cheap_bound(path: AttrSet) -> int:
            if path == attrset.EMPTY:
                return ddm.universal.size
            exact = measure_cache.peek(path)
            if exact is not None:
                return exact.size
            return min(
                measure_cache.peek(attrset.singleton(attr)).size
                for attr in attrset.iter_attrs(path)
            )

        def _measure(path: AttrSet, rhs: AttrSet) -> None:
            if tracker.can_prune(_cheap_bound(path)):
                return
            redundancy = (
                ddm.universal.size
                if path == attrset.EMPTY
                else measure_cache.get(path).size
            )
            for attr in attrset.iter_attrs(rhs):
                tracker.add(FD(path, attrset.singleton(attr)), redundancy)

        def _partial_snapshot() -> Tuple[FDSet, FDSet]:
            sound = normalize_singleton_cover(
                FD(lhs, rhs) for lhs, rhs in confirmed if rhs
            )
            unverified = FDSet(
                fd
                for fd in normalize_singleton_cover(tree.iter_fds())
                if fd not in sound
            )
            return sound, unverified

        if isinstance(deadline, RunContext):
            deadline.stats = stats
            if tracker is None:
                deadline.set_partial_provider(_partial_snapshot)
            else:
                # Best-k-so-far: every measured FD is exactly validated,
                # so the snapshot is a sound (if possibly incomplete)
                # top-k prefix.
                deadline.set_partial_provider(lambda: (tracker.cover(), FDSet()))
            sentinel = deadline.install_memory_sentinel(ddm.memory_bytes)
            if sentinel is not None:
                sentinel.add_stage(
                    "evict_refined_partitions", ddm.shed_dynamic
                )
                sentinel.add_stage(
                    "disable_refinement", degraded.disable_refinement
                )
                sentinel.add_stage(
                    "shrink_worker_pool",
                    (lambda: executor.disable()) if executor is not None else (lambda: 0),
                )
                # Last resort before aborting: give back the host-wide
                # arena's unpinned datasets (this run's own lease stays
                # pinned, so its shared view survives the shed).
                sentinel.add_stage("evict_arena_datasets", _shed_arena)

        # --- checkpoint/resume: a journal snapshot replaces sampling +
        # root validation with the rebuilt tree and validated-level
        # watermark (full discovery only — top-k runs re-search).
        resume = self._resume_state(relation) if tracker is None else None
        restored = (
            _rebuild_from_checkpoint(resume, n_cols) if resume is not None else None
        )

        def _emit_level_checkpoint() -> None:
            if tracker is not None:
                return
            self.emit_checkpoint(
                lambda: _checkpoint_payload(
                    relation, tree, confirmed, applied,
                    validation_level, validated_fds,
                )
            )

        if restored is not None:
            tree, resumed_confirmed, applied, validation_level, validated_fds = restored
            confirmed.extend(resumed_confirmed)
            controlled_level = 1
            stats.resumed_levels = validation_level
            tracer.event(
                "checkpoint_resume",
                level=validation_level,
                fds=tree.fd_count,
                confirmed=len(confirmed),
            )
        else:
            # --- one-shot sampling plus root validation (Alg. 6 lines 5-6)
            violations: Set[AttrSet] = set()
            if self.enable_initial_sampling:
                with tracer.span("sampling") as span:
                    violations |= initial_sample(
                        relation, ddm.singletons, backend=self.backend,
                        executor=executor,
                    )
                    span.annotate(non_fds=len(violations))
            stats.sampled_non_fds = len(violations)
            with tracer.span("validation", level=0) as span:
                root_check = validate_fd(
                    relation, attrset.EMPTY, all_attrs, ddm.universal,
                    backend=self.backend,
                )
                span.annotate(comparisons=root_check.comparisons)
            stats.comparisons += root_check.comparisons
            stats.validations += 1
            violations |= root_check.non_fd_lhs
            applied = set()
            with tracer.span("induction", level=0, non_fds=len(violations)):
                self._induct_all(tree, violations, applied, 0, 0, None, stats, deadline)
            # Root candidates were exactly validated against ddm.universal:
            # whatever RHS survives induction is sound.
            for node in tree.nodes_at_level(0):
                if not node.deleted and node.rhs:
                    confirmed.append((node.path(), node.rhs))
                    if tracker is not None:
                        _measure(node.path(), node.rhs)

            controlled_level = 1
            validation_level = 1
            validated_fds = 0
        candidates = tree.nodes_at_level(validation_level)
        if candidates:
            _emit_level_checkpoint()

        while candidates:
            deadline.check()
            # Only nodes the loop actually validates count toward the
            # level's candidate total: deleted and empty-RHS nodes do no
            # work, and counting them skews the efficiency–inefficiency
            # ratio toward refreshing too early.
            todo = [node for node in candidates if not node.deleted and node.rhs]
            # Top-k pruning: skip validating a node when its redundancy
            # bound is strictly below the running k-th redundancy —
            # neither it nor any specialization (superset LHS, hence
            # no-larger redundancy) can enter the top-k.  Pruned nodes
            # stay in the tree so the minimality invariants (generaliza-
            # tion checks during induction) keep working; they are only
            # excluded from validation and confirmation.
            pruned_ids: Set[int] = set()
            if tracker is not None and tracker.full:
                kept: List[ExtFDNode] = []
                for node in todo:
                    if tracker.can_prune(_cheap_bound(node.path())):
                        pruned_ids.add(id(node))
                        tracker.pruned_candidates += 1
                    else:
                        kept.append(node)
                todo = kept
            total = sum(attrset.count(node.rhs) for node in todo)
            vl_nodes: List[ExtFDNode] = list(candidates)

            with tracer.span(
                "validation", level=validation_level, candidates=total
            ) as span:
                violations, level_comparisons = self._validate_level(
                    relation, todo, ddm, executor, deadline
                )
                stats.validations += len(todo)
                stats.comparisons += level_comparisons
                span.annotate(
                    comparisons=level_comparisons, non_fds=len(violations)
                )

            with tracer.span(
                "induction", level=validation_level, non_fds=len(violations)
            ):
                self._induct_all(
                    tree,
                    violations,
                    applied,
                    controlled_level,
                    validation_level,
                    vl_nodes,
                    stats,
                    deadline,
                )

            live = [
                node
                for node in candidates
                if not node.deleted and id(node) not in pruned_ids
            ]
            # Every live (path, rhs) at this level was exactly validated
            # (violations already inducted away) — snapshot for anytime
            # partial results before any limit can trip below.
            for node in live:
                if node.rhs:
                    confirmed.append((node.path(), node.rhs))
                    if tracker is not None:
                        _measure(node.path(), node.rhs)
            reusables = [node for node in live if node.children]
            valid_here = sum(attrset.count(node.rhs) for node in live)
            validated_fds += valid_here
            decision = LevelDecision(
                level=validation_level,
                total_candidates=total,
                valid_fds=valid_here,
                reusable_nodes=len(reusables),
                fds_above=tree.fd_count - validated_fds,
            )
            stats.level_log.append(
                {
                    "level": validation_level,
                    "candidates": total,
                    "valid": valid_here,
                    "efficiency": decision.efficiency,
                    "inefficiency": decision.inefficiency,
                    "ratio": min(decision.ratio, 1e9),
                }
            )
            refresh = (
                self.enable_ddm_updates
                and not degraded.no_refine
                and decision.should_update(self.ratio_threshold)
            )
            tracer.event(
                "ratio_decision",
                level=validation_level,
                candidates=total,
                valid=valid_here,
                efficiency=decision.efficiency,
                inefficiency=decision.inefficiency,
                ratio=min(decision.ratio, 1e9),
                refresh=refresh,
            )
            if refresh:
                with tracer.span(
                    "refinement", level=validation_level, nodes=len(reusables)
                ) as span:
                    try:
                        ddm.update(reusables)
                    except MemoryError:
                        # Refinement is a pure optimization: shed the
                        # (possibly half-built) dynamic array — stale
                        # ids degrade to singleton fallbacks — and stop
                        # spending memory for the rest of the run.
                        freed = ddm.shed_dynamic()
                        degraded.disable_refinement()
                        span.annotate(failed=True, freed=freed)
                        tracer.event(
                            "degradation",
                            stage="refinement_failed",
                            resource="memory",
                            usage=ddm.memory_bytes(),
                            limit=0,
                            freed=freed,
                        )
                    else:
                        controlled_level = validation_level
                        stats.partition_refreshes += 1
                        span.annotate(memory_bytes=ddm.dynamic_memory_bytes())
            stats.partition_memory_peak_bytes = max(
                stats.partition_memory_peak_bytes, ddm.memory_bytes()
            )
            stats.levels_processed += 1
            validation_level += 1
            candidates = tree.nodes_at_level(validation_level)
            # Level boundary: everything below the new watermark is
            # exactly validated, so this is a sound resume point.
            if candidates:
                _emit_level_checkpoint()
            # Early termination: once the tracker is full, stop as soon
            # as no still-unvalidated FD node (depth >= the next
            # validation level) can reach the running k-th redundancy.
            # Shallower nodes were already validated and measured.
            if (
                tracker is not None
                and tracker.full
                and candidates
                and not any(
                    node.depth >= validation_level
                    and not node.deleted
                    and node.rhs
                    and not tracker.can_prune(_cheap_bound(node.path()))
                    for node in tree.iter_fd_nodes()
                )
            ):
                tracker.pruned_candidates += sum(
                    1
                    for node in tree.iter_fd_nodes()
                    if node.depth >= validation_level
                    and not node.deleted
                    and node.rhs
                )
                break

        stats.record_cache(ddm)
        tracer.event(
            "partition_cache",
            scope="ddm",
            hits=ddm.hits,
            misses=ddm.misses,
            singleton_lookups=ddm.singleton_lookups,
            stale_fallbacks=ddm.stale_fallbacks,
            evictions=ddm.evictions,
            entries=len(ddm.dynamic) + len(ddm.singletons) + 1,
            memory_bytes=ddm.memory_bytes(),
        )
        cache_counters = tracer.metrics
        cache_counters.counter("partition_cache.hits").inc(ddm.hits)
        cache_counters.counter("partition_cache.misses").inc(ddm.misses)
        cache_counters.counter("partition_cache.evictions").inc(ddm.evictions)
        cache_counters.gauge("partition_cache.memory_bytes").set_max(
            stats.partition_memory_peak_bytes
        )
        if tracker is not None:
            return tracker.cover(), stats
        return normalize_singleton_cover(tree.iter_fds()), stats

    def _validate_level(
        self,
        relation: Relation,
        todo: List[ExtFDNode],
        ddm: DynamicDataManager,
        executor: Optional[ParallelExecutor],
        deadline: Deadline,
    ) -> Tuple[Set[AttrSet], int]:
        """Validate one level's candidates; returns (non-FDs, comparisons).

        Partitions are resolved through the DDM up front (so its cache
        counters are identical on every path), then validated either
        across the pool or serially.  A broken pool falls back to the
        serial loop over the *same* resolved items — results and stats
        never depend on which path ran.
        """
        items = [
            (node.path(), node.rhs, ddm.partition_for_node(node)) for node in todo
        ]
        min_items = (
            parallel_config.DEFAULT_MIN_PARALLEL_ITEMS
            if self.parallel_min_candidates is None
            else self.parallel_min_candidates
        )
        if executor is not None and executor.active and len(items) >= min_items:
            try:
                outcomes = parallel_validate_level(executor, items)
                deadline.check()
                return merge_validation_outcomes(outcomes)
            except PoolBrokenError:
                pass  # rerun the already-resolved items serially
        outcomes_serial: List[ValidationResult] = []
        for lhs, rhs, partition in items:
            outcomes_serial.append(
                validate_fd(relation, lhs, rhs, partition, backend=self.backend)
            )
            deadline.check()
        return merge_validation_outcomes(outcomes_serial)

    @staticmethod
    def _induct_all(
        tree: ExtendedFDTree,
        violations: Set[AttrSet],
        applied: Set[AttrSet],
        cl: int,
        vl: int,
        vl_nodes: Optional[List[ExtFDNode]],
        stats: DiscoveryStats,
        deadline: Deadline,
    ) -> None:
        """Sort non-FDs by descending LHS size and induct the fresh ones."""
        fresh = [lhs for lhs in violations if lhs not in applied]
        fresh.sort(key=lambda lhs: (-attrset.count(lhs), lhs))
        for count, lhs in enumerate(fresh):
            if count % 64 == 0:
                deadline.check()
            applied.add(lhs)
            rhs = attrset.complement(lhs, tree.n_cols)
            synergized_induct(tree, lhs, rhs, cl, vl, vl_nodes, tally=stats)
            stats.induction_calls += 1
