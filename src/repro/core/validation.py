"""FD validation against (possibly coarser) stripped partitions.

Implements the paper's Algorithm 4.  The candidate FD ``X → Y`` is
checked using a partition ``π_X'`` with ``X' ⊆ X``: each source cluster
is refined to X-granularity *one cluster at a time* (so the refinement
work is abandoned as soon as every RHS attribute is invalidated), and
within each refined cluster every row is compared against the cluster's
first row.  Violating pairs contribute their full agree set ``Z`` as
the non-FD ``Z ↛ R − Z`` — strictly more general evidence than the
single invalid FD, which is exactly what synergized induction wants.
"""

from __future__ import annotations

from typing import List, Optional, Set

import numpy as np

from ..partitions import kernels
from ..partitions.stripped import Cluster, StrippedPartition
from ..relational import attrset
from ..relational.attrset import AttrSet
from ..relational.relation import Relation


class ValidationResult:
    """Outcome of validating one candidate FD."""

    __slots__ = ("valid_rhs", "non_fd_lhs", "comparisons")

    def __init__(self, valid_rhs: AttrSet, non_fd_lhs: Set[AttrSet], comparisons: int):
        #: RHS attributes that survived (the FD lhs -> valid_rhs holds).
        self.valid_rhs = valid_rhs
        #: Agree sets Z of violating pairs; each means Z ↛ R − Z.
        self.non_fd_lhs = non_fd_lhs
        #: Number of row comparisons performed (work accounting).
        self.comparisons = comparisons


def validate_fd(
    relation: Relation,
    lhs: AttrSet,
    rhs: AttrSet,
    partition: StrippedPartition,
    backend: Optional[str] = None,
) -> ValidationResult:
    """Validate ``lhs -> rhs`` using ``partition`` = π_X' with X' ⊆ lhs.

    Returns the surviving RHS attributes and the agree-set non-FDs of
    every violating pair encountered before the early exit.  ``backend``
    selects the kernel backend for the per-cluster refinement step.
    """
    if not attrset.is_subset(partition.attrs, lhs):
        raise ValueError(
            "validation partition must refine a subset of the FD's LHS"
        )
    matrix = relation.matrix()
    n_cols = relation.n_cols
    missing = attrset.to_list(attrset.difference(lhs, partition.attrs))
    missing_codes = [relation.codes(attr) for attr in missing]

    valid_rhs = rhs
    non_fds: Set[AttrSet] = set()
    comparisons = 0
    # Rows are compared against their cluster's pivot in vectorized
    # chunks: small enough that an early invalidation skips most of a
    # large cluster, large enough that numpy does the heavy lifting.
    chunk_size = 64

    for source_cluster in partition.clusters:
        if missing_codes:
            clusters: List[Cluster] = kernels.refine_clusters(
                missing_codes, [source_cluster], backend=backend
            )
        else:
            clusters = [source_cluster]
        for cluster in clusters:
            pivot = matrix[cluster[0]]
            for start in range(1, len(cluster), chunk_size):
                rows = cluster[start:start + chunk_size]
                comparisons += len(rows)
                diff = matrix[rows] != pivot  # (chunk, n_cols) bool
                for attr in attrset.iter_attrs(valid_rhs):
                    column = diff[:, attr]
                    if not column.any():
                        continue
                    witness = int(np.argmax(column))
                    disagree = attrset.EMPTY
                    for col in np.nonzero(diff[witness])[0]:
                        disagree = attrset.add(disagree, int(col))
                    valid_rhs = attrset.difference(valid_rhs, disagree)
                    non_fds.add(attrset.complement(disagree, n_cols))
                    if not valid_rhs:
                        return ValidationResult(valid_rhs, non_fds, comparisons)
    return ValidationResult(valid_rhs, non_fds, comparisons)


def check_fd(
    relation: Relation, lhs: AttrSet, rhs: AttrSet, backend: Optional[str] = None
) -> bool:
    """Ground-truth check that ``lhs -> rhs`` holds, from scratch.

    Builds ``π_lhs`` directly; used by tests and the brute-force oracle
    rather than the discovery loop.
    """
    partition = StrippedPartition.for_attrs(relation, lhs, backend=backend)
    for attr in attrset.iter_attrs(rhs):
        if not partition.refines_attribute(relation, attr, backend=backend):
            return False
    return True
