"""Common driver for FD-discovery algorithms: timing, limits, budgets.

Every algorithm (DHyFD and the baselines in :mod:`repro.algorithms`)
subclasses :class:`DiscoveryAlgorithm` and implements ``_find_fds``.
The base class measures wall-clock time and converts the configured
limits into a :class:`RunContext` the subclass polls — reproducing the
paper's "TL" (time limit) entries in Table II, and adding the
resilience layer's memory budget and anytime-partial semantics (see
:mod:`repro.resilience` and ``docs/resilience.md``).

``on_limit`` selects what a tripped limit does: ``"raise"`` (default)
propagates :class:`TimeLimitExceeded` /
:class:`~repro.resilience.BudgetExceeded`; ``"partial"`` returns a
:class:`~repro.core.result.DiscoveryResult` with ``completed=False``,
the *sound* subset of the cover (FDs fully validated against the
relation before the limit hit) and the still-``unverified`` candidates.
"""

from __future__ import annotations

import abc
import os
import time
from dataclasses import replace
from typing import Callable, Dict, Optional, Tuple

from ..relational.fd import FDSet
from ..relational.relation import Relation
from ..resilience import BudgetExceeded, MemorySentinel, RunBudget
from ..resilience import faults
from ..telemetry import current_tracer
from .result import DiscoveryResult, DiscoveryStats

#: Valid ``on_limit`` policies.
ON_LIMIT_POLICIES = ("raise", "partial")

#: Format tag / version of discovery checkpoint payloads (the snapshots
#: the service's job journal persists — see ``docs/durability.md``).
CHECKPOINT_FORMAT = "repro-fd-checkpoint"
CHECKPOINT_VERSION = 1

#: Default seconds between checkpoint emissions; override per-algorithm
#: via ``checkpoint_interval`` or globally via the environment.  Zero
#: means "every opportunity" (tests and chaos drills).
DEFAULT_CHECKPOINT_INTERVAL = 5.0
ENV_CHECKPOINT_INTERVAL = "REPRO_FD_CHECKPOINT_INTERVAL"


def default_checkpoint_interval() -> float:
    """The environment-configured checkpoint cadence (seconds)."""
    raw = os.environ.get(ENV_CHECKPOINT_INTERVAL)
    if raw is None:
        return DEFAULT_CHECKPOINT_INTERVAL
    try:
        return max(0.0, float(raw))
    except ValueError:
        return DEFAULT_CHECKPOINT_INTERVAL


class TimeLimitExceeded(Exception):
    """Raised inside a discovery run when the configured limit passes."""

    def __init__(self, algorithm: str, limit_seconds: float):
        super().__init__(f"{algorithm} exceeded its time limit of {limit_seconds}s")
        self.algorithm = algorithm
        self.limit_seconds = limit_seconds


class Deadline:
    """A poll-style deadline; cheap enough to check in inner loops."""

    __slots__ = ("at", "algorithm", "limit_seconds")

    def __init__(self, limit_seconds: Optional[float], algorithm: str):
        self.limit_seconds = limit_seconds
        self.algorithm = algorithm
        # Zero and negative limits clamp to "already expired": the first
        # check trips instead of the limit silently never firing.
        self.at = (
            None
            if limit_seconds is None
            else time.monotonic() + max(0.0, limit_seconds)
        )

    def check(self) -> None:
        """Raise :class:`TimeLimitExceeded` once the deadline has passed."""
        if self.at is not None and time.monotonic() >= self.at:
            raise TimeLimitExceeded(self.algorithm, self.limit_seconds or 0.0)


class RunContext:
    """Per-run limit state: deadline, memory sentinel, anytime channel.

    Quacks like :class:`Deadline` — algorithm inner loops poll one
    ``check()`` that covers the wall clock, the memory budget and the
    deterministic ``limit.deadline`` fault point.  Algorithms that can
    degrade install a sentinel (with their degradation ladder) and a
    *partial provider* returning the sound/unverified split used when
    ``on_limit="partial"`` turns a tripped limit into a partial result.
    """

    __slots__ = ("algorithm", "budget", "deadline", "sentinel", "stats", "_partial")

    def __init__(self, algorithm: str, budget: RunBudget):
        self.algorithm = algorithm
        self.budget = budget
        self.deadline = Deadline(budget.time_limit, algorithm)
        self.sentinel: Optional[MemorySentinel] = None
        #: Stats object attached by the running algorithm so partial
        #: results keep the work counters accumulated before the limit.
        self.stats: Optional[DiscoveryStats] = None
        self._partial: Optional[Callable[[], Tuple[FDSet, FDSet]]] = None

    def check(self) -> None:
        """Poll every limit; raises on the first one exceeded."""
        if faults.armed() and faults.should_fire("limit.deadline"):
            raise TimeLimitExceeded(
                self.algorithm, self.budget.time_limit or 0.0
            )
        self.deadline.check()
        if self.sentinel is not None:
            self.sentinel.check()

    def install_memory_sentinel(
        self, probe: Callable[[], int], floor_bytes: Optional[int] = None
    ) -> Optional[MemorySentinel]:
        """Install a sentinel when the budget limits memory (else None).

        ``floor_bytes`` defaults to the probe's value at install time —
        the irreducible baseline the sentinel tolerates after its
        degradation ladder is exhausted.
        """
        if not self.budget.limits_memory:
            return None
        self.sentinel = MemorySentinel(
            self.budget,
            probe,
            self.algorithm,
            floor_bytes=probe() if floor_bytes is None else floor_bytes,
        )
        return self.sentinel

    def set_partial_provider(
        self, provider: Callable[[], Tuple[FDSet, FDSet]]
    ) -> None:
        """Register the (sound cover, unverified FDs) snapshot function."""
        self._partial = provider

    def partial_cover(self) -> Tuple[FDSet, FDSet]:
        """The anytime snapshot; empty covers when nothing was recorded."""
        if self._partial is None:
            return FDSet(), FDSet()
        return self._partial()


def _limit_reason(exc: BaseException) -> str:
    if isinstance(exc, TimeLimitExceeded):
        return "time"
    if isinstance(exc, BudgetExceeded):
        return exc.resource
    return "memory"  # a raw MemoryError that escaped the degradation ladder


class DiscoveryAlgorithm(abc.ABC):
    """Base class: subclasses find a left-reduced, singleton-RHS cover."""

    #: Short identifier used in reports ("tane", "hyfd", "dhyfd", ...).
    name: str = "abstract"

    def __init__(
        self,
        time_limit: Optional[float] = None,
        budget: Optional[RunBudget] = None,
        on_limit: str = "raise",
    ):
        if on_limit not in ON_LIMIT_POLICIES:
            raise ValueError(
                f"on_limit must be one of {ON_LIMIT_POLICIES}, got {on_limit!r}"
            )
        self.time_limit = time_limit
        self.budget = budget
        self.on_limit = on_limit
        #: Callable fed each checkpoint payload (the service wires the
        #: job journal here); None disables checkpoint emission.
        self.checkpoint_sink: Optional[Callable[[Dict[str, object]], None]] = None
        #: Minimum seconds between emissions (0 = every opportunity).
        self.checkpoint_interval: float = default_checkpoint_interval()
        #: A checkpoint payload to resume from instead of starting cold
        #: (validated against the relation in :meth:`_resume_state`).
        self.resume_from: Optional[Dict[str, object]] = None
        self._last_checkpoint_at: Optional[float] = None

    def _run_budget(self) -> RunBudget:
        """The effective budget: explicit > environment defaults."""
        if self.budget is not None:
            if self.budget.time_limit is None and self.time_limit is not None:
                return replace(self.budget, time_limit=self.time_limit)
            return self.budget
        return RunBudget.from_env(time_limit=self.time_limit)

    def discover(self, relation: Relation) -> DiscoveryResult:
        """Run discovery and return the timed result.

        With ``on_limit="raise"`` a tripped limit propagates
        :class:`TimeLimitExceeded` or
        :class:`~repro.resilience.BudgetExceeded` (callers that want
        "TL" table entries catch them).  With ``on_limit="partial"``
        the result instead reports ``completed=False``, the sound
        subset of the cover, and the ``unverified`` remainder.
        """
        return self._run(relation, top_k=None)

    def discover_top_k(self, relation: Relation, k: int) -> DiscoveryResult:
        """Discover only the k FDs of highest null-inclusive redundancy.

        The result's ``fds`` are byte-identical to the first k entries
        of ranking the full cover with
        :func:`~repro.ranking.ranker.rank_cover` (same
        ``(-redundancy, lhs, rhs)`` tie-break), but algorithms with a
        rank-aware search (DHyFD, TANE) prune candidate LHSs whose
        redundancy upper bound cannot reach the running k-th redundancy
        and terminate early — ``stats.pruned_candidates`` counts the
        skipped candidates and ``result.top_k`` records k.  The default
        implementation falls back to a full search followed by a
        bounded ranking pass.

        A partial result (``on_limit="partial"`` with a tripped limit)
        degrades to the sound anytime snapshot, which for top-k runs is
        the best-k-so-far of the FDs measured before the limit hit.
        """
        if k < 1:
            raise ValueError(f"top_k must be >= 1, got {k}")
        return self._run(relation, top_k=k)

    def emit_checkpoint(
        self, build: Callable[[], Dict[str, object]], force: bool = False
    ) -> bool:
        """Send a checkpoint to the sink if the cadence allows it.

        ``build`` is only called when a checkpoint is actually due, so
        algorithms can pass a closure over live state without paying
        serialization on every poll.  Sink failures are swallowed — a
        checkpoint is an aid, never a reason to fail the run.
        """
        sink = self.checkpoint_sink
        if sink is None:
            return False
        now = time.monotonic()
        if (
            not force
            and self._last_checkpoint_at is not None
            and now - self._last_checkpoint_at < self.checkpoint_interval
        ):
            return False
        self._last_checkpoint_at = now
        try:
            sink(build())
        except Exception:  # noqa: BLE001 — never fail the run for a sink
            return False
        return True

    def _resume_state(self, relation: Relation) -> Optional[Dict[str, object]]:
        """The validated resume payload for this run, or None.

        A stale or foreign checkpoint (wrong format/version, different
        algorithm, column count or null semantics) is rejected — the
        run silently starts cold, which is always sound.
        """
        state = self.resume_from
        if not isinstance(state, dict):
            return None
        if (
            state.get("format") != CHECKPOINT_FORMAT
            or state.get("version") != CHECKPOINT_VERSION
            or state.get("algorithm") != self.name
            or state.get("n_cols") != relation.n_cols
            or state.get("semantics") != relation.semantics.value
        ):
            current_tracer().event(
                "checkpoint_rejected", algorithm=self.name
            )
            return None
        return state

    def _run(self, relation: Relation, top_k: Optional[int]) -> DiscoveryResult:
        context = RunContext(self.name, self._run_budget())
        self._last_checkpoint_at = None
        tracer = current_tracer()
        start = time.perf_counter()
        completed = True
        unverified = FDSet()
        limit_reason: Optional[str] = None
        annotations = {} if top_k is None else {"top_k": top_k}
        with tracer.span(
            "discovery",
            algorithm=self.name,
            rows=relation.n_rows,
            cols=relation.n_cols,
            **annotations,
        ):
            try:
                if top_k is None:
                    fds, stats = self._find_fds(relation, context)
                else:
                    fds, stats = self._find_top_k(relation, top_k, context)
            except (TimeLimitExceeded, BudgetExceeded, MemoryError) as exc:
                if self.on_limit != "partial":
                    raise
                fds, unverified = context.partial_cover()
                stats = context.stats if context.stats is not None else DiscoveryStats()
                completed = False
                limit_reason = _limit_reason(exc)
                tracer.event(
                    "partial_result",
                    algorithm=self.name,
                    reason=limit_reason,
                    sound_fds=len(fds),
                    unverified=len(unverified),
                )
        elapsed = time.perf_counter() - start
        return DiscoveryResult(
            algorithm=self.name,
            schema=relation.schema,
            fds=fds,
            elapsed_seconds=elapsed,
            stats=stats,
            completed=completed,
            unverified=unverified,
            limit_reason=limit_reason,
            top_k=top_k,
        )

    @abc.abstractmethod
    def _find_fds(
        self, relation: Relation, deadline: "RunContext"
    ) -> Tuple[FDSet, DiscoveryStats]:
        """Compute the cover; poll ``deadline.check()`` in long loops.

        ``deadline`` is a :class:`RunContext` when invoked through
        :meth:`discover`; tests may pass a bare :class:`Deadline`, so
        subclasses must treat context-only features as optional.
        """

    def _find_top_k(
        self, relation: Relation, k: int, deadline: "RunContext"
    ) -> Tuple[FDSet, DiscoveryStats]:
        """Compute the top-k cover; override for a rank-aware search.

        The generic fallback runs the full search and then a bounded
        ranking pass; the FDs whose exact redundancy the bounded pass
        never had to measure count as ``pruned_candidates``.  DHyFD and
        TANE override this with in-search pruning.
        """
        from ..ranking.ranker import rank_cover

        fds, stats = self._find_fds(relation, deadline)
        ranking = rank_cover(relation, fds, deadline=deadline, top_k=k)
        stats.pruned_candidates += ranking.bound_skipped
        return FDSet(ranked.fd for ranked in ranking.ranked), stats

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"
