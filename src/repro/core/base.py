"""Common driver for FD-discovery algorithms: timing, time limits.

Every algorithm (DHyFD and the baselines in :mod:`repro.algorithms`)
subclasses :class:`DiscoveryAlgorithm` and implements ``_find_fds``.
The base class measures wall-clock time and converts a configured time
limit into a deadline the subclass polls — reproducing the paper's
"TL" (time limit) entries in Table II.
"""

from __future__ import annotations

import abc
import time
from typing import Optional, Tuple

from ..relational.fd import FDSet
from ..relational.relation import Relation
from ..telemetry import current_tracer
from .result import DiscoveryResult, DiscoveryStats


class TimeLimitExceeded(Exception):
    """Raised inside a discovery run when the configured limit passes."""

    def __init__(self, algorithm: str, limit_seconds: float):
        super().__init__(f"{algorithm} exceeded its time limit of {limit_seconds}s")
        self.algorithm = algorithm
        self.limit_seconds = limit_seconds


class Deadline:
    """A poll-style deadline; cheap enough to check in inner loops."""

    __slots__ = ("at", "algorithm", "limit_seconds")

    def __init__(self, limit_seconds: Optional[float], algorithm: str):
        self.limit_seconds = limit_seconds
        self.algorithm = algorithm
        self.at = None if limit_seconds is None else time.monotonic() + limit_seconds

    def check(self) -> None:
        """Raise :class:`TimeLimitExceeded` once the deadline has passed."""
        if self.at is not None and time.monotonic() > self.at:
            raise TimeLimitExceeded(self.algorithm, self.limit_seconds or 0.0)


class DiscoveryAlgorithm(abc.ABC):
    """Base class: subclasses find a left-reduced, singleton-RHS cover."""

    #: Short identifier used in reports ("tane", "hyfd", "dhyfd", ...).
    name: str = "abstract"

    def __init__(self, time_limit: Optional[float] = None):
        self.time_limit = time_limit

    def discover(self, relation: Relation) -> DiscoveryResult:
        """Run discovery and return the timed result.

        Raises :class:`TimeLimitExceeded` when a time limit was set and
        hit; callers that want "TL" table entries catch it.
        """
        deadline = Deadline(self.time_limit, self.name)
        start = time.perf_counter()
        with current_tracer().span(
            "discovery",
            algorithm=self.name,
            rows=relation.n_rows,
            cols=relation.n_cols,
        ):
            fds, stats = self._find_fds(relation, deadline)
        elapsed = time.perf_counter() - start
        return DiscoveryResult(
            algorithm=self.name,
            schema=relation.schema,
            fds=fds,
            elapsed_seconds=elapsed,
            stats=stats,
        )

    @abc.abstractmethod
    def _find_fds(
        self, relation: Relation, deadline: Deadline
    ) -> Tuple[FDSet, DiscoveryStats]:
        """Compute the cover; poll ``deadline.check()`` in long loops."""

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"
