"""The efficiency–inefficiency ratio (paper §IV-G).

At each validation level DHyFD must decide whether refining the DDM's
stripped partitions to the current level is worth the memory:

* *efficiency* — the fraction of this level's candidate FDs that
  survived validation.  High efficiency means deeper levels likely hold
  more valid FDs, and only valid FDs need full partition scans, so
  finer partitions will pay off.
* *inefficiency* — the fraction ``reusable nodes / FDs above this
  level``.  A node is reusable iff it is not a leaf; if most FDs above
  live under non-reusable (leaf) paths they cannot share refined
  partitions, so refining would waste memory.

Partitions are refreshed when ``efficiency / inefficiency`` exceeds a
threshold; the paper tunes the threshold to 3.0 (Figure 6).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

#: The paper's tuned default (Figure 6: best overall at ratio ≈ 3).
DEFAULT_RATIO_THRESHOLD = 3.0


@dataclass(frozen=True)
class LevelDecision:
    """The ratio computation for one validation level."""

    level: int
    total_candidates: int
    valid_fds: int
    reusable_nodes: int
    fds_above: int

    @property
    def efficiency(self) -> float:
        """Valid FDs over all candidate FDs at this level."""
        if self.total_candidates == 0:
            return 0.0
        return self.valid_fds / self.total_candidates

    @property
    def inefficiency(self) -> float:
        """Reusable nodes over FDs residing above this level.

        Zero FDs above with reusable nodes present is *maximal*
        inefficiency: partitions refined for those nodes could never be
        consulted by a later validation, so the waste is unbounded.
        """
        if self.fds_above <= 0:
            return math.inf if self.reusable_nodes > 0 else 0.0
        return self.reusable_nodes / self.fds_above

    @property
    def ratio(self) -> float:
        """efficiency / inefficiency; zero when no FDs live above.

        With ``fds_above == 0`` a refresh cannot pay off regardless of
        efficiency (there is nothing left to validate with the refined
        partitions), so the ratio is pinned to 0.0 and
        :meth:`should_update` never fires.
        """
        if self.fds_above <= 0:
            return 0.0
        ineff = self.inefficiency
        if ineff == 0.0:
            return math.inf if self.efficiency > 0.0 else 0.0
        return self.efficiency / ineff

    def should_update(self, threshold: float = DEFAULT_RATIO_THRESHOLD) -> bool:
        """Refresh partitions? (Algorithm 6 line 26; never at level 1.)"""
        if self.level <= 1:
            return False
        if self.reusable_nodes == 0:
            return False
        return self.ratio > threshold
