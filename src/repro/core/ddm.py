"""The dynamic data manager (DDM, paper §IV-E, Algorithm 3).

The DDM owns two kinds of stripped partitions:

* the pre-computed singleton partitions ``π_A`` for every attribute, and
* a *dynamic array* of partitions, one per reusable node of the
  extended FD-tree at the current controlled level ``cl``.

Extended FD-tree node ids index into these: ``id < n_cols`` denotes
``π_id`` (a singleton), ``id >= n_cols`` denotes ``dynamic[id - n_cols]``.
When DHyFD decides (via the efficiency–inefficiency ratio) that deeper
partitions will pay off, :meth:`DynamicDataManager.update` refines each
reusable node's current partition up to the node's full path, replaces
the dynamic array, and rewrites node ids — copying each new id to the
node's descendants so property (8) of extended FD-trees keeps holding.

Lookup accounting distinguishes three outcomes: a *hit* resolves a
dynamic id to its refined partition; a *singleton lookup* resolves an
id below ``n_cols``, which denotes a singleton partition by design; a
*stale fallback* is the only real cache failure — a dynamic id whose
partition no longer matches the node's path (or is out of range), so
the lookup degrades to the cheapest singleton.  Internal resolutions
made by :meth:`update` while refining are not counted at all.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from ..fdtree.extended import ExtFDNode
from ..partitions.stripped import StrippedPartition
from ..relational import attrset
from ..relational.attrset import AttrSet
from ..relational.relation import Relation
from ..resilience import faults


class DynamicDataManager:
    """Manages singleton and dynamically refined stripped partitions."""

    def __init__(self, relation: Relation, backend: Optional[str] = None):
        self.relation = relation
        self.backend = backend
        self.n_cols = relation.n_cols
        self.universal = StrippedPartition.universal(relation)
        self.singletons: List[StrippedPartition] = [
            StrippedPartition.for_attribute(relation, attr, backend=backend)
            for attr in range(relation.n_cols)
        ]
        self.dynamic: List[StrippedPartition] = []
        #: Number of Algorithm 3 runs (refinement rounds).
        self.update_count = 0
        #: Dynamic ids resolved to their refined partition.
        self.hits = 0
        #: Ids below ``n_cols`` resolved to a singleton — by design,
        #: not a cache failure.
        self.singleton_lookups = 0
        #: Dynamic ids that were stale (inconsistent or out of range)
        #: and fell back to a singleton — the honest miss count.
        self.stale_fallbacks = 0
        #: Dynamic partitions dropped by refinement rounds.
        self.evictions = 0

    @property
    def misses(self) -> int:
        """Real lookup failures: stale fallbacks only.

        Singleton-id resolutions are by-design and tracked separately
        in :attr:`singleton_lookups`.
        """
        return self.stale_fallbacks

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------

    def _resolve(self, node: ExtFDNode) -> Tuple[StrippedPartition, str]:
        """Resolve a node's id without touching the counters.

        Returns the partition plus the resolution kind: ``"dynamic"``,
        ``"singleton"`` (id below ``n_cols``, by design), or
        ``"stale"`` (dynamic id inconsistent with the node's path).
        """
        if node.id >= self.n_cols:
            if faults.armed() and faults.should_fire("ddm.stale"):
                # Chaos hook: pretend the dynamic id went stale so the
                # singleton fallback path gets exercised on demand.
                return self.best_singleton(node.path()), "stale"
            index = node.id - self.n_cols
            if index < len(self.dynamic):
                partition = self.dynamic[index]
                if attrset.is_subset(partition.attrs, node.path()):
                    return partition, "dynamic"
            return self.best_singleton(node.path()), "stale"
        return self.best_singleton(node.path()), "singleton"

    def partition_for_node(self, node: ExtFDNode) -> StrippedPartition:
        """The partition a node's id denotes, with a consistency guard.

        If a dynamic id turns out inconsistent (its partition is not
        over a subset of the node's path — possible for nodes that kept
        a stale inherited id), fall back to the cheapest singleton on
        the path, mirroring the paper's default-id escape hatch.
        """
        partition, kind = self._resolve(node)
        if kind == "dynamic":
            self.hits += 1
        elif kind == "singleton":
            self.singleton_lookups += 1
        else:
            self.stale_fallbacks += 1
        return partition

    def best_singleton(self, path: AttrSet) -> StrippedPartition:
        """The smallest-``||π_A||`` singleton partition with A on the path.

        This is line 16 of Algorithm 6: before a default-id node is
        validated, pick the cheapest starting partition among its own
        LHS attributes (an empty path gets the universal partition).
        """
        best: Optional[StrippedPartition] = None
        for attr in attrset.iter_attrs(path):
            candidate = self.singletons[attr]
            if best is None or candidate.size < best.size:
                best = candidate
        return best if best is not None else self.universal

    # ------------------------------------------------------------------
    # Algorithm 3 — refine the dynamic array to a new controlled level
    # ------------------------------------------------------------------

    def update(self, nodes: Sequence[ExtFDNode]) -> None:
        """Refine partitions for ``nodes`` (the reusable nodes at vl).

        For each node the refinement starts from whatever its current
        id already denotes — a dynamic partition from the previous
        controlled level, or the best singleton — so work done at
        earlier levels is reused, never repeated.  These internal
        resolutions bypass the lookup counters.
        """
        new_array: List[StrippedPartition] = []
        for node in nodes:
            path = node.path()
            base, _ = self._resolve(node)
            partition = base.refine_many(
                self.relation,
                attrset.iter_attrs(attrset.difference(path, base.attrs)),
                backend=self.backend,
            )
            new_array.append(partition)
            new_id = self.n_cols + len(new_array) - 1
            _assign_id_to_subtree(node, new_id)
        self.evictions += len(self.dynamic)
        self.dynamic = new_array
        self.update_count += 1

    # ------------------------------------------------------------------
    # Accounting
    # ------------------------------------------------------------------

    def memory_bytes(self) -> int:
        """Approximate bytes held in singleton plus dynamic partitions."""
        total = self.universal.memory_bytes()
        total += sum(p.memory_bytes() for p in self.singletons)
        total += sum(p.memory_bytes() for p in self.dynamic)
        return total

    def dynamic_memory_bytes(self) -> int:
        """Bytes held by the dynamic array only (DHyFD's extra memory)."""
        return sum(p.memory_bytes() for p in self.dynamic)

    def shed_dynamic(self) -> int:
        """Drop every dynamic partition; returns the bytes freed.

        Degradation hook for the memory sentinel: correctness is
        unaffected because stale dynamic ids resolve to singleton
        fallbacks — only validation speed suffers.
        """
        freed = self.dynamic_memory_bytes()
        self.evictions += len(self.dynamic)
        self.dynamic = []
        return freed


def _assign_id_to_subtree(node: ExtFDNode, node_id: int) -> None:
    """Set ``node_id`` on a node and all descendants (Algorithm 3 l.15)."""
    stack = [node]
    while stack:
        current = stack.pop()
        current.id = node_id
        stack.extend(current.children.values())
