"""DHyFD core: sampling, validation, DDM, ratio decision, driver."""

from .base import Deadline, DiscoveryAlgorithm, TimeLimitExceeded
from .ddm import DynamicDataManager
from .dhyfd import DHyFD
from .ratio import DEFAULT_RATIO_THRESHOLD, LevelDecision
from .result import DiscoveryResult, DiscoveryStats
from .sampling import AgreeSetSampler, all_agree_sets, initial_sample
from .validation import ValidationResult, check_fd, validate_fd

__all__ = [
    "AgreeSetSampler",
    "DEFAULT_RATIO_THRESHOLD",
    "DHyFD",
    "Deadline",
    "DiscoveryAlgorithm",
    "DiscoveryResult",
    "DiscoveryStats",
    "DynamicDataManager",
    "LevelDecision",
    "TimeLimitExceeded",
    "ValidationResult",
    "all_agree_sets",
    "check_fd",
    "initial_sample",
    "validate_fd",
]
