"""Discovery results and run statistics shared by all algorithms."""

from __future__ import annotations

import dataclasses
import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..relational.fd import FD, FDSet
from ..relational.fd_io import cover_from_payload, cover_payload
from ..relational.relation import Relation
from ..relational.schema import RelationSchema

#: Version tag for the :meth:`DiscoveryResult.to_json` document.
RESULT_FORMAT_VERSION = 1


@dataclass
class DiscoveryStats:
    """Work counters a discovery run may fill in (zero when untracked)."""

    validations: int = 0
    comparisons: int = 0
    sampled_non_fds: int = 0
    induction_calls: int = 0
    induction_nodes_visited: int = 0
    induction_fds_inserted: int = 0
    levels_processed: int = 0
    partition_refreshes: int = 0
    partition_memory_peak_bytes: int = 0
    partition_cache_hits: int = 0
    partition_cache_misses: int = 0
    partition_cache_evictions: int = 0
    partition_singleton_lookups: int = 0
    strategy_switches: int = 0
    #: Candidate LHSs skipped by a top-k run because their redundancy
    #: upper bound fell below the running k-th redundancy (zero for
    #: full discovery — see :meth:`DiscoveryAlgorithm.discover_top_k`).
    pruned_candidates: int = 0
    #: Validation levels this run skipped by resuming from a journal
    #: checkpoint instead of starting cold (zero for cold runs — see
    #: ``docs/durability.md``).
    resumed_levels: int = 0
    level_log: List[Dict[str, float]] = field(default_factory=list)

    def record_cache(self, cache) -> None:
        """Copy hit/miss/eviction counts off a partition store.

        Accepts anything with ``hits``/``misses``/``evictions``
        attributes — :class:`~repro.partitions.cache.PartitionCache` or
        the DHyFD :class:`~repro.core.ddm.DynamicDataManager` (whose
        by-design ``singleton_lookups`` are kept apart from misses).
        """
        self.partition_cache_hits = cache.hits
        self.partition_cache_misses = cache.misses
        self.partition_cache_evictions = cache.evictions
        self.partition_singleton_lookups = getattr(
            cache, "singleton_lookups", 0
        )


@dataclass
class DiscoveryResult:
    """The left-reduced cover found for a relation, plus provenance.

    ``fds`` holds singleton-RHS FDs (the output form of the surveyed
    algorithms); use :mod:`repro.covers` to derive canonical covers.

    When a run was cut short by a limit under ``on_limit="partial"``,
    ``completed`` is False, ``fds`` holds only the *sound* subset (FDs
    fully validated against the relation before the limit tripped),
    ``unverified`` the candidates the run never got to confirm, and
    ``limit_reason`` names the tripped resource (``"time"``,
    ``"memory"`` or ``"rss"``).

    ``top_k`` is None for full covers.  When set (the result came from
    :meth:`~repro.core.base.DiscoveryAlgorithm.discover_top_k`), ``fds``
    holds only the k FDs of highest null-inclusive redundancy — byte
    identical to the first k of the full ranked cover — and the result
    must never be treated as (or cached as) a full cover.
    """

    algorithm: str
    schema: RelationSchema
    fds: FDSet
    elapsed_seconds: float = 0.0
    peak_memory_bytes: int = 0
    stats: DiscoveryStats = field(default_factory=DiscoveryStats)
    completed: bool = True
    unverified: FDSet = field(default_factory=FDSet)
    limit_reason: Optional[str] = None
    top_k: Optional[int] = None

    @property
    def fd_count(self) -> int:
        """Number of FDs in the left-reduced cover (|L-r| in Table III)."""
        return len(self.fds)

    @property
    def attribute_occurrences(self) -> int:
        """Total attribute occurrences (||L-r|| in Table III)."""
        return self.fds.attribute_occurrences

    def format_fds(self) -> List[str]:
        """Human-readable FD list using the schema's column names."""
        return self.fds.format(self.schema)

    # ------------------------------------------------------------------
    # JSON round-trip (result store, HTTP responses, offline analysis)
    # ------------------------------------------------------------------

    def to_payload(self) -> Dict[str, object]:
        """The result as a JSON-friendly dict (see :meth:`to_json`)."""
        return {
            "format": "repro-fd-result",
            "version": RESULT_FORMAT_VERSION,
            "algorithm": self.algorithm,
            "columns": self.schema.names,
            "cover": cover_payload(self.fds, self.schema),
            "unverified": cover_payload(self.unverified, self.schema),
            "elapsed_seconds": self.elapsed_seconds,
            "peak_memory_bytes": self.peak_memory_bytes,
            "completed": self.completed,
            "limit_reason": self.limit_reason,
            "top_k": self.top_k,
            "stats": dataclasses.asdict(self.stats),
        }

    def to_json(self, indent: Optional[int] = 2) -> str:
        """Serialize the result — cover, stats and limit provenance.

        The cover is embedded via
        :func:`~repro.relational.fd_io.cover_payload`, so the ``cover``
        sub-document is itself a valid ``repro-fd-cover`` file.
        """
        return json.dumps(self.to_payload(), indent=indent, sort_keys=True)

    @classmethod
    def from_payload(cls, payload: Dict[str, object]) -> "DiscoveryResult":
        """Rebuild a result from :meth:`to_payload` output."""
        if payload.get("format") != "repro-fd-result":
            raise ValueError("not a repro FD result document")
        if payload.get("version") != RESULT_FORMAT_VERSION:
            raise ValueError(
                f"unsupported result format version {payload.get('version')}"
            )
        schema = RelationSchema(payload["columns"])
        known = {f.name for f in dataclasses.fields(DiscoveryStats)}
        stats_data = {
            k: v for k, v in (payload.get("stats") or {}).items() if k in known
        }
        return cls(
            algorithm=payload["algorithm"],
            schema=schema,
            fds=cover_from_payload(payload["cover"], schema),
            elapsed_seconds=float(payload.get("elapsed_seconds", 0.0)),
            peak_memory_bytes=int(payload.get("peak_memory_bytes", 0)),
            stats=DiscoveryStats(**stats_data),
            completed=bool(payload.get("completed", True)),
            unverified=cover_from_payload(payload["unverified"], schema),
            limit_reason=payload.get("limit_reason"),
            top_k=payload.get("top_k"),
        )

    @classmethod
    def from_json(cls, text: str) -> "DiscoveryResult":
        """Parse a result serialized with :meth:`to_json`."""
        return cls.from_payload(json.loads(text))

    def __repr__(self) -> str:
        suffix = "" if self.completed else (
            f", partial/{self.limit_reason}: {len(self.unverified)} unverified"
        )
        kind = "" if self.top_k is None else f"top-{self.top_k} "
        return (
            f"DiscoveryResult({self.algorithm}: {kind}{self.fd_count} FDs in "
            f"{self.elapsed_seconds:.3f}s{suffix})"
        )
