"""Ranking FDs by the data redundancy they cause (paper §VI-A).

The rank of an FD is the number of redundant data-value occurrences it
causes; high-ranked FDs express patterns with many witnesses (and drive
normalization), zero-redundancy FDs hint at keys, and FDs whose
redundancy is almost entirely null markers are likely accidental.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Iterable, List, Optional, Sequence, Tuple

from ..memplane import tier_for
from ..partitions.cache import PartitionCache
from ..relational import attrset
from ..relational.fd import FD, FDSet
from ..relational.relation import Relation
from ..relational.schema import RelationSchema
from ..telemetry import current_tracer
from .redundancy import (
    NullPolicy,
    _parallel_rows_by_lhs,
    count_redundant,
    redundancy_upper_bound,
)
from .topk import TopKTracker

#: Fig. 10's x-axis: fractions of the maximum per-FD redundancy.
DEFAULT_BUCKET_FRACTIONS: Tuple[float, ...] = (
    0.0, 0.025, 0.05, 0.10, 0.15, 0.20, 0.40, 0.60, 0.80, 1.00,
)


@dataclass(frozen=True)
class RankedFD:
    """One FD with its redundancy measurements."""

    fd: FD
    redundancy: int
    redundancy_excluding_null: int

    @property
    def null_fraction(self) -> float:
        """Share of the FD's redundant occurrences that are null markers."""
        if self.redundancy == 0:
            return 0.0
        return 1.0 - self.redundancy_excluding_null / self.redundancy

    @property
    def likely_accidental(self) -> bool:
        """Heuristic from the paper: nearly all-null redundancy."""
        return self.redundancy > 0 and self.null_fraction >= 0.9

    @property
    def likely_key_based(self) -> bool:
        """Zero redundancy means the LHS is (close to) a key."""
        return self.redundancy == 0

    def format(self, schema: RelationSchema) -> str:
        """Human-readable row for reports."""
        return (
            f"{self.fd.format(schema)}  "
            f"#red+0={self.redundancy}  #red={self.redundancy_excluding_null}"
        )


@dataclass
class RankingResult:
    """A ranked cover plus the time the ranking took.

    In bounded mode (``rank_cover(..., top_k=k)``) ``ranked`` holds
    exactly the first k entries of the full ranking, ``top_k`` records
    the requested k, and ``bound_skipped`` counts the FDs whose exact
    redundancy was never measured because their upper bound could not
    reach the running k-th redundancy.
    """

    ranked: List[RankedFD]
    seconds: float
    top_k: Optional[int] = None
    bound_skipped: int = 0

    def top(self, n: int) -> List[RankedFD]:
        """The ``n`` most redundancy-causing FDs."""
        return self.ranked[:n]

    def zero_redundancy(self) -> List[RankedFD]:
        """FDs causing no redundancy at all (key candidates)."""
        return [r for r in self.ranked if r.redundancy == 0]

    def likely_accidental(self) -> List[RankedFD]:
        """FDs whose redundancy is (almost) entirely null markers."""
        return [r for r in self.ranked if r.likely_accidental]

    @property
    def max_redundancy(self) -> int:
        """Largest per-FD redundancy in the cover."""
        if not self.ranked:
            return 0
        return self.ranked[0].redundancy


def rank_cover(
    relation: Relation,
    cover: Iterable[FD],
    deadline=None,
    top_k: Optional[int] = None,
    jobs: Optional[int] = None,
) -> RankingResult:
    """Rank every FD of a cover by descending redundancy.

    Both the null-inclusive and null-exclusive counts are computed so
    callers can flag likely-accidental FDs; ties break on the FD masks
    for determinism.  ``deadline`` (a
    :class:`~repro.core.base.Deadline`) is polled per FD so a driver's
    time limit bounds the ranking pass too.

    With ``top_k=k`` the pass runs in bounded mode: FDs are measured in
    descending order of their :func:`redundancy_upper_bound`, and the
    pass stops as soon as the next bound falls strictly below the
    running k-th redundancy — the remaining FDs cannot enter the top-k
    even via tie-breaks, so the returned list is byte-identical to the
    first k entries of the full ranking at a fraction of the partition
    work.

    With ``jobs`` > 1 the full pass computes its per-LHS redundant-row
    masks on a worker pool (one LHS per task, OR-merged); ranking order
    and counts are identical to the serial loop for any worker count
    because all counts are derived from the same masks and the final
    sort uses the full ``(-redundancy, lhs, rhs)`` key.  Bounded mode
    measures few FDs by construction and always runs serially.
    """
    start = time.perf_counter()
    fds = list(cover)
    if top_k is not None and top_k < 1:
        raise ValueError(f"top_k must be >= 1, got {top_k}")
    with current_tracer().span("ranking", fds=len(fds)):
        cache = PartitionCache(relation, shared=tier_for(relation))
        if top_k is not None:
            ranked, skipped = _rank_bounded(relation, fds, top_k, cache, deadline)
        else:
            ranked, skipped = _rank_full(relation, fds, cache, deadline, jobs)
        cache.record_telemetry(scope="ranking")
    return RankingResult(
        ranked=ranked,
        seconds=time.perf_counter() - start,
        top_k=top_k,
        bound_skipped=skipped,
    )


def _rank_full(
    relation: Relation,
    fds: List[FD],
    cache: PartitionCache,
    deadline,
    jobs: Optional[int],
) -> Tuple[List[RankedFD], int]:
    """The classic exhaustive pass: one exact measurement per FD."""
    unique_lhs = list(dict.fromkeys(fd.lhs for fd in fds))
    # One INCLUDE mask per LHS serves both counts: EXCLUDE_RHS only
    # filters by the RHS attribute's own null mask afterwards.
    rows_by_lhs = _parallel_rows_by_lhs(
        relation, unique_lhs, NullPolicy.INCLUDE, jobs
    )
    ranked = []
    for fd in fds:
        if deadline is not None:
            deadline.check()
        if rows_by_lhs is not None:
            rows = rows_by_lhs[fd.lhs]
            redundancy = int(rows.sum()) * attrset.count(fd.rhs)
            excluding = sum(
                int((rows & ~relation.null_mask(attr)).sum())
                for attr in attrset.iter_attrs(fd.rhs)
            )
        else:
            redundancy = count_redundant(relation, fd, NullPolicy.INCLUDE, cache)
            excluding = count_redundant(relation, fd, NullPolicy.EXCLUDE_RHS, cache)
        ranked.append(
            RankedFD(
                fd=fd,
                redundancy=redundancy,
                redundancy_excluding_null=excluding,
            )
        )
    ranked.sort(key=lambda r: (-r.redundancy, r.fd.lhs, r.fd.rhs))
    return ranked, 0


def _rank_bounded(
    relation: Relation,
    fds: List[FD],
    k: int,
    cache: PartitionCache,
    deadline,
) -> Tuple[List[RankedFD], int]:
    """Measure in descending-bound order behind a running k-th threshold."""
    bounds = [
        (
            redundancy_upper_bound(relation, fd.lhs, cache)
            * attrset.count(fd.rhs),
            fd,
        )
        for fd in fds
    ]
    bounds.sort(key=lambda entry: (-entry[0], entry[1].lhs, entry[1].rhs))
    tracker = TopKTracker(k)
    skipped = 0
    for index, (bound, fd) in enumerate(bounds):
        if deadline is not None:
            deadline.check()
        if tracker.can_prune(bound):
            # Bounds are non-increasing from here on and the threshold
            # never drops, so every remaining FD is prunable too.
            skipped = len(bounds) - index
            break
        tracker.add(fd, count_redundant(relation, fd, NullPolicy.INCLUDE, cache))
    ranked = [
        RankedFD(
            fd=fd,
            redundancy=redundancy,
            redundancy_excluding_null=count_redundant(
                relation, fd, NullPolicy.EXCLUDE_RHS, cache
            ),
        )
        for fd, redundancy in tracker.top()
    ]
    return ranked, skipped


def redundancy_histogram(
    redundancies: Sequence[int],
    fractions: Sequence[float] = DEFAULT_BUCKET_FRACTIONS,
) -> List[Tuple[int, int]]:
    """Fig. 10's bucket counts.

    Each x-value is ``fraction * max(redundancies)``; the y-value is the
    number of FDs whose redundancy is at most that x-value *and* more
    than the previous x-value (the first bucket counts exactly zero).
    Returns ``(threshold, count)`` pairs.

    When the maximum is small, several fractions round to the same
    integer threshold; such duplicates cover an empty range and are
    merged away instead of emitted as ``(threshold, 0)`` repeats.  An
    all-zero input therefore collapses to the single bucket
    ``[(0, n)]`` and an empty input to ``[(0, 0)]``.
    """
    if not redundancies:
        return [(0, 0)]
    maximum = max(redundancies)
    buckets: List[Tuple[int, int]] = []
    previous = -1
    for fraction in fractions:
        threshold = int(round(fraction * maximum))
        if buckets and threshold == buckets[-1][0]:
            continue  # same threshold as the last bucket: empty range
        count = sum(1 for value in redundancies if previous < value <= threshold)
        buckets.append((threshold, count))
        previous = threshold
    return buckets
