"""Ranking FDs by the data redundancy they cause (paper §VI-A).

The rank of an FD is the number of redundant data-value occurrences it
causes; high-ranked FDs express patterns with many witnesses (and drive
normalization), zero-redundancy FDs hint at keys, and FDs whose
redundancy is almost entirely null markers are likely accidental.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Iterable, List, Sequence, Tuple

from ..partitions.cache import PartitionCache
from ..relational.fd import FD, FDSet
from ..relational.relation import Relation
from ..relational.schema import RelationSchema
from ..telemetry import current_tracer
from .redundancy import NullPolicy, count_redundant

#: Fig. 10's x-axis: fractions of the maximum per-FD redundancy.
DEFAULT_BUCKET_FRACTIONS: Tuple[float, ...] = (
    0.0, 0.025, 0.05, 0.10, 0.15, 0.20, 0.40, 0.60, 0.80, 1.00,
)


@dataclass(frozen=True)
class RankedFD:
    """One FD with its redundancy measurements."""

    fd: FD
    redundancy: int
    redundancy_excluding_null: int

    @property
    def null_fraction(self) -> float:
        """Share of the FD's redundant occurrences that are null markers."""
        if self.redundancy == 0:
            return 0.0
        return 1.0 - self.redundancy_excluding_null / self.redundancy

    @property
    def likely_accidental(self) -> bool:
        """Heuristic from the paper: nearly all-null redundancy."""
        return self.redundancy > 0 and self.null_fraction >= 0.9

    @property
    def likely_key_based(self) -> bool:
        """Zero redundancy means the LHS is (close to) a key."""
        return self.redundancy == 0

    def format(self, schema: RelationSchema) -> str:
        """Human-readable row for reports."""
        return (
            f"{self.fd.format(schema)}  "
            f"#red+0={self.redundancy}  #red={self.redundancy_excluding_null}"
        )


@dataclass
class RankingResult:
    """A ranked cover plus the time the ranking took."""

    ranked: List[RankedFD]
    seconds: float

    def top(self, n: int) -> List[RankedFD]:
        """The ``n`` most redundancy-causing FDs."""
        return self.ranked[:n]

    def zero_redundancy(self) -> List[RankedFD]:
        """FDs causing no redundancy at all (key candidates)."""
        return [r for r in self.ranked if r.redundancy == 0]

    def likely_accidental(self) -> List[RankedFD]:
        """FDs whose redundancy is (almost) entirely null markers."""
        return [r for r in self.ranked if r.likely_accidental]

    @property
    def max_redundancy(self) -> int:
        """Largest per-FD redundancy in the cover."""
        if not self.ranked:
            return 0
        return self.ranked[0].redundancy


def rank_cover(
    relation: Relation, cover: Iterable[FD], deadline=None
) -> RankingResult:
    """Rank every FD of a cover by descending redundancy.

    Both the null-inclusive and null-exclusive counts are computed so
    callers can flag likely-accidental FDs; ties break on the FD masks
    for determinism.  ``deadline`` (a
    :class:`~repro.core.base.Deadline`) is polled per FD so a driver's
    time limit bounds the ranking pass too.
    """
    start = time.perf_counter()
    fds = list(cover)
    with current_tracer().span("ranking", fds=len(fds)):
        cache = PartitionCache(relation)
        ranked = []
        for fd in fds:
            if deadline is not None:
                deadline.check()
            ranked.append(
                RankedFD(
                    fd=fd,
                    redundancy=count_redundant(
                        relation, fd, NullPolicy.INCLUDE, cache
                    ),
                    redundancy_excluding_null=count_redundant(
                        relation, fd, NullPolicy.EXCLUDE_RHS, cache
                    ),
                )
            )
        ranked.sort(key=lambda r: (-r.redundancy, r.fd.lhs, r.fd.rhs))
        cache.record_telemetry(scope="ranking")
    return RankingResult(ranked=ranked, seconds=time.perf_counter() - start)


def redundancy_histogram(
    redundancies: Sequence[int],
    fractions: Sequence[float] = DEFAULT_BUCKET_FRACTIONS,
) -> List[Tuple[int, int]]:
    """Fig. 10's bucket counts.

    Each x-value is ``fraction * max(redundancies)``; the y-value is the
    number of FDs whose redundancy is at most that x-value *and* more
    than the previous x-value (the first bucket counts exactly zero).
    Returns ``(threshold, count)`` pairs.
    """
    if not redundancies:
        return [(0, 0) for _ in fractions]
    maximum = max(redundancies)
    buckets: List[Tuple[int, int]] = []
    previous = -1
    for fraction in fractions:
        threshold = int(round(fraction * maximum))
        count = sum(1 for value in redundancies if previous < value <= threshold)
        buckets.append((threshold, count))
        previous = threshold
    return buckets
