"""Column-focused redundancy reports (paper §VI-B).

One way data stewards consume the ranking: fix a column of interest and
list every minimal LHS in the cover that determines it, with redundancy
counts both including and excluding nulls.  The paper's worked example
is the ``city`` column of ncvoter.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Union

from ..memplane import tier_for
from ..partitions.cache import PartitionCache
from ..relational import attrset
from ..relational.fd import FD
from ..relational.relation import Relation
from .redundancy import NullPolicy, redundant_rows_for_lhs


@dataclass(frozen=True)
class ColumnDeterminant:
    """One row of the §VI-B table: a minimal LHS for the target column."""

    lhs: attrset.AttrSet
    red: int
    red_null_free: int

    def format(self, relation: Relation) -> str:
        """Render as 'lhs  #red  #red-0'."""
        return (
            f"{relation.schema.format_attr_set(self.lhs)}  "
            f"#red={self.red}  #red-0={self.red_null_free}"
        )


def column_determinants(
    relation: Relation,
    cover: Iterable[FD],
    column: Union[str, int],
) -> List[ColumnDeterminant]:
    """Minimal LHSs of the cover that determine ``column``, with counts.

    ``red`` counts redundant occurrences in the target column under the
    null-inclusive policy; ``red_null_free`` excludes occurrences where
    the target value or any LHS value is null (the paper's #red-0).
    Sorted by descending ``red``.
    """
    target = relation.schema.resolve(column)
    target_nulls = relation.null_mask(target)
    cache = PartitionCache(relation, shared=tier_for(relation))
    rows_out: List[ColumnDeterminant] = []
    for fd in cover:
        if not attrset.contains(fd.rhs, target):
            continue
        partition = cache.get(fd.lhs)
        marked_all = redundant_rows_for_lhs(relation, partition, NullPolicy.INCLUDE)
        marked_clean = redundant_rows_for_lhs(
            relation, partition, NullPolicy.EXCLUDE_LHS_RHS
        )
        rows_out.append(
            ColumnDeterminant(
                lhs=fd.lhs,
                red=int(marked_all.sum()),
                red_null_free=int((marked_clean & ~target_nulls).sum()),
            )
        )
    rows_out.sort(key=lambda row: (-row.red, row.lhs))
    return rows_out
