"""Redundancy-based FD ranking (the paper's third contribution)."""

from .explain import RedundancyWitness, explain_redundancy, violating_pairs
from .ranker import (
    DEFAULT_BUCKET_FRACTIONS,
    RankedFD,
    RankingResult,
    rank_cover,
    redundancy_histogram,
)
from .redundancy import (
    NullPolicy,
    RedundancyReport,
    count_redundant,
    dataset_redundancy,
    redundancy_positions,
    redundancy_upper_bound,
    redundant_rows_for_lhs,
)
from .report import ColumnDeterminant, column_determinants
from .topk import TopKTracker

__all__ = [
    "ColumnDeterminant",
    "DEFAULT_BUCKET_FRACTIONS",
    "NullPolicy",
    "RankedFD",
    "RedundancyWitness",
    "RankingResult",
    "RedundancyReport",
    "TopKTracker",
    "column_determinants",
    "count_redundant",
    "dataset_redundancy",
    "explain_redundancy",
    "rank_cover",
    "redundancy_histogram",
    "redundancy_positions",
    "redundancy_upper_bound",
    "redundant_rows_for_lhs",
    "violating_pairs",
]
