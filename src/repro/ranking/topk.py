"""Exact top-k selection by redundancy (rank-aware early termination).

The ranking order of :func:`~repro.ranking.ranker.rank_cover` is
``(-redundancy, fd.lhs, fd.rhs)``.  Because the null-inclusive
redundancy of an FD ``X -> Y`` is ``|Y| * ||pi_X||`` and stripped
partitions only lose rows under refinement (``X ⊆ Z`` implies
``||pi_Z|| <= ||pi_X||``), any partition of a *subset* of the LHS gives
a cheap upper bound on the redundancy of the FD — and of every FD whose
LHS is a superset.  :class:`TopKTracker` turns that into a running
threshold: once k FDs with exact redundancies are known, any candidate
whose upper bound falls *strictly* below the current k-th redundancy
can be discarded without ever measuring (or even discovering) it.

The strict comparison is what preserves the tie-break: a pruned
candidate's redundancy is ``<= bound < threshold <= final k-th
redundancy``, so it cannot displace a winner even on equal-redundancy
ties — the surviving candidates are re-sorted with the full ranking
key at the end.  The returned top-k is therefore byte-identical to the
first k entries of the full ranked cover.
"""

from __future__ import annotations

import heapq
from typing import List, Optional, Tuple

from ..relational.fd import FD, FDSet


class TopKTracker:
    """Running top-k threshold over exactly-measured FD redundancies.

    Algorithms feed every FD they confirm through :meth:`add` (with its
    exact null-inclusive redundancy) and consult :meth:`can_prune`
    before spending work on a candidate whose redundancy upper bound is
    known.  ``pruned_candidates`` is a public tally the search bumps
    for every candidate LHS it skipped — it lands in
    :class:`~repro.core.result.DiscoveryStats`.
    """

    def __init__(self, k: int):
        if k < 1:
            raise ValueError(f"top_k must be >= 1, got {k}")
        self.k = k
        #: Every (redundancy, fd) measured exactly so far.
        self._entries: List[Tuple[int, FD]] = []
        #: Min-heap of the k largest redundancies measured so far.
        self._heap: List[int] = []
        #: Candidate LHSs skipped because their bound fell below the
        #: threshold (filled in by the algorithm running the search).
        self.pruned_candidates = 0

    @property
    def threshold(self) -> Optional[int]:
        """The current k-th largest exact redundancy (None until k seen)."""
        return self._heap[0] if len(self._heap) >= self.k else None

    @property
    def full(self) -> bool:
        """True once k FDs have been measured."""
        return len(self._heap) >= self.k

    def can_prune(self, bound: int) -> bool:
        """May a candidate with this redundancy upper bound be skipped?

        Strictly-below only: a candidate whose bound *equals* the
        threshold could still enter the top-k by winning a tie-break,
        so it must be measured.
        """
        threshold = self.threshold
        return threshold is not None and bound < threshold

    def add(self, fd: FD, redundancy: int) -> None:
        """Record one FD with its exact null-inclusive redundancy."""
        self._entries.append((redundancy, fd))
        if len(self._heap) < self.k:
            heapq.heappush(self._heap, redundancy)
        elif redundancy > self._heap[0]:
            heapq.heapreplace(self._heap, redundancy)

    def top(self) -> List[Tuple[FD, int]]:
        """The winning ``(fd, redundancy)`` pairs in full ranking order."""
        ordered = sorted(
            self._entries, key=lambda entry: (-entry[0], entry[1].lhs, entry[1].rhs)
        )
        return [(fd, redundancy) for redundancy, fd in ordered[: self.k]]

    def cover(self) -> FDSet:
        """The winning FDs as an :class:`~repro.relational.fd.FDSet`."""
        return FDSet(fd for fd, _ in self.top())

    def __repr__(self) -> str:
        return (
            f"TopKTracker(k={self.k}, measured={len(self._entries)}, "
            f"threshold={self.threshold}, pruned={self.pruned_candidates})"
        )
