"""Explanations: *why* is a value redundant, and *who* violates an FD.

The paper positions the ranking as guidance for data stewards; the
natural follow-up questions are drill-downs:

* "this FD causes N redundant values — show me one" →
  :func:`explain_redundancy` returns the witness rows that pin a value
  down (the other members of its LHS cluster);
* "this FD almost holds — what breaks it?" →
  :func:`violating_pairs` lists row pairs that agree on the LHS but
  disagree on the RHS (the paper's σ4 dirty-duplicate story is exactly
  one such pair).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from ..partitions.stripped import StrippedPartition
from ..relational import attrset
from ..relational.fd import FD
from ..relational.relation import Relation


@dataclass(frozen=True)
class RedundancyWitness:
    """Why one value occurrence is redundant under an FD."""

    row: int
    attr: int
    value: object
    witness_rows: Tuple[int, ...]

    def format(self, relation: Relation) -> str:
        """Human-readable one-liner."""
        column = relation.schema.name_of(self.attr)
        return (
            f"row {self.row}: {column}={self.value!r} is fixed by rows "
            f"{list(self.witness_rows)} sharing its LHS values"
        )


def explain_redundancy(
    relation: Relation,
    fd: FD,
    row: Optional[int] = None,
    max_witnesses: int = 5,
) -> List[RedundancyWitness]:
    """Witnesses for the FD's redundant occurrences.

    With ``row`` given, explains that row's occurrences only (empty
    result if the row is not redundant under the FD); otherwise one
    witness per cluster is returned as a sample.
    """
    partition = StrippedPartition.for_attrs(relation, fd.lhs)
    witnesses: List[RedundancyWitness] = []
    for cluster in partition.clusters:
        members = set(cluster)
        if row is not None:
            if row not in members:
                continue
            targets = [row]
        else:
            targets = [cluster[0]]
        for target in targets:
            others = tuple(r for r in cluster if r != target)[:max_witnesses]
            for attr in attrset.iter_attrs(fd.rhs):
                witnesses.append(
                    RedundancyWitness(
                        row=target,
                        attr=attr,
                        value=relation.value(target, attr),
                        witness_rows=others,
                    )
                )
        if row is not None:
            break
    return witnesses


def violating_pairs(
    relation: Relation,
    fd: FD,
    limit: int = 10,
) -> List[Tuple[int, int]]:
    """Row pairs that agree on the FD's LHS but differ on its RHS.

    Empty iff the FD holds.  ``limit`` caps the scan so dirty-data
    inspection of almost-valid FDs stays cheap.
    """
    partition = StrippedPartition.for_attrs(relation, fd.lhs)
    rhs_attrs = attrset.to_list(fd.rhs)
    codes = [relation.codes(attr) for attr in rhs_attrs]
    pairs: List[Tuple[int, int]] = []
    for cluster in partition.clusters:
        pivot = cluster[0]
        for other in cluster[1:]:
            if any(col[pivot] != col[other] for col in codes):
                pairs.append((pivot, other))
                if len(pairs) >= limit:
                    return pairs
    return pairs
