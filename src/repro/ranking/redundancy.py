"""Redundant data-value occurrences (paper §VI).

Following Vincent's notion, the occurrence of a value at ``(t, A)`` is
*redundant* w.r.t. an FD set Σ when every change of that value to a
different value violates some FD in Σ.  For an FD ``X → Y`` with
``A ∈ Y`` this happens exactly when another tuple shares t's X-values —
i.e. when ``t`` lies in a non-singleton cluster of ``π_X``.

Three counting policies correspond to the paper's columns:

* ``INCLUDE``          — count every redundant occurrence (#red+0);
* ``EXCLUDE_RHS``      — skip occurrences whose own value is a null
  marker (#red in Table IV; the intro's "σ3 causes only 2 instead of
  61" example);
* ``EXCLUDE_LHS_RHS``  — additionally require the witnessing X-values
  to be null-free (#red-0 in §VI-B and the orange series of Fig. 11).
"""

from __future__ import annotations

import enum
import time
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from ..memplane import tier_for
from ..partitions import kernels
from ..partitions.cache import PartitionCache
from ..partitions.stripped import StrippedPartition
from ..relational import attrset
from ..relational.attrset import AttrSet
from ..relational.fd import FD, FDSet
from ..relational.relation import Relation
from ..telemetry import current_tracer


class NullPolicy(enum.Enum):
    """Which occurrences involving null markers count as redundant."""

    INCLUDE = "include"
    EXCLUDE_RHS = "exclude_rhs"
    EXCLUDE_LHS_RHS = "exclude_lhs_rhs"


def _lhs_null_mask(relation: Relation, lhs: AttrSet) -> Optional[np.ndarray]:
    """Per-row True where any LHS attribute is null (None when lhs = ∅)."""
    mask: Optional[np.ndarray] = None
    for attr in attrset.iter_attrs(lhs):
        column_mask = relation.null_mask(attr)
        mask = column_mask.copy() if mask is None else mask | column_mask
    return mask


def redundant_rows_for_lhs(
    relation: Relation,
    partition: StrippedPartition,
    policy: NullPolicy,
) -> np.ndarray:
    """Boolean per-row mask of rows whose RHS occurrences are redundant.

    A row is marked when it shares its LHS values with at least one
    other (surviving) row; under ``EXCLUDE_LHS_RHS`` rows with null LHS
    values are dropped before cluster sizes are re-checked.
    """
    marked = np.zeros(relation.n_rows, dtype=bool)
    if not partition.clusters:
        return marked
    rows, lengths = kernels.flatten_clusters(partition.clusters)
    lhs_nulls = (
        _lhs_null_mask(relation, partition.attrs)
        if policy is NullPolicy.EXCLUDE_LHS_RHS
        else None
    )
    if lhs_nulls is None:
        marked[rows] = True
        return marked
    # EXCLUDE_LHS_RHS: drop null-LHS rows, then a cluster only witnesses
    # redundancy if at least two of its rows survive.
    survivors = ~lhs_nulls[rows]
    starts = np.concatenate(([0], np.cumsum(lengths[:-1])))
    counts = np.add.reduceat(survivors.astype(np.int64), starts)
    keep = survivors & np.repeat(counts >= 2, lengths)
    marked[rows[keep]] = True
    return marked


def count_redundant(
    relation: Relation,
    fd: FD,
    policy: NullPolicy = NullPolicy.INCLUDE,
    cache: Optional[PartitionCache] = None,
) -> int:
    """Number of redundant occurrences the FD causes under ``policy``."""
    partition = (
        cache.get(fd.lhs)
        if cache is not None
        else StrippedPartition.for_attrs(relation, fd.lhs)
    )
    rows = redundant_rows_for_lhs(relation, partition, policy)
    total = 0
    for attr in attrset.iter_attrs(fd.rhs):
        if policy is NullPolicy.INCLUDE:
            total += int(rows.sum())
        else:
            total += int((rows & ~relation.null_mask(attr)).sum())
    return total


def redundancy_upper_bound(
    relation: Relation,
    lhs: AttrSet,
    cache: Optional[PartitionCache] = None,
) -> int:
    """Cheap upper bound on ``||pi_lhs||`` from cached partitions.

    Every row a partition strips stays stripped under refinement, so
    for any ``S ⊆ lhs`` it holds that ``||pi_lhs|| <= ||pi_S||`` — and
    the null-inclusive redundancy of a singleton-RHS FD ``lhs -> A`` is
    exactly ``||pi_lhs||``.  The bound therefore also covers every FD
    whose LHS is a *superset* of ``lhs``, which is what lets top-k
    discovery prune whole lattice regions (see
    :mod:`repro.ranking.topk`).

    With a cache, the exact partition is used when already present and
    the seeded singletons otherwise (O(|lhs|) dictionary lookups, no
    partition is ever built); without one, singleton partitions are
    built directly.
    """
    if lhs == attrset.EMPTY:
        return relation.n_rows if relation.n_rows >= 2 else 0
    if cache is not None:
        exact = cache.peek(lhs)
        if exact is not None:
            return exact.size
    best: Optional[int] = None
    for attr in attrset.iter_attrs(lhs):
        if cache is not None:
            partition = cache.peek(attrset.singleton(attr))
            if partition is None:  # pragma: no cover — caches seed singletons
                partition = StrippedPartition.for_attribute(relation, attr)
        else:
            partition = StrippedPartition.for_attribute(relation, attr)
        if best is None or partition.size < best:
            best = partition.size
    return best if best is not None else 0


def _parallel_rows_by_lhs(
    relation: Relation,
    unique_lhs: Sequence[AttrSet],
    policy: NullPolicy,
    jobs: Optional[int],
) -> Optional[Dict[AttrSet, np.ndarray]]:
    """Per-LHS redundant-row masks computed across a worker pool.

    Returns ``None`` whenever the serial path should run instead: jobs
    resolve to 1, the relation or FD list is below the parallel
    thresholds, or the pool broke (the caller recomputes serially — the
    masks merge by OR, so the result is identical either way).
    """
    from .. import parallel
    from ..parallel import config as parallel_config

    n_jobs = parallel.resolve_jobs(jobs)
    if (
        n_jobs <= 1
        or relation.n_rows < parallel_config.DEFAULT_MIN_PARALLEL_ROWS
        or len(unique_lhs) < parallel_config.DEFAULT_MIN_PARALLEL_ITEMS
    ):
        return None
    with parallel.ParallelExecutor(relation, jobs=n_jobs) as executor:
        try:
            masks = parallel.redundancy_row_masks(executor, unique_lhs, policy)
        except parallel.PoolBrokenError:
            return None
    return dict(zip(unique_lhs, masks))


def redundancy_positions(
    relation: Relation,
    cover: Iterable[FD],
    policy: NullPolicy = NullPolicy.INCLUDE,
    cache: Optional[PartitionCache] = None,
    jobs: Optional[int] = None,
    deadline=None,
) -> np.ndarray:
    """Boolean ``(n_rows, n_cols)`` matrix of redundant positions.

    The union over the cover: a position may be redundant due to
    several FDs but is counted once (the data-set totals of Table IV).

    With ``jobs`` > 1 (or a process default from ``REPRO_FD_JOBS`` /
    ``--jobs``) the per-LHS row masks are computed by a worker pool —
    one FD LHS per task — and OR-merged here; the result is identical
    to the serial loop for any worker count.

    ``deadline`` (a :class:`~repro.core.base.Deadline` or
    :class:`~repro.core.base.RunContext`) is polled once per FD so a
    driver's time limit also bounds the ranking pass.
    """
    if cache is None:
        cache = PartitionCache(relation, shared=tier_for(relation))
    marked = np.zeros((relation.n_rows, relation.n_cols), dtype=bool)
    fds = list(cover)
    unique_lhs = list(dict.fromkeys(fd.lhs for fd in fds))
    rows_by_lhs = _parallel_rows_by_lhs(relation, unique_lhs, policy, jobs)
    for fd in fds:
        if deadline is not None:
            deadline.check()
        if rows_by_lhs is not None:
            rows = rows_by_lhs[fd.lhs]
        else:
            partition = cache.get(fd.lhs)
            rows = redundant_rows_for_lhs(relation, partition, policy)
        for attr in attrset.iter_attrs(fd.rhs):
            if policy is NullPolicy.INCLUDE:
                marked[:, attr] |= rows
            else:
                marked[:, attr] |= rows & ~relation.null_mask(attr)
    return marked


@dataclass(frozen=True)
class RedundancyReport:
    """One Table IV row: data redundancy of a data set under a cover."""

    n_values: int
    red_excluding_null: int
    red_including_null: int
    seconds: float

    @property
    def red_percent(self) -> float:
        """%red."""
        if self.n_values == 0:
            return 0.0
        return 100.0 * self.red_excluding_null / self.n_values

    @property
    def red_including_percent(self) -> float:
        """%red+0."""
        if self.n_values == 0:
            return 0.0
        return 100.0 * self.red_including_null / self.n_values


def dataset_redundancy(
    relation: Relation,
    cover: FDSet,
    jobs: Optional[int] = None,
    deadline=None,
) -> RedundancyReport:
    """Compute #values / #red / #red+0 for a relation and cover (timed)."""
    start = time.perf_counter()
    with current_tracer().span("redundancy", fds=len(cover)):
        cache = PartitionCache(relation, shared=tier_for(relation))
        including = redundancy_positions(
            relation, cover, NullPolicy.INCLUDE, cache, jobs=jobs,
            deadline=deadline,
        )
        null_matrix = np.column_stack(
            [relation.null_mask(attr) for attr in range(relation.n_cols)]
        ) if relation.n_cols else np.zeros((relation.n_rows, 0), dtype=bool)
        excluding = including & ~null_matrix
        cache.record_telemetry(scope="redundancy")
    elapsed = time.perf_counter() - start
    return RedundancyReport(
        n_values=relation.n_values,
        red_excluding_null=int(excluding.sum()),
        red_including_null=int(including.sum()),
        seconds=elapsed,
    )
