"""Virtual joins as provenance index arrays (no joined relation).

Joining the base tables of a :class:`~repro.multitable.schema.SchemaGraph`
along a key/foreign-key path produces a (possibly much larger) relation
— but FD discovery never needs its *values*, only which base rows each
join row came from.  This module computes exactly that:

* :func:`build_provenance` walks a join path and produces one int64
  **provenance index array per base table**: entry ``i`` is the base row
  that join row ``i`` draws its columns from (``-1`` = padded, i.e. an
  outer-join null fill).  Join rows are never materialized.
* :func:`lift_column` / :func:`lift_partition` lift a base column (or a
  base attribute set's stripped partition) through a provenance array —
  the π lift is *relabel* (gather base DIIS codes through the index,
  substituting null sentinels per the graph's null semantics) *and
  re-strip* (first-occurrence dense re-encode / kernel re-group).  The
  lifted :class:`~repro.relational.encoding.EncodedColumn` is
  byte-identical to encoding the materialized join column, so lifted
  relations fingerprint identically to materialized ones.
* :func:`materialize_join` is the *independent* differential oracle: a
  plain hash join over decoded values that really builds the joined
  rows and re-encodes them with ``Relation.from_rows``.  It exists for
  tests and benchmarks only and announces itself with a
  ``multitable.materialize`` telemetry event — the virtual path never
  emits one.

Like :mod:`repro.partitions.kernels`, provenance construction is
backend-switchable: ``backend="python"`` is the per-row reference
implementation, ``backend="numpy"`` vectorizes the gather/expand steps
over flat index arrays.  Both emit identical arrays (join rows ordered
with current rows outer, matching child rows ascending inner).

Dangling foreign keys (a child value missing from the parent) follow
the ``on_dangling`` policy, mirroring ``read_csv``'s ``on_bad_row=``:
``"raise"`` refuses, ``"drop"`` inner-joins them away, ``"pad"``
left-outer-joins with null fills.  A *null* FK component is not a
violation under either null semantics — the row simply matches nothing
(dropped under ``raise``/``drop``, padded under ``"pad"``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..partitions import kernels
from ..partitions.stripped import StrippedPartition
from ..relational import attrset
from ..relational.attrset import AttrSet
from ..relational.encoding import EncodedColumn
from ..relational.null import NullSemantics
from ..relational.relation import Relation
from ..relational.schema import RelationSchema
from ..telemetry import current_tracer
from .schema import JoinStep, MultitableError, SchemaGraph

#: Recognized dangling-FK policies (mirrors ``read_csv on_bad_row=``).
POLICIES = ("raise", "drop", "pad")

#: Provenance entry marking a padded (outer-join null) join row.
PAD = -1

_DANGLING = -2  # internal marker from _match_rows; never escapes


class DanglingRowError(MultitableError):
    """A child FK value has no parent row and the policy is ``raise``."""


def resolve_policy(on_dangling: Optional[str]) -> str:
    """Validate an ``on_dangling`` policy, mapping ``None`` to ``raise``."""
    if on_dangling is None:
        return "raise"
    if on_dangling not in POLICIES:
        raise MultitableError(
            f"on_dangling must be one of {POLICIES}, got {on_dangling!r}"
        )
    return on_dangling


@dataclass(frozen=True)
class JoinProvenance:
    """Row provenance of a virtual join.

    ``index[table][i]`` is the base row of ``table`` that join row ``i``
    draws from (:data:`PAD` for outer-join null fills).  This is the
    entire representation of the join: ``n_rows`` join rows exist only
    as positions in these arrays.
    """

    tables: Tuple[str, ...]
    index: Dict[str, np.ndarray]
    n_rows: int
    policy: str
    dropped_rows: int
    padded_cells: int

    def stats(self) -> Dict[str, object]:
        return {
            "tables": list(self.tables),
            "n_rows": self.n_rows,
            "policy": self.policy,
            "dropped_rows": self.dropped_rows,
            "padded_cells": self.padded_cells,
        }


# ----------------------------------------------------------------------
# FK matching (shared value-level primitive)
# ----------------------------------------------------------------------


def _match_rows(
    child: Relation,
    child_attrs: Sequence[int],
    parent: Relation,
    parent_attrs: Sequence[int],
) -> np.ndarray:
    """Owner array: child row -> parent row, ``-1`` null FK, ``-2`` dangling.

    Matching is over decoded values of non-null components, so EQ and
    NEQ encodings of the same data produce the same owners (two nulls
    never match, under either semantics).
    """
    pcols = [parent.column(a) for a in parent_attrs]
    parent_map: Dict[Tuple[object, ...], int] = {}
    for row in range(parent.n_rows):
        if any(c.null_mask[row] for c in pcols):
            continue
        key = tuple(c.decode(int(c.codes[row])) for c in pcols)
        parent_map.setdefault(key, row)
    ccols = [child.column(a) for a in child_attrs]
    if len(ccols) == 1:
        # translate over the code space: O(cardinality) dict lookups
        # instead of O(rows), then one vectorized gather.
        col = ccols[0]
        code_map = np.full(max(col.cardinality, 1), _DANGLING, dtype=np.int64)
        for code, value in enumerate(col.decoder):
            if value is None:
                code_map[code] = -1
            else:
                code_map[code] = parent_map.get((value,), _DANGLING)
        return code_map[col.codes]
    out = np.empty(child.n_rows, dtype=np.int64)
    for row in range(child.n_rows):
        if any(c.null_mask[row] for c in ccols):
            out[row] = -1
            continue
        key = tuple(c.decode(int(c.codes[row])) for c in ccols)
        out[row] = parent_map.get(key, _DANGLING)
    return out


def _step_attrs(graph: SchemaGraph, step: JoinStep) -> Tuple[List[int], List[int]]:
    child = graph.table(step.fk.child)
    parent = graph.table(step.fk.parent)
    child_attrs = [child.schema.resolve(c) for c in step.fk.child_columns]
    parent_attrs = [parent.schema.resolve(c) for c in step.fk.parent_columns]
    return child_attrs, parent_attrs


# ----------------------------------------------------------------------
# Provenance construction
# ----------------------------------------------------------------------


def build_provenance(
    graph: SchemaGraph,
    path: Sequence[str],
    on_dangling: str = "raise",
    backend: Optional[str] = None,
) -> JoinProvenance:
    """Compute the per-table provenance index arrays of a join path.

    The joined relation is never built: the result is one int64 array
    per path table plus counters.  Join-row order is deterministic —
    rows of the first table in row order, then per step current join
    rows outer and matching child rows ascending inner — and identical
    across backends and to :func:`materialize_join`.
    """
    policy = resolve_policy(on_dangling)
    backend = kernels.resolve_backend(backend)
    steps = graph.resolve_path(path)
    names = [str(p) for p in path]
    tracer = current_tracer()
    with tracer.span(
        "multitable.provenance",
        path="/".join(names),
        policy=policy,
        backend=backend,
    ):
        impl = _build_numpy if backend == "numpy" else _build_python
        index, dropped, padded = impl(graph, names, steps, policy)
        n_rows = int(len(index[names[0]]))
        tracer.counter(f"multitable.provenance.{backend}.calls").inc()
        tracer.event(
            "multitable.provenance.built",
            n_rows=n_rows,
            dropped_rows=dropped,
            padded_cells=padded,
        )
    return JoinProvenance(
        tables=tuple(names),
        index=index,
        n_rows=n_rows,
        policy=policy,
        dropped_rows=dropped,
        padded_cells=padded,
    )


def _build_python(
    graph: SchemaGraph,
    names: List[str],
    steps: List[JoinStep],
    policy: str,
) -> Tuple[Dict[str, np.ndarray], int, int]:
    """Per-row reference implementation (the differential oracle)."""
    rows: List[Tuple[int, ...]] = [
        (r,) for r in range(graph.table(names[0]).n_rows)
    ]
    dropped = 0
    padded = 0
    for pos, step in enumerate(steps):
        src_pos = names.index(step.source)
        child_attrs, parent_attrs = _step_attrs(graph, step)
        owner = _match_rows(
            graph.table(step.fk.child),
            child_attrs,
            graph.table(step.fk.parent),
            parent_attrs,
        )
        new_rows: List[Tuple[int, ...]] = []
        if step.direction == "forward":
            for row in rows:
                child_row = row[src_pos]
                target = int(owner[child_row]) if child_row >= 0 else -1
                if target == _DANGLING and policy == "raise":
                    raise DanglingRowError(
                        f"row {child_row} of {step.fk.child!r} references a "
                        f"missing {step.fk.parent!r} row "
                        f"(foreign key {step.fk.format()}); "
                        "use on_dangling='drop' or 'pad'"
                    )
                if target >= 0:
                    new_rows.append(row + (target,))
                elif policy == "pad":
                    new_rows.append(row + (PAD,))
                    padded += 1
                else:
                    dropped += 1
        else:  # expand: parent -> child, one-to-many
            children: Dict[int, List[int]] = {}
            for child_row in range(len(owner)):
                target = int(owner[child_row])
                if target >= 0:
                    children.setdefault(target, []).append(child_row)
            for row in rows:
                parent_row = row[src_pos]
                matches = children.get(parent_row, []) if parent_row >= 0 else []
                if matches:
                    for child_row in matches:
                        new_rows.append(row + (child_row,))
                elif policy == "pad":
                    new_rows.append(row + (PAD,))
                    padded += 1
                else:
                    dropped += 1
        rows = new_rows
    index = {
        name: np.fromiter(
            (row[i] for row in rows), dtype=np.int64, count=len(rows)
        )
        for i, name in enumerate(names)
    }
    return index, dropped, padded


def _build_numpy(
    graph: SchemaGraph,
    names: List[str],
    steps: List[JoinStep],
    policy: str,
) -> Tuple[Dict[str, np.ndarray], int, int]:
    """Vectorized implementation over flat index arrays."""
    first = graph.table(names[0])
    index: Dict[str, np.ndarray] = {
        names[0]: np.arange(first.n_rows, dtype=np.int64)
    }
    dropped = 0
    padded = 0
    for step in steps:
        src = index[step.source]
        n = len(src)
        child_attrs, parent_attrs = _step_attrs(graph, step)
        owner = _match_rows(
            graph.table(step.fk.child),
            child_attrs,
            graph.table(step.fk.parent),
            parent_attrs,
        )
        if step.direction == "forward":
            target = np.full(n, PAD, dtype=np.int64)
            live = src >= 0
            target[live] = owner[src[live]]
            if policy == "raise" and bool(np.any(target == _DANGLING)):
                child_row = int(src[np.argmax(target == _DANGLING)])
                raise DanglingRowError(
                    f"row {child_row} of {step.fk.child!r} references a "
                    f"missing {step.fk.parent!r} row "
                    f"(foreign key {step.fk.format()}); "
                    "use on_dangling='drop' or 'pad'"
                )
            if policy == "pad":
                target[target < 0] = PAD
                padded += int(np.sum(target == PAD))
                index[step.target] = target
            else:
                keep = target >= 0
                dropped += int(np.sum(~keep))
                index = {name: arr[keep] for name, arr in index.items()}
                index[step.target] = target[keep]
        else:  # expand: parent -> child, one-to-many
            parent_rows = graph.table(step.fk.parent).n_rows
            valid = np.nonzero(owner >= 0)[0]
            owners = owner[valid]
            order = np.argsort(owners, kind="stable")  # child rows stay ascending
            sorted_children = valid[order]
            counts = np.bincount(owners, minlength=parent_rows).astype(np.int64)
            offsets = np.concatenate(([0], np.cumsum(counts)[:-1]))
            cnt = np.zeros(n, dtype=np.int64)
            live = src >= 0
            cnt[live] = counts[src[live]]
            if policy == "pad":
                eff = np.maximum(cnt, 1)
            else:
                eff = cnt
                dropped += int(np.sum(cnt == 0))
            rep = np.repeat(np.arange(n, dtype=np.int64), eff)
            starts = np.concatenate(([0], np.cumsum(eff)[:-1]))
            pos = np.arange(int(eff.sum()), dtype=np.int64) - starts[rep]
            child_idx = np.full(len(rep), PAD, dtype=np.int64)
            has = cnt[rep] > 0
            child_idx[has] = sorted_children[offsets[src[rep[has]]] + pos[has]]
            padded += int(np.sum(child_idx == PAD))
            index = {name: arr[rep] for name, arr in index.items()}
            index[step.target] = child_idx
    return index, dropped, padded


# ----------------------------------------------------------------------
# The π lift: relabel + re-strip through a provenance array
# ----------------------------------------------------------------------


def _lift_keys(
    column: EncodedColumn, idx: np.ndarray, semantics: NullSemantics
) -> np.ndarray:
    """Relabel: gather base codes through ``idx`` with null sentinels.

    Non-null join rows keep the base row's (non-negative) DIIS code.
    Null join rows (padded, or drawn from a base null) become negative
    sentinels — one shared sentinel under EQ, a distinct sentinel per
    join row under NEQ (a base null fanned out by a one-to-many step is
    *several* nulls in the join, and under NEQ each agrees with
    nothing).  Equality over this key array is exactly value equality
    on the materialized join column.
    """
    n = len(idx)
    keys = np.empty(n, dtype=np.int64)
    live = idx >= 0
    keys[live] = column.codes[idx[live]]
    is_null = ~live
    if bool(np.any(live)):
        base_null = np.zeros(n, dtype=bool)
        base_null[live] = column.null_mask[idx[live]]
        is_null |= base_null
    if semantics is NullSemantics.EQ:
        keys[is_null] = -1
    else:
        null_rows = np.nonzero(is_null)[0]
        keys[null_rows] = -null_rows - 1
    return keys


def lift_column(
    column: EncodedColumn,
    idx: np.ndarray,
    semantics: NullSemantics,
    backend: Optional[str] = None,
) -> EncodedColumn:
    """Re-strip: densely re-encode a relabelled column in join-row order.

    The result is byte-identical (codes, null mask, cardinality and
    decoder) to ``encode_column`` over the materialized join column:
    codes are assigned in first-occurrence order, nulls follow the
    semantics, and decoder entries are the base decoder's values.
    """
    backend = kernels.resolve_backend(backend)
    if backend == "numpy":
        return _lift_column_numpy(column, idx, semantics)
    return _lift_column_python(column, idx, semantics)


def _lift_column_numpy(
    column: EncodedColumn, idx: np.ndarray, semantics: NullSemantics
) -> EncodedColumn:
    n = len(idx)
    keys = _lift_keys(column, idx, semantics)
    null_mask = keys < 0
    if n == 0:
        return EncodedColumn(
            codes=np.empty(0, dtype=np.int64),
            null_mask=null_mask,
            cardinality=0,
            decoder=(),
        )
    unique, first, inverse = np.unique(
        keys, return_index=True, return_inverse=True
    )
    # np.unique sorts; rank unique values by first occurrence instead so
    # code assignment matches encode_column exactly.
    order = np.argsort(first, kind="stable")
    rank = np.empty(len(unique), dtype=np.int64)
    rank[order] = np.arange(len(unique), dtype=np.int64)
    codes = rank[inverse].astype(np.int64)
    decoder = tuple(
        None if key < 0 else column.decode(int(key)) for key in unique[order]
    )
    return EncodedColumn(
        codes=codes,
        null_mask=null_mask,
        cardinality=int(len(unique)),
        decoder=decoder,
    )


def _lift_column_python(
    column: EncodedColumn, idx: np.ndarray, semantics: NullSemantics
) -> EncodedColumn:
    """Per-row reference lift, mirroring ``encode_column``'s loop."""
    n = len(idx)
    codes = np.empty(n, dtype=np.int64)
    null_mask = np.zeros(n, dtype=bool)
    mapping: Dict[int, int] = {}  # base code -> lifted code
    decoder: List[object] = []
    null_code = -1
    next_code = 0
    for i in range(n):
        base_row = int(idx[i])
        if base_row < 0 or bool(column.null_mask[base_row]):
            null_mask[i] = True
            if semantics is NullSemantics.EQ:
                if null_code < 0:
                    null_code = next_code
                    next_code += 1
                    decoder.append(None)
                codes[i] = null_code
            else:
                codes[i] = next_code
                next_code += 1
                decoder.append(None)
        else:
            base_code = int(column.codes[base_row])
            code = mapping.get(base_code)
            if code is None:
                code = next_code
                mapping[base_code] = code
                next_code += 1
                decoder.append(column.decode(base_code))
            codes[i] = code
    return EncodedColumn(
        codes=codes,
        null_mask=null_mask,
        cardinality=next_code,
        decoder=tuple(decoder),
    )


def lift_partition(
    relation: Relation,
    attrs: AttrSet,
    idx: np.ndarray,
    semantics: NullSemantics,
    backend: Optional[str] = None,
) -> StrippedPartition:
    """Lift ``π_X`` of a base table onto the virtual join's rows.

    Relabel + re-strip on index arrays: base DIIS codes are gathered
    through the provenance index (with null sentinels) and re-grouped
    by the partition kernels — no joined column is ever encoded.  The
    result equals ``StrippedPartition.for_attrs`` on the corresponding
    lifted-relation attributes.
    """
    n = int(len(idx))
    members = attrset.to_list(attrs)
    if n < 2:
        return StrippedPartition(attrs, [], n)
    if not members:
        return StrippedPartition(attrs, [list(range(n))], n)
    keys = [
        _lift_keys(relation.column(a), idx, semantics) for a in members
    ]
    clusters = kernels.refine_clusters(
        keys, [list(range(n))], backend=backend
    )
    return StrippedPartition(attrs, clusters, n)


def lift_relation(
    graph: SchemaGraph,
    provenance: JoinProvenance,
    backend: Optional[str] = None,
) -> Relation:
    """The virtual join as an encoded relation, built purely from lifts.

    Column names are ``"table.column"`` in path order.  Every encoded
    column (and therefore the relation fingerprint) is byte-identical
    to :func:`materialize_join`'s output — but no decoded join row is
    ever created; the only allocations are the lifted code arrays.
    """
    semantics = graph.semantics
    tracer = current_tracer()
    names: List[str] = []
    columns: List[EncodedColumn] = []
    with tracer.span(
        "multitable.lift",
        path="/".join(provenance.tables),
        n_rows=provenance.n_rows,
    ):
        for table in provenance.tables:
            relation = graph.table(table)
            idx = provenance.index[table]
            for attr, name in enumerate(relation.schema.names):
                names.append(f"{table}.{name}")
                columns.append(
                    lift_column(
                        relation.column(attr), idx, semantics, backend=backend
                    )
                )
        tracer.counter("multitable.lift.columns").inc(len(columns))
    return Relation(RelationSchema(names), columns, semantics, provenance.n_rows)


def attribute_tables(
    graph: SchemaGraph, tables: Sequence[str]
) -> List[str]:
    """Owning table of each lifted-relation attribute, in schema order."""
    owners: List[str] = []
    for table in tables:
        owners.extend([table] * graph.table(table).n_cols)
    return owners


# ----------------------------------------------------------------------
# The independent oracle: really build the join
# ----------------------------------------------------------------------


def materialize_join(
    graph: SchemaGraph,
    path: Sequence[str],
    on_dangling: str = "raise",
) -> Relation:
    """Hash-join the path over decoded values and re-encode the result.

    Deliberately shares no code with :func:`build_provenance`: this is
    the differential-testing oracle (and the benchmark's strawman), so
    it works on decoded Python values and pays for full row tuples plus
    a fresh ``Relation.from_rows`` encode.  Emits a
    ``multitable.materialize`` telemetry event — its absence is how the
    benchmark proves the virtual path never built the join.
    """
    policy = resolve_policy(on_dangling)
    steps = graph.resolve_path(path)
    names = [str(p) for p in path]
    semantics = graph.semantics
    tracer = current_tracer()

    def decoded_rows(relation: Relation) -> List[Tuple[object, ...]]:
        cols = [relation.column(a) for a in range(relation.n_cols)]
        return [
            tuple(
                None if col.null_mask[row] else col.decode(int(col.codes[row]))
                for col in cols
            )
            for row in range(relation.n_rows)
        ]

    with tracer.span("multitable.materialize", path="/".join(names)):
        tracer.event("multitable.materialize", path="/".join(names))
        tracer.counter("multitable.materialize.calls").inc()
        offsets: Dict[str, int] = {}
        width = 0
        column_names: List[str] = []
        for name in names:
            offsets[name] = width
            relation = graph.table(name)
            width += relation.n_cols
            column_names.extend(
                f"{name}.{col}" for col in relation.schema.names
            )
        rows: List[Tuple[object, ...]] = decoded_rows(graph.table(names[0]))
        for step in steps:
            child_rel = graph.table(step.fk.child)
            parent_rel = graph.table(step.fk.parent)
            child_attrs = [
                child_rel.schema.resolve(c) for c in step.fk.child_columns
            ]
            parent_attrs = [
                parent_rel.schema.resolve(c) for c in step.fk.parent_columns
            ]
            if step.direction == "forward":
                parent_rows = decoded_rows(parent_rel)
                table: Dict[Tuple[object, ...], Tuple[object, ...]] = {}
                for parent_row in parent_rows:
                    key = tuple(parent_row[a] for a in parent_attrs)
                    if any(v is None for v in key):
                        continue
                    table.setdefault(key, parent_row)
                pad_fill = (None,) * parent_rel.n_cols
                base = offsets[step.source]
                positions = [base + a for a in child_attrs]
                new_rows: List[Tuple[object, ...]] = []
                for row in rows:
                    key = tuple(row[p] for p in positions)
                    if any(v is None for v in key):
                        match = None
                    else:
                        match = table.get(key)
                        if match is None and policy == "raise":
                            raise DanglingRowError(
                                f"dangling value {key!r} in {step.fk.child!r} "
                                f"(foreign key {step.fk.format()})"
                            )
                    if match is not None:
                        new_rows.append(row + match)
                    elif policy == "pad":
                        new_rows.append(row + pad_fill)
                rows = new_rows
            else:  # expand
                child_rows = decoded_rows(child_rel)
                children: Dict[Tuple[object, ...], List[Tuple[object, ...]]] = {}
                for child_row in child_rows:
                    key = tuple(child_row[a] for a in child_attrs)
                    if any(v is None for v in key):
                        continue
                    children.setdefault(key, []).append(child_row)
                pad_fill = (None,) * child_rel.n_cols
                base = offsets[step.source]
                positions = [base + a for a in parent_attrs]
                new_rows = []
                for row in rows:
                    key = tuple(row[p] for p in positions)
                    if any(v is None for v in key):
                        matches: List[Tuple[object, ...]] = []
                    else:
                        matches = children.get(key, [])
                    if matches:
                        for child_row in matches:
                            new_rows.append(row + child_row)
                    elif policy == "pad":
                        new_rows.append(row + pad_fill)
                rows = new_rows
        return Relation.from_rows(rows, schema=column_names, semantics=semantics)
