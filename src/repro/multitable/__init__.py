"""Multi-table FD discovery across key/foreign-key joins.

The subsystem has three layers (see ``docs/multitable.md``):

* :mod:`repro.multitable.schema` — :class:`SchemaGraph`: named base
  relations plus declared/inferred keys and foreign-key edges.
* :mod:`repro.multitable.provenance` — virtual joins as per-table
  provenance index arrays, and the π lift that carries base columns
  and partitions onto the join's rows without materializing it.
* :mod:`repro.multitable.discovery` — :func:`discover_join_fds`: run
  the existing lattice searches and redundancy ranking over the lifted
  relation, tagging each FD intra- vs inter-table.
"""

from .discovery import JoinFD, JoinFDResult, discover_join_fds, fd_scope, fd_tables
from .provenance import (
    PAD,
    POLICIES,
    DanglingRowError,
    JoinProvenance,
    build_provenance,
    lift_column,
    lift_partition,
    lift_relation,
    materialize_join,
    resolve_policy,
)
from .schema import (
    ForeignKey,
    InclusionReport,
    JoinStep,
    MultitableError,
    SchemaGraph,
    inclusion_coverage,
)

__all__ = [
    "PAD",
    "POLICIES",
    "DanglingRowError",
    "ForeignKey",
    "InclusionReport",
    "JoinFD",
    "JoinFDResult",
    "JoinProvenance",
    "JoinStep",
    "MultitableError",
    "SchemaGraph",
    "build_provenance",
    "discover_join_fds",
    "fd_scope",
    "fd_tables",
    "inclusion_coverage",
    "lift_column",
    "lift_partition",
    "lift_relation",
    "materialize_join",
    "resolve_policy",
]
