"""Schema graphs: named relations joined by key/foreign-key edges.

A :class:`SchemaGraph` is the multi-table counterpart of a single
:class:`~repro.relational.relation.Relation`: a set of named base
tables (all encoded under one null semantics) plus the key and
foreign-key structure that makes joins between them well-defined.

* **Keys** are either declared (and validated against the data with a
  stripped-partition uniqueness check, then minimized through
  :func:`~repro.normalize.keys.minimize_superkey`) or inferred as the
  minimal UCCs of the table via
  :func:`~repro.ucc.discovery.discover_uccs` under a ``max_key_arity``
  bound, so wide tables never enumerate the full UCC lattice.
* **Foreign keys** are directed edges ``child[cols] -> parent[cols]``
  whose parent side must be a key.  Edges are either declared or
  inferred by an inclusion-dependency test over the encoded columns
  (:func:`inclusion_coverage`), which treats nulls by the *encoding's*
  null masks — under both EQ and NEQ semantics a null FK value
  references nothing, matching SQL ``FOREIGN KEY`` semantics, and two
  nulls never witness an inclusion.

A **join path** is a sequence of table names in which every consecutive
pair is connected by a foreign-key edge (traversed in either
direction); :meth:`SchemaGraph.resolve_path` validates one into the
step list :mod:`repro.multitable.provenance` executes.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..covers.implication import ImplicationEngine
from ..normalize.keys import minimize_superkey
from ..partitions.stripped import StrippedPartition
from ..relational import attrset
from ..relational.attrset import AttrSet
from ..relational.fd import FD
from ..relational.null import NullSemantics
from ..relational.relation import Relation
from ..ucc.discovery import discover_uccs


class MultitableError(ValueError):
    """A malformed schema graph, key, foreign key, or join path."""


@dataclass(frozen=True)
class ForeignKey:
    """A directed foreign-key edge ``child[child_columns] -> parent[parent_columns]``."""

    child: str
    child_columns: Tuple[str, ...]
    parent: str
    parent_columns: Tuple[str, ...]

    def format(self) -> str:
        return (
            f"{self.child}({', '.join(self.child_columns)}) -> "
            f"{self.parent}({', '.join(self.parent_columns)})"
        )

    def to_payload(self) -> Dict[str, object]:
        return {
            "child": self.child,
            "child_columns": list(self.child_columns),
            "parent": self.parent,
            "parent_columns": list(self.parent_columns),
        }


@dataclass(frozen=True)
class InclusionReport:
    """Outcome of one inclusion-dependency test (child FK ⊆ parent key).

    ``null_rows`` are child rows with a null in any FK column: they
    reference nothing under either null semantics (SQL ``FOREIGN KEY``
    behaviour), so they count toward neither coverage nor violation.
    ``dangling_rows`` carry a fully non-null FK value that appears in
    no parent row.
    """

    total_rows: int
    null_rows: int
    covered_rows: int
    dangling_rows: int

    @property
    def satisfied(self) -> bool:
        """True iff every non-null child FK value exists in the parent."""
        return self.dangling_rows == 0

    @property
    def coverage(self) -> float:
        """Covered share of non-null child rows (1.0 when none exist)."""
        non_null = self.total_rows - self.null_rows
        if non_null <= 0:
            return 1.0
        return self.covered_rows / non_null


def _non_null_key_tuples(
    relation: Relation, attrs: Sequence[int]
) -> Dict[Tuple[object, ...], int]:
    """Map each fully non-null value tuple over ``attrs`` to its first row.

    Works on the encoded columns: a row participates only when every
    component's ``null_mask`` bit is clear, so EQ's shared null code and
    NEQ's fresh-per-occurrence codes are treated identically — a null
    never matches anything.
    """
    columns = [relation.column(a) for a in attrs]
    out: Dict[Tuple[object, ...], int] = {}
    for row in range(relation.n_rows):
        if any(col.null_mask[row] for col in columns):
            continue
        key = tuple(col.decode(int(col.codes[row])) for col in columns)
        if key not in out:
            out[key] = row
    return out


def inclusion_coverage(
    child: Relation,
    child_attrs: Sequence[int],
    parent: Relation,
    parent_attrs: Sequence[int],
) -> InclusionReport:
    """Test the inclusion dependency ``child[child_attrs] ⊆ parent[parent_attrs]``.

    Null semantics are handled consistently with the DIIS encoding:
    membership is decided on decoded values of non-null rows only (the
    per-column ``null_mask``, not code equality), so the answer is
    identical under EQ and NEQ encodings of the same data.
    """
    if len(child_attrs) != len(parent_attrs):
        raise MultitableError(
            f"inclusion arity mismatch: {len(child_attrs)} child vs "
            f"{len(parent_attrs)} parent columns"
        )
    parent_keys = _non_null_key_tuples(parent, parent_attrs)
    columns = [child.column(a) for a in child_attrs]
    null_rows = covered = dangling = 0
    for row in range(child.n_rows):
        if any(col.null_mask[row] for col in columns):
            null_rows += 1
            continue
        key = tuple(col.decode(int(col.codes[row])) for col in columns)
        if key in parent_keys:
            covered += 1
        else:
            dangling += 1
    return InclusionReport(
        total_rows=child.n_rows,
        null_rows=null_rows,
        covered_rows=covered,
        dangling_rows=dangling,
    )


@dataclass(frozen=True)
class JoinStep:
    """One edge traversal of a join path.

    ``forward`` steps go child → parent (many-to-one: each join row
    picks up at most one parent row); ``expand`` steps go parent →
    child (one-to-many: each join row fans out over the referencing
    child rows).
    """

    fk: ForeignKey
    #: "forward" (child -> parent) or "expand" (parent -> child).
    direction: str

    @property
    def source(self) -> str:
        return self.fk.child if self.direction == "forward" else self.fk.parent

    @property
    def target(self) -> str:
        return self.fk.parent if self.direction == "forward" else self.fk.child


class SchemaGraph:
    """Named relations plus their key and foreign-key structure."""

    def __init__(self, semantics: Optional[NullSemantics] = None):
        self.semantics = semantics
        self._tables: Dict[str, Relation] = {}
        self._keys: Dict[str, List[AttrSet]] = {}
        self._fks: List[ForeignKey] = []

    # ------------------------------------------------------------------
    # Tables and keys
    # ------------------------------------------------------------------

    @property
    def tables(self) -> Dict[str, Relation]:
        return dict(self._tables)

    @property
    def foreign_keys(self) -> List[ForeignKey]:
        return list(self._fks)

    def table(self, name: str) -> Relation:
        try:
            return self._tables[name]
        except KeyError:
            raise MultitableError(f"unknown table {name!r}") from None

    def add_table(
        self,
        name: str,
        relation: Relation,
        key: Optional[Sequence[str]] = None,
        max_key_arity: int = 3,
    ) -> List[AttrSet]:
        """Register a table; returns its candidate keys.

        A declared ``key`` is validated for uniqueness with a stripped
        partition and minimized through
        :func:`~repro.normalize.keys.minimize_superkey` over the FDs
        induced by the table's bounded minimal UCCs; with no declared
        key the bounded UCCs *are* the keys.
        """
        if not name or "." in name or "/" in name:
            raise MultitableError(
                f"table name must be non-empty and contain no '.' or '/', got {name!r}"
            )
        if name in self._tables:
            raise MultitableError(f"table {name!r} already registered")
        if self.semantics is None:
            self.semantics = relation.semantics
        elif relation.semantics is not self.semantics:
            raise MultitableError(
                f"table {name!r} uses {relation.semantics.value!r} null semantics "
                f"but the graph uses {self.semantics.value!r}"
            )
        n_cols = relation.n_cols
        inferred = discover_uccs(relation, max_arity=max_key_arity).uccs
        if key is not None:
            declared = attrset.from_attrs(
                relation.schema.resolve(c) for c in key
            )
            if not StrippedPartition.for_attrs(relation, declared).is_key():
                raise MultitableError(
                    f"declared key ({', '.join(key)}) of table {name!r} "
                    "does not uniquely identify its rows"
                )
            # Minimize through the implication engine over the FDs the
            # bounded UCCs induce (every UCC determines the whole
            # schema); when the declared key exceeds the arity bound
            # the engine may not shrink it — it is still a valid key.
            ucc_fds = [
                FD(ucc, attrset.singleton(attr))
                for ucc in inferred
                for attr in range(n_cols)
                if not attrset.contains(ucc, attr)
            ]
            engine = ImplicationEngine(ucc_fds)
            minimized = minimize_superkey(declared, n_cols, engine)
            if not StrippedPartition.for_attrs(relation, minimized).is_key():
                minimized = declared  # implication engine was too coarse
            keys = [minimized]
        else:
            keys = sorted(inferred)
            if not keys or keys == [attrset.EMPTY]:
                keys = [attrset.full_set(n_cols)] if n_cols else []
        self._tables[name] = relation
        self._keys[name] = keys
        return list(keys)

    def keys(self, name: str) -> List[AttrSet]:
        """Candidate keys of a table (declared-minimized or inferred)."""
        self.table(name)
        return list(self._keys[name])

    def primary_key(self, name: str) -> Tuple[str, ...]:
        """Column names of the table's first candidate key."""
        relation = self.table(name)
        keys = self._keys[name]
        if not keys:
            raise MultitableError(f"table {name!r} has no key")
        return tuple(
            relation.schema.names[a] for a in attrset.to_list(keys[0])
        )

    # ------------------------------------------------------------------
    # Foreign keys
    # ------------------------------------------------------------------

    def _resolve_columns(self, name: str, columns: Sequence[str]) -> Tuple[int, ...]:
        relation = self.table(name)
        try:
            return tuple(relation.schema.resolve(c) for c in columns)
        except Exception as exc:
            raise MultitableError(
                f"table {name!r} has no column(s) {list(columns)}: {exc}"
            ) from None

    def add_foreign_key(
        self,
        child: str,
        child_columns: Sequence[str],
        parent: str,
        parent_columns: Optional[Sequence[str]] = None,
        require_inclusion: bool = True,
    ) -> ForeignKey:
        """Declare ``child[child_columns] -> parent[parent_columns]``.

        The parent side must uniquely identify the parent's rows.  With
        ``require_inclusion`` (default) a dangling child value is an
        error; pass ``False`` for dirty data — the discovery layer's
        ``on_dangling`` policy then decides per join what happens to
        the violating rows.
        """
        if parent_columns is None:
            parent_columns = self.primary_key(parent)
        child_attrs = self._resolve_columns(child, child_columns)
        parent_attrs = self._resolve_columns(parent, parent_columns)
        if len(child_attrs) != len(parent_attrs):
            raise MultitableError(
                f"foreign key arity mismatch: {len(child_attrs)} child vs "
                f"{len(parent_attrs)} parent columns"
            )
        parent_mask = attrset.from_attrs(parent_attrs)
        if not StrippedPartition.for_attrs(self.table(parent), parent_mask).is_key():
            raise MultitableError(
                f"foreign key target {parent}({', '.join(parent_columns)}) "
                "is not unique — the referenced columns must form a key"
            )
        report = inclusion_coverage(
            self.table(child), child_attrs, self.table(parent), parent_attrs
        )
        if require_inclusion and not report.satisfied:
            raise MultitableError(
                f"inclusion violated: {report.dangling_rows} dangling row(s) in "
                f"{child}({', '.join(child_columns)}) not covered by "
                f"{parent}({', '.join(parent_columns)}) "
                "(pass require_inclusion=False for dirty data)"
            )
        fk = ForeignKey(
            child=child,
            child_columns=tuple(child_columns),
            parent=parent,
            parent_columns=tuple(parent_columns),
        )
        if fk not in self._fks:
            self._fks.append(fk)
        return fk

    def infer_foreign_keys(self) -> List[ForeignKey]:
        """Infer unary foreign keys by exact inclusion testing.

        For every single-column key of every table, any column of any
        *other* table whose non-null values are fully included becomes a
        foreign-key edge.  Deterministic order: sorted by (child table,
        child column, parent table).
        """
        added: List[ForeignKey] = []
        candidates: List[Tuple[str, str, str, str]] = []
        for parent in sorted(self._tables):
            parent_rel = self._tables[parent]
            unary_keys = [
                attrset.to_list(k)[0]
                for k in self._keys[parent]
                if attrset.count(k) == 1
            ]
            for key_attr in unary_keys:
                parent_col = parent_rel.schema.names[key_attr]
                for child in sorted(self._tables):
                    if child == parent:
                        continue
                    for child_col in self._tables[child].schema.names:
                        candidates.append((child, child_col, parent, parent_col))
        for child, child_col, parent, parent_col in sorted(candidates):
            fk = ForeignKey(child, (child_col,), parent, (parent_col,))
            if fk in self._fks:
                continue
            report = inclusion_coverage(
                self.table(child),
                self._resolve_columns(child, (child_col,)),
                self.table(parent),
                self._resolve_columns(parent, (parent_col,)),
            )
            # An all-null column is vacuously included in everything;
            # demand at least one covered row so the edge means something.
            if report.satisfied and report.covered_rows > 0:
                self._fks.append(fk)
                added.append(fk)
        return added

    # ------------------------------------------------------------------
    # Join paths
    # ------------------------------------------------------------------

    def resolve_path(self, path: Sequence[str]) -> List[JoinStep]:
        """Validate a join path into its ordered edge traversals.

        Every consecutive pair of tables must be connected by a
        foreign-key edge; the edge is traversed child → parent
        (``forward``) or parent → child (``expand``) as needed.  With
        several connecting edges the lexicographically first is used.
        """
        names = [str(p) for p in path]
        if len(names) < 2:
            raise MultitableError(
                f"a join path needs at least two tables, got {names}"
            )
        if len(set(names)) != len(names):
            raise MultitableError(f"join path repeats a table: {names}")
        for name in names:
            self.table(name)
        steps: List[JoinStep] = []
        for source, target in zip(names, names[1:]):
            forward = sorted(
                (fk for fk in self._fks if fk.child == source and fk.parent == target),
                key=lambda fk: (fk.child_columns, fk.parent_columns),
            )
            expand = sorted(
                (fk for fk in self._fks if fk.child == target and fk.parent == source),
                key=lambda fk: (fk.child_columns, fk.parent_columns),
            )
            if forward:
                steps.append(JoinStep(fk=forward[0], direction="forward"))
            elif expand:
                steps.append(JoinStep(fk=expand[0], direction="expand"))
            else:
                raise MultitableError(
                    f"no foreign-key edge connects {source!r} and {target!r}"
                )
        return steps

    # ------------------------------------------------------------------
    # Identity / description
    # ------------------------------------------------------------------

    def fingerprint(self) -> str:
        """Stable SHA-256 over table contents, keys and FK edges.

        Table *names* participate (they name the lifted columns), so
        two graphs over identical relations under different aliases are
        distinct — their join-FD results print differently.
        """
        digest = hashlib.sha256()
        digest.update(b"repro-schema-graph-v1")
        if self.semantics is not None:
            digest.update(self.semantics.value.encode("utf-8"))
        for name in sorted(self._tables):
            digest.update(b"\x00" + name.encode("utf-8"))
            digest.update(self._tables[name].fingerprint().encode("ascii"))
            for key in self._keys[name]:
                digest.update(b"\x01" + str(key).encode("ascii"))
        for fk in sorted(
            self._fks,
            key=lambda f: (f.child, f.child_columns, f.parent, f.parent_columns),
        ):
            digest.update(b"\x02" + fk.format().encode("utf-8"))
        return digest.hexdigest()

    def describe(self) -> Dict[str, object]:
        """JSON-friendly summary (service listings, CLI output)."""
        tables = {}
        for name in sorted(self._tables):
            relation = self._tables[name]
            tables[name] = {
                "n_rows": relation.n_rows,
                "n_cols": relation.n_cols,
                "columns": relation.schema.names,
                "keys": [
                    [relation.schema.names[a] for a in attrset.to_list(key)]
                    for key in self._keys[name]
                ],
            }
        return {
            "fingerprint": self.fingerprint(),
            "semantics": self.semantics.value if self.semantics else None,
            "tables": tables,
            "foreign_keys": [fk.to_payload() for fk in self._fks],
        }
