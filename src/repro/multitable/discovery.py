"""FD discovery over virtual joins: lift, search, rank, tag.

:func:`discover_join_fds` is the multi-table entry point: it computes
the join's row provenance (:func:`~repro.multitable.provenance.build_provenance`),
lifts the base tables' columns/partitions onto the join rows, runs one
of the existing single-relation lattice searches (DHyFD, TANE, ...)
over the lifted codes, ranks the cover by redundancy, and tags every
FD with the base tables its attributes come from — separating FDs the
base tables already imply (``intra``) from the genuinely inter-table
dependencies the join surfaces (``inter``).

Because the lifted relation is code- and fingerprint-identical to the
materialized join (see :mod:`repro.multitable.provenance`), the cover,
the ranked order, and any ``top_k`` cut are byte-identical to running
the same algorithm on ``materialize_join``'s output — without ever
building a joined row.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..algorithms.registry import make_algorithm
from ..core.result import DiscoveryResult
from ..ranking.ranker import RankedFD, RankingResult, rank_cover
from ..relational import attrset
from ..relational.fd import FD
from ..relational.relation import Relation
from ..telemetry import current_tracer
from .provenance import (
    JoinProvenance,
    attribute_tables,
    build_provenance,
    lift_relation,
)
from .schema import SchemaGraph


def fd_tables(fd: FD, owners: Sequence[str]) -> Tuple[str, ...]:
    """The distinct base tables an FD's attributes come from, in path order."""
    seen: List[str] = []
    for attr in attrset.iter_attrs(fd.lhs | fd.rhs):
        table = owners[attr]
        if table not in seen:
            seen.append(table)
    return tuple(seen)


def fd_scope(fd: FD, owners: Sequence[str]) -> str:
    """``"intra"`` if the FD lives inside one base table, else ``"inter"``."""
    return "intra" if len(fd_tables(fd, owners)) == 1 else "inter"


@dataclass(frozen=True)
class JoinFD:
    """One ranked join FD with its origin tables."""

    ranked: RankedFD
    #: "intra" (one base table) or "inter" (spans tables).
    scope: str
    #: Distinct base tables of the FD's attributes, in path order.
    tables: Tuple[str, ...]

    @property
    def fd(self) -> FD:
        return self.ranked.fd


@dataclass
class JoinFDResult:
    """Everything :func:`discover_join_fds` learned about one join path."""

    graph_fingerprint: str
    path: Tuple[str, ...]
    policy: str
    algorithm: str
    relation: Relation
    provenance: JoinProvenance
    discovery: DiscoveryResult
    ranking: RankingResult
    #: Owning base table of each lifted attribute, in schema order.
    attribute_owners: List[str]
    top_k: Optional[int] = None

    @property
    def fds(self) -> List[JoinFD]:
        """The ranked cover, tagged with per-FD scope and origin tables."""
        return [
            JoinFD(
                ranked=entry,
                scope=fd_scope(entry.fd, self.attribute_owners),
                tables=fd_tables(entry.fd, self.attribute_owners),
            )
            for entry in self.ranking.ranked
        ]

    @property
    def intra_count(self) -> int:
        return sum(1 for fd in self.fds if fd.scope == "intra")

    @property
    def inter_count(self) -> int:
        return sum(1 for fd in self.fds if fd.scope == "inter")

    def format_fds(self) -> List[str]:
        """Human-readable ranked cover with scope tags."""
        schema = self.relation.schema
        lines = []
        for entry in self.fds:
            lines.append(
                f"[{entry.scope}] {entry.fd.format(schema)} "
                f"(redundancy={entry.ranked.redundancy})"
            )
        return lines

    def payload(self) -> Dict[str, object]:
        """JSON-friendly summary (service responses, CLI ``--json``)."""
        schema = self.relation.schema
        return {
            "schema": self.graph_fingerprint,
            "path": list(self.path),
            "on_dangling": self.policy,
            "algorithm": self.algorithm,
            "n_join_rows": self.provenance.n_rows,
            "dropped_rows": self.provenance.dropped_rows,
            "padded_cells": self.provenance.padded_cells,
            "columns": schema.names,
            "top_k": self.top_k,
            "intra_count": self.intra_count,
            "inter_count": self.inter_count,
            "fds": [
                {
                    "lhs": [schema.names[a] for a in attrset.iter_attrs(e.fd.lhs)],
                    "rhs": [schema.names[a] for a in attrset.iter_attrs(e.fd.rhs)],
                    "redundancy": e.ranked.redundancy,
                    "redundancy_excluding_null": e.ranked.redundancy_excluding_null,
                    "scope": e.scope,
                    "tables": list(e.tables),
                }
                for e in self.fds
            ],
        }


def discover_join_fds(
    graph: SchemaGraph,
    path: Sequence[str],
    algorithm: str = "dhyfd",
    on_dangling: str = "raise",
    top_k: Optional[int] = None,
    jobs: Optional[int] = None,
    backend: Optional[str] = None,
    time_limit: Optional[float] = None,
    **kwargs,
) -> JoinFDResult:
    """Discover and rank the FDs of a virtual join.

    The full left-reduced cover is discovered over the lifted relation,
    then ranked by descending redundancy with the paper's
    ``(-redundancy, lhs, rhs)`` order; ``top_k`` bounds the *ranking*
    to its first k entries (the discovery itself stays exact, so
    results are byte-identical to ranking the materialized join and
    cutting at k).  Extra keyword arguments reach the algorithm
    constructor (e.g. ``ratio_threshold`` for DHyFD).
    """
    provenance = build_provenance(
        graph, path, on_dangling=on_dangling, backend=backend
    )
    lifted = lift_relation(graph, provenance, backend=backend)
    tracer = current_tracer()
    with tracer.span(
        "multitable.discover",
        path="/".join(provenance.tables),
        algorithm=algorithm,
        n_rows=lifted.n_rows,
    ):
        algo_kwargs = dict(kwargs)
        if jobs is not None:
            algo_kwargs["jobs"] = jobs
        if backend is not None:
            algo_kwargs["backend"] = backend
        algo = make_algorithm(algorithm, time_limit=time_limit, **algo_kwargs)
        discovery = algo.discover(lifted)
        ranking = rank_cover(lifted, discovery.fds, top_k=top_k, jobs=jobs)
    return JoinFDResult(
        graph_fingerprint=graph.fingerprint(),
        path=provenance.tables,
        policy=provenance.policy,
        algorithm=discovery.algorithm,
        relation=lifted,
        provenance=provenance,
        discovery=discovery,
        ranking=ranking,
        attribute_owners=attribute_tables(graph, provenance.tables),
        top_k=top_k,
    )
