"""Process-pool execution layer with shared-memory relation transport.

See :mod:`repro.parallel.pool` for the execution and failure model and
``docs/parallel.md`` for the architecture write-up.
"""

from .config import (
    DEFAULT_MIN_BATCH,
    DEFAULT_MIN_PARALLEL_ITEMS,
    DEFAULT_MIN_PARALLEL_ROWS,
    ENV_JOBS,
    get_default_jobs,
    resolve_jobs,
    set_default_jobs,
    use_jobs,
)
from .merge import merge_validation_outcomes, pack_row_mask, unpack_row_mask
from .pool import (
    ENV_FAULT_INJECT,
    ParallelExecutor,
    PoolBrokenError,
    chunk_items,
    redundancy_row_masks,
    sample_initial,
    validate_level,
)
from .shm import SharedRelationBuffers, SharedRelationView, ShmSpec

__all__ = [
    "DEFAULT_MIN_BATCH",
    "DEFAULT_MIN_PARALLEL_ITEMS",
    "DEFAULT_MIN_PARALLEL_ROWS",
    "ENV_FAULT_INJECT",
    "ENV_JOBS",
    "ParallelExecutor",
    "PoolBrokenError",
    "SharedRelationBuffers",
    "SharedRelationView",
    "ShmSpec",
    "chunk_items",
    "get_default_jobs",
    "merge_validation_outcomes",
    "pack_row_mask",
    "redundancy_row_masks",
    "resolve_jobs",
    "sample_initial",
    "set_default_jobs",
    "unpack_row_mask",
    "use_jobs",
    "validate_level",
]
