"""Shared-memory worker pool for validation, ranking and sampling.

Execution model
---------------

The parent copies the relation's code and null matrices into shared
memory once (:mod:`repro.parallel.shm`), spins up a
:class:`concurrent.futures.ProcessPoolExecutor` whose initializer
attaches every worker to those segments, and then ships *work items* —
candidate ``(LHS, RHS, partition)`` triples, FD LHSs, or per-attribute
cluster lists — batched by :func:`chunk_items` to amortize dispatch
overhead.  Partitions travel as flat ``(rows, lengths)`` index arrays
(:func:`repro.partitions.kernels.flatten_clusters`); workers rebuild
them and run the exact serial primitives (``validate_fd``,
``redundant_rows_for_lhs``, the sorted-neighborhood helpers) against
the shared view.  Results come back tagged with their item index and
are merged in submission order by the reducers in
:mod:`repro.parallel.merge`, so the combined covers, stats and masks
are byte-identical for any worker count.

Failure model
-------------

Any pool-level failure — a worker killed mid-task, a failed fork, an
unpicklable payload — first gets a bounded retry: the pool is torn
down (the shared-memory buffers are kept), the parent backs off
briefly, emits a ``pool_retry`` telemetry event, and replays the whole
batch set on a fresh pool.  Only when every attempt fails is the
executor marked *broken*, a ``parallel_fallback`` event emitted and
:class:`PoolBrokenError` raised.  Call sites catch it and rerun the
same work serially: a dying worker degrades throughput, never the
result.  Batch results and worker telemetry are only consumed after a
fully successful attempt, so retries cannot double-count.

Telemetry
---------

The context-local tracer does not cross process boundaries, so each
worker batch runs under its own private tracer (when the parent's is
enabled) and returns a flat summary — completed span timings plus
counter totals (including the ``kernels.*`` call counters).  The
parent replays those through
:meth:`~repro.telemetry.Tracer.record_completed` and its own counter
registry, so a traced parallel run still shows where the time went.
"""

from __future__ import annotations

import math
import multiprocessing as mp
import os
import time
from concurrent.futures import ProcessPoolExecutor
from typing import Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from ..partitions import kernels
from ..relational import attrset
from ..relational.attrset import AttrSet
from ..resilience import faults
from ..telemetry import Tracer, current_tracer, use_tracer
from .config import (
    DEFAULT_MIN_BATCH,
    DEFAULT_POOL_RETRIES,
    DEFAULT_POOL_RETRY_BACKOFF,
    resolve_jobs,
)
from .merge import pack_row_mask, unpack_row_mask
from .shm import SharedRelationBuffers, SharedRelationView

#: Legacy spelling of the ``worker.crash`` fault point: setting this to
#: ``"crash"`` makes every worker batch hard-exit before doing any work.
#: Kept for compatibility; see :mod:`repro.resilience.faults`.
ENV_FAULT_INJECT = faults.ENV_FAULT_INJECT_LEGACY


class PoolBrokenError(RuntimeError):
    """The worker pool is unusable; the caller should run serially."""


# ----------------------------------------------------------------------
# Worker side
# ----------------------------------------------------------------------

_worker_view: Optional[SharedRelationView] = None


def _init_worker(spec, unregister: bool) -> None:
    """Pool initializer: attach this worker to the shared relation."""
    global _worker_view
    _worker_view = SharedRelationView(spec, unregister=unregister)


def _summarize_tracer(tracer: Optional[Tracer]) -> Optional[dict]:
    """Flatten a worker tracer into a small picklable summary."""
    if tracer is None:
        return None
    return {
        "spans": [
            (span.name, float(span.duration or 0.0), dict(span.attrs))
            for span, _depth in tracer.walk()
        ],
        "counters": {
            name: counter.value
            for name, counter in tracer.metrics.counters.items()
        },
    }


def _validate_batch(view: SharedRelationView, payload: dict) -> list:
    from ..core.validation import validate_fd
    from ..partitions.stripped import StrippedPartition

    backend = payload["backend"]
    out = []
    for index, lhs, rhs, part_attrs, rows, lengths in payload["items"]:
        partition = StrippedPartition.from_flat(
            part_attrs, rows, lengths, view.n_rows
        )
        outcome = validate_fd(view, lhs, rhs, partition, backend=backend)
        out.append(
            (index, outcome.valid_rhs, sorted(outcome.non_fd_lhs), outcome.comparisons)
        )
    return out


def _redundancy_batch(view: SharedRelationView, payload: dict) -> list:
    from ..partitions.stripped import StrippedPartition
    from ..ranking.redundancy import NullPolicy, redundant_rows_for_lhs

    backend = payload["backend"]
    policy = NullPolicy(payload["policy"])
    out = []
    for index, lhs in payload["items"]:
        partition = StrippedPartition.for_attrs(view, lhs, backend=backend)
        rows_mask = redundant_rows_for_lhs(view, partition, policy)
        out.append((index, pack_row_mask(rows_mask)))
    return out


def _sample_batch(view: SharedRelationView, payload: dict) -> list:
    from ..core.sampling import row_sort_keys, sort_clusters_by_content, window_pairs

    backend = payload["backend"]
    matrix = view.matrix()
    row_keys = row_sort_keys(matrix)
    full = attrset.full_set(view.n_cols)
    masks: Set[AttrSet] = set()
    comparisons = 0
    for _attr, rows, lengths in payload["items"]:
        clusters = kernels.unflatten_clusters(rows, lengths)
        sorted_clusters = sort_clusters_by_content(clusters, row_keys)
        pairs = window_pairs(sorted_clusters, window=1)
        if pairs is None:
            continue
        rows_a, rows_b = pairs
        comparisons += len(rows_a)
        for agree in kernels.agree_masks(matrix, rows_a, rows_b, backend=backend):
            if agree != full:
                masks.add(agree)
    return [(sorted(masks), comparisons)]


_HANDLERS = {
    "validate": _validate_batch,
    "redundancy": _redundancy_batch,
    "sample": _sample_batch,
}


def _run_batch(payload: dict) -> dict:
    """Worker entry point: execute one batch, optionally under a tracer."""
    if faults.armed() and faults.should_fire("worker.crash"):
        os._exit(86)
    tracer = Tracer() if payload["collect"] else None
    handler = _HANDLERS[payload["kind"]]
    with use_tracer(tracer):
        with current_tracer().span(
            "parallel.batch",
            kind=payload["kind"],
            items=len(payload["items"]),
            pid=os.getpid(),
        ):
            results = handler(_worker_view, payload)
    return {"results": results, "telemetry": _summarize_tracer(tracer)}


# ----------------------------------------------------------------------
# Parent side
# ----------------------------------------------------------------------


def chunk_items(
    items: Sequence,
    jobs: int,
    min_batch: int = DEFAULT_MIN_BATCH,
    batches_per_worker: int = 4,
) -> List[Sequence]:
    """Split work items into per-task batches.

    Batches are at least ``min_batch`` items (dispatch amortization) but
    small enough that each worker sees roughly ``batches_per_worker``
    of them (load balancing across uneven item costs).
    """
    n = len(items)
    if n == 0:
        return []
    size = max(1, min_batch, math.ceil(n / max(1, jobs * batches_per_worker)))
    return [items[start:start + size] for start in range(0, n, size)]


def _replay_summary(tracer, summary: Optional[dict]) -> None:
    """Replay a worker's span/counter summary onto the parent tracer."""
    if summary is None or not tracer.enabled:
        return
    for name, duration, attrs in summary["spans"]:
        tracer.record_completed(name, duration, **attrs)
    for name, value in summary["counters"].items():
        tracer.metrics.counter(name).inc(value)


class ParallelExecutor:
    """A per-run process pool sharing one relation with its workers.

    Created lazily: the shared-memory copy and the pool itself only
    materialize on the first :meth:`run` call, so constructing an
    executor that never dispatches costs nothing.  Close it (or use it
    as a context manager) to release the shared segments.
    """

    def __init__(
        self,
        relation,
        jobs: Optional[int] = None,
        backend: Optional[str] = None,
        min_batch: Optional[int] = None,
        retries: Optional[int] = None,
        retry_backoff: Optional[float] = None,
    ):
        self.relation = relation
        self.jobs = resolve_jobs(jobs)
        #: Backend resolved eagerly so workers use the parent's default
        #: even under spawn (which re-imports and would re-read the env).
        self.backend = kernels.resolve_backend(backend)
        self.min_batch = DEFAULT_MIN_BATCH if min_batch is None else max(1, min_batch)
        self.retries = DEFAULT_POOL_RETRIES if retries is None else max(0, retries)
        self.retry_backoff = (
            DEFAULT_POOL_RETRY_BACKOFF if retry_backoff is None else retry_backoff
        )
        self.broken = False
        self.disabled = False
        self.batches_dispatched = 0
        self.items_dispatched = 0
        self._buffers: Optional[SharedRelationBuffers] = None
        self._pool: Optional[ProcessPoolExecutor] = None

    @property
    def active(self) -> bool:
        """True while the executor can accept work (jobs > 1, healthy)."""
        return self.jobs > 1 and not self.broken and not self.disabled

    def disable(self) -> int:
        """Degradation hook: shut the pool down and refuse further work.

        Unlike a broken pool this is deliberate — the memory sentinel's
        last ladder rung trades parallel throughput for the worker
        processes' memory.  Returns 0 (frees no *tracked* bytes).
        """
        if not self.disabled:
            self.disabled = True
            self._shutdown()
            current_tracer().event("parallel_disabled", jobs=self.jobs)
        return 0

    def _ensure_pool(self) -> None:
        if self._pool is not None:
            return
        if self._buffers is None:
            self._buffers = SharedRelationBuffers(self.relation)
        method = "fork" if "fork" in mp.get_all_start_methods() else "spawn"
        self._pool = ProcessPoolExecutor(
            max_workers=self.jobs,
            mp_context=mp.get_context(method),
            initializer=_init_worker,
            # Spawn-started workers get their own resource tracker and
            # must unregister the attachment; fork-started workers share
            # the parent's (see shm._attach).
            initargs=(self._buffers.spec, method != "fork"),
        )

    def run(
        self,
        kind: str,
        items: Sequence,
        extra: Optional[Dict[str, object]] = None,
        min_batch: Optional[int] = None,
        batches_per_worker: int = 4,
    ) -> list:
        """Dispatch ``items`` as chunked ``kind`` batches and gather results.

        Returns the concatenated per-item result tuples (each tagged
        with its item index by the worker).  Raises
        :class:`PoolBrokenError` on any pool failure, after marking the
        executor broken and emitting a ``parallel_fallback`` event.
        """
        if not self.active:
            raise PoolBrokenError(
                f"executor inactive (jobs={self.jobs}, broken={self.broken}, "
                f"disabled={self.disabled})"
            )
        tracer = current_tracer()
        collect = bool(tracer.enabled)
        batch_size = self.min_batch if min_batch is None else max(1, min_batch)
        for attempt in range(1 + self.retries):
            try:
                return self._run_once(
                    kind, items, extra, batch_size, batches_per_worker,
                    tracer, collect,
                )
            except PoolBrokenError:
                raise
            except Exception as exc:
                if attempt < self.retries:
                    tracer.event(
                        "pool_retry",
                        kind=kind,
                        attempt=attempt + 1,
                        retries=self.retries,
                        jobs=self.jobs,
                        error=type(exc).__name__,
                    )
                    self._teardown_pool()
                    time.sleep(self.retry_backoff * (attempt + 1))
                else:
                    self._mark_broken(kind, exc)
                    raise PoolBrokenError(
                        f"worker pool failed during {kind!r} after "
                        f"{1 + self.retries} attempts: {exc!r}"
                    ) from exc

    def _run_once(
        self,
        kind: str,
        items: Sequence,
        extra: Optional[Dict[str, object]],
        batch_size: int,
        batches_per_worker: int,
        tracer,
        collect: bool,
    ) -> list:
        """One full dispatch attempt; telemetry replays only on success."""
        # Leak-regression hook: an armed ``pool.broken`` fault fails the
        # attempt exactly like a pool-level crash, driving the retry →
        # mark-broken → shutdown path that must release the shared
        # buffers (lease or private segments) without orphans.
        faults.fire("pool.broken")
        self._ensure_pool()
        batches = chunk_items(items, self.jobs, batch_size, batches_per_worker)
        futures = [
            self._pool.submit(
                _run_batch,
                {
                    "kind": kind,
                    "backend": self.backend,
                    "collect": collect,
                    "items": list(batch),
                    **(extra or {}),
                },
            )
            for batch in batches
        ]
        merged: list = []
        summaries: List[Optional[dict]] = []
        for future in futures:
            reply = future.result()
            merged.extend(reply["results"])
            summaries.append(reply["telemetry"])
        # Replay worker telemetry only after every batch came back — a
        # retried attempt must not double-count partial successes.
        for summary in summaries:
            _replay_summary(tracer, summary)
        self.batches_dispatched += len(batches)
        self.items_dispatched += len(items)
        return merged

    def _mark_broken(self, kind: str, exc: Exception) -> None:
        self.broken = True
        current_tracer().event(
            "parallel_fallback",
            kind=kind,
            jobs=self.jobs,
            error=type(exc).__name__,
        )
        self._shutdown()

    def _teardown_pool(self) -> None:
        """Kill the worker pool but keep the shared-memory buffers.

        Used between retry attempts: rebuilding the pool is cheap, the
        relation copy in shared memory is not.
        """
        if self._pool is not None:
            try:
                self._pool.shutdown(wait=True, cancel_futures=True)
            except Exception:
                pass
            self._pool = None

    def _shutdown(self) -> None:
        self._teardown_pool()
        if self._buffers is not None:
            self._buffers.close()
            self._buffers = None

    def close(self) -> None:
        """Shut the pool down and unlink the shared segments (idempotent)."""
        self._shutdown()

    def __enter__(self) -> "ParallelExecutor":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:
        state = "broken" if self.broken else ("idle" if self._pool is None else "up")
        return f"ParallelExecutor(jobs={self.jobs}, {state})"


# ----------------------------------------------------------------------
# High-level wrappers (one per wired subsystem)
# ----------------------------------------------------------------------


def validate_level(
    executor: ParallelExecutor,
    items: Sequence[Tuple[AttrSet, AttrSet, object]],
) -> list:
    """Validate ``(lhs, rhs, partition)`` candidates across the pool.

    Returns one :class:`~repro.core.validation.ValidationResult` per
    item, in input order.
    """
    from ..core.validation import ValidationResult

    payload_items = []
    for index, (lhs, rhs, partition) in enumerate(items):
        rows, lengths = kernels.flatten_clusters(partition.clusters)
        payload_items.append((index, lhs, rhs, partition.attrs, rows, lengths))
    raw = executor.run("validate", payload_items)
    results: List[Optional[ValidationResult]] = [None] * len(payload_items)
    for index, valid_rhs, non_fds, comparisons in raw:
        results[index] = ValidationResult(valid_rhs, set(non_fds), comparisons)
    if any(result is None for result in results):
        raise PoolBrokenError("worker pool returned an incomplete result set")
    return results


def redundancy_row_masks(
    executor: ParallelExecutor,
    lhs_list: Sequence[AttrSet],
    policy,
) -> List[np.ndarray]:
    """Per-LHS redundant-row masks, one FD LHS per task (input order).

    Workers build ``π_LHS`` from the shared matrix themselves — the
    partition construction is the expensive part being parallelized —
    and return bit-packed row masks the parent unpacks and OR-merges.
    """
    payload_items = [(index, lhs) for index, lhs in enumerate(lhs_list)]
    raw = executor.run(
        "redundancy",
        payload_items,
        extra={"policy": policy.value},
        min_batch=1,
        batches_per_worker=8,
    )
    n_rows = executor.relation.n_rows
    masks: List[Optional[np.ndarray]] = [None] * len(payload_items)
    for index, packed in raw:
        masks[index] = unpack_row_mask(packed, n_rows)
    if any(mask is None for mask in masks):
        raise PoolBrokenError("worker pool returned an incomplete result set")
    return masks


def sample_initial(
    executor: ParallelExecutor,
    partitions: Sequence,
) -> Tuple[Set[AttrSet], int]:
    """Window-1 sorted-neighborhood sampling split across workers.

    Each task covers a chunk of attributes (whole singleton partitions);
    the merged agree-set union and comparison total are identical to
    the serial sampler's first round.
    """
    payload_items = []
    for attr, partition in enumerate(partitions):
        rows, lengths = kernels.flatten_clusters(partition.clusters)
        payload_items.append((attr, rows, lengths))
    # One task per worker when possible: every sampling task pays a full
    # row-key computation, so fewer, larger tasks win here.
    per_task = max(1, math.ceil(len(payload_items) / max(1, executor.jobs)))
    raw = executor.run(
        "sample", payload_items, min_batch=per_task, batches_per_worker=1
    )
    masks: Set[AttrSet] = set()
    comparisons = 0
    for batch_masks, batch_comparisons in raw:
        masks.update(batch_masks)
        comparisons += batch_comparisons
    return masks, comparisons
