"""Worker-count resolution and tuning knobs for the parallel layer.

The effective job count is resolved per call site, in precedence order:

1. an explicit ``jobs=`` argument (``DHyFD(jobs=4)``),
2. the process-wide default set by :func:`set_default_jobs` (the CLI's
   ``--jobs`` flag does this),
3. the ``REPRO_FD_JOBS`` environment variable,
4. serial (``1``).

``0`` or ``"auto"`` at any of those levels means "one worker per CPU
core".  The environment variable is read lazily on every resolution so
tests (and long-lived embedding processes) can change it at runtime.

The ``DEFAULT_MIN_PARALLEL_*`` thresholds gate when call sites bother
to spin up a pool at all: below them the per-task work is too small to
amortize process dispatch, so the serial path runs even when ``jobs``
asks for more workers.
"""

from __future__ import annotations

import os
from typing import Optional, Union

#: Environment variable naming the default worker count.
ENV_JOBS = "REPRO_FD_JOBS"

#: Relations with fewer rows than this never go parallel — the shared
#: memory setup plus dispatch would dominate the work being shipped.
DEFAULT_MIN_PARALLEL_ROWS = 1024

#: A parallel call needs at least this many independent work items
#: (candidate nodes, unique FD LHSs, ...) to be worth dispatching.
DEFAULT_MIN_PARALLEL_ITEMS = 4

#: Minimum work items bundled into one pool task (dispatch amortization).
DEFAULT_MIN_BATCH = 8

#: Pool-failure retry attempts before falling back to the serial path.
DEFAULT_POOL_RETRIES = 2

#: Base backoff (seconds) between pool retries; scaled by attempt number.
DEFAULT_POOL_RETRY_BACKOFF = 0.05

_default_jobs: Optional[int] = None


def _parse_jobs(value: Union[int, str], source: str) -> int:
    """Normalize a jobs value; ``0``/``"auto"`` mean one-per-core."""
    if isinstance(value, str):
        text = value.strip().lower()
        if text == "auto":
            return 0
        try:
            value = int(text)
        except ValueError:
            raise ValueError(
                f"{source} must be a non-negative integer or 'auto', got {value!r}"
            ) from None
    if value < 0:
        raise ValueError(f"{source} must be >= 0 (0 means all cores), got {value}")
    return int(value)


def get_default_jobs() -> int:
    """The job count used when a call site passes ``jobs=None``.

    Returns the normalized default (``0`` encodes "auto"): the value
    installed by :func:`set_default_jobs` if any, else ``REPRO_FD_JOBS``,
    else ``1``.
    """
    if _default_jobs is not None:
        return _default_jobs
    env = os.environ.get(ENV_JOBS)
    if env is None or not env.strip():
        return 1
    return _parse_jobs(env, ENV_JOBS)


def set_default_jobs(jobs: Union[int, str]) -> int:
    """Set the process-wide default job count; returns the previous one."""
    global _default_jobs
    previous = get_default_jobs()
    _default_jobs = _parse_jobs(jobs, "jobs")
    return previous


def resolve_jobs(jobs: Optional[Union[int, str]] = None) -> int:
    """The effective worker count (>= 1) for one parallel call."""
    value = get_default_jobs() if jobs is None else _parse_jobs(jobs, "jobs")
    if value == 0:
        return max(1, os.cpu_count() or 1)
    return value


class use_jobs:
    """Context manager that temporarily switches the default job count."""

    def __init__(self, jobs: Union[int, str]):
        self.jobs = _parse_jobs(jobs, "jobs")
        self._previous: Optional[int] = None

    def __enter__(self) -> int:
        self._previous = set_default_jobs(self.jobs)
        return self.jobs

    def __exit__(self, *exc_info) -> None:
        assert self._previous is not None
        set_default_jobs(self._previous)
