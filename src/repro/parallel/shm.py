"""Zero-copy export of a relation's encoded data to worker processes.

Workers never unpickle the :class:`~repro.relational.relation.Relation`
itself — its decoders and per-column objects are irrelevant to the hot
paths and would be copied per task.  Instead the parent copies the two
arrays every parallel kernel consumes into POSIX shared memory **once**
per discovery run:

* the row-major ``(n_rows, n_cols)`` int64 DIIS code matrix, and
* the ``(n_rows, n_cols)`` boolean null-marker matrix.

Each pool worker attaches at initializer time and reconstructs numpy
views over the same physical pages (:class:`SharedRelationView`), so a
pool of N workers holds one copy of the data, not N+1.

The view duck-types the slice of the ``Relation`` interface the
compute paths use — ``matrix()``, ``codes(attr)``, ``null_mask(attr)``,
``n_rows``, ``n_cols`` — which lets workers run the exact same
functions (``validate_fd``, ``redundant_rows_for_lhs``, the sampling
helpers) the serial path runs, keeping results byte-identical.

Lifecycle: with the memplane enabled (the default) the buffers are a
refcounted *lease* on the host-wide
:class:`~repro.memplane.arena.DatasetArena` — the copy-in happens at
most once per dataset per host, repeated jobs attach to the pinned
segments, and :meth:`SharedRelationBuffers.close` releases the lease
(the arena unlinks under its own budget/LRU policy).  With the
memplane disabled (``--no-memplane`` / ``REPRO_FD_MEMPLANE=0``) the
parent owns both segments privately and unlinks them in ``close``
(worker mappings stay valid until the worker exits, per POSIX
semantics).  Workers ``close()`` their attachment at interpreter exit;
they also unregister the segments from their ``resource_tracker`` so a
worker's exit does not unlink memory the parent still owns.
"""

from __future__ import annotations

from dataclasses import dataclass
from multiprocessing import shared_memory
from typing import List, Optional, Tuple

import numpy as np

from ..resilience import faults


@dataclass(frozen=True)
class ShmSpec:
    """Picklable handle describing the shared segments (sent to workers)."""

    matrix_name: str
    nulls_name: str
    n_rows: int
    n_cols: int


def relation_arrays(relation) -> Tuple[np.ndarray, np.ndarray]:
    """The two contiguous arrays every shared consumer needs.

    Returns the row-major int64 DIIS code matrix and the matching
    ``(n_rows, n_cols)`` boolean null-marker matrix.  Shared between
    the per-run buffers below and the host-wide
    :class:`~repro.memplane.arena.DatasetArena` so both layouts are
    bit-identical and a view over either is interchangeable.
    """
    n_rows, n_cols = relation.n_rows, relation.n_cols
    matrix = np.ascontiguousarray(relation.matrix(), dtype=np.int64)
    if n_cols and n_rows:
        nulls = np.column_stack(
            [relation.null_mask(attr) for attr in range(n_cols)]
        ).astype(bool, copy=False)
    else:
        nulls = np.zeros((n_rows, n_cols), dtype=bool)
    return matrix, np.ascontiguousarray(nulls)


def _copy_into_shm(array: np.ndarray) -> shared_memory.SharedMemory:
    """Allocate a shared segment and copy ``array`` into it."""
    shm = shared_memory.SharedMemory(create=True, size=max(1, array.nbytes))
    if array.nbytes:
        target = np.ndarray(array.shape, dtype=array.dtype, buffer=shm.buf)
        target[...] = array
    return shm


def _arena_lease(relation):
    """Best-effort lease from the host-wide dataset arena.

    Returns None — and the caller falls back to a private per-run copy
    — when the memplane is disabled, the relation has no fingerprint
    (worker-side views), or the arena attach fails for any reason
    (including an armed ``arena.attach`` fault).
    """
    try:
        from ..memplane import arena
    except Exception:
        return None
    if not arena.enabled():
        return None
    try:
        return arena.get_arena().lease(relation)
    except Exception:
        return None


class SharedRelationBuffers:
    """Parent-side owner of the shared code and null-mask matrices.

    When the memplane is enabled the "buffers" are a leased view over
    the host-wide :class:`~repro.memplane.arena.DatasetArena` — no
    per-run copy-in, and :meth:`close` releases the lease instead of
    unlinking (the arena owns the segments).  Otherwise the original
    behavior: copy once, unlink on close.
    """

    def __init__(self, relation):
        self._lease = None
        self._matrix_shm = None
        self._nulls_shm = None
        lease = _arena_lease(relation)
        if lease is not None:
            self._lease = lease
            self.nbytes = lease.nbytes
            self.spec = lease.spec
            return
        matrix, nulls = relation_arrays(relation)
        self._matrix_shm = _copy_into_shm(matrix)
        self._nulls_shm = _copy_into_shm(nulls)
        self.nbytes = matrix.nbytes + nulls.nbytes
        self.spec = ShmSpec(
            matrix_name=self._matrix_shm.name,
            nulls_name=self._nulls_shm.name,
            n_rows=relation.n_rows,
            n_cols=relation.n_cols,
        )

    @property
    def arena_backed(self) -> bool:
        """True while these buffers are a lease on the dataset arena."""
        return self._lease is not None

    def close(self) -> None:
        """Release the lease / unlink the private segments (idempotent)."""
        if self._lease is not None:
            lease, self._lease = self._lease, None
            lease.release()
        for shm in (self._matrix_shm, self._nulls_shm):
            if shm is None:
                continue
            try:
                shm.close()
            except Exception:
                pass
            try:
                shm.unlink()
            except FileNotFoundError:
                pass
            except Exception:
                pass
        self._matrix_shm = None
        self._nulls_shm = None

    def __enter__(self) -> "SharedRelationBuffers":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def _attach(name: str, unregister: bool) -> shared_memory.SharedMemory:
    """Attach to a named segment without adopting its ownership.

    ``unregister`` must be True exactly when the attaching process has
    its *own* resource tracker (spawn-started workers): that tracker
    would otherwise unlink the segment at worker exit, stealing it from
    the parent and the sibling workers.  Fork-started workers (and
    same-process attachments) share the parent's tracker, where the
    segment is already correctly registered once — unregistering there
    would drop the parent's own registration.
    """
    faults.fire(
        "shm.attach",
        lambda: RuntimeError("injected shared-memory attach failure"),
    )
    shm = shared_memory.SharedMemory(name=name)
    if unregister:
        try:
            from multiprocessing import resource_tracker

            resource_tracker.unregister(shm._name, "shared_memory")
        except Exception:
            pass
    return shm


class SharedRelationView:
    """Worker-side zero-copy stand-in for a relation.

    Duck-types the read-only subset of the :class:`Relation` interface
    used by validation, redundancy counting and sampling.
    """

    __slots__ = ("n_rows", "n_cols", "_matrix", "_nulls", "_segments")

    def __init__(self, spec: ShmSpec, unregister: bool = False):
        self.n_rows = spec.n_rows
        self.n_cols = spec.n_cols
        matrix_shm = _attach(spec.matrix_name, unregister)
        nulls_shm = _attach(spec.nulls_name, unregister)
        #: Keep the SharedMemory objects alive as long as the views are.
        self._segments: List[shared_memory.SharedMemory] = [matrix_shm, nulls_shm]
        shape = (spec.n_rows, spec.n_cols)
        self._matrix = np.ndarray(shape, dtype=np.int64, buffer=matrix_shm.buf)
        self._nulls = np.ndarray(shape, dtype=bool, buffer=nulls_shm.buf)

    def matrix(self) -> np.ndarray:
        """The row-major DIIS code matrix (shared, do not write)."""
        return self._matrix

    def codes(self, attr: int) -> np.ndarray:
        """Column ``attr``'s code array (a strided view into the matrix)."""
        return self._matrix[:, attr]

    def null_mask(self, attr: int) -> np.ndarray:
        """Column ``attr``'s boolean null-marker mask."""
        return self._nulls[:, attr]

    def __repr__(self) -> str:
        return f"SharedRelationView({self.n_rows} rows x {self.n_cols} cols)"
