"""Deterministic reducers for results coming back from worker batches.

Every parallel result in this library merges by a commutative,
associative operation — set union for agree-set non-FDs, integer sums
for comparison counts, boolean OR for redundancy row masks — so the
merged value is independent of worker count, batch boundaries and
completion order.  Call sites funnel both their serial and parallel
paths through these helpers, which is what makes covers and stats
byte-identical for any ``jobs`` setting.
"""

from __future__ import annotations

from typing import Iterable, Set, Tuple

import numpy as np

from ..relational.attrset import AttrSet


def merge_validation_outcomes(outcomes: Iterable) -> Tuple[Set[AttrSet], int]:
    """Union the non-FD agree sets and sum the comparison counts.

    Accepts any iterable of
    :class:`~repro.core.validation.ValidationResult`-shaped objects
    (``non_fd_lhs`` iterable of masks, ``comparisons`` int).
    """
    non_fds: Set[AttrSet] = set()
    comparisons = 0
    for outcome in outcomes:
        non_fds.update(outcome.non_fd_lhs)
        comparisons += outcome.comparisons
    return non_fds, comparisons


def pack_row_mask(mask: np.ndarray) -> np.ndarray:
    """Pack a boolean per-row mask into uint8 bits for the return trip."""
    return np.packbits(mask)


def unpack_row_mask(packed: np.ndarray, n_rows: int) -> np.ndarray:
    """Inverse of :func:`pack_row_mask`."""
    if n_rows == 0:
        return np.zeros(0, dtype=bool)
    return np.unpackbits(packed, count=n_rows).astype(bool)
