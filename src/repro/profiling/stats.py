"""Per-column statistics: the classical data-profiling companion.

FD discovery is one pillar of data profiling (the paper's opening
framing); single-column statistics are the other.  This module computes
the standard per-column metrics — cardinality, null rate, uniqueness,
most frequent values, entropy — from the DIIS encoding, so no raw value
scan is needed beyond decoding the few reported values.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from ..relational.relation import Relation


@dataclass(frozen=True)
class ColumnStats:
    """Profile of a single column."""

    name: str
    cardinality: int
    null_count: int
    n_rows: int
    is_constant: bool
    is_unique: bool
    entropy_bits: float
    top_values: Tuple[Tuple[object, int], ...]

    @property
    def null_fraction(self) -> float:
        """Share of rows with a null marker."""
        if self.n_rows == 0:
            return 0.0
        return self.null_count / self.n_rows

    @property
    def distinct_fraction(self) -> float:
        """Cardinality relative to row count (1.0 for key columns)."""
        if self.n_rows == 0:
            return 0.0
        return self.cardinality / self.n_rows


def column_stats(
    relation: Relation, attr: int, top_k: int = 3
) -> ColumnStats:
    """Compute the profile of one column."""
    codes = relation.codes(attr)
    column = relation.column(attr)
    n_rows = relation.n_rows
    counts = np.bincount(codes, minlength=column.cardinality) if n_rows else (
        np.zeros(0, dtype=np.int64)
    )
    null_count = int(column.null_mask.sum())

    entropy = 0.0
    if n_rows:
        probabilities = counts[counts > 0] / n_rows
        entropy = float(-(probabilities * np.log2(probabilities)).sum())

    order = np.argsort(counts)[::-1][:top_k] if n_rows else []
    top = tuple(
        (column.decode(int(code)), int(counts[code]))
        for code in order
        if counts[code] > 0
    )
    return ColumnStats(
        name=relation.schema.name_of(attr),
        cardinality=column.cardinality,
        null_count=null_count,
        n_rows=n_rows,
        is_constant=column.cardinality <= 1 and n_rows > 0,
        is_unique=column.cardinality == n_rows and n_rows > 0,
        entropy_bits=entropy,
        top_values=top,
    )


def relation_stats(relation: Relation, top_k: int = 3) -> List[ColumnStats]:
    """Profiles for every column of the relation."""
    return [column_stats(relation, attr, top_k) for attr in range(relation.n_cols)]
