"""Markdown data-profile reports.

Renders an :class:`~repro.profiling.profiler.FDProfile` plus per-column
statistics into a single human-readable markdown document — the
artifact a data steward would actually read: column overview, discovered
FDs, canonical cover, the redundancy ranking with accidental-FD flags,
candidate keys and normal-form status.
"""

from __future__ import annotations

from typing import List, Optional

from ..normalize.decompose import synthesize_3nf
from ..normalize.forms import check_3nf, check_bcnf
from ..relational import attrset
from .profiler import FDProfile
from .stats import relation_stats


def markdown_report(
    profile: FDProfile,
    title: str = "Data profile",
    max_ranked: int = 25,
    include_normalization: bool = True,
) -> str:
    """Render a full markdown report for a profiled relation."""
    relation = profile.relation
    schema = relation.schema
    lines: List[str] = [f"# {title}", ""]

    lines.append(
        f"{relation.n_rows} rows × {relation.n_cols} columns, "
        f"{relation.null_count()} null markers, null semantics "
        f"`{relation.semantics.value}`."
    )
    lines.append("")

    # ------------------------------------------------------------- columns
    lines.append("## Columns")
    lines.append("")
    lines.append("| column | distinct | nulls | notes | top values |")
    lines.append("|---|---|---|---|---|")
    for stats in relation_stats(relation):
        notes = []
        if stats.is_constant:
            notes.append("constant")
        if stats.is_unique:
            notes.append("unique (key)")
        if stats.null_fraction > 0.5:
            notes.append("mostly null")
        tops = ", ".join(
            f"{value!r}×{count}" for value, count in stats.top_values
        )
        lines.append(
            f"| {stats.name} | {stats.cardinality} "
            f"| {stats.null_count} ({100 * stats.null_fraction:.0f}%) "
            f"| {', '.join(notes) or '-'} | {tops} |"
        )
    lines.append("")

    # ------------------------------------------------------------- covers
    lines.append("## Functional dependencies")
    lines.append("")
    lines.append(
        f"Discovered {profile.discovery.fd_count} minimal FDs "
        f"({profile.discovery.algorithm}, "
        f"{profile.discovery.elapsed_seconds:.3f}s); canonical cover has "
        f"{len(profile.canonical)} FDs "
        f"({profile.cover_comparison.size_percent:.0f}% of the "
        f"left-reduced cover)."
    )
    lines.append("")
    for fd in profile.canonical:
        lines.append(f"- `{fd.format(schema)}`")
    lines.append("")

    # ------------------------------------------------------------- ranking
    if profile.ranking is not None:
        lines.append("## FDs ranked by data redundancy")
        lines.append("")
        lines.append("| FD | #red+0 | #red | flag |")
        lines.append("|---|---|---|---|")
        for ranked in profile.ranking.top(max_ranked):
            flag = "-"
            if ranked.likely_key_based:
                flag = "key-like"
            elif ranked.likely_accidental:
                flag = "likely accidental (nulls)"
            lines.append(
                f"| `{ranked.fd.format(schema)}` | {ranked.redundancy} "
                f"| {ranked.redundancy_excluding_null} | {flag} |"
            )
        lines.append("")
    if profile.redundancy is not None:
        lines.append(
            f"Total redundant occurrences: "
            f"{profile.redundancy.red_including_null} of "
            f"{profile.redundancy.n_values} values "
            f"({profile.redundancy.red_including_percent:.2f}%; "
            f"{profile.redundancy.red_excluding_null} excluding nulls)."
        )
        lines.append("")

    # ------------------------------------------------------ normalization
    if include_normalization:
        cover = list(profile.canonical)
        n_cols = relation.n_cols
        bcnf = check_bcnf(n_cols, cover)
        third = check_3nf(n_cols, cover)
        lines.append("## Normalization")
        lines.append("")
        lines.append(
            "Candidate keys: "
            + ", ".join(f"`{schema.format_attr_set(k)}`" for k in bcnf.keys)
        )
        lines.append("")
        lines.append(
            f"BCNF: {'yes' if bcnf.satisfied else 'no'} — "
            f"3NF: {'yes' if third.satisfied else 'no'}"
        )
        if not bcnf.satisfied:
            lines.append("")
            lines.append("3NF synthesis:")
            for fragment in synthesize_3nf(n_cols, cover).format(schema):
                lines.append(f"- table({fragment})")
        lines.append("")

    return "\n".join(lines)
