"""One-call FD profiling: discovery + covers + ranking.

This is the library's front door.  :func:`profile` runs a discovery
algorithm over a relation, derives the canonical cover, ranks its FDs
by data redundancy and summarizes data-set-level redundancy — the three
contributions of the paper in one result object.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Union

from ..algorithms.registry import make_algorithm
from ..core.base import Deadline, TimeLimitExceeded
from ..covers.canonical import CoverComparison, compare_covers
from ..ranking.ranker import RankingResult, rank_cover
from ..ranking.redundancy import RedundancyReport, dataset_redundancy
from ..relational.fd import FDSet
from ..relational.null import NullSemantics
from ..relational.relation import Relation
from ..telemetry import Tracer, current_tracer, use_tracer
from ..core.result import DiscoveryResult


@dataclass
class FDProfile:
    """Everything the paper computes for one data set."""

    relation: Relation
    discovery: DiscoveryResult
    canonical: FDSet
    cover_comparison: CoverComparison
    ranking: Optional[RankingResult]
    redundancy: Optional[RedundancyReport]
    #: The tracer that recorded the run (None unless ``trace`` was set).
    tracer: Optional[Tracer] = None

    @property
    def left_reduced(self) -> FDSet:
        """The discovered left-reduced cover (singleton RHSs)."""
        return self.discovery.fds

    def summary(self) -> str:
        """A short human-readable profile report."""
        lines = [
            f"relation: {self.relation.n_rows} rows x {self.relation.n_cols} cols"
            f" ({self.relation.semantics.value})",
        ]
        if not self.discovery.completed:
            lines.append(
                f"PARTIAL RESULT: {self.discovery.limit_reason} limit hit —"
                f" {self.discovery.fd_count} sound FDs,"
                f" {len(self.discovery.unverified)} unverified candidates"
            )
        lines += [
            f"algorithm: {self.discovery.algorithm}"
            f" in {self.discovery.elapsed_seconds:.3f}s",
            f"left-reduced cover: {self.discovery.fd_count} FDs"
            f" ({self.discovery.attribute_occurrences} attribute occurrences)",
            f"canonical cover: {len(self.canonical)} FDs"
            f" ({self.canonical.attribute_occurrences} attribute occurrences,"
            f" {self.cover_comparison.size_percent:.0f}% of left-reduced)",
        ]
        if self.redundancy is not None:
            lines.append(
                f"redundancy: {self.redundancy.red_including_null} occurrences"
                f" ({self.redundancy.red_including_percent:.2f}% of"
                f" {self.redundancy.n_values} values;"
                f" {self.redundancy.red_excluding_null} excluding nulls)"
            )
        if self.ranking is not None and self.ranking.ranked:
            top = self.ranking.ranked[0]
            lines.append(
                f"top-ranked FD: {top.fd.format(self.relation.schema)}"
                f" with {top.redundancy} redundant occurrences"
            )
        return "\n".join(lines)


def profile(
    relation: Relation,
    algorithm: str = "dhyfd",
    null_semantics: Optional[Union[str, NullSemantics]] = None,
    rank: bool = True,
    time_limit: Optional[float] = None,
    trace: Union[bool, Tracer, None] = False,
    top_k: Optional[int] = None,
    **algorithm_kwargs,
) -> FDProfile:
    """Profile a relation end to end.

    Args:
        relation: the input data.
        algorithm: registry name ("dhyfd", "hyfd", "tane", "fdep", ...).
        null_semantics: re-encode the relation under this semantics
            first (None keeps the relation's current encoding).
        rank: also compute the redundancy ranking (skippable because it
            costs one partition pass per FD of the canonical cover).
        top_k: bound the ranking to the k highest-redundancy FDs — the
            bounded pass skips measuring FDs whose redundancy upper
            bound cannot reach the running k-th redundancy (see
            :func:`~repro.ranking.ranker.rank_cover`).  Discovery and
            covers are unaffected.
        time_limit: wall-clock cap forwarded to the algorithm.  With
            ``on_limit="partial"`` (an ``algorithm_kwargs`` entry) the
            *remaining* wall-clock time also bounds the ranking passes;
            when they run out too, ranking/redundancy come back None.
        trace: telemetry control — ``True`` records the run on a fresh
            :class:`~repro.telemetry.Tracer` (returned as
            ``FDProfile.tracer``); an existing tracer records onto it;
            ``False``/``None`` leaves whatever tracer is already
            current in effect (the no-op tracer by default).
        **algorithm_kwargs: extra constructor args (e.g.
            ``ratio_threshold`` for DHyFD, ``budget``, ``on_limit``).
    """
    if null_semantics is not None:
        relation = relation.with_semantics(null_semantics)
    if trace is True:
        tracer: Optional[Tracer] = Tracer()
    elif trace:
        tracer = trace
    else:
        tracer = None
    algo = make_algorithm(algorithm, time_limit=time_limit, **algorithm_kwargs)
    partial_ok = getattr(algo, "on_limit", "raise") == "partial"
    with use_tracer(tracer if tracer is not None else current_tracer()) as active:
        discovery = algo.discover(relation)
        with active.span("covers", fds=discovery.fd_count):
            canonical, comparison = compare_covers(discovery.fds)
        ranking: Optional[RankingResult] = None
        redundancy: Optional[RedundancyReport] = None
        if rank:
            # Budget the post-discovery passes with whatever wall-clock
            # time the algorithm left over (None = unbounded).
            remaining = (
                None
                if time_limit is None
                else max(0.0, time_limit - discovery.elapsed_seconds)
            )
            rank_deadline = (
                Deadline(remaining, "ranking") if remaining is not None else None
            )
            try:
                ranking = rank_cover(
                    relation, canonical, deadline=rank_deadline, top_k=top_k
                )
                redundancy = dataset_redundancy(
                    relation, canonical, deadline=rank_deadline
                )
            except TimeLimitExceeded:
                if not partial_ok:
                    raise
                active.event("partial_result", algorithm="ranking", reason="time")
    return FDProfile(
        relation=relation,
        discovery=discovery,
        canonical=canonical,
        cover_comparison=comparison,
        ranking=ranking,
        redundancy=redundancy,
        tracer=tracer,
    )
