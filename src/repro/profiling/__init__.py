"""High-level profiling API: one-call profiles, column statistics,
markdown reports."""

from .profiler import FDProfile, profile
from .report import markdown_report
from .stats import ColumnStats, column_stats, relation_stats

__all__ = [
    "ColumnStats",
    "FDProfile",
    "column_stats",
    "markdown_report",
    "profile",
    "relation_stats",
]
