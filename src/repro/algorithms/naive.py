"""Brute-force FD discovery — the ground-truth oracle for tests.

Enumerates the candidate lattice per RHS attribute, level by level,
keeping only minimal valid LHSs.  Exponential in the number of columns,
so it is used exclusively to verify the real algorithms on small
relations (property-based tests generate up to ~7 columns).
"""

from __future__ import annotations

from typing import List, Tuple

from ..core.base import Deadline, DiscoveryAlgorithm
from ..core.result import DiscoveryStats
from ..partitions.cache import PartitionCache
from ..relational import attrset
from ..relational.attrset import AttrSet
from ..relational.fd import FD, FDSet
from ..relational.relation import Relation


class NaiveFDDiscovery(DiscoveryAlgorithm):
    """Exhaustive lattice search; exact but exponential."""

    name = "naive"

    def _find_fds(
        self, relation: Relation, deadline: Deadline
    ) -> Tuple[FDSet, DiscoveryStats]:
        stats = DiscoveryStats()
        cache = PartitionCache(relation)
        fds = FDSet()
        n_cols = relation.n_cols

        for rhs_attr in range(n_cols):
            deadline.check()
            others = [a for a in range(n_cols) if a != rhs_attr]
            minimal: List[AttrSet] = []
            level: List[AttrSet] = [attrset.EMPTY]
            while level:
                next_level: List[AttrSet] = []
                for lhs in level:
                    deadline.check()
                    if any(attrset.is_subset(m, lhs) for m in minimal):
                        continue
                    partition = cache.get(lhs)
                    stats.validations += 1
                    if partition.refines_attribute(relation, rhs_attr):
                        minimal.append(lhs)
                        fds.add(FD(lhs, attrset.singleton(rhs_attr)))
                    else:
                        # Extend with attributes above the current max so
                        # every candidate is generated exactly once.
                        floor = attrset.highest(lhs) if lhs else -1
                        for attr in others:
                            if attr > floor:
                                next_level.append(attrset.add(lhs, attr))
                level = next_level
        stats.record_cache(cache)
        cache.record_telemetry(scope="naive")
        return fds, stats
