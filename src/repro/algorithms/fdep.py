"""The FDEP family — row-based discovery from the full negative cover.

All three variants compute the exact negative cover (the agree sets of
*all* distinct row pairs, quadratic in rows) and then induce the
positive cover.  They differ exactly as in the paper's §V-B:

* :class:`FDEP`  — the original Flach & Savnik algorithm: classical
  FD-tree with propagated labels, classical one-RHS-at-a-time
  induction, non-FDs sorted by descending LHS size.
* :class:`FDEP1` — synergized induction on an extended FD-tree, but the
  non-FDs are first reduced to a non-redundant (maximal) cover.
* :class:`FDEP2` — synergized induction on an extended FD-tree over the
  sorted full list of non-FDs; the variant the paper found uniformly
  better and reports as "FDEP" from §V-B onward.
"""

from __future__ import annotations

from typing import List, Set, Tuple

from ..core.base import Deadline, DiscoveryAlgorithm
from ..core.result import DiscoveryStats
from ..fdtree.classic import ClassicFDTree
from ..fdtree.extended import ExtendedFDTree
from ..fdtree.induction import (
    classic_induct,
    non_redundant_non_fds,
    sort_non_fds,
    synergized_induct,
)
from ..relational import attrset
from ..relational.attrset import AttrSet
from ..relational.fd import FDSet, normalize_singleton_cover
from ..relational.relation import Relation

import numpy as np


def compute_negative_cover(
    relation: Relation, deadline: Deadline, stats: DiscoveryStats
) -> Set[AttrSet]:
    """Agree sets of all distinct row pairs (deadline-aware)."""
    matrix = relation.matrix()
    n_rows = relation.n_rows
    full = attrset.full_set(relation.n_cols)
    agree_sets: Set[AttrSet] = set()
    for i in range(n_rows):
        deadline.check()
        row_i = matrix[i]
        for j in range(i + 1, n_rows):
            stats.comparisons += 1
            equal = row_i == matrix[j]
            mask = attrset.EMPTY
            for col in np.nonzero(equal)[0]:
                mask = attrset.add(mask, int(col))
            if mask != full:
                agree_sets.add(mask)
    return agree_sets


class FDEP(DiscoveryAlgorithm):
    """Original FDEP: classical tree + classical induction."""

    name = "fdep"

    def _find_fds(
        self, relation: Relation, deadline: Deadline
    ) -> Tuple[FDSet, DiscoveryStats]:
        stats = DiscoveryStats()
        n_cols = relation.n_cols
        agree_sets = compute_negative_cover(relation, deadline, stats)
        stats.sampled_non_fds = len(agree_sets)

        tree = ClassicFDTree(n_cols)
        for attr in range(n_cols):
            tree.add_fd(attrset.EMPTY, attr)

        ordered = sort_non_fds(
            (lhs, attrset.complement(lhs, n_cols)) for lhs in agree_sets
        )
        for lhs, rhs in ordered:
            deadline.check()
            classic_induct(tree, lhs, rhs)
            stats.induction_calls += 1
        return normalize_singleton_cover(tree.iter_fds()), stats


class _SynergizedFDEP(DiscoveryAlgorithm):
    """Shared driver for FDEP1/FDEP2 (extended tree, synergized)."""

    #: Subclasses set this: reduce the negative cover to maximal sets?
    use_maximal_cover = False

    def _find_fds(
        self, relation: Relation, deadline: Deadline
    ) -> Tuple[FDSet, DiscoveryStats]:
        stats = DiscoveryStats()
        n_cols = relation.n_cols
        agree_sets = compute_negative_cover(relation, deadline, stats)
        stats.sampled_non_fds = len(agree_sets)

        pairs: List[Tuple[AttrSet, AttrSet]] = [
            (lhs, attrset.complement(lhs, n_cols)) for lhs in agree_sets
        ]
        if self.use_maximal_cover:
            pairs = non_redundant_non_fds(pairs)
        else:
            pairs = sort_non_fds(pairs)

        tree = ExtendedFDTree(n_cols)
        tree.add_fd(attrset.EMPTY, attrset.full_set(n_cols))
        for lhs, rhs in pairs:
            deadline.check()
            synergized_induct(tree, lhs, rhs)
            stats.induction_calls += 1
        return normalize_singleton_cover(tree.iter_fds()), stats


class FDEP1(_SynergizedFDEP):
    """FDEP over a non-redundant (maximal) non-FD cover."""

    name = "fdep1"
    use_maximal_cover = True


class FDEP2(_SynergizedFDEP):
    """FDEP over the sorted full non-FD list (the paper's best variant)."""

    name = "fdep2"
    use_maximal_cover = False
