"""HyFD (Papenbrock & Naumann [16]) — the sampling-focused hybrid.

HyFD alternates two phases.  The *sampling* phase compares neighbours
in sorted singleton-partition clusters and inducts the resulting
non-FDs; it runs until a round's hit rate (new non-FDs per comparison)
drops below a threshold.  The *validation* phase then checks the
FD-tree level by level; when a level invalidates too large a fraction
of its candidates, HyFD switches back to sampling with a wider window
before continuing.

Two deliberate differences from DHyFD, mirroring the paper's analysis:
every validation rebuilds its partition from a singleton (no dynamic
refinement, so LHS values are recomputed redundantly across levels),
and only the singleton partitions are ever retained (lower memory).
Following the paper's experimental setup, this implementation uses
synergized induction on an extended FD-tree ("Note that HyFD also
implements our synergized FD induction", §V-B).
"""

from __future__ import annotations

from typing import List, Optional, Set, Tuple

from ..core.base import Deadline, DiscoveryAlgorithm, RunContext
from ..core.result import DiscoveryStats
from ..core.sampling import AgreeSetSampler
from ..core.validation import validate_fd
from ..fdtree.extended import ExtendedFDTree
from ..fdtree.induction import synergized_induct
from ..partitions.stripped import StrippedPartition
from ..relational import attrset
from ..relational.attrset import AttrSet
from ..relational.fd import FD, FDSet, normalize_singleton_cover
from ..relational.relation import Relation
from ..resilience import RunBudget
from ..telemetry import current_tracer


class HyFD(DiscoveryAlgorithm):
    """Hybrid sampling/validation FD discovery."""

    name = "hyfd"

    def __init__(
        self,
        time_limit: Optional[float] = None,
        sample_efficiency_threshold: float = 0.01,
        invalid_switch_threshold: float = 0.2,
        budget: Optional[RunBudget] = None,
        on_limit: str = "raise",
    ):
        """Args:
            time_limit: optional wall-clock cap in seconds.
            sample_efficiency_threshold: stop sampling once a round's
                new-non-FDs-per-comparison falls below this.
            invalid_switch_threshold: switch back to sampling when a
                validation level invalidates more than this fraction of
                its candidate FDs.
            budget: optional :class:`~repro.resilience.RunBudget`.
            on_limit: ``"raise"`` or ``"partial"`` — see
                :meth:`DiscoveryAlgorithm.discover`.
        """
        super().__init__(time_limit, budget=budget, on_limit=on_limit)
        self.sample_efficiency_threshold = sample_efficiency_threshold
        self.invalid_switch_threshold = invalid_switch_threshold

    def _find_fds(
        self, relation: Relation, deadline: Deadline
    ) -> Tuple[FDSet, DiscoveryStats]:
        stats = DiscoveryStats()
        n_cols = relation.n_cols
        all_attrs = attrset.full_set(n_cols)

        singletons = [
            StrippedPartition.for_attribute(relation, attr)
            for attr in range(n_cols)
        ]
        universal = StrippedPartition.universal(relation)
        stats.partition_memory_peak_bytes = sum(
            p.memory_bytes() for p in singletons
        )
        sampler = AgreeSetSampler(relation, singletons)

        tree = ExtendedFDTree(n_cols)
        tree.add_fd(attrset.EMPTY, all_attrs)
        applied: Set[AttrSet] = set()

        #: Exactly-validated (lhs, rhs) pairs; sound forever because a
        #: full-relation validation cannot be contradicted later.
        confirmed: List[Tuple[AttrSet, AttrSet]] = []
        if isinstance(deadline, RunContext):
            deadline.stats = stats

            def _partial_snapshot() -> Tuple[FDSet, FDSet]:
                sound = normalize_singleton_cover(
                    FD(lhs, rhs) for lhs, rhs in confirmed if rhs
                )
                unverified = FDSet(
                    fd
                    for fd in normalize_singleton_cover(tree.iter_fds())
                    if fd not in sound
                )
                return sound, unverified

            deadline.set_partial_provider(_partial_snapshot)
            # HyFD retains only singleton partitions — no ladder to
            # climb, so a tripped budget aborts (or goes partial).
            deadline.install_memory_sentinel(
                lambda: universal.memory_bytes()
                + sum(p.memory_bytes() for p in singletons)
            )

        # Constants first: validate ∅ -> R directly.
        root_check = validate_fd(relation, attrset.EMPTY, all_attrs, universal)
        stats.validations += 1
        stats.comparisons += root_check.comparisons
        self._induct(tree, root_check.non_fd_lhs, applied, stats, deadline)
        confirmed.extend(
            (node.path(), node.rhs)
            for node in tree.nodes_at_level(0)
            if not node.deleted and node.rhs
        )

        self._sampling_phase(sampler, tree, applied, stats, deadline)

        tracer = current_tracer()
        level = 1
        candidates = tree.nodes_at_level(level)
        while candidates:
            deadline.check()
            total = sum(attrset.count(node.rhs) for node in candidates)
            violations: Set[AttrSet] = set()
            with tracer.span("validation", level=level, candidates=total):
                for node in candidates:
                    if node.deleted or not node.rhs:
                        continue
                    partition = self._best_singleton(singletons, node.path())
                    outcome = validate_fd(
                        relation, node.path(), node.rhs, partition
                    )
                    stats.validations += 1
                    stats.comparisons += outcome.comparisons
                    violations |= outcome.non_fd_lhs
                    deadline.check()
            with tracer.span("induction", level=level, non_fds=len(violations)):
                self._induct(tree, violations, applied, stats, deadline)
            confirmed.extend(
                (node.path(), node.rhs)
                for node in candidates
                if not node.deleted and node.rhs
            )

            surviving = sum(
                attrset.count(node.rhs)
                for node in candidates
                if not node.deleted
            )
            invalid_fraction = 1.0 - (surviving / total) if total else 0.0
            if (
                invalid_fraction > self.invalid_switch_threshold
                and not sampler.exhausted()
            ):
                stats.strategy_switches += 1
                tracer.event(
                    "strategy_switch",
                    level=level,
                    invalid_fraction=invalid_fraction,
                )
                self._sampling_phase(sampler, tree, applied, stats, deadline)

            stats.levels_processed += 1
            level += 1
            candidates = tree.nodes_at_level(level)

        return normalize_singleton_cover(tree.iter_fds()), stats

    # ------------------------------------------------------------------

    def _sampling_phase(
        self,
        sampler: AgreeSetSampler,
        tree: ExtendedFDTree,
        applied: Set[AttrSet],
        stats: DiscoveryStats,
        deadline: Deadline,
    ) -> None:
        """Run sampling rounds until the hit rate drops too low."""
        with current_tracer().span("sampling") as span:
            rounds = 0
            while not sampler.exhausted():
                deadline.check()
                agree_sets, round_stats = sampler.sample_round()
                rounds += 1
                stats.comparisons += round_stats.comparisons
                stats.sampled_non_fds += len(agree_sets)
                self._induct(tree, agree_sets, applied, stats, deadline)
                if round_stats.efficiency < self.sample_efficiency_threshold:
                    break
            span.annotate(rounds=rounds, non_fds=stats.sampled_non_fds)

    def _induct(
        self,
        tree: ExtendedFDTree,
        violations: Set[AttrSet],
        applied: Set[AttrSet],
        stats: DiscoveryStats,
        deadline: Deadline,
    ) -> None:
        fresh = [lhs for lhs in violations if lhs not in applied]
        fresh.sort(key=lambda lhs: (-attrset.count(lhs), lhs))
        for count, lhs in enumerate(fresh):
            if count % 64 == 0:
                deadline.check()
            applied.add(lhs)
            synergized_induct(
                tree, lhs, attrset.complement(lhs, tree.n_cols), tally=stats
            )
            stats.induction_calls += 1

    @staticmethod
    def _best_singleton(
        singletons: List[StrippedPartition], path: AttrSet
    ) -> StrippedPartition:
        best = None
        for attr in attrset.iter_attrs(path):
            candidate = singletons[attr]
            if best is None or candidate.size < best.size:
                best = candidate
        if best is None:
            raise ValueError("validation of an empty LHS needs the universal partition")
        return best
