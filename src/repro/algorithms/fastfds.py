"""FastFDs (Wyss, Giannella & Robertson [19]) — difference-set search.

The second row-based baseline from the paper's related work: compute
the difference sets of all row pairs (complements of agree sets), then,
for each RHS attribute ``A``, every *minimal hitting set* of the
difference sets containing ``A`` (taken modulo ``A``) is exactly a
minimal LHS of a valid FD ``X → A``.

The hitting-set enumeration is a duplicate-free DFS: branch on the
attributes of the first uncovered difference set, forbidding previously
branched attributes in later branches, and keep covers that pass the
final minimality check.  Like FDEP, the quadratic pair scan makes this
row-bound; it shines on short, wide inputs.
"""

from __future__ import annotations

from typing import List, Set, Tuple

from ..core.base import Deadline, DiscoveryAlgorithm
from ..core.result import DiscoveryStats
from ..relational import attrset
from ..relational.attrset import AttrSet
from ..relational.fd import FD, FDSet
from ..relational.relation import Relation
from .fdep import compute_negative_cover


def minimize_set_family(sets: List[AttrSet]) -> List[AttrSet]:
    """Drop every set that is a superset of another (hitting a subset
    implies hitting all its supersets)."""
    ordered = sorted(set(sets), key=attrset.count)
    kept: List[AttrSet] = []
    for candidate in ordered:
        if not any(attrset.is_subset(small, candidate) for small in kept):
            kept.append(candidate)
    return kept


def minimal_hitting_sets(
    sets: List[AttrSet], deadline: Deadline
) -> List[AttrSet]:
    """All minimal attribute sets intersecting every set in ``sets``."""
    if not sets:
        return [attrset.EMPTY]
    family = minimize_set_family(sets)
    results: List[AttrSet] = []

    def hits_all(chosen: AttrSet) -> bool:
        return all(chosen & s for s in family)

    def is_minimal(chosen: AttrSet) -> bool:
        for attr in attrset.iter_attrs(chosen):
            if hits_all(attrset.remove(chosen, attr)):
                return False
        return True

    def dfs(chosen: AttrSet, forbidden: AttrSet) -> None:
        deadline.check()
        if any(attrset.is_subset(found, chosen) for found in results):
            return
        uncovered = None
        for s in family:
            if not (s & chosen):
                uncovered = s
                break
        if uncovered is None:
            if is_minimal(chosen):
                results.append(chosen)
            return
        branchable = attrset.difference(uncovered, forbidden)
        taken = attrset.EMPTY
        for attr in attrset.iter_attrs(branchable):
            dfs(attrset.add(chosen, attr), forbidden | taken)
            taken = attrset.add(taken, attr)

    dfs(attrset.EMPTY, attrset.EMPTY)
    # the superset prune is order-dependent; sweep once for stragglers
    return [
        r for r in results
        if not any(other != r and attrset.is_subset(other, r) for other in results)
    ]


class FastFDs(DiscoveryAlgorithm):
    """Row-based FD discovery via minimal difference-set covers."""

    name = "fastfds"

    def _find_fds(
        self, relation: Relation, deadline: Deadline
    ) -> Tuple[FDSet, DiscoveryStats]:
        stats = DiscoveryStats()
        n_cols = relation.n_cols
        agree_sets = compute_negative_cover(relation, deadline, stats)
        stats.sampled_non_fds = len(agree_sets)
        diff_sets = [
            attrset.complement(agree, n_cols) for agree in agree_sets
        ]

        fds = FDSet()
        for rhs_attr in range(n_cols):
            deadline.check()
            relevant = [
                attrset.remove(diff, rhs_attr)
                for diff in diff_sets
                if attrset.contains(diff, rhs_attr)
            ]
            if not relevant:
                # no pair ever differs on the attribute: it is constant
                fds.add(FD(attrset.EMPTY, attrset.singleton(rhs_attr)))
                continue
            if any(diff == attrset.EMPTY for diff in relevant):
                # some pair differs *only* on rhs_attr: no LHS can work
                continue
            for cover in minimal_hitting_sets(relevant, deadline):
                stats.validations += 1
                fds.add(FD(cover, attrset.singleton(rhs_attr)))
        return fds, stats
