"""TANE (Huhtala et al. [9]) — the column-based, level-wise baseline.

Traverses the attribute lattice bottom-up.  Each level's stripped
partitions are built by the partition product of two prefix-sharing
sets from the previous level; validity of ``X − {A} -> A`` is the
classic error-measure test ``e(X − A) = e(X)``.  The ``C+`` candidate
sets implement TANE's RHS pruning and key pruning.

The implementation keeps only two lattice levels of partitions alive at
a time, which is what lets TANE run at all on wider inputs — but, as
the paper stresses, the level-wise strategy still enumerates the whole
lattice when valid FDs sit at many different levels.

Top-k mode (:meth:`~repro.core.base.DiscoveryAlgorithm.discover_top_k`)
adds rank-aware pruning: every FD TANE emits with LHS ``X`` has
null-inclusive redundancy ``||pi_X||``, a size the level-wise sweep
computes anyway, so the running k-th redundancy is maintained for free.
A next-level candidate ``Y`` is generated only if the largest
``||pi_W||`` over its co-atoms ``W`` can still reach that threshold —
every FD emitted at ``Y`` or below has an LHS containing some co-atom
of ``Y``, so its redundancy is bounded by that maximum — and the sweep
terminates as soon as a whole level prunes away.
"""

from __future__ import annotations

from itertools import combinations
from typing import Dict, List, Optional, Tuple

from ..core.base import Deadline, DiscoveryAlgorithm, RunContext
from ..core.result import DiscoveryStats
from ..partitions.stripped import StrippedPartition
from ..ranking.topk import TopKTracker
from ..relational import attrset
from ..relational.attrset import AttrSet
from ..relational.fd import FD, FDSet
from ..relational.relation import Relation


class TANE(DiscoveryAlgorithm):
    """Level-wise FD discovery with partition products and C+ pruning."""

    name = "tane"

    def _find_fds(
        self, relation: Relation, deadline: Deadline
    ) -> Tuple[FDSet, DiscoveryStats]:
        return self._search(relation, deadline, tracker=None)

    def _find_top_k(
        self, relation: Relation, k: int, deadline: Deadline
    ) -> Tuple[FDSet, DiscoveryStats]:
        tracker = TopKTracker(k)
        _, stats = self._search(relation, deadline, tracker)
        stats.pruned_candidates += tracker.pruned_candidates
        return tracker.cover(), stats

    def _search(
        self,
        relation: Relation,
        deadline: Deadline,
        tracker: Optional[TopKTracker],
    ) -> Tuple[FDSet, DiscoveryStats]:
        stats = DiscoveryStats()
        n_cols = relation.n_cols
        all_attrs = attrset.full_set(n_cols)
        fds = FDSet()

        universal = StrippedPartition.universal(relation)
        partitions: Dict[AttrSet, StrippedPartition] = {attrset.EMPTY: universal}
        errors: Dict[AttrSet, int] = {attrset.EMPTY: universal.error}
        #: ``||pi_X||`` for every partition ever built.  Partitions are
        #: evicted two levels down but the sizes persist (like the
        #: errors) — top-k pruning bounds next-level candidates by the
        #: sizes of their co-atoms, which may predate the live window.
        sizes: Dict[AttrSet, int] = {attrset.EMPTY: universal.size}
        cplus: Dict[AttrSet, AttrSet] = {attrset.EMPTY: all_attrs}

        def emit(lhs: AttrSet, attr: int) -> None:
            fd = FD(lhs, attrset.singleton(attr))
            fds.add(fd)
            if tracker is not None:
                # Exact for free: the null-inclusive redundancy of a
                # singleton-RHS FD is ||pi_lhs||, already computed.
                tracker.add(fd, sizes[lhs])

        if isinstance(deadline, RunContext):
            deadline.stats = stats
            # TANE only ever records exactly-validated FDs, so the
            # anytime snapshot is simply what has accumulated; nothing
            # is materialized ahead of validation to report unverified.
            if tracker is None:
                deadline.set_partial_provider(lambda: (fds.copy(), FDSet()))
            else:
                deadline.set_partial_provider(lambda: (tracker.cover(), FDSet()))
            # No degradation ladder: TANE already keeps just two lattice
            # levels alive — a tripped budget aborts (or goes partial).
            deadline.install_memory_sentinel(
                lambda: sum(p.memory_bytes() for p in partitions.values())
            )

        level: List[AttrSet] = []
        for attr in range(n_cols):
            mask = attrset.singleton(attr)
            partition = StrippedPartition.for_attribute(relation, attr)
            partitions[mask] = partition
            errors[mask] = partition.error
            sizes[mask] = partition.size
            level.append(mask)

        while level:
            deadline.check()
            stats.levels_processed += 1
            # --- compute C+ for this level, then dependencies
            for lhs in level:
                candidate = all_attrs
                for attr in attrset.iter_attrs(lhs):
                    candidate &= cplus.get(attrset.remove(lhs, attr), all_attrs)
                cplus[lhs] = candidate
            for lhs in level:
                deadline.check()
                for attr in attrset.iter_attrs(lhs & cplus[lhs]):
                    reduced = attrset.remove(lhs, attr)
                    stats.validations += 1
                    if self._valid(relation, reduced, lhs, partitions, errors, sizes):
                        emit(reduced, attr)
                        cplus[lhs] = attrset.remove(cplus[lhs], attr)
                        cplus[lhs] &= lhs  # drop all B in R − X
            # --- prune
            survivors: List[AttrSet] = []
            for lhs in level:
                if cplus[lhs] == attrset.EMPTY:
                    continue
                if errors[lhs] == 0:  # X is a (super)key
                    for attr in attrset.iter_attrs(
                        attrset.difference(cplus[lhs], lhs)
                    ):
                        if self._key_fd_is_minimal(relation, lhs, attr, errors, sizes):
                            emit(lhs, attr)
                    continue
                survivors.append(lhs)
            # --- generate the next level from prefix blocks
            level = self._next_level(
                relation, survivors, partitions, errors, sizes, deadline, tracker
            )
            stats.partition_memory_peak_bytes = max(
                stats.partition_memory_peak_bytes,
                sum(p.memory_bytes() for p in partitions.values()),
            )
            self._evict(partitions, errors, keep=set(level) | set(survivors))

        return fds, stats

    @staticmethod
    def _valid(
        relation: Relation,
        reduced: AttrSet,
        lhs: AttrSet,
        partitions: Dict[AttrSet, StrippedPartition],
        errors: Dict[AttrSet, int],
        sizes: Dict[AttrSet, int],
    ) -> bool:
        """``reduced -> (lhs − reduced)`` validity via the e-measure."""
        if reduced not in errors:
            partition = StrippedPartition.for_attrs(relation, reduced)
            partitions[reduced] = partition
            errors[reduced] = partition.error
            sizes[reduced] = partition.size
        return errors[reduced] == errors[lhs]

    @staticmethod
    def _key_fd_is_minimal(
        relation: Relation,
        lhs: AttrSet,
        attr: int,
        errors: Dict[AttrSet, int],
        sizes: Dict[AttrSet, int],
    ) -> bool:
        """Is the key FD ``lhs -> attr`` minimal?

        TANE's original condition intersects the C+ sets of the
        sibling sets ``X ∪ {A} − {B}``, which may never have been
        generated once pruning kicks in.  We check minimality directly
        instead: the FD is minimal iff no co-atom ``X − {B}`` already
        determines ``attr``.  Error values for co-atoms persist from
        the previous level; missing ones are recomputed on demand.
        """

        def error_of(mask: AttrSet) -> int:
            if mask not in errors:
                partition = StrippedPartition.for_attrs(relation, mask)
                errors[mask] = partition.error
                sizes[mask] = partition.size
            return errors[mask]

        bit_added = attrset.singleton(attr)
        for other in attrset.iter_attrs(lhs):
            reduced = attrset.remove(lhs, other)
            if error_of(reduced) == error_of(reduced | bit_added):
                return False
        return True

    @staticmethod
    def _next_level(
        relation: Relation,
        survivors: List[AttrSet],
        partitions: Dict[AttrSet, StrippedPartition],
        errors: Dict[AttrSet, int],
        sizes: Dict[AttrSet, int],
        deadline: Deadline,
        tracker: Optional[TopKTracker],
    ) -> List[AttrSet]:
        """Prefix-block generation with the all-subsets-present check.

        In top-k mode a complete candidate ``merged`` is additionally
        bounded before its partition product is paid: every FD emitted
        at ``merged`` or any of its descendants has an LHS containing
        some co-atom of ``merged`` (removing an attribute of ``merged``
        lands on a co-atom; removing any other attribute keeps the LHS
        a superset of ``merged`` itself), so ``max ||pi_co-atom||``
        bounds them all.  Strictly below the running k-th redundancy
        means nothing down there can enter the top-k, even on ties.
        """
        survivor_set = set(survivors)
        blocks: Dict[AttrSet, List[AttrSet]] = {}
        for lhs in survivors:
            prefix = attrset.remove(lhs, attrset.highest(lhs))
            blocks.setdefault(prefix, []).append(lhs)
        next_level: List[AttrSet] = []
        for members in blocks.values():
            members.sort()
            for left, right in combinations(members, 2):
                deadline.check()
                merged = left | right
                complete = all(
                    attrset.remove(merged, attr) in survivor_set
                    for attr in attrset.iter_attrs(merged)
                )
                if not complete:
                    continue
                if tracker is not None:
                    bound = max(
                        sizes[attrset.remove(merged, attr)]
                        for attr in attrset.iter_attrs(merged)
                    )
                    if tracker.can_prune(bound):
                        tracker.pruned_candidates += 1
                        continue
                product = partitions[left].intersect(partitions[right])
                partitions[merged] = product
                errors[merged] = product.error
                sizes[merged] = product.size
                next_level.append(merged)
        return next_level

    @staticmethod
    def _evict(
        partitions: Dict[AttrSet, StrippedPartition],
        errors: Dict[AttrSet, int],
        keep: set,
    ) -> None:
        """Drop partitions below the two live levels (memory discipline)."""
        keep_all = set(keep) | {attrset.EMPTY}
        keep_all.update(k for k in partitions if attrset.count(k) == 1)
        for victim in [k for k in partitions if k not in keep_all]:
            del partitions[victim]
        # errors stay: they are tiny and validity checks may revisit them
