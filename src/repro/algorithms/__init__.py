"""Baseline discovery algorithms: TANE, FDEP family, HyFD, oracle."""

from ..core.dhyfd import DHyFD
from .approximate import ApproximateTANE, g3_error
from .fastfds import FastFDs, minimal_hitting_sets
from .fdep import FDEP, FDEP1, FDEP2, compute_negative_cover
from .hyfd import HyFD
from .naive import NaiveFDDiscovery
from .registry import algorithm_names, make_algorithm
from .tane import TANE

__all__ = [
    "ApproximateTANE",
    "DHyFD",
    "g3_error",
    "FDEP",
    "FDEP1",
    "FDEP2",
    "FastFDs",
    "HyFD",
    "NaiveFDDiscovery",
    "TANE",
    "algorithm_names",
    "compute_negative_cover",
    "make_algorithm",
    "minimal_hitting_sets",
]
