"""Approximate FD discovery (TANE's g3 error measure).

An extension beyond the paper's exact setting: the FD ``X → A`` holds
*approximately* at error threshold ε when removing at most ``ε · |r|``
rows makes it hold exactly.  TANE's g3 measure computes that minimum
removal count from the stripped partitions: for each cluster of
``π_X``, all rows except the largest A-constant subgroup must go.

This matters in practice because dirty data (the paper's σ4 voter-id
example) breaks exact FDs that are clearly real; an ε of a fraction of
a percent recovers them.  The implementation is level-wise like TANE,
pruning once an (approximate) FD is found.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..core.base import Deadline, DiscoveryAlgorithm
from ..core.result import DiscoveryStats
from ..partitions.stripped import StrippedPartition
from ..relational import attrset
from ..relational.attrset import AttrSet
from ..relational.fd import FD, FDSet
from ..relational.relation import Relation
from ..resilience import RunBudget


def g3_error(relation: Relation, lhs: AttrSet, rhs_attr: int) -> float:
    """The g3 error of ``lhs -> rhs_attr`` on ``relation``.

    g3 = (minimum number of rows to delete so the FD holds) / |r|.
    """
    if relation.n_rows == 0:
        return 0.0
    partition = StrippedPartition.for_attrs(relation, lhs)
    return _g3_from_partition(relation, partition, rhs_attr)


def _g3_from_partition(
    relation: Relation, partition: StrippedPartition, rhs_attr: int
) -> float:
    codes = relation.codes(rhs_attr)
    removals = 0
    for cluster in partition.clusters:
        counts: Dict[int, int] = {}
        for row in cluster:
            code = int(codes[row])
            counts[code] = counts.get(code, 0) + 1
        removals += len(cluster) - max(counts.values())
    return removals / relation.n_rows


class ApproximateTANE(DiscoveryAlgorithm):
    """Level-wise discovery of approximate FDs under a g3 threshold.

    With ``error_threshold = 0`` the output coincides with the exact
    left-reduced cover (TANE's special case); larger thresholds admit
    FDs violated by a bounded fraction of rows.  Output FDs are minimal
    in the approximate sense: no proper LHS subset is itself within the
    threshold.
    """

    name = "atane"

    def __init__(
        self,
        error_threshold: float = 0.01,
        time_limit: Optional[float] = None,
        max_lhs_size: Optional[int] = None,
        budget: Optional["RunBudget"] = None,
        on_limit: str = "raise",
    ):
        super().__init__(time_limit, budget=budget, on_limit=on_limit)
        if error_threshold < 0:
            raise ValueError("error threshold must be non-negative")
        self.error_threshold = error_threshold
        self.max_lhs_size = max_lhs_size

    def _find_fds(
        self, relation: Relation, deadline: Deadline
    ) -> Tuple[FDSet, DiscoveryStats]:
        stats = DiscoveryStats()
        n_cols = relation.n_cols
        fds = FDSet()
        # per RHS attribute: minimal approximate LHSs found so far
        minimal: Dict[int, List[AttrSet]] = {a: [] for a in range(n_cols)}

        level: List[AttrSet] = [attrset.EMPTY]
        partitions: Dict[AttrSet, StrippedPartition] = {
            attrset.EMPTY: StrippedPartition.universal(relation)
        }
        size = 0
        while level:
            deadline.check()
            stats.levels_processed += 1
            next_level: List[AttrSet] = []
            next_partitions: Dict[AttrSet, StrippedPartition] = {}
            for lhs in level:
                partition = partitions[lhs]
                open_rhs = []
                for rhs_attr in range(n_cols):
                    if attrset.contains(lhs, rhs_attr):
                        continue
                    if any(
                        attrset.is_subset(m, lhs) for m in minimal[rhs_attr]
                    ):
                        continue
                    stats.validations += 1
                    error = _g3_from_partition(relation, partition, rhs_attr)
                    if error <= self.error_threshold:
                        minimal[rhs_attr].append(lhs)
                        fds.add(FD(lhs, attrset.singleton(rhs_attr)))
                    else:
                        open_rhs.append(rhs_attr)
                if not open_rhs:
                    continue
                if self.max_lhs_size is not None and size >= self.max_lhs_size:
                    continue
                floor = attrset.highest(lhs) if lhs else -1
                for attr in range(floor + 1, n_cols):
                    candidate = attrset.add(lhs, attr)
                    if candidate not in next_partitions:
                        next_partitions[candidate] = partition.refine(
                            relation, attr
                        )
                        next_level.append(candidate)
            level = next_level
            partitions = next_partitions
            size += 1
        return fds, stats
