"""Name-based registry of all discovery algorithms."""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from ..core.base import DiscoveryAlgorithm
from ..core.dhyfd import DHyFD
from .approximate import ApproximateTANE
from .fastfds import FastFDs
from .fdep import FDEP, FDEP1, FDEP2
from .hyfd import HyFD
from .naive import NaiveFDDiscovery
from .tane import TANE

_REGISTRY: Dict[str, Callable[..., DiscoveryAlgorithm]] = {
    DHyFD.name: DHyFD,
    HyFD.name: HyFD,
    TANE.name: TANE,
    FDEP.name: FDEP,
    FDEP1.name: FDEP1,
    FDEP2.name: FDEP2,
    NaiveFDDiscovery.name: NaiveFDDiscovery,
    FastFDs.name: FastFDs,
    ApproximateTANE.name: ApproximateTANE,
}


def algorithm_names() -> List[str]:
    """All registered algorithm names, sorted."""
    return sorted(_REGISTRY)


def make_algorithm(
    name: str, time_limit: Optional[float] = None, **kwargs
) -> DiscoveryAlgorithm:
    """Instantiate a discovery algorithm by name.

    Extra keyword arguments are forwarded to the constructor (e.g.
    ``ratio_threshold`` for DHyFD).
    """
    try:
        factory = _REGISTRY[name.lower()]
    except KeyError:
        raise ValueError(
            f"unknown algorithm {name!r}; choose from {algorithm_names()}"
        ) from None
    return factory(time_limit=time_limit, **kwargs)
