"""Bounded-concurrency job scheduler with priorities and cancellation.

The scheduler owns a fixed pool of worker threads (the concurrency
bound — each running job may itself fan out over the shared
:mod:`repro.parallel` process pool, so a handful of workers saturates
the machine) and a priority queue of :class:`Job` records.  Higher
``priority`` runs first; ties run in submission order.  The executor —
supplied by :class:`~repro.service.app.FDService` — does the actual
cache lookup / discovery / ranking; the scheduler only sequences it,
tracks job state, and turns exceptions into ``failed`` statuses.

Cancellation is cooperative: a queued job is cancelled outright (it is
skipped when popped); a running job gets ``cancel_requested`` set,
which the executor may honour at its own checkpoints.
"""

from __future__ import annotations

import heapq
import itertools
import threading
import time
from typing import Callable, Dict, List, Optional

from ..core.result import DiscoveryResult
from .config import JobConfig
from .store import _noop_count

#: Job lifecycle states.
QUEUED = "queued"
RUNNING = "running"
DONE = "done"
FAILED = "failed"
CANCELLED = "cancelled"


class UnknownJobError(KeyError):
    """Raised when a job id resolves to no job."""

    def __init__(self, job_id: str):
        super().__init__(f"unknown job {job_id!r}")
        self.job_id = job_id


class SchedulerDraining(RuntimeError):
    """Raised when a job is submitted to a draining scheduler.

    The HTTP layer maps this to 503 + ``Retry-After`` so clients (and
    the cluster router) know the replica is shutting down gracefully
    rather than broken.
    """


class JobCancelled(RuntimeError):
    """Raised by an executor when it honours a cancel request."""


class Job:
    """One scheduled unit of work and everything we know about it."""

    def __init__(
        self,
        job_id: str,
        dataset: str,
        kind: str,
        config: JobConfig,
        priority: int = 0,
    ):
        self.job_id = job_id
        #: Dataset fingerprint the job runs against.
        self.dataset = dataset
        #: ``"discover"`` or ``"rank"``.
        self.kind = kind
        self.config = config
        self.priority = priority
        self.status = QUEUED
        self.result: Optional[DiscoveryResult] = None
        #: Ranked-FD payloads for ``rank`` jobs (None otherwise).
        self.ranking: Optional[List[Dict[str, object]]] = None
        #: True when the result came from the store, not a fresh run.
        self.cached = False
        self.error: Optional[str] = None
        self.cancel_requested = False
        self.submitted_at = time.time()
        self.started_at: Optional[float] = None
        self.finished_at: Optional[float] = None
        #: Flat telemetry summary of the run (see ``trace_summary``).
        self.trace: Optional[Dict[str, object]] = None
        self.done = threading.Event()

    def status_payload(self, include_result: bool = True) -> Dict[str, object]:
        """JSON-friendly job status for the HTTP layer."""
        payload: Dict[str, object] = {
            "job_id": self.job_id,
            "dataset": self.dataset,
            "kind": self.kind,
            "config": self.config.to_dict(),
            "priority": self.priority,
            "status": self.status,
            "cached": self.cached,
            "error": self.error,
            "cancel_requested": self.cancel_requested,
            "submitted_at": self.submitted_at,
            "started_at": self.started_at,
            "finished_at": self.finished_at,
        }
        if include_result and self.result is not None:
            payload["result"] = self.result.to_payload()
        if self.ranking is not None:
            payload["ranking"] = self.ranking
        if self.trace is not None:
            payload["trace"] = self.trace
        return payload


class JobScheduler:
    """Priority-ordered execution of jobs on a bounded worker pool."""

    def __init__(
        self,
        executor: Callable[[Job], None],
        max_workers: int = 2,
        count: Callable[..., None] = _noop_count,
    ):
        """Args:
            executor: runs one job (sets ``result``/``ranking``/...);
                raised exceptions mark the job ``failed``.
            max_workers: concurrent discovery runs allowed.
            count: metrics hook ``count(name, amount=1)``.
        """
        if max_workers < 1:
            raise ValueError(f"max_workers must be >= 1, got {max_workers}")
        self._executor = executor
        self._count = count
        self.max_workers = max_workers
        self._cond = threading.Condition()
        self._heap: List[tuple] = []
        self._jobs: Dict[str, Job] = {}
        self._seq = itertools.count(1)
        self._stopping = False
        self._draining = False
        self._running = 0
        self._workers = [
            threading.Thread(
                target=self._worker_loop, name=f"repro-service-worker-{i}", daemon=True
            )
            for i in range(max_workers)
        ]
        for worker in self._workers:
            worker.start()

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------

    def submit(
        self,
        dataset: str,
        kind: str,
        config: JobConfig,
        priority: int = 0,
    ) -> Job:
        """Queue a job; returns immediately with the live :class:`Job`."""
        if kind not in ("discover", "rank"):
            raise ValueError(f"job kind must be 'discover' or 'rank', got {kind!r}")
        with self._cond:
            if self._stopping:
                raise RuntimeError("scheduler is shut down")
            if self._draining:
                raise SchedulerDraining("scheduler is draining; not accepting jobs")
            seq = next(self._seq)
            job = Job(f"job-{seq}", dataset, kind, config, priority=priority)
            self._jobs[job.job_id] = job
            heapq.heappush(self._heap, (-priority, seq, job))
            self._count("service.jobs.submitted")
            self._cond.notify()
        return job

    def get(self, job_id: str) -> Job:
        """Look up a job by id."""
        with self._cond:
            try:
                return self._jobs[job_id]
            except KeyError:
                raise UnknownJobError(job_id) from None

    def jobs(self) -> List[Job]:
        """All jobs, oldest first."""
        with self._cond:
            return sorted(self._jobs.values(), key=lambda j: j.submitted_at)

    def wait(self, job_id: str, timeout: Optional[float] = None) -> Job:
        """Block until a job reaches a terminal state (or timeout)."""
        job = self.get(job_id)
        job.done.wait(timeout)
        return job

    def cancel(self, job_id: str) -> str:
        """Cancel a job; returns the resulting status.

        Queued jobs become ``cancelled``; running jobs keep running but
        get ``cancel_requested`` set (cooperative).  Finished jobs are
        left untouched.
        """
        with self._cond:
            job = self.get(job_id)
            if job.status == QUEUED:
                job.status = CANCELLED
                job.finished_at = time.time()
                job.done.set()
                self._count("service.jobs.cancelled")
            elif job.status == RUNNING:
                job.cancel_requested = True
            return job.status

    def queue_depth(self) -> int:
        """Number of jobs waiting to run."""
        with self._cond:
            return sum(1 for _, _, job in self._heap if job.status == QUEUED)

    def running(self) -> int:
        """Number of jobs currently executing."""
        with self._cond:
            return self._running

    def counters(self) -> Dict[str, int]:
        """Queue/worker occupancy as a JSON-friendly dict."""
        with self._cond:
            by_status: Dict[str, int] = {}
            for job in self._jobs.values():
                by_status[job.status] = by_status.get(job.status, 0) + 1
            return {
                "workers": self.max_workers,
                "queued": by_status.get(QUEUED, 0),
                "running": by_status.get(RUNNING, 0),
                "done": by_status.get(DONE, 0),
                "failed": by_status.get(FAILED, 0),
                "cancelled": by_status.get(CANCELLED, 0),
            }

    def gauges(self) -> Dict[str, float]:
        """Live saturation gauges for ``/metrics`` (see docs/telemetry.md).

        ``queue_depth`` and ``in_flight`` are instantaneous occupancy;
        ``worker_utilization`` is ``in_flight / workers`` in ``[0, 1]``
        — the load harness and the cluster router read these to observe
        saturation as it happens, not just counters after the fact.
        """
        with self._cond:
            queued = sum(1 for _, _, job in self._heap if job.status == QUEUED)
            return {
                "queue_depth": queued,
                "in_flight": self._running,
                "worker_utilization": self._running / self.max_workers,
                "draining": 1.0 if self._draining else 0.0,
            }

    def drain(self, timeout: Optional[float] = None) -> bool:
        """Stop accepting jobs and wait for accepted ones to finish.

        Every job already queued or running counts as in-flight and is
        allowed to complete; new :meth:`submit` calls raise
        :class:`SchedulerDraining`.  Returns True when everything
        finished inside ``timeout`` (None = wait forever); on timeout
        the stragglers are left running (a following :meth:`shutdown`
        cancels what is still queued).
        """
        with self._cond:
            self._draining = True
            pending = [
                job
                for job in self._jobs.values()
                if job.status in (QUEUED, RUNNING)
            ]
        deadline = None if timeout is None else time.monotonic() + timeout
        for job in pending:
            remaining = None
            if deadline is not None:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    return False
            if not job.done.wait(remaining):
                return False
        return True

    def shutdown(self, wait: bool = True) -> None:
        """Stop the workers; queued jobs are cancelled."""
        with self._cond:
            if self._stopping:
                return
            self._stopping = True
            for _, _, job in self._heap:
                if job.status == QUEUED:
                    job.status = CANCELLED
                    job.finished_at = time.time()
                    job.done.set()
            self._heap.clear()
            self._cond.notify_all()
        if wait:
            for worker in self._workers:
                worker.join(timeout=30.0)

    # ------------------------------------------------------------------
    # Worker loop
    # ------------------------------------------------------------------

    def _pop_job(self) -> Optional[Job]:
        """Next runnable job, blocking until one exists or shutdown."""
        with self._cond:
            while True:
                while self._heap:
                    _, _, job = heapq.heappop(self._heap)
                    if job.status == QUEUED:
                        job.status = RUNNING
                        job.started_at = time.time()
                        self._running += 1
                        return job
                if self._stopping:
                    return None
                self._cond.wait()

    def _worker_loop(self) -> None:
        while True:
            job = self._pop_job()
            if job is None:
                return
            try:
                self._executor(job)
            except JobCancelled:
                job.status = CANCELLED
                self._count("service.jobs.cancelled")
            except Exception as exc:  # noqa: BLE001 — job isolation boundary
                job.status = FAILED
                job.error = f"{type(exc).__name__}: {exc}"
                self._count("service.jobs.failed")
            else:
                job.status = DONE
                self._count("service.jobs.completed")
            finally:
                job.finished_at = time.time()
                with self._cond:
                    self._running -= 1
                job.done.set()
