"""Bounded-concurrency job scheduler with priorities and cancellation.

The scheduler owns a fixed pool of worker threads (the concurrency
bound — each running job may itself fan out over the shared
:mod:`repro.parallel` process pool, so a handful of workers saturates
the machine) and a priority queue of :class:`Job` records.  Higher
``priority`` runs first; ties run in submission order.  The executor —
supplied by :class:`~repro.service.app.FDService` — does the actual
cache lookup / discovery / ranking; the scheduler only sequences it,
tracks job state, and turns exceptions into ``failed`` statuses.

Cancellation is cooperative: a queued job is cancelled outright (it is
skipped when popped); a running job gets ``cancel_requested`` set,
which the executor may honour at its own checkpoints.

With a :class:`~repro.service.journal.JobJournal` attached, every
transition is write-ahead logged and :meth:`JobScheduler.recover`
rebuilds the job table after a crash: jobs that never started are
requeued, checkpointed ones resume, unrecoverable ones become ``lost``
— a real terminal status clients can observe instead of a 404 (see
``docs/durability.md``).
"""

from __future__ import annotations

import heapq
import itertools
import re
import threading
import time
from typing import Callable, Dict, List, Optional

from ..core.result import DiscoveryResult
from ..resilience import faults
from .config import JobConfig
from .store import _noop_count

#: Job lifecycle states.
QUEUED = "queued"
RUNNING = "running"
DONE = "done"
FAILED = "failed"
CANCELLED = "cancelled"
#: Terminal state for journaled jobs a restart could not recover
#: (dataset gone, undecodable config): the id still resolves, the
#: client's poll loop sees a terminal status instead of a 404.
LOST = "lost"

_JOB_ID_RE = re.compile(r"^job-(\d+)$")


class UnknownJobError(KeyError):
    """Raised when a job id resolves to no job."""

    def __init__(self, job_id: str):
        super().__init__(f"unknown job {job_id!r}")
        self.job_id = job_id


class SchedulerDraining(RuntimeError):
    """Raised when a job is submitted to a draining scheduler.

    The HTTP layer maps this to 503 + ``Retry-After`` so clients (and
    the cluster router) know the replica is shutting down gracefully
    rather than broken.
    """


class JobCancelled(RuntimeError):
    """Raised by an executor when it honours a cancel request."""


class Job:
    """One scheduled unit of work and everything we know about it."""

    def __init__(
        self,
        job_id: str,
        dataset: str,
        kind: str,
        config: JobConfig,
        priority: int = 0,
    ):
        self.job_id = job_id
        #: Dataset fingerprint the job runs against.
        self.dataset = dataset
        #: ``"discover"``, ``"rank"`` or ``"multitable"``.
        self.kind = kind
        self.config = config
        self.priority = priority
        self.status = QUEUED
        self.result: Optional[DiscoveryResult] = None
        #: Ranked-FD payloads for ``rank`` jobs (None otherwise).
        self.ranking: Optional[List[Dict[str, object]]] = None
        #: True when the result came from the store, not a fresh run.
        self.cached = False
        #: Join summary for ``multitable`` jobs (None otherwise).
        self.multitable: Optional[Dict[str, object]] = None
        self.error: Optional[str] = None
        self.cancel_requested = False
        self.submitted_at = time.time()
        self.started_at: Optional[float] = None
        self.finished_at: Optional[float] = None
        #: Flat telemetry summary of the run (see ``trace_summary``).
        self.trace: Optional[Dict[str, object]] = None
        #: Client-supplied dedup key (see ``Idempotency-Key`` header).
        self.idempotency_key: Optional[str] = None
        #: Discovery checkpoint to resume from (set by recovery).
        self.checkpoint: Optional[Dict[str, object]] = None
        #: True when this Job was rebuilt from the journal after a
        #: restart; ``resumed`` additionally means its execution seeded
        #: the FD tree from a checkpoint instead of starting cold.
        self.recovered = False
        self.resumed = False
        self.done = threading.Event()

    def status_payload(self, include_result: bool = True) -> Dict[str, object]:
        """JSON-friendly job status for the HTTP layer."""
        payload: Dict[str, object] = {
            "job_id": self.job_id,
            "dataset": self.dataset,
            "kind": self.kind,
            "config": self.config.to_dict(),
            "priority": self.priority,
            "status": self.status,
            "cached": self.cached,
            "error": self.error,
            "cancel_requested": self.cancel_requested,
            "submitted_at": self.submitted_at,
            "started_at": self.started_at,
            "finished_at": self.finished_at,
        }
        if self.recovered:
            payload["recovered"] = True
        if self.resumed:
            payload["resumed"] = True
        if include_result and self.result is not None:
            payload["result"] = self.result.to_payload()
        if self.ranking is not None:
            payload["ranking"] = self.ranking
        if self.multitable is not None:
            payload["multitable"] = self.multitable
        if self.trace is not None:
            payload["trace"] = self.trace
        return payload


class JobScheduler:
    """Priority-ordered execution of jobs on a bounded worker pool."""

    def __init__(
        self,
        executor: Callable[[Job], None],
        max_workers: int = 2,
        count: Callable[..., None] = _noop_count,
        journal=None,
    ):
        """Args:
            executor: runs one job (sets ``result``/``ranking``/...);
                raised exceptions mark the job ``failed``.
            max_workers: concurrent discovery runs allowed.
            count: metrics hook ``count(name, amount=1)``.
            journal: optional
                :class:`~repro.service.journal.JobJournal` — every
                transition is write-ahead logged for crash recovery.
        """
        if max_workers < 1:
            raise ValueError(f"max_workers must be >= 1, got {max_workers}")
        self._executor = executor
        self._count = count
        self._journal = journal
        self.max_workers = max_workers
        self._cond = threading.Condition()
        self._heap: List[tuple] = []
        self._jobs: Dict[str, Job] = {}
        #: Idempotency-key -> job id (dedup table, rebuilt on recover).
        self._by_key: Dict[str, str] = {}
        self._seq = itertools.count(1)
        self._stopping = False
        self._draining = False
        self._running = 0
        self._workers = [
            threading.Thread(
                target=self._worker_loop, name=f"repro-service-worker-{i}", daemon=True
            )
            for i in range(max_workers)
        ]
        for worker in self._workers:
            worker.start()

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------

    def submit(
        self,
        dataset: str,
        kind: str,
        config: JobConfig,
        priority: int = 0,
        idempotency_key: Optional[str] = None,
    ) -> Job:
        """Queue a job; returns immediately with the live :class:`Job`.

        ``idempotency_key`` dedups retried submissions: a key already
        seen (including across restarts, via the journal) returns the
        original job instead of queueing a duplicate.
        """
        if kind not in ("discover", "rank", "multitable"):
            raise ValueError(
                f"job kind must be 'discover', 'rank' or 'multitable', got {kind!r}"
            )
        with self._cond:
            if self._stopping:
                raise RuntimeError("scheduler is shut down")
            if self._draining:
                raise SchedulerDraining("scheduler is draining; not accepting jobs")
            if idempotency_key is not None:
                existing = self._by_key.get(idempotency_key)
                if existing is not None and existing in self._jobs:
                    self._count("service.jobs.deduped")
                    return self._jobs[existing]
            seq = next(self._seq)
            job = Job(f"job-{seq}", dataset, kind, config, priority=priority)
            job.idempotency_key = idempotency_key
            if idempotency_key is not None:
                self._by_key[idempotency_key] = job.job_id
            self._jobs[job.job_id] = job
            heapq.heappush(self._heap, (-priority, seq, job))
            self._count("service.jobs.submitted")
            self._cond.notify()
        if self._journal is not None:
            self._journal.record_submit(
                job.job_id,
                dataset,
                kind,
                config.to_dict(),
                priority=priority,
                idempotency_key=idempotency_key,
                submitted_at=job.submitted_at,
            )
        return job

    def get(self, job_id: str) -> Job:
        """Look up a job by id."""
        with self._cond:
            try:
                return self._jobs[job_id]
            except KeyError:
                raise UnknownJobError(job_id) from None

    def jobs(self) -> List[Job]:
        """All jobs, oldest first."""
        with self._cond:
            return sorted(self._jobs.values(), key=lambda j: j.submitted_at)

    def wait(self, job_id: str, timeout: Optional[float] = None) -> Job:
        """Block until a job reaches a terminal state (or timeout)."""
        job = self.get(job_id)
        job.done.wait(timeout)
        return job

    def cancel(self, job_id: str) -> str:
        """Cancel a job; returns the resulting status.

        Queued jobs become ``cancelled``; running jobs keep running but
        get ``cancel_requested`` set (cooperative).  Finished jobs are
        left untouched.
        """
        with self._cond:
            job = self.get(job_id)
            if job.status == QUEUED:
                job.status = CANCELLED
                job.finished_at = time.time()
                job.done.set()
                self._count("service.jobs.cancelled")
            elif job.status == RUNNING:
                job.cancel_requested = True
            status = job.status
        if self._journal is not None:
            if status == CANCELLED:
                self._journal.record_finish(job_id, CANCELLED)
            elif status == RUNNING:
                self._journal.record_cancel(job_id)
        return status

    def queue_depth(self) -> int:
        """Number of jobs waiting to run."""
        with self._cond:
            return sum(1 for _, _, job in self._heap if job.status == QUEUED)

    def running(self) -> int:
        """Number of jobs currently executing."""
        with self._cond:
            return self._running

    def counters(self) -> Dict[str, int]:
        """Queue/worker occupancy as a JSON-friendly dict."""
        with self._cond:
            by_status: Dict[str, int] = {}
            for job in self._jobs.values():
                by_status[job.status] = by_status.get(job.status, 0) + 1
            return {
                "workers": self.max_workers,
                "queued": by_status.get(QUEUED, 0),
                "running": by_status.get(RUNNING, 0),
                "done": by_status.get(DONE, 0),
                "failed": by_status.get(FAILED, 0),
                "cancelled": by_status.get(CANCELLED, 0),
                "lost": by_status.get(LOST, 0),
            }

    def gauges(self) -> Dict[str, float]:
        """Live saturation gauges for ``/metrics`` (see docs/telemetry.md).

        ``queue_depth`` and ``in_flight`` are instantaneous occupancy;
        ``worker_utilization`` is ``in_flight / workers`` in ``[0, 1]``
        — the load harness and the cluster router read these to observe
        saturation as it happens, not just counters after the fact.
        """
        with self._cond:
            queued = sum(1 for _, _, job in self._heap if job.status == QUEUED)
            return {
                "queue_depth": queued,
                "in_flight": self._running,
                "worker_utilization": self._running / self.max_workers,
                "draining": 1.0 if self._draining else 0.0,
            }

    def drain(self, timeout: Optional[float] = None) -> bool:
        """Stop accepting jobs and wait for accepted ones to finish.

        Every job already queued or running counts as in-flight and is
        allowed to complete; new :meth:`submit` calls raise
        :class:`SchedulerDraining`.  Returns True when everything
        finished inside ``timeout`` (None = wait forever); on timeout
        the stragglers are left running (a following :meth:`shutdown`
        cancels what is still queued).
        """
        with self._cond:
            self._draining = True
            pending = [
                job
                for job in self._jobs.values()
                if job.status in (QUEUED, RUNNING)
            ]
        deadline = None if timeout is None else time.monotonic() + timeout
        for job in pending:
            remaining = None
            if deadline is not None:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    return False
            if not job.done.wait(remaining):
                return False
        return True

    def shutdown(self, wait: bool = True) -> None:
        """Stop the workers; queued jobs are cancelled."""
        cancelled: List[str] = []
        with self._cond:
            if self._stopping:
                return
            self._stopping = True
            for _, _, job in self._heap:
                if job.status == QUEUED:
                    job.status = CANCELLED
                    job.finished_at = time.time()
                    job.done.set()
                    cancelled.append(job.job_id)
            self._heap.clear()
            self._cond.notify_all()
        if self._journal is not None:
            for job_id in cancelled:
                self._journal.record_finish(job_id, CANCELLED)
        if wait:
            for worker in self._workers:
                worker.join(timeout=30.0)

    # ------------------------------------------------------------------
    # Worker loop
    # ------------------------------------------------------------------

    def _pop_job(self) -> Optional[Job]:
        """Next runnable job, blocking until one exists or shutdown."""
        with self._cond:
            while True:
                while self._heap:
                    _, _, job = heapq.heappop(self._heap)
                    if job.status == QUEUED:
                        job.status = RUNNING
                        job.started_at = time.time()
                        self._running += 1
                        return job
                if self._stopping:
                    return None
                self._cond.wait()

    def _worker_loop(self) -> None:
        while True:
            job = self._pop_job()
            if job is None:
                return
            if self._journal is not None:
                self._journal.record_start(job.job_id)
            try:
                self._executor(job)
            except JobCancelled:
                job.status = CANCELLED
                self._count("service.jobs.cancelled")
            except Exception as exc:  # noqa: BLE001 — job isolation boundary
                job.status = FAILED
                job.error = f"{type(exc).__name__}: {exc}"
                self._count("service.jobs.failed")
            else:
                job.status = DONE
                self._count("service.jobs.completed")
            finally:
                job.finished_at = time.time()
                if self._journal is not None:
                    self._journal.record_finish(job.job_id, job.status)
                with self._cond:
                    self._running -= 1
                job.done.set()

    # ------------------------------------------------------------------
    # Crash recovery
    # ------------------------------------------------------------------

    def recover(
        self,
        dataset_ok: Callable[[str], bool],
        result_for: Optional[
            Callable[[str, JobConfig], Optional[DiscoveryResult]]
        ] = None,
    ) -> Dict[str, int]:
        """Rebuild the job table from the attached journal's replay.

        Jobs finish in one of four ways (counted in the returned dict):

        * ``completed`` — the journal recorded a terminal status; the
          Job is recreated terminal, and for ``done`` jobs the cover is
          re-attached from the result store via ``result_for``, so the
          client's poll loop lands on the same answer it would have.
        * ``requeued`` — submitted but never started (or started
          without a checkpoint): queued again from scratch.
        * ``resumed`` — started with a checkpoint on record: queued
          with ``job.checkpoint`` set so discovery seeds its FD tree
          from the snapshot instead of starting cold.
        * ``lost`` — the dataset is gone or the config undecodable; a
          real terminal status, so pollers get an answer, not a 404.

        Call before serving traffic (the journal replays in its
        constructor; this only folds the replayed state in).
        """
        counts = {"completed": 0, "requeued": 0, "resumed": 0, "lost": 0}
        if self._journal is None:
            return counts
        try:
            faults.fire("scheduler.recover")
            entries = sorted(
                self._journal.jobs.values(), key=lambda j: j.submitted_at
            )
        except Exception:  # noqa: BLE001 — recovery must not kill boot
            self._count("service.scheduler.recover_errors")
            return counts
        max_seq = 0
        for entry in entries:
            match = _JOB_ID_RE.match(entry.job_id)
            if match:
                max_seq = max(max_seq, int(match.group(1)))
            try:
                config = JobConfig.from_dict(entry.config)
            except Exception:  # noqa: BLE001 — undecodable config
                config = None
            job = Job(
                entry.job_id,
                entry.dataset,
                entry.kind,
                config if config is not None else JobConfig.from_dict(None),
                priority=entry.priority,
            )
            job.recovered = True
            job.idempotency_key = entry.idempotency_key
            job.submitted_at = entry.submitted_at or job.submitted_at
            if entry.terminal is not None:
                # Journal says it finished: recreate the terminal state
                # (re-attaching the stored cover for ``done`` jobs).
                job.status = entry.terminal
                job.finished_at = job.submitted_at
                if entry.terminal == DONE and result_for is not None and config is not None:
                    result = result_for(entry.dataset, config)
                    if result is not None:
                        job.result = result
                        job.cached = True
                job.done.set()
                counts["completed"] += 1
            elif config is None or not dataset_ok(entry.dataset):
                job.status = LOST
                job.finished_at = time.time()
                job.done.set()
                counts["lost"] += 1
                self._count("service.jobs.lost")
                self._journal.record_finish(entry.job_id, LOST)
            elif entry.cancel_requested:
                # Cancellation was requested before the crash; honour
                # it instead of resurrecting the run.
                job.status = CANCELLED
                job.finished_at = time.time()
                job.done.set()
                counts["completed"] += 1
                self._journal.record_finish(entry.job_id, CANCELLED)
            else:
                if entry.checkpoint is not None:
                    job.checkpoint = entry.checkpoint
                    counts["resumed"] += 1
                else:
                    counts["requeued"] += 1
                self._count("service.jobs.requeued")
            with self._cond:
                self._jobs[job.job_id] = job
                if entry.idempotency_key is not None:
                    self._by_key[entry.idempotency_key] = job.job_id
                if job.status == QUEUED:
                    seq = next(self._seq)
                    heapq.heappush(self._heap, (-job.priority, seq, job))
                    self._cond.notify()
        # Fresh submissions must never collide with recovered ids.
        with self._cond:
            current = next(self._seq)
            if current <= max_seq:
                self._seq = itertools.count(max_seq + 1)
        return counts
