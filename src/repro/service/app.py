"""FDService — the in-process facade the HTTP server (and tests) drive.

Composes the four layers the ROADMAP grew so far into one concurrent
discovery service:

* **datasets** live in a :class:`~repro.service.registry.DatasetRegistry`
  (content-fingerprint keyed, appends via synergized induction);
* **covers** are cached in a :class:`~repro.service.store.ResultStore`
  (``(fingerprint, algorithm, config)`` keyed, JSON-persisted);
* **jobs** run on a :class:`~repro.service.scheduler.JobScheduler`
  (bounded workers, priorities, cooperative cancellation) with per-job
  :class:`~repro.resilience.RunBudget` limits and their own
  :class:`~repro.telemetry.Tracer` (the flat summary rides along in the
  job status);
* repeated identical requests are **single-flighted**: when two jobs
  for the same ``(fingerprint, config)`` key overlap, the follower
  waits for the leader and reuses its stored cover instead of running
  discovery twice.

Covers produced through the service are byte-identical to direct
in-process discovery — the service calls the exact same
:func:`~repro.algorithms.make_algorithm` path, and the determinism
guarantees of the parallel/kernel layers carry over.
"""

from __future__ import annotations

import threading
import time
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Union

from .. import __version__, memplane
from ..algorithms.registry import make_algorithm
from ..core.result import DiscoveryResult, DiscoveryStats
from ..covers.canonical import canonical_cover
from ..ranking.ranker import rank_cover
from ..relational.fd import FDSet
from ..relational.io import read_csv_text
from ..relational.relation import Relation
from ..core.base import default_checkpoint_interval
from ..multitable.discovery import fd_scope, fd_tables
from ..multitable.provenance import attribute_tables, build_provenance, lift_relation
from ..telemetry import MetricsRegistry, Tracer, trace_summary, use_tracer
from .config import ConfigError, JobConfig
from .journal import WAL_FILENAME, JobJournal, journal_enabled_by_env
from .registry import DatasetEntry, DatasetRegistry, UnknownDatasetError
from .scheduler import Job, JobCancelled, JobScheduler
from .schemas import SchemaEntry, SchemaIndex, UnknownSchemaError
from .store import ResultStore


class _VirtualJoin:
    """Duck-typed :class:`DatasetEntry` over a schema's virtual join.

    ``fingerprint`` is the schema graph's content fingerprint — known
    without touching any rows — while the config's ``join_path`` and
    ``on_dangling`` ride in the cache key's config part, so two paths
    (or policies) over one schema never share a cover.  Provenance and
    the lifted relation are built once, on first ``.relation`` access,
    which a cover cache hit in ``_discover_with_cache`` never performs.
    """

    def __init__(self, entry: SchemaEntry, config: JobConfig):
        self.entry = entry
        self.config = config
        self.fingerprint = entry.fingerprint
        self._provenance = None
        self._relation: Optional[Relation] = None

    @property
    def provenance(self):
        if self._provenance is None:
            self._provenance = build_provenance(
                self.entry.graph,
                self.config.join_path,
                on_dangling=self.config.on_dangling or "raise",
                backend=self.config.backend,
            )
        return self._provenance

    @property
    def relation(self) -> Relation:
        if self._relation is None:
            self._relation = lift_relation(
                self.entry.graph, self.provenance, backend=self.config.backend
            )
        return self._relation


class FDService:
    """A concurrent FD-discovery service over a dataset registry."""

    def __init__(
        self,
        max_workers: int = 2,
        store_dir: Optional[Union[str, Path]] = None,
        dataset_dir: Optional[Union[str, Path]] = None,
        journal: Optional[bool] = None,
        recover: bool = False,
        checkpoint_interval: Optional[float] = None,
    ):
        """Args:
            max_workers: concurrent discovery runs (scheduler bound).
            store_dir: persist cached covers here (survives restarts).
            dataset_dir: persist registered datasets here too, so a
                restarted replica still owns its shard (see
                :mod:`repro.cluster`).
            journal: write-ahead log job transitions to ``jobs.wal``
                under ``store_dir`` (see ``docs/durability.md``).
                ``None`` enables it whenever ``store_dir`` is set and
                ``REPRO_FD_JOURNAL`` doesn't say otherwise; ``True``
                forces it on (still needs a ``store_dir``).
            recover: replay the journal on startup — requeue jobs that
                never started, resume checkpointed ones, mark
                unrecoverable ones ``lost``.
            checkpoint_interval: seconds between discovery checkpoint
                emissions (``None`` = ``REPRO_FD_CHECKPOINT_INTERVAL``
                or 5.0; 0 checkpoints at every level boundary).
        """
        self.metrics = MetricsRegistry()
        self._metrics_lock = threading.Lock()
        self.store = ResultStore(persist_dir=store_dir, count=self._count)
        self.registry = DatasetRegistry(
            store=self.store, count=self._count, persist_dir=dataset_dir
        )
        # Multi-table schema declarations over registered datasets
        # (persisted beside covers: schemas only reference dataset
        # fingerprints, so they reload after the registry does).
        self.schemas = SchemaIndex(
            self.registry,
            count=self._count,
            persist_dir=(Path(store_dir) / "schemas") if store_dir is not None else None,
        )
        self.checkpoint_interval = (
            default_checkpoint_interval()
            if checkpoint_interval is None
            else max(0.0, checkpoint_interval)
        )
        enabled = journal if journal is not None else journal_enabled_by_env()
        self.journal: Optional[JobJournal] = None
        if enabled and store_dir is not None:
            try:
                self.journal = JobJournal(
                    Path(store_dir) / WAL_FILENAME, count=self._count
                )
            except Exception:  # noqa: BLE001 — durability aid, not hazard
                self._count("service.journal.errors")
        self.scheduler = JobScheduler(
            self._execute,
            max_workers=max_workers,
            count=self._count,
            journal=self.journal,
        )
        #: Single-flight table: store key -> leader job currently running it.
        self._inflight: Dict[tuple, Job] = {}
        self._inflight_lock = threading.Lock()
        #: Startup-recovery outcome (``/health`` surfaces this).
        self.recovery: Dict[str, int] = {}
        if recover and self.journal is not None:
            self.recovery = self.scheduler.recover(
                dataset_ok=self._dataset_known, result_for=self._stored_result
            )

    def _dataset_known(self, fingerprint: str) -> bool:
        """A recovered job's target still exists (dataset *or* schema)."""
        try:
            self.registry.resolve(fingerprint)
            return True
        except UnknownDatasetError:
            pass
        try:
            self.schemas.resolve(fingerprint)
            return True
        except UnknownSchemaError:
            return False

    def _stored_result(
        self, fingerprint: str, config: JobConfig
    ) -> Optional[DiscoveryResult]:
        return self.store.get(fingerprint, config)

    def _count(self, name: str, amount: int = 1) -> None:
        """Thread-safe counter increment on the service metrics registry."""
        with self._metrics_lock:
            self.metrics.counter(name).inc(amount)

    # ------------------------------------------------------------------
    # Datasets
    # ------------------------------------------------------------------

    def register_relation(
        self, relation: Relation, name: Optional[str] = None
    ) -> DatasetEntry:
        """Register an in-memory relation (idempotent by fingerprint)."""
        return self.registry.register(relation, name=name)

    def register_csv(
        self,
        text: str,
        name: Optional[str] = None,
        semantics: str = "eq",
        on_bad_row: str = "raise",
    ) -> DatasetEntry:
        """Parse CSV text and register the resulting relation."""
        relation = read_csv_text(text, semantics=semantics, on_bad_row=on_bad_row)
        return self.register_relation(relation, name=name)

    def register_rows(
        self,
        columns: Sequence[str],
        rows: Sequence[Sequence[object]],
        name: Optional[str] = None,
        semantics: str = "eq",
    ) -> DatasetEntry:
        """Register a relation given as a column list plus row tuples."""
        relation = Relation.from_rows(rows, schema=list(columns), semantics=semantics)
        return self.register_relation(relation, name=name)

    def append_rows(self, ref: str, rows: Sequence[Sequence[object]]) -> DatasetEntry:
        """Append rows to a dataset; cached covers migrate incrementally."""
        return self.registry.append(ref, rows)

    # ------------------------------------------------------------------
    # Schemas (multi-table discovery — see repro.multitable)
    # ------------------------------------------------------------------

    def register_schema(
        self,
        name: Optional[str],
        tables: Dict[str, str],
        keys: Optional[Dict[str, Sequence[str]]] = None,
        foreign_keys: Optional[Sequence[Dict[str, object]]] = None,
        infer_fks: bool = False,
        require_inclusion: bool = False,
    ) -> SchemaEntry:
        """Declare a multi-table schema over registered datasets.

        Idempotent by graph fingerprint; see
        :meth:`~repro.service.schemas.SchemaIndex.register`.
        """
        return self.schemas.register(
            name,
            tables,
            keys=keys,
            foreign_keys=foreign_keys,
            infer_fks=infer_fks,
            require_inclusion=require_inclusion,
        )

    # ------------------------------------------------------------------
    # Jobs
    # ------------------------------------------------------------------

    def submit(
        self,
        dataset: str,
        kind: str = "discover",
        config: Optional[Union[JobConfig, Dict[str, object]]] = None,
        priority: int = 0,
        idempotency_key: Optional[str] = None,
    ) -> Job:
        """Queue a discovery or ranking job against a registered dataset.

        ``idempotency_key`` (the HTTP ``Idempotency-Key`` header) makes
        retried submissions safe: a repeated key returns the original
        job — across restarts too, since the key rides in the journal.
        """
        if not isinstance(config, JobConfig):
            config = JobConfig.from_dict(config)
        if kind == "multitable":
            entry = self.schemas.get(dataset)
            if config.join_path is None:
                raise ConfigError("multitable jobs need a 'join_path' in the config")
            # Validate the path at submit time (HTTP 400), not in the
            # worker (job 'failed'): MultitableError is a ValueError.
            entry.graph.resolve_path(config.join_path)
            fingerprint = entry.fingerprint
        else:
            fingerprint = self.registry.resolve(dataset)
        return self.scheduler.submit(
            fingerprint, kind, config, priority=priority,
            idempotency_key=idempotency_key,
        )

    def discover(
        self,
        dataset: str,
        config: Optional[Union[JobConfig, Dict[str, object]]] = None,
        priority: int = 0,
        timeout: Optional[float] = None,
    ) -> Job:
        """Convenience: submit a discover job and wait for it."""
        job = self.submit(dataset, "discover", config, priority=priority)
        return self.scheduler.wait(job.job_id, timeout=timeout)

    def rank(
        self,
        dataset: str,
        config: Optional[Union[JobConfig, Dict[str, object]]] = None,
        priority: int = 0,
        timeout: Optional[float] = None,
    ) -> Job:
        """Convenience: submit a rank job and wait for it."""
        job = self.submit(dataset, "rank", config, priority=priority)
        return self.scheduler.wait(job.job_id, timeout=timeout)

    def multitable(
        self,
        schema: str,
        config: Optional[Union[JobConfig, Dict[str, object]]] = None,
        priority: int = 0,
        timeout: Optional[float] = None,
    ) -> Job:
        """Convenience: submit a multitable job and wait for it."""
        job = self.submit(schema, "multitable", config, priority=priority)
        return self.scheduler.wait(job.job_id, timeout=timeout)

    # ------------------------------------------------------------------
    # Job execution (runs on scheduler worker threads)
    # ------------------------------------------------------------------

    def _execute(self, job: Job) -> None:
        if job.kind == "multitable":
            self._execute_multitable(job)
            return
        entry = self.registry.get(job.dataset)
        if job.cancel_requested:
            raise JobCancelled("cancelled before start")
        tracer = Tracer()
        with use_tracer(tracer):
            with tracer.span("service.job", job_id=job.job_id, kind=job.kind):
                # A rank job always works from the *full* cover (ranking
                # needs the canonical cover of everything), so its
                # discovery runs — and caches — under the full-cover
                # key; a top_k only bounds the ranking pass below.
                if job.kind == "rank":
                    result = self._discover_with_cache(
                        job, entry, config=job.config.without_top_k()
                    )
                else:
                    result = self._discover_with_cache(job, entry)
                job.result = result
                if job.kind == "rank":
                    ranking = rank_cover(
                        entry.relation,
                        canonical_cover(result.fds),
                        top_k=job.config.top_k,
                    )
                    job.ranking = [
                        {
                            "fd": ranked.fd.format(entry.relation.schema),
                            "redundancy": ranked.redundancy,
                            "redundancy_excluding_null": ranked.redundancy_excluding_null,
                        }
                        for ranked in ranking.ranked
                    ]
        job.trace = trace_summary(tracer)

    def _execute_multitable(self, job: Job) -> None:
        """Run one multitable job: lift, discover (cached), rank, tag.

        Reuses the exact single-relation cache/single-flight machinery:
        the virtual join is presented to :meth:`_discover_with_cache`
        as a duck-typed dataset whose fingerprint is the schema graph's
        — available without lifting — and whose relation lifts lazily,
        so a cover cache hit never rebuilds provenance for discovery
        (only the ranking pass touches the rows).  The join is never
        materialized: the cover comes out of the lifted codes, which
        are byte-identical to the materialized join's (see
        :mod:`repro.multitable.provenance`).
        """
        entry = self.schemas.get(job.dataset)
        if job.cancel_requested:
            raise JobCancelled("cancelled before start")
        config = job.config
        tracer = Tracer()
        with use_tracer(tracer):
            with tracer.span("service.job", job_id=job.job_id, kind=job.kind):
                provider = _VirtualJoin(entry, config)
                # The full cover is discovered and cached (a top_k only
                # bounds the ranking below), mirroring "rank" jobs.
                result = self._discover_with_cache(
                    job, provider, config=config.without_top_k()
                )
                job.result = result
                relation = provider.relation
                provenance = provider.provenance
                owners = attribute_tables(entry.graph, provenance.tables)
                ranking = rank_cover(
                    relation,
                    canonical_cover(result.fds),
                    top_k=config.top_k,
                    jobs=config.jobs,
                )
                job.ranking = [
                    {
                        "fd": ranked.fd.format(relation.schema),
                        "redundancy": ranked.redundancy,
                        "redundancy_excluding_null": ranked.redundancy_excluding_null,
                        "scope": fd_scope(ranked.fd, owners),
                        "tables": list(fd_tables(ranked.fd, owners)),
                    }
                    for ranked in ranking.ranked
                ]
                job.multitable = {
                    "schema": entry.fingerprint,
                    "name": entry.name,
                    "path": list(provenance.tables),
                    "on_dangling": provenance.policy,
                    "n_join_rows": provenance.n_rows,
                    "dropped_rows": provenance.dropped_rows,
                    "padded_cells": provenance.padded_cells,
                    "columns": relation.schema.names,
                    "intra_count": sum(
                        1 for e in job.ranking if e["scope"] == "intra"
                    ),
                    "inter_count": sum(
                        1 for e in job.ranking if e["scope"] == "inter"
                    ),
                }
        job.trace = trace_summary(tracer)

    def _discover_with_cache(
        self, job: Job, entry: DatasetEntry, config: Optional[JobConfig] = None
    ):
        """Cache-checked discovery with single-flight deduplication.

        Top-k requests key the cache with ``top_k`` included, so a
        top-k prefix can never be served where a full cover was asked
        for.  The reverse *is* sound: when the matching full cover is
        already cached, the top-k answer is derived from it by a
        bounded ranking pass instead of re-running discovery.
        """
        if config is None:
            config = job.config
        key = (entry.fingerprint, config.algorithm, config.key())
        full_config = config.without_top_k()
        while True:
            # The store check and the in-flight claim are one atomic
            # step: a leader publishes its result *before* releasing
            # the key, so a miss here guarantees nobody else already
            # computed it.
            with self._inflight_lock:
                cached = self.store.get(entry.fingerprint, config)
                full_cached = None
                if cached is None and config.top_k is not None:
                    full_cached = self.store.get(entry.fingerprint, full_config)
                if cached is None and full_cached is None:
                    leader = self._inflight.get(key)
                    if leader is None:
                        self._inflight[key] = job
            if cached is not None:
                job.cached = True
                self._count("service.jobs.cache_hits")
                return cached
            if full_cached is not None:
                job.cached = True
                self._count("service.jobs.topk_derived")
                derived = self._derive_top_k(entry, config, full_cached)
                self.store.put(entry.fingerprint, config, derived)
                return derived
            if leader is None:
                break
            # Another job is computing the same (dataset, config): wait
            # for it, then re-check the store.  A failed (or partial —
            # not cacheable) leader leaves no entry, so the loop
            # promotes us to leader and we run it ourselves.
            self._count("service.jobs.coalesced")
            leader.done.wait()
        try:
            self._count("service.discovery.runs")
            algo = make_algorithm(config.algorithm, **config.algorithm_kwargs())
            if config.top_k is None and self.journal is not None:
                # Durable job plane: periodic checkpoints ride the WAL,
                # and a recovered job's snapshot seeds the FD tree so
                # completed levels aren't redone (docs/durability.md).
                journal, job_id = self.journal, job.job_id
                algo.checkpoint_interval = self.checkpoint_interval
                algo.checkpoint_sink = (
                    lambda state: journal.record_checkpoint(job_id, state)
                )
                if job.checkpoint is not None:
                    algo.resume_from = job.checkpoint
            if config.top_k is not None:
                result = algo.discover_top_k(entry.relation, config.top_k)
            else:
                result = algo.discover(entry.relation)
                if getattr(algo, "resume_from", None) is not None and result.stats.resumed_levels > 0:
                    job.resumed = True
                    self._count("service.jobs.resumed")
            self.store.put(entry.fingerprint, config, result)
            return result
        finally:
            with self._inflight_lock:
                if self._inflight.get(key) is job:
                    del self._inflight[key]

    @staticmethod
    def _derive_top_k(
        entry: DatasetEntry, config: JobConfig, full: DiscoveryResult
    ) -> DiscoveryResult:
        """A top-k result sliced off a cached full cover (no discovery)."""
        start = time.perf_counter()
        ranking = rank_cover(entry.relation, full.fds, top_k=config.top_k)
        return DiscoveryResult(
            algorithm=full.algorithm,
            schema=full.schema,
            fds=FDSet(ranked.fd for ranked in ranking.ranked),
            elapsed_seconds=time.perf_counter() - start,
            stats=DiscoveryStats(pruned_candidates=ranking.bound_skipped),
            top_k=config.top_k,
        )

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def health(self) -> Dict[str, object]:
        """Liveness summary for the ``/health`` endpoint."""
        scheduler = self.scheduler.counters()
        payload = {
            "status": "ok",
            "version": __version__,
            "datasets": len(self.registry),
            "cached_results": len(self.store),
            "jobs": scheduler,
        }
        if self.recovery:
            payload["recovery"] = dict(self.recovery)
        return payload

    def metrics_payload(self) -> Dict[str, object]:
        """All counters for the ``/metrics`` endpoint."""
        with self._metrics_lock:
            counters = {
                name: counter.value
                for name, counter in sorted(self.metrics.counters.items())
            }
        gauges = dict(self.scheduler.gauges())
        gauges.update(memplane.gauges())
        payload = {
            "counters": counters,
            "gauges": gauges,
            "store": self.store.counters(),
            "scheduler": self.scheduler.counters(),
        }
        if self.journal is not None:
            payload["journal"] = self.journal.counters()
        return payload

    def drain(self, timeout: Optional[float] = None) -> bool:
        """Graceful shutdown, phase one: refuse new jobs, finish accepted.

        Returns True when every in-flight job completed within
        ``timeout``.  The result store is synced either way so a
        following restart reloads every completed cover; call
        :meth:`close` afterwards to stop the workers.
        """
        finished = self.scheduler.drain(timeout)
        self.store.sync()
        return finished

    def close(self) -> None:
        """Shut the scheduler down (queued jobs are cancelled).

        A clean shutdown compacts the journal, so the WAL restarts as
        one summary record set instead of full checkpoint history.
        """
        self.scheduler.shutdown()
        if self.journal is not None:
            self.journal.close(compact=True)

    def __enter__(self) -> "FDService":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.close()
        return False
