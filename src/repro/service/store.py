"""Fingerprint-keyed result store with JSON persistence.

Maps ``(dataset fingerprint, algorithm, config key)`` to a
:class:`~repro.core.result.DiscoveryResult` so repeat requests for the
same data and configuration are served without re-running discovery.
Two policies keep the cache sound:

* only **completed** results are stored — a partial cover from a
  tripped budget is an answer to *this* request, not a reusable fact
  about the dataset;
* entries are keyed by content fingerprint, so an append (which
  changes the fingerprint) can never serve a stale cover.  Instead of
  discarding the old entries, :meth:`ResultStore.update_for_append`
  migrates each one to the new fingerprint through synergized
  induction (an :class:`~repro.incremental.IncrementalFDMaintainer`
  seeded with the cached cover) — no full rediscovery.

With a ``persist_dir`` every entry is mirrored to one JSON file (the
:meth:`~repro.core.result.DiscoveryResult.to_json` document plus its
key) and reloaded on construction, so covers survive restarts.
"""

from __future__ import annotations

import hashlib
import json
import threading
import time
from pathlib import Path
from typing import Callable, Dict, List, Optional, Tuple, Union

from ..core.result import DiscoveryResult
from ..incremental.maintainer import IncrementalFDMaintainer
from ..relational.relation import Relation
from .config import JobConfig

#: Store key: (dataset fingerprint, algorithm name, config key).
StoreKey = Tuple[str, str, str]


def _noop_count(name: str, amount: int = 1) -> None:
    return None


class ResultStore:
    """Thread-safe cache of discovery results, optionally persisted."""

    def __init__(
        self,
        persist_dir: Optional[Union[str, Path]] = None,
        count: Callable[..., None] = _noop_count,
    ):
        """Args:
            persist_dir: directory for one-file-per-entry JSON mirrors
                (created if missing; ``None`` keeps the store in-memory).
            count: metrics hook ``count(name, amount=1)`` — the service
                passes its registry-backed counter here.
        """
        self._lock = threading.RLock()
        self._entries: Dict[StoreKey, Tuple[JobConfig, DiscoveryResult]] = {}
        self._count = count
        self.hits = 0
        self.misses = 0
        self.puts = 0
        self.incremental_updates = 0
        self.persist_dir = Path(persist_dir) if persist_dir is not None else None
        if self.persist_dir is not None:
            self.persist_dir.mkdir(parents=True, exist_ok=True)
            self._load()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    # ------------------------------------------------------------------
    # Lookup / insert
    # ------------------------------------------------------------------

    def get(self, fingerprint: str, config: JobConfig) -> Optional[DiscoveryResult]:
        """The cached result for ``(fingerprint, config)``, counting hit/miss."""
        key = (fingerprint, config.algorithm, config.key())
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self.misses += 1
                self._count("service.store.misses")
                return None
            self.hits += 1
            self._count("service.store.hits")
            return entry[1]

    def put(self, fingerprint: str, config: JobConfig, result: DiscoveryResult) -> bool:
        """Cache ``result``; returns False (and skips) for partial results."""
        if not result.completed:
            self._count("service.store.partial_skipped")
            return False
        key = (fingerprint, config.algorithm, config.key())
        with self._lock:
            self._entries[key] = (config, result)
            self.puts += 1
            self._count("service.store.puts")
        self._persist(key, config, result)
        return True

    def results_for(self, fingerprint: str) -> List[Tuple[JobConfig, DiscoveryResult]]:
        """All cached ``(config, result)`` pairs for one fingerprint."""
        with self._lock:
            return [
                entry
                for key, entry in sorted(self._entries.items())
                if key[0] == fingerprint
            ]

    # ------------------------------------------------------------------
    # Append migration
    # ------------------------------------------------------------------

    def update_for_append(
        self,
        old_fingerprint: str,
        old_relation: Relation,
        rows,
        new_fingerprint: str,
    ) -> int:
        """Migrate every cached cover of ``old_fingerprint`` to the
        appended dataset via synergized induction.

        Each entry seeds an :class:`IncrementalFDMaintainer` with the
        cached cover, replays the appended rows (agree sets of new-row
        pairs only — no rediscovery), and stores the repaired cover
        under ``new_fingerprint`` with the same config key.  Returns
        the number of migrated entries.

        Top-k entries are *not* migrated: induction over a k-FD prefix
        of the cover is unsound (appended rows can promote FDs the
        prefix never contained into the new top-k), so those entries
        simply age out with the old fingerprint and the next top-k
        request recomputes.
        """
        migrated = 0
        for config, result in self.results_for(old_fingerprint):
            if config.top_k is not None or result.top_k is not None:
                self._count("service.store.topk_skipped")
                continue
            start = time.perf_counter()
            maintainer = IncrementalFDMaintainer(
                old_relation,
                algorithm=config.algorithm,
                cover=result.fds,
                **config.algorithm_kwargs(),
            )
            cover = maintainer.append_rows(rows)
            updated = DiscoveryResult(
                algorithm=result.algorithm,
                schema=result.schema,
                fds=cover,
                elapsed_seconds=time.perf_counter() - start,
                stats=result.stats,
            )
            self.put(new_fingerprint, config, updated)
            with self._lock:
                self.incremental_updates += 1
            self._count("service.store.incremental_updates")
            migrated += 1
        return migrated

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------

    @staticmethod
    def _entry_filename(key: StoreKey) -> str:
        digest = hashlib.sha256("\x00".join(key).encode("utf-8")).hexdigest()
        return f"{digest[:32]}.json"

    def _persist(self, key: StoreKey, config: JobConfig, result: DiscoveryResult) -> None:
        if self.persist_dir is None:
            return
        payload = {
            "format": "repro-fd-store-entry",
            "version": 1,
            "fingerprint": key[0],
            "config": config.to_dict(),
            "result": result.to_payload(),
        }
        # Durable replace (fsync tmp + parent dir): a SIGKILL or power
        # cut can never leave an empty or torn JSON entry behind.
        from .journal import atomic_write_text

        path = self.persist_dir / self._entry_filename(key)
        atomic_write_text(
            path, json.dumps(payload, indent=2, sort_keys=True) + "\n"
        )

    def _load(self) -> None:
        """Reload persisted entries; malformed files are skipped, not fatal."""
        for path in sorted(self.persist_dir.glob("*.json")):
            try:
                payload = json.loads(path.read_text(encoding="utf-8"))
                if payload.get("format") != "repro-fd-store-entry":
                    continue
                config = JobConfig.from_dict(payload["config"])
                result = DiscoveryResult.from_payload(payload["result"])
                key = (payload["fingerprint"], config.algorithm, config.key())
            except (ValueError, KeyError, OSError):
                self._count("service.store.load_errors")
                continue
            with self._lock:
                self._entries[key] = (config, result)
        self._count("service.store.loaded", len(self._entries))

    def sync(self) -> int:
        """Re-mirror every entry to ``persist_dir`` (drain/shutdown hook).

        Entries are already persisted on :meth:`put`; this is the
        belt-and-braces pass the graceful-drain path runs so a replica
        restart is guaranteed to reload the full cache even if an
        earlier mirror write raced a crash.  Returns the number of
        entries written (0 for in-memory stores).
        """
        if self.persist_dir is None:
            return 0
        with self._lock:
            entries = list(self._entries.items())
        for key, (config, result) in entries:
            self._persist(key, config, result)
        return len(entries)

    def counters(self) -> Dict[str, int]:
        """Hit/miss/put accounting as a JSON-friendly dict."""
        with self._lock:
            return {
                "entries": len(self._entries),
                "hits": self.hits,
                "misses": self.misses,
                "puts": self.puts,
                "incremental_updates": self.incremental_updates,
            }
