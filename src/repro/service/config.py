"""Job configurations: the canonical identity of one discovery request.

The result store keys cached covers by ``(dataset fingerprint,
algorithm, config key)``; two requests share a cache entry exactly when
their :meth:`JobConfig.key` strings are equal.  The key is a canonical
JSON rendering (sorted keys, no whitespace, ``None`` fields dropped),
so dict ordering, spelling of byte sizes (``"64m"`` vs ``67108864``)
and omitted-vs-default fields all normalize away.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, replace
from typing import Dict, Optional, Tuple

from ..algorithms.registry import algorithm_names
from ..resilience import RunBudget, parse_bytes

_ON_LIMIT_POLICIES = ("raise", "partial")

#: Mirrors :data:`repro.multitable.provenance.POLICIES` without making
#: the config module (imported by every service piece) pull in the
#: multitable subsystem; a drift is caught by the service test suite.
_ON_DANGLING_POLICIES = ("raise", "drop", "pad")


class ConfigError(ValueError):
    """Raised for malformed job configurations."""


@dataclass(frozen=True)
class JobConfig:
    """Normalized configuration of one discovery/ranking job.

    ``extra`` carries algorithm-specific constructor kwargs (e.g.
    DHyFD's ``ratio_threshold``) as a sorted tuple of pairs so the
    dataclass stays hashable and the cache key deterministic.

    ``top_k`` asks for only the k FDs of highest redundancy (see
    :meth:`~repro.core.base.DiscoveryAlgorithm.discover_top_k`).  It is
    part of the cache key — a top-k result must never be served as a
    full cover — but a cached *full* cover may answer a top-k request
    by ranking it (see ``FDService._discover_with_cache``).

    ``join_path`` and ``on_dangling`` apply to ``multitable`` jobs only
    (see :mod:`repro.multitable`): the join path through the schema
    graph and the policy for referential violations.  They are
    dedicated fields — not ``extra`` entries — because ``extra`` is
    forwarded verbatim to the algorithm constructor, and because both
    must participate in the cache key (two paths over one schema are
    different relations).
    """

    algorithm: str = "dhyfd"
    jobs: Optional[int] = None
    backend: Optional[str] = None
    time_limit: Optional[float] = None
    memory_budget: Optional[int] = None
    on_limit: str = "raise"
    top_k: Optional[int] = None
    join_path: Optional[Tuple[str, ...]] = None
    on_dangling: Optional[str] = None
    extra: Tuple[Tuple[str, object], ...] = ()

    def __post_init__(self):
        if self.algorithm not in algorithm_names():
            raise ConfigError(
                f"unknown algorithm {self.algorithm!r}; "
                f"choose from {algorithm_names()}"
            )
        if self.on_limit not in _ON_LIMIT_POLICIES:
            raise ConfigError(
                f"on_limit must be one of {_ON_LIMIT_POLICIES}, got {self.on_limit!r}"
            )
        if self.top_k is not None and self.top_k < 1:
            raise ConfigError(f"top_k must be >= 1, got {self.top_k}")
        if self.join_path is not None and len(self.join_path) < 2:
            raise ConfigError(
                f"join_path needs at least two tables, got {list(self.join_path)}"
            )
        if self.on_dangling is not None and self.on_dangling not in _ON_DANGLING_POLICIES:
            raise ConfigError(
                f"on_dangling must be one of {_ON_DANGLING_POLICIES}, "
                f"got {self.on_dangling!r}"
            )

    @classmethod
    def from_dict(cls, data: Optional[Dict[str, object]]) -> "JobConfig":
        """Build a config from a request dict (HTTP body / CLI flags).

        ``memory_budget`` accepts plain bytes or ``"64m"``-style
        strings; unknown keys become algorithm ``extra`` kwargs.
        """
        data = dict(data or {})
        algorithm = str(data.pop("algorithm", "dhyfd")).lower()
        jobs = data.pop("jobs", None)
        backend = data.pop("backend", None)
        time_limit = data.pop("time_limit", None)
        memory_budget = data.pop("memory_budget", None)
        on_limit = str(data.pop("on_limit", "raise"))
        top_k = data.pop("top_k", None)
        try:
            top_k = int(top_k) if top_k is not None else None
        except (TypeError, ValueError):
            raise ConfigError(f"top_k must be an integer, got {top_k!r}")
        join_path = data.pop("join_path", None)
        if join_path is not None:
            if isinstance(join_path, str) or not isinstance(join_path, (list, tuple)):
                raise ConfigError(
                    f"join_path must be a list of table names, got {join_path!r}"
                )
            join_path = tuple(str(name) for name in join_path)
        on_dangling = data.pop("on_dangling", None)
        return cls(
            algorithm=algorithm,
            jobs=int(jobs) if jobs is not None else None,
            backend=str(backend) if backend is not None else None,
            time_limit=float(time_limit) if time_limit is not None else None,
            memory_budget=parse_bytes(memory_budget) if memory_budget is not None else None,
            on_limit=on_limit,
            top_k=top_k,
            join_path=join_path,
            on_dangling=str(on_dangling) if on_dangling is not None else None,
            extra=tuple(sorted(data.items())),
        )

    def to_dict(self) -> Dict[str, object]:
        """JSON-friendly dict; ``from_dict`` of it rebuilds this config."""
        payload: Dict[str, object] = {"algorithm": self.algorithm, "on_limit": self.on_limit}
        for name in ("jobs", "backend", "time_limit", "memory_budget", "top_k"):
            value = getattr(self, name)
            if value is not None:
                payload[name] = value
        if self.join_path is not None:
            payload["join_path"] = list(self.join_path)
        if self.on_dangling is not None:
            payload["on_dangling"] = self.on_dangling
        payload.update(dict(self.extra))
        return payload

    def without_top_k(self) -> "JobConfig":
        """The matching full-cover config (identity when already full)."""
        if self.top_k is None:
            return self
        return replace(self, top_k=None)

    def key(self) -> str:
        """Canonical string identity (the config part of cache keys)."""
        return json.dumps(self.to_dict(), sort_keys=True, separators=(",", ":"))

    def algorithm_kwargs(self) -> Dict[str, object]:
        """Constructor kwargs for :func:`~repro.algorithms.make_algorithm`.

        A ``memory_budget`` becomes a per-job
        :class:`~repro.resilience.RunBudget`; ``on_limit`` is only
        forwarded when non-default so baseline algorithms that predate
        partial results keep working.
        """
        kwargs: Dict[str, object] = dict(self.extra)
        if self.jobs is not None:
            kwargs["jobs"] = self.jobs
        if self.backend is not None:
            kwargs["backend"] = self.backend
        if self.time_limit is not None:
            kwargs["time_limit"] = self.time_limit
        if self.memory_budget is not None:
            kwargs["budget"] = RunBudget(
                time_limit=self.time_limit,
                memory_limit_bytes=self.memory_budget,
            )
        if self.on_limit != "raise":
            kwargs["on_limit"] = self.on_limit
        return kwargs
