"""Thin stdlib client for the :mod:`repro.service` HTTP server.

Wraps ``urllib`` with JSON encoding and error mapping so callers (the
``repro-fd submit`` CLI verb, tests, notebooks) talk to a discovery
server in a few lines::

    client = ServiceClient("http://127.0.0.1:8765")
    info = client.upload_csv(csv_text, name="orders")
    status = client.discover(info["fingerprint"], config={"jobs": 2})
    result = ServiceClient.result_from_status(status)   # DiscoveryResult

Results come back as the same JSON documents
:meth:`~repro.core.result.DiscoveryResult.to_json` writes, so a cover
fetched over HTTP is byte-identical to one discovered in process.
"""

from __future__ import annotations

import json
import time
import urllib.error
import urllib.request
import uuid
from typing import Dict, List, Optional, Sequence

from ..core.result import DiscoveryResult
from ..relational.null import is_null


class ServiceError(RuntimeError):
    """An error response (or transport failure) from the service."""

    def __init__(
        self,
        message: str,
        status: Optional[int] = None,
        retryable: bool = False,
        retry_after: Optional[float] = None,
    ):
        super().__init__(message)
        #: HTTP status code, or None for transport-level failures.
        self.status = status
        #: True for connection-refused/reset style transport failures.
        self.retryable = retryable
        #: Parsed ``Retry-After`` header on 503 responses, if any.
        self.retry_after = retry_after


#: Socket-level failures worth retrying: the server went away mid-flight
#: (replica restart) or was not yet accepting (replica still booting).
_RETRYABLE_ERRNOS = ("refused", "reset", "broken pipe", "aborted")


def _is_retryable_reason(reason: object) -> bool:
    """True for connection-refused/reset style transport failures."""
    if isinstance(reason, (ConnectionRefusedError, ConnectionResetError, BrokenPipeError)):
        return True
    text = str(reason).lower()
    return any(marker in text for marker in _RETRYABLE_ERRNOS)


class ServiceClient:
    """JSON-over-HTTP client for one discovery server (or cluster router).

    Transient transport failures — connection refused/reset while a
    replica restarts, or a 503 + ``Retry-After`` from a draining shard
    — are retried with exponential backoff, so replica restarts are
    invisible to callers.  Most requests are safe to repeat: uploads
    are idempotent by fingerprint and job submissions coalesce through
    the service's single-flight dedup.  :meth:`append` is the
    exception — it only retries 503s, never connection failures, since
    a reset mid-request may mean the rows were already applied.
    """

    def __init__(
        self,
        base_url: str,
        timeout: float = 60.0,
        retries: int = 3,
        backoff: float = 0.2,
    ):
        """Args:
            base_url: e.g. ``"http://127.0.0.1:8765"`` (no trailing slash).
            timeout: per-request socket timeout in seconds.
            retries: extra attempts after a retryable failure (0 disables).
            backoff: initial sleep between attempts, doubled each retry
                (a 503's ``Retry-After`` header takes precedence).
        """
        if retries < 0:
            raise ValueError(f"retries must be >= 0, got {retries}")
        if backoff < 0:
            raise ValueError(f"backoff must be >= 0, got {backoff}")
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout
        self.retries = retries
        self.backoff = backoff

    # ------------------------------------------------------------------
    # Transport
    # ------------------------------------------------------------------

    def _request(
        self,
        method: str,
        path: str,
        payload: Optional[Dict[str, object]] = None,
        timeout: Optional[float] = None,
        idempotent: bool = True,
        headers: Optional[Dict[str, str]] = None,
    ) -> Dict[str, object]:
        """One request with retries.

        ``idempotent=False`` (the append path) disables retrying
        connection-reset style failures: a reset after the server read
        the body means the request may already have been applied, and
        replaying a non-idempotent append would apply it twice.  503s
        are still retried — the server refused the job before doing any
        work, so repeating is always safe.  Job submissions stay
        ``idempotent=True`` because every one carries an
        ``Idempotency-Key`` header the service dedups through its
        journal — a replayed submit returns the original job instead of
        queueing a duplicate.
        """
        last_error: Optional[ServiceError] = None
        for attempt in range(self.retries + 1):
            try:
                return self._request_once(method, path, payload, timeout, headers)
            except ServiceError as exc:
                retry_after = exc.retry_after if exc.status == 503 else None
                if exc.status == 503 and attempt < self.retries:
                    last_error = exc
                elif (
                    exc.status is None
                    and exc.retryable
                    and idempotent
                    and attempt < self.retries
                ):
                    last_error = exc
                else:
                    raise
            delay = self.backoff * (2 ** attempt)
            if retry_after is not None:
                delay = max(delay, retry_after)
            if delay > 0:
                time.sleep(delay)
        raise last_error  # pragma: no cover — loop always raises or returns

    def _request_once(
        self,
        method: str,
        path: str,
        payload: Optional[Dict[str, object]] = None,
        timeout: Optional[float] = None,
        headers: Optional[Dict[str, str]] = None,
    ) -> Dict[str, object]:
        body = json.dumps(payload).encode("utf-8") if payload is not None else None
        merged = {"Content-Type": "application/json"}
        if headers:
            merged.update(headers)
        request = urllib.request.Request(
            self.base_url + path,
            data=body,
            method=method,
            headers=merged,
        )
        try:
            with urllib.request.urlopen(
                request, timeout=timeout if timeout is not None else self.timeout
            ) as response:
                return json.loads(response.read().decode("utf-8"))
        except urllib.error.HTTPError as exc:
            try:
                detail = json.loads(exc.read().decode("utf-8")).get("error", "")
            except Exception:  # noqa: BLE001 — best-effort error detail
                detail = ""
            retry_after = None
            try:
                header = exc.headers.get("Retry-After") if exc.headers else None
                retry_after = float(header) if header is not None else None
            except (TypeError, ValueError):
                retry_after = None
            raise ServiceError(
                detail or f"HTTP {exc.code} from {method} {path}",
                status=exc.code,
                retry_after=retry_after,
            ) from None
        except urllib.error.URLError as exc:
            raise ServiceError(
                f"cannot reach {self.base_url}: {exc.reason}",
                retryable=_is_retryable_reason(exc.reason),
            ) from None
        except TimeoutError as exc:
            # A read timeout is not retried: the request may well still
            # be executing server-side.
            raise ServiceError(
                f"request to {self.base_url}{path} timed out: {exc}"
            ) from None

    # ------------------------------------------------------------------
    # Datasets
    # ------------------------------------------------------------------

    def upload_csv(
        self,
        csv_text: str,
        name: Optional[str] = None,
        semantics: str = "eq",
        colocate_with: Optional[str] = None,
    ) -> Dict[str, object]:
        """Upload CSV text; returns the dataset description (fingerprint...).

        ``colocate_with`` names a dataset whose shard this upload should
        land on (cluster routing hint; replicas ignore it) — required
        when the tables of one multi-table schema would otherwise hash
        to different shards.
        """
        payload: Dict[str, object] = {
            "csv": csv_text, "name": name, "semantics": semantics,
        }
        if colocate_with is not None:
            payload["colocate_with"] = colocate_with
        return self._request("POST", "/datasets", payload)

    def upload_rows(
        self,
        columns: Sequence[str],
        rows: Sequence[Sequence[object]],
        name: Optional[str] = None,
        semantics: str = "eq",
        colocate_with: Optional[str] = None,
    ) -> Dict[str, object]:
        """Upload a relation as columns + row tuples (nulls become None).

        ``colocate_with`` is the same cluster routing hint as on
        :meth:`upload_csv`.
        """
        encoded = [
            [None if is_null(value) else value for value in row] for row in rows
        ]
        payload: Dict[str, object] = {
            "columns": list(columns),
            "rows": encoded,
            "name": name,
            "semantics": semantics,
        }
        if colocate_with is not None:
            payload["colocate_with"] = colocate_with
        return self._request("POST", "/datasets", payload)

    def append(self, dataset: str, rows: Sequence[Sequence[object]]) -> Dict[str, object]:
        """Append rows; returns the new dataset version description.

        Not idempotent — repeating a delivered append applies the rows
        twice — so connection-level failures are *not* retried (see
        :meth:`_request`); a 503 from a draining replica still is.
        """
        encoded = [
            [None if is_null(value) else value for value in row] for row in rows
        ]
        return self._request(
            "POST",
            f"/datasets/{dataset}/append",
            {"rows": encoded},
            idempotent=False,
        )

    def datasets(self) -> List[Dict[str, object]]:
        """All registered dataset versions."""
        return self._request("GET", "/datasets")["datasets"]

    # ------------------------------------------------------------------
    # Multi-table schemas (see docs/multitable.md)
    # ------------------------------------------------------------------

    def register_schema(
        self,
        name: Optional[str],
        tables: Dict[str, str],
        keys: Optional[Dict[str, Sequence[str]]] = None,
        foreign_keys: Optional[Sequence[Dict[str, object]]] = None,
        infer_fks: bool = False,
    ) -> Dict[str, object]:
        """Declare a schema over uploaded datasets; returns its description.

        ``tables`` maps table names to dataset names/fingerprints;
        ``keys`` declares primary keys; ``foreign_keys`` lists edge
        dicts ``{child, child_columns, parent, parent_columns?}``.
        Idempotent by graph fingerprint, so retries are safe.
        """
        return self._request(
            "POST",
            "/multitable/schemas",
            {
                "name": name,
                "tables": dict(tables),
                "keys": {t: list(k) for t, k in (keys or {}).items()},
                "foreign_keys": [dict(fk) for fk in (foreign_keys or [])],
                "infer_fks": infer_fks,
            },
        )

    def schemas(self) -> List[Dict[str, object]]:
        """All registered multi-table schemas."""
        return self._request("GET", "/multitable/schemas")["schemas"]

    def multitable(
        self,
        schema: str,
        path: Sequence[str],
        on_dangling: Optional[str] = None,
        config: Optional[Dict[str, object]] = None,
        priority: int = 0,
        timeout: Optional[float] = None,
        top_k: Optional[int] = None,
    ) -> Dict[str, object]:
        """Submit a join-FD job and wait server-side; returns the status.

        The status carries the usual ``result`` cover plus a
        ``ranking`` whose entries are tagged with per-FD ``scope``
        (intra/inter) and origin ``tables``, and a ``multitable`` block
        with the join's provenance stats.
        """
        suffix = "" if top_k is None else f"?top_k={int(top_k)}"
        return self._request(
            "POST",
            "/multitable/discover" + suffix,
            {
                "schema": schema,
                "path": list(path),
                "on_dangling": on_dangling,
                "config": config or {},
                "priority": priority,
                "wait": True,
                "timeout": timeout,
            },
            timeout=timeout,
            headers={"Idempotency-Key": uuid.uuid4().hex},
        )

    # ------------------------------------------------------------------
    # Jobs
    # ------------------------------------------------------------------

    @staticmethod
    def _job_path(kind: str, top_k: Optional[int]) -> str:
        """The job endpoint, with ``top_k`` as a query param when set."""
        if top_k is None:
            return f"/{kind}"
        return f"/{kind}?top_k={int(top_k)}"

    def submit(
        self,
        dataset: str,
        kind: str = "discover",
        config: Optional[Dict[str, object]] = None,
        priority: int = 0,
        top_k: Optional[int] = None,
        idempotency_key: Optional[str] = None,
    ) -> str:
        """Queue a job; returns its id immediately.

        Every logical submission carries an ``Idempotency-Key`` header
        (a fresh UUID unless the caller pins one), so transport-level
        retries — and caller-level replays with the same key — land on
        the original job instead of queueing duplicates.
        """
        response = self._request(
            "POST",
            self._job_path(kind, top_k),
            {"dataset": dataset, "config": config or {}, "priority": priority},
            headers={"Idempotency-Key": idempotency_key or uuid.uuid4().hex},
        )
        return response["job_id"]

    def status(self, job_id: str) -> Dict[str, object]:
        """One job's status payload (includes the result when done)."""
        return self._request("GET", f"/jobs/{job_id}")

    def jobs(self) -> List[Dict[str, object]]:
        """Status of every job the server knows about."""
        return self._request("GET", "/jobs")["jobs"]

    def wait(
        self, job_id: str, timeout: Optional[float] = None, poll: float = 0.05
    ) -> Dict[str, object]:
        """Poll until the job reaches a terminal state; returns its status."""
        deadline = None if timeout is None else time.monotonic() + timeout
        while True:
            status = self.status(job_id)
            if status["status"] in ("done", "failed", "cancelled", "lost"):
                return status
            if deadline is not None and time.monotonic() >= deadline:
                raise ServiceError(f"timed out waiting for {job_id}")
            time.sleep(poll)

    def cancel(self, job_id: str) -> Dict[str, object]:
        """Cancel a queued job (or request cancellation of a running one)."""
        return self._request("POST", f"/jobs/{job_id}/cancel")

    def discover(
        self,
        dataset: str,
        config: Optional[Dict[str, object]] = None,
        priority: int = 0,
        timeout: Optional[float] = None,
        top_k: Optional[int] = None,
    ) -> Dict[str, object]:
        """Submit a discover job and wait server-side; returns the status.

        ``top_k`` limits the cover to the k FDs of highest redundancy
        (sent as the ``?top_k=`` query param, which overrides any
        body-config value).
        """
        return self._request(
            "POST",
            self._job_path("discover", top_k),
            {
                "dataset": dataset,
                "config": config or {},
                "priority": priority,
                "wait": True,
                "timeout": timeout,
            },
            timeout=timeout,
            headers={"Idempotency-Key": uuid.uuid4().hex},
        )

    def rank(
        self,
        dataset: str,
        config: Optional[Dict[str, object]] = None,
        priority: int = 0,
        timeout: Optional[float] = None,
        top_k: Optional[int] = None,
    ) -> Dict[str, object]:
        """Submit a rank job and wait server-side; returns the status.

        ``top_k`` bounds the returned ranking to its first k entries
        (the full cover is still discovered and cached).
        """
        return self._request(
            "POST",
            self._job_path("rank", top_k),
            {
                "dataset": dataset,
                "config": config or {},
                "priority": priority,
                "wait": True,
                "timeout": timeout,
            },
            timeout=timeout,
            headers={"Idempotency-Key": uuid.uuid4().hex},
        )

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def health(self) -> Dict[str, object]:
        """The server's ``/health`` payload."""
        return self._request("GET", "/health")

    def metrics(self) -> Dict[str, object]:
        """The server's ``/metrics`` payload."""
        return self._request("GET", "/metrics")

    # ------------------------------------------------------------------
    # Helpers
    # ------------------------------------------------------------------

    @staticmethod
    def result_from_status(status: Dict[str, object]) -> DiscoveryResult:
        """Decode the ``result`` document inside a finished job status."""
        if status.get("status") == "failed":
            raise ServiceError(f"job failed: {status.get('error')}")
        result = status.get("result")
        if result is None:
            raise ServiceError(f"job {status.get('job_id')} carries no result yet")
        return DiscoveryResult.from_payload(result)
