"""Stdlib HTTP front-end for :class:`~repro.service.app.FDService`.

A :class:`ThreadingHTTPServer` speaking JSON on every endpoint — no
framework, no dependencies.  The protocol:

=======  ==============================  =======================================
method   path                            body / effect
=======  ==============================  =======================================
GET      ``/health``                     liveness + queue occupancy
GET      ``/metrics``                    all service counters
GET      ``/datasets``                   registered dataset versions
POST     ``/datasets``                   ``{csv | columns+rows, name?,
                                         semantics?}`` → fingerprint
POST     ``/datasets/<ref>/append``      ``{rows}`` → new fingerprint
POST     ``/discover``                   ``{dataset, config?, priority?,
                                         wait?}`` → job (id or full status);
                                         ``?top_k=K`` limits the cover to
                                         the K highest-redundancy FDs
POST     ``/rank``                       same, plus a ranking in the status
                                         (``?top_k=K`` bounds the ranking)
GET      ``/multitable/schemas``         registered multi-table schemas
GET      ``/multitable/schemas/<ref>``   one schema description
POST     ``/multitable/schemas``         ``{name?, tables, keys?,
                                         foreign_keys?, infer_fks?}`` →
                                         schema fingerprint
POST     ``/multitable/discover``        ``{schema, path, on_dangling?,
                                         config?, wait?}`` → join-FD job
                                         (see ``docs/multitable.md``)
GET      ``/jobs``                       all job statuses (no result bodies)
GET      ``/jobs/<id>``                  one job status incl. result payload
POST     ``/jobs/<id>/cancel``           cancel (queued) / request (running)
=======  ==============================  =======================================

``<ref>`` is a dataset fingerprint or name.  Errors come back as
``{"error": ...}`` with a 4xx/5xx status.  ``wait: true`` on
``/discover``/``/rank`` blocks the request until the job finishes and
returns the full status — handy for CLIs; pollers use ``/jobs/<id>``.
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Dict, List, Optional, Tuple
from urllib.parse import parse_qs, urlsplit

from .app import FDService
from .config import ConfigError
from .registry import UnknownDatasetError
from .scheduler import SchedulerDraining, UnknownJobError
from .schemas import UnknownSchemaError

#: Upload size ceiling (bytes) — a guardrail, not a quota system.
MAX_BODY_BYTES = 256 * 1024 * 1024


class BadRequest(ValueError):
    """A malformed request body or path (HTTP 400)."""


class ServiceHTTPServer(ThreadingHTTPServer):
    """Threaded HTTP server bound to one :class:`FDService`."""

    daemon_threads = True
    allow_reuse_address = True

    def __init__(self, address: Tuple[str, int], service: FDService, quiet: bool = True):
        self.service = service
        self.quiet = quiet
        super().__init__(address, ServiceRequestHandler)


class ServiceRequestHandler(BaseHTTPRequestHandler):
    """Routes JSON requests onto the bound service."""

    server: ServiceHTTPServer
    protocol_version = "HTTP/1.1"

    # ------------------------------------------------------------------
    # Plumbing
    # ------------------------------------------------------------------

    def log_message(self, format: str, *args) -> None:  # noqa: A002
        if not self.server.quiet:
            super().log_message(format, *args)

    def _send_json(
        self,
        payload: Dict[str, object],
        status: int = 200,
        retry_after: Optional[float] = None,
    ) -> None:
        body = json.dumps(payload).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        if retry_after is not None:
            self.send_header("Retry-After", str(int(max(1, retry_after))))
        self.end_headers()
        self.wfile.write(body)

    def _read_body(self) -> Dict[str, object]:
        length = int(self.headers.get("Content-Length") or 0)
        if length > MAX_BODY_BYTES:
            raise BadRequest(f"request body exceeds {MAX_BODY_BYTES} bytes")
        raw = self.rfile.read(length) if length else b""
        if not raw:
            return {}
        try:
            payload = json.loads(raw.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise BadRequest(f"invalid JSON body: {exc}") from None
        if not isinstance(payload, dict):
            raise BadRequest("request body must be a JSON object")
        return payload

    def _dispatch(self, handler, *args) -> None:
        try:
            handler(*args)
        except BadRequest as exc:
            self._send_json({"error": str(exc)}, status=400)
        except (ConfigError, ValueError) as exc:
            self._send_json({"error": str(exc)}, status=400)
        except SchedulerDraining as exc:
            self._send_json({"error": str(exc)}, status=503, retry_after=2)
        except (UnknownDatasetError, UnknownJobError, UnknownSchemaError) as exc:
            self._send_json({"error": str(exc.args[0])}, status=404)
        except Exception as exc:  # noqa: BLE001 — protocol boundary
            self._send_json(
                {"error": f"{type(exc).__name__}: {exc}"}, status=500
            )

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------

    def do_GET(self) -> None:  # noqa: N802
        parts = [p for p in self.path.split("?")[0].split("/") if p]
        if parts == ["health"]:
            self._dispatch(self._get_health)
        elif parts == ["metrics"]:
            self._dispatch(self._get_metrics)
        elif parts == ["datasets"]:
            self._dispatch(self._get_datasets)
        elif parts == ["jobs"]:
            self._dispatch(self._get_jobs)
        elif parts == ["multitable", "schemas"]:
            self._dispatch(self._get_schemas)
        elif len(parts) == 3 and parts[:2] == ["multitable", "schemas"]:
            self._dispatch(self._get_schema, parts[2])
        elif len(parts) == 2 and parts[0] == "jobs":
            self._dispatch(self._get_job, parts[1])
        else:
            self._send_json({"error": f"no such endpoint: GET {self.path}"}, 404)

    def do_POST(self) -> None:  # noqa: N802
        split = urlsplit(self.path)
        parts = [p for p in split.path.split("/") if p]
        query = parse_qs(split.query)
        if parts == ["datasets"]:
            self._dispatch(self._post_dataset)
        elif len(parts) == 3 and parts[0] == "datasets" and parts[2] == "append":
            self._dispatch(self._post_append, parts[1])
        elif parts == ["discover"]:
            self._dispatch(self._post_job, "discover", query)
        elif parts == ["rank"]:
            self._dispatch(self._post_job, "rank", query)
        elif parts == ["multitable", "schemas"]:
            self._dispatch(self._post_schema)
        elif parts == ["multitable", "discover"]:
            self._dispatch(self._post_multitable, query)
        elif len(parts) == 3 and parts[0] == "jobs" and parts[2] == "cancel":
            self._dispatch(self._post_cancel, parts[1])
        else:
            self._send_json({"error": f"no such endpoint: POST {self.path}"}, 404)

    # ------------------------------------------------------------------
    # Endpoints
    # ------------------------------------------------------------------

    def _get_health(self) -> None:
        self._send_json(self.server.service.health())

    def _get_metrics(self) -> None:
        self._send_json(self.server.service.metrics_payload())

    def _get_datasets(self) -> None:
        self._send_json({"datasets": self.server.service.registry.list()})

    def _get_jobs(self) -> None:
        jobs = self.server.service.scheduler.jobs()
        self._send_json(
            {"jobs": [job.status_payload(include_result=False) for job in jobs]}
        )

    def _get_job(self, job_id: str) -> None:
        job = self.server.service.scheduler.get(job_id)
        self._send_json(job.status_payload())

    def _post_dataset(self) -> None:
        body = self._read_body()
        name = body.get("name")
        semantics = body.get("semantics", "eq")
        if "csv" in body:
            entry = self.server.service.register_csv(
                body["csv"],
                name=name,
                semantics=semantics,
                on_bad_row=body.get("on_bad_row", "raise"),
            )
        elif "columns" in body and "rows" in body:
            entry = self.server.service.register_rows(
                body["columns"], body["rows"], name=name, semantics=semantics
            )
        else:
            raise BadRequest(
                "dataset upload needs either 'csv' text or 'columns' + 'rows'"
            )
        self._send_json(entry.describe(), status=201)

    def _post_append(self, ref: str) -> None:
        body = self._read_body()
        rows = body.get("rows")
        if not isinstance(rows, list):
            raise BadRequest("append needs a 'rows' list")
        entry = self.server.service.append_rows(ref, rows)
        self._send_json(entry.describe())

    @staticmethod
    def _apply_top_k(
        config: Dict[str, object], query: Optional[Dict[str, List[str]]]
    ) -> None:
        """Fold ``?top_k=`` into the config, overriding any body value.

        The query param is the outermost request, proxied verbatim by
        the cluster router.
        """
        if query and "top_k" in query:
            raw = query["top_k"][-1]
            try:
                config["top_k"] = int(raw)
            except ValueError:
                raise BadRequest(f"top_k must be an integer, got {raw!r}") from None

    def _submit_and_respond(
        self, target: str, kind: str, config: Dict[str, object], body: Dict[str, object]
    ) -> None:
        """Queue the job; block for the status when ``wait`` was asked."""
        job = self.server.service.submit(
            target,
            kind,
            config,
            priority=int(body.get("priority", 0)),
            idempotency_key=self.headers.get("Idempotency-Key"),
        )
        if body.get("wait"):
            timeout = body.get("timeout")
            self.server.service.scheduler.wait(
                job.job_id, timeout=float(timeout) if timeout is not None else None
            )
            self._send_json(job.status_payload())
        else:
            self._send_json(
                {"job_id": job.job_id, "status": job.status}, status=202
            )

    def _post_job(
        self, kind: str, query: Optional[Dict[str, List[str]]] = None
    ) -> None:
        body = self._read_body()
        dataset = body.get("dataset")
        if not dataset:
            raise BadRequest("job submission needs a 'dataset' reference")
        config = body.get("config") or {}
        if "algorithm" in body:
            config.setdefault("algorithm", body["algorithm"])
        self._apply_top_k(config, query)
        self._submit_and_respond(dataset, kind, config, body)

    def _get_schemas(self) -> None:
        self._send_json({"schemas": self.server.service.schemas.list()})

    def _get_schema(self, ref: str) -> None:
        self._send_json(self.server.service.schemas.get(ref).describe())

    def _post_schema(self) -> None:
        body = self._read_body()
        tables = body.get("tables")
        if not isinstance(tables, dict) or not tables:
            raise BadRequest(
                "schema registration needs a 'tables' object "
                "(table name -> dataset name or fingerprint)"
            )
        entry = self.server.service.register_schema(
            body.get("name"),
            {str(k): str(v) for k, v in tables.items()},
            keys=body.get("keys"),
            foreign_keys=body.get("foreign_keys"),
            infer_fks=bool(body.get("infer_fks")),
            require_inclusion=bool(body.get("require_inclusion")),
        )
        self._send_json(entry.describe(), status=201)

    def _post_multitable(self, query: Optional[Dict[str, List[str]]] = None) -> None:
        """Submit a join-FD job: like ``/discover`` but against a schema.

        ``path`` and ``on_dangling`` may ride at the top level of the
        body (the ergonomic spelling) or inside ``config`` as
        ``join_path``/``on_dangling`` — top level wins.
        """
        body = self._read_body()
        schema = body.get("schema") or body.get("dataset")
        if not schema:
            raise BadRequest("multitable discovery needs a 'schema' reference")
        config = body.get("config") or {}
        if "algorithm" in body:
            config.setdefault("algorithm", body["algorithm"])
        if "path" in body:
            config["join_path"] = body["path"]
        if "on_dangling" in body:
            config["on_dangling"] = body["on_dangling"]
        self._apply_top_k(config, query)
        self._submit_and_respond(str(schema), "multitable", config, body)

    def _post_cancel(self, job_id: str) -> None:
        status = self.server.service.scheduler.cancel(job_id)
        self._send_json({"job_id": job_id, "status": status})


def make_server(
    service: FDService,
    host: str = "127.0.0.1",
    port: int = 0,
    quiet: bool = True,
) -> ServiceHTTPServer:
    """Bind a server (``port=0`` picks a free port; see ``server_port``)."""
    return ServiceHTTPServer((host, port), service, quiet=quiet)


def start_in_thread(
    service: FDService, host: str = "127.0.0.1", port: int = 0
) -> Tuple[ServiceHTTPServer, threading.Thread]:
    """Run a server on a daemon thread (tests and embedded use)."""
    server = make_server(service, host=host, port=port)
    thread = threading.Thread(
        target=server.serve_forever, name="repro-service-http", daemon=True
    )
    thread.start()
    return server, thread
