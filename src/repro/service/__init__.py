"""repro.service — a concurrent FD-discovery service.

The serving layer over the whole stack: datasets are loaded once into
a content-fingerprint-keyed :class:`DatasetRegistry`, finished covers
are cached in a :class:`ResultStore` (JSON-persisted, migrated across
appends by synergized induction), and discovery runs are sequenced by
a priority-aware, bounded :class:`JobScheduler`.  :class:`FDService`
composes the three; :mod:`repro.service.server` exposes them over a
stdlib-only HTTP API and :class:`ServiceClient` consumes it.

In process::

    from repro.service import FDService

    with FDService(max_workers=2) as service:
        entry = service.register_relation(relation, name="orders")
        job = service.discover(entry.fingerprint, config={"jobs": 2})
        print(job.result.format_fds())

Over HTTP (see ``repro-fd serve`` / ``repro-fd submit``)::

    from repro.service import ServiceClient

    client = ServiceClient("http://127.0.0.1:8765")
    info = client.upload_csv(open("orders.csv").read(), name="orders")
    status = client.discover(info["fingerprint"])
    result = ServiceClient.result_from_status(status)

Covers served either way are byte-identical to a direct
``make_algorithm(...).discover(relation)`` call — see
``docs/service.md`` for the cache and budget semantics.
"""

from .app import FDService
from .client import ServiceClient, ServiceError
from .config import ConfigError, JobConfig
from .registry import DatasetEntry, DatasetRegistry, UnknownDatasetError
from .scheduler import Job, JobCancelled, JobScheduler, SchedulerDraining, UnknownJobError
from .schemas import SchemaEntry, SchemaIndex, UnknownSchemaError
from .server import ServiceHTTPServer, make_server, start_in_thread
from .store import ResultStore

__all__ = [
    "ConfigError",
    "DatasetEntry",
    "DatasetRegistry",
    "FDService",
    "Job",
    "JobCancelled",
    "JobConfig",
    "JobScheduler",
    "ResultStore",
    "SchedulerDraining",
    "SchemaEntry",
    "SchemaIndex",
    "ServiceClient",
    "ServiceError",
    "ServiceHTTPServer",
    "UnknownDatasetError",
    "UnknownJobError",
    "UnknownSchemaError",
    "make_server",
    "start_in_thread",
]
