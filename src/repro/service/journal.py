"""Write-ahead job journal — the durable half of the job plane.

The scheduler's queue and job table live in memory; a replica crash
(SIGKILL, OOM, power cut) forgets every queued and in-flight job, and
clients polling the job id get a 404 after the restart.  The
:class:`JobJournal` fixes that: every job transition is appended to
``jobs.wal`` under ``--store-dir`` *before* it becomes externally
visible, so a restarted replica can replay the log and rebuild the job
table — see :meth:`repro.service.scheduler.JobScheduler.recover` and
``docs/durability.md``.

Frame format
------------

The log is a flat sequence of CRC-framed JSON records::

    <u32 crc32(payload)> <u32 len(payload)> <payload: UTF-8 JSON>

(little-endian).  Appends are fsync'd by default, so a record that was
acknowledged survives a crash.  Replay is truncation-tolerant: a short
header, short payload, or CRC mismatch marks the *torn tail* a crash
left behind — everything before it is kept, the tail is truncated away,
and the journal keeps appending from the last good offset.

Record types: ``submit`` (job identity: dataset fingerprint, kind,
config, priority, idempotency key), ``start``, ``checkpoint`` (the
discovery snapshot from :mod:`repro.core.base`), ``cancel`` and
``finish`` (terminal status).  :meth:`JobJournal.compact` — run on
clean shutdown — rewrites the log with one submit/start/finish triple
per job and only the *latest* checkpoint of unfinished jobs, so the
file stays proportional to the job table, not to job history.

Failure policy: the journal is an aid, never a hazard.  The public
append methods swallow their own failures (counted as
``service.journal.errors``, journal marked broken) so a full disk or an
injected ``journal.torn_write`` fault degrades durability without
taking down serving.
"""

from __future__ import annotations

import json
import os
import struct
import threading
import zlib
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, Optional, Union

from ..resilience import faults
from .store import _noop_count

#: ``jobs.wal`` frame header: crc32(payload), len(payload).
_HEADER = struct.Struct("<II")

#: Default WAL filename under a service's ``--store-dir``.
WAL_FILENAME = "jobs.wal"

#: Environment kill switch: ``REPRO_FD_JOURNAL=0`` disables the journal
#: (the service behaves exactly as before the durable job plane).
ENV_JOURNAL = "REPRO_FD_JOURNAL"


def journal_enabled_by_env() -> bool:
    """False only when ``REPRO_FD_JOURNAL`` explicitly disables it."""
    return os.environ.get(ENV_JOURNAL, "1").lower() not in ("0", "false", "off")


# ----------------------------------------------------------------------
# Crash-consistent file replacement (shared by every persistence path)
# ----------------------------------------------------------------------


def fsync_dir(path: Union[str, Path]) -> None:
    """fsync a directory so a rename inside it survives a power cut."""
    try:
        fd = os.open(str(path), os.O_RDONLY)
    except OSError:
        return  # e.g. platforms without directory fds — best effort
    try:
        os.fsync(fd)
    except OSError:
        pass
    finally:
        os.close(fd)


def atomic_write_text(path: Union[str, Path], text: str) -> None:
    """Durably replace ``path`` with ``text``.

    Write to a sibling tmp file, flush + fsync it, ``os.replace`` over
    the target, then fsync the parent directory — the sequence that
    guarantees a reader after a crash sees either the old file or the
    complete new one, never a torn or empty JSON document.
    """
    target = Path(path)
    tmp = target.with_name(target.name + ".tmp")
    with open(tmp, "w", encoding="utf-8") as handle:
        handle.write(text)
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(tmp, target)
    fsync_dir(target.parent)


# ----------------------------------------------------------------------
# Replayed job state
# ----------------------------------------------------------------------


@dataclass
class JournaledJob:
    """Everything the WAL knows about one job (the replay product)."""

    job_id: str
    dataset: str
    kind: str
    config: Dict[str, object] = field(default_factory=dict)
    priority: int = 0
    #: Client-supplied ``Idempotency-Key`` (dedup across restarts).
    idempotency_key: Optional[str] = None
    submitted_at: float = 0.0
    started: bool = False
    cancel_requested: bool = False
    #: Latest discovery checkpoint payload (see ``docs/durability.md``).
    checkpoint: Optional[Dict[str, object]] = None
    checkpoints: int = 0
    #: Terminal status recorded by a ``finish`` frame, or None.
    terminal: Optional[str] = None


class JobJournal:
    """Append-only, fsync'd WAL of job transitions with replay."""

    def __init__(
        self,
        path: Union[str, Path],
        fsync: bool = True,
        count: Callable[..., None] = _noop_count,
    ):
        """Args:
            path: the WAL file (created along with parent directories).
            fsync: fsync every append (disable only in tests that
                measure throughput — an unfsync'd WAL still survives
                process crashes, just not power cuts).
            count: metrics hook ``count(name, amount=1)``.
        """
        self.path = Path(path)
        self.fsync = fsync
        self._count = count
        self._lock = threading.Lock()
        #: Replayed + live job state, in submit order.
        self.jobs: Dict[str, JournaledJob] = {}
        #: True once an append failed; further appends are dropped
        #: (counted) instead of risking interleaved torn frames.
        self.broken = False
        #: True when replay found and truncated a torn tail.
        self.truncated = False
        self.replayed_records = 0
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._replay()
        self._fh = open(self.path, "ab")

    # ------------------------------------------------------------------
    # Replay
    # ------------------------------------------------------------------

    def _replay(self) -> None:
        """Rebuild ``self.jobs`` from the WAL, truncating any torn tail."""
        try:
            raw = self.path.read_bytes()
        except FileNotFoundError:
            return
        good = 0
        offset = 0
        try:
            while offset + _HEADER.size <= len(raw):
                faults.fire("journal.replay")
                crc, length = _HEADER.unpack_from(raw, offset)
                start = offset + _HEADER.size
                end = start + length
                if end > len(raw):
                    break  # torn tail: payload shorter than its header
                payload = raw[start:end]
                if zlib.crc32(payload) != crc:
                    break  # torn tail: header/payload mismatch
                record = json.loads(payload.decode("utf-8"))
                self._track(record)
                self.replayed_records += 1
                good = end
                offset = end
        except Exception:  # noqa: BLE001 — corrupt WAL must not kill boot
            # Injected ``journal.replay`` faults and undecodable frames
            # land here: keep what replayed cleanly, drop the rest.
            self._count("service.journal.replay_errors")
            self.truncated = True
        if good < len(raw):
            self.truncated = True
            self._count("service.journal.truncated_bytes", len(raw) - good)
            with open(self.path, "r+b") as handle:
                handle.truncate(good)
                handle.flush()
                os.fsync(handle.fileno())

    def _track(self, record: Dict[str, object]) -> None:
        """Fold one record into the in-memory job map."""
        kind = record.get("type")
        job_id = record.get("job_id")
        if not isinstance(job_id, str):
            return
        if kind == "submit":
            # Re-submits after compaction/recovery keep the first entry.
            if job_id not in self.jobs:
                self.jobs[job_id] = JournaledJob(
                    job_id=job_id,
                    dataset=str(record.get("dataset", "")),
                    kind=str(record.get("kind", "discover")),
                    config=dict(record.get("config") or {}),
                    priority=int(record.get("priority", 0)),
                    idempotency_key=record.get("key"),
                    submitted_at=float(record.get("ts", 0.0)),
                )
            return
        job = self.jobs.get(job_id)
        if job is None:
            return  # start/finish for a compacted-away submit: ignore
        if kind == "start":
            job.started = True
        elif kind == "checkpoint":
            state = record.get("state")
            if isinstance(state, dict):
                job.checkpoint = state
                job.checkpoints += 1
        elif kind == "cancel":
            job.cancel_requested = True
        elif kind == "finish":
            job.terminal = str(record.get("status", "done"))

    # ------------------------------------------------------------------
    # Appending
    # ------------------------------------------------------------------

    def _append(self, record: Dict[str, object]) -> bool:
        """Frame, write and fsync one record; False when dropped."""
        payload = json.dumps(
            record, sort_keys=True, separators=(",", ":")
        ).encode("utf-8")
        frame = _HEADER.pack(zlib.crc32(payload), len(payload)) + payload
        with self._lock:
            if self.broken:
                self._count("service.journal.dropped")
                return False
            try:
                if faults.armed() and faults.should_fire("journal.torn_write"):
                    # Simulate a crash mid-append: half the frame lands
                    # on disk and the writer never comes back for the
                    # rest.  Replay truncates this tail on next boot.
                    self._fh.write(frame[: max(1, len(frame) // 2)])
                    self._fh.flush()
                    raise faults.FaultInjected("journal.torn_write")
                self._fh.write(frame)
                self._fh.flush()
                if self.fsync:
                    os.fsync(self._fh.fileno())
            except Exception:  # noqa: BLE001 — durability aid, not hazard
                self.broken = True
                self._count("service.journal.errors")
                return False
        self._track(record)
        self._count("service.journal.records")
        return True

    def record_submit(
        self,
        job_id: str,
        dataset: str,
        kind: str,
        config: Dict[str, object],
        priority: int = 0,
        idempotency_key: Optional[str] = None,
        submitted_at: float = 0.0,
    ) -> bool:
        return self._append(
            {
                "type": "submit",
                "job_id": job_id,
                "dataset": dataset,
                "kind": kind,
                "config": config,
                "priority": priority,
                "key": idempotency_key,
                "ts": submitted_at,
            }
        )

    def record_start(self, job_id: str) -> bool:
        return self._append({"type": "start", "job_id": job_id})

    def record_checkpoint(self, job_id: str, state: Dict[str, object]) -> bool:
        ok = self._append({"type": "checkpoint", "job_id": job_id, "state": state})
        if ok:
            self._count("service.journal.checkpoints")
        return ok

    def record_cancel(self, job_id: str) -> bool:
        return self._append({"type": "cancel", "job_id": job_id})

    def record_finish(self, job_id: str, status: str) -> bool:
        return self._append({"type": "finish", "job_id": job_id, "status": status})

    # ------------------------------------------------------------------
    # Compaction / lifecycle
    # ------------------------------------------------------------------

    def find_by_key(self, idempotency_key: str) -> Optional[JournaledJob]:
        """The journaled job carrying this idempotency key, if any."""
        for job in self.jobs.values():
            if job.idempotency_key == idempotency_key:
                return job
        return None

    def compact(self) -> int:
        """Rewrite the WAL as the minimal record set for current state.

        One ``submit`` (+ ``start``/``cancel``/``finish``) per job and
        only the latest checkpoint of unfinished jobs — run on clean
        shutdown so the log never grows with checkpoint history.
        Returns the number of records written.
        """
        with self._lock:
            if self.broken:
                return 0
            frames = []
            written = 0
            for job in self.jobs.values():
                records = [
                    {
                        "type": "submit",
                        "job_id": job.job_id,
                        "dataset": job.dataset,
                        "kind": job.kind,
                        "config": job.config,
                        "priority": job.priority,
                        "key": job.idempotency_key,
                        "ts": job.submitted_at,
                    }
                ]
                if job.started:
                    records.append({"type": "start", "job_id": job.job_id})
                if job.cancel_requested and job.terminal is None:
                    records.append({"type": "cancel", "job_id": job.job_id})
                if job.terminal is not None:
                    records.append(
                        {
                            "type": "finish",
                            "job_id": job.job_id,
                            "status": job.terminal,
                        }
                    )
                elif job.checkpoint is not None:
                    records.append(
                        {
                            "type": "checkpoint",
                            "job_id": job.job_id,
                            "state": job.checkpoint,
                        }
                    )
                for record in records:
                    payload = json.dumps(
                        record, sort_keys=True, separators=(",", ":")
                    ).encode("utf-8")
                    frames.append(
                        _HEADER.pack(zlib.crc32(payload), len(payload)) + payload
                    )
                    written += 1
            tmp = self.path.with_name(self.path.name + ".tmp")
            try:
                with open(tmp, "wb") as handle:
                    handle.write(b"".join(frames))
                    handle.flush()
                    os.fsync(handle.fileno())
                self._fh.close()
                os.replace(tmp, self.path)
                fsync_dir(self.path.parent)
                self._fh = open(self.path, "ab")
            except Exception:  # noqa: BLE001 — keep the uncompacted WAL
                self.broken = True
                self._count("service.journal.errors")
                return 0
            self._count("service.journal.compactions")
            return written

    def close(self, compact: bool = True) -> None:
        """Compact (by default) and close the WAL file handle."""
        if compact:
            self.compact()
        with self._lock:
            try:
                self._fh.close()
            except OSError:
                pass

    def counters(self) -> Dict[str, int]:
        """Journal occupancy for ``/metrics``."""
        with self._lock:
            active = sum(1 for job in self.jobs.values() if job.terminal is None)
            return {
                "jobs": len(self.jobs),
                "active": active,
                "replayed_records": self.replayed_records,
                "truncated": 1 if self.truncated else 0,
                "broken": 1 if self.broken else 0,
            }
