"""Schema index: named multi-table schemas over registered datasets.

The service-side counterpart of :class:`~repro.multitable.schema.SchemaGraph`:
a schema is declared over datasets that already live in the
:class:`~repro.service.registry.DatasetRegistry` (each table is a
``name -> dataset ref`` binding), so uploading the base tables and
declaring the join structure are separate, individually idempotent
steps.  Schemas are keyed by the graph's content fingerprint — a
re-declaration of the same tables/keys/edges lands on the same entry —
with human-friendly names as aliases, mirroring the dataset registry.

With a ``persist_dir`` the index mirrors every schema to one JSON file
holding dataset *fingerprints* (not rows) and rebuilds the graphs from
the co-persisted dataset registry on restart, so a recovered replica
still answers ``/multitable`` jobs for its shard.
"""

from __future__ import annotations

import json
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence, Union

from ..multitable.schema import SchemaGraph
from .registry import DatasetRegistry, UnknownDatasetError
from .store import _noop_count


class UnknownSchemaError(KeyError):
    """Raised when a schema name or fingerprint resolves to nothing."""

    def __init__(self, ref: str):
        super().__init__(f"unknown schema {ref!r}")
        self.ref = ref


@dataclass
class SchemaEntry:
    """One registered schema graph and how it was declared."""

    fingerprint: str
    graph: SchemaGraph
    #: table name -> dataset fingerprint of its base relation.
    tables: Dict[str, str]
    #: declared keys (table -> column names), as supplied by the caller.
    keys: Dict[str, List[str]]
    name: Optional[str] = None
    #: True when :meth:`SchemaGraph.infer_foreign_keys` ran at register.
    inferred_fks: bool = False
    registered_at: float = field(default_factory=time.time)

    def describe(self) -> Dict[str, object]:
        """JSON-friendly summary for listings and HTTP responses."""
        payload = self.graph.describe()
        payload["name"] = self.name
        payload["datasets"] = dict(self.tables)
        payload["inferred_fks"] = self.inferred_fks
        return payload


class SchemaIndex:
    """Thread-safe fingerprint-keyed collection of schema graphs."""

    def __init__(
        self,
        registry: DatasetRegistry,
        count: Callable[..., None] = _noop_count,
        persist_dir: Optional[Union[str, Path]] = None,
    ):
        """Args:
            registry: dataset registry the table bindings resolve in.
            count: metrics hook ``count(name, amount=1)``.
            persist_dir: mirror schema declarations to JSON files here
                and reload on construction (requires the registry to be
                loaded first — schemas reference its datasets).
        """
        self._lock = threading.RLock()
        self._registry = registry
        self._count = count
        self._by_fingerprint: Dict[str, SchemaEntry] = {}
        self._by_name: Dict[str, str] = {}
        self.persist_dir = Path(persist_dir) if persist_dir is not None else None
        if self.persist_dir is not None:
            self.persist_dir.mkdir(parents=True, exist_ok=True)
            self._load()

    def __len__(self) -> int:
        with self._lock:
            return len(self._by_fingerprint)

    def register(
        self,
        name: Optional[str],
        tables: Dict[str, str],
        keys: Optional[Dict[str, Sequence[str]]] = None,
        foreign_keys: Optional[Sequence[Dict[str, object]]] = None,
        infer_fks: bool = False,
        require_inclusion: bool = False,
    ) -> SchemaEntry:
        """Declare a schema over registered datasets (idempotent).

        Args:
            name: optional alias (latest declaration wins the name).
            tables: ``table name -> dataset name-or-fingerprint``.
            keys: declared primary keys per table (validated against
                the data; tables without one get inferred UCC keys).
            foreign_keys: edge dicts ``{child, child_columns, parent,
                parent_columns?}``; the parent side defaults to the
                parent's primary key.
            infer_fks: additionally run unary FK inference.
            require_inclusion: make a dangling declared-FK value an
                error at declaration time (default tolerates dirt and
                defers to the job's ``on_dangling`` policy).
        """
        if not tables:
            raise ValueError("a schema needs at least one table")
        keys = dict(keys or {})
        resolved: Dict[str, str] = {}
        graph = SchemaGraph()
        for table_name in sorted(tables):
            fingerprint = self._registry.resolve(str(tables[table_name]))
            resolved[table_name] = fingerprint
            graph.add_table(
                table_name,
                self._registry.get(fingerprint).relation,
                key=keys.get(table_name),
            )
        for fk in foreign_keys or ():
            graph.add_foreign_key(
                str(fk["child"]),
                [str(c) for c in fk["child_columns"]],
                str(fk["parent"]),
                (
                    [str(c) for c in fk["parent_columns"]]
                    if fk.get("parent_columns")
                    else None
                ),
                require_inclusion=require_inclusion,
            )
        if infer_fks:
            graph.infer_foreign_keys()
        entry = SchemaEntry(
            fingerprint=graph.fingerprint(),
            graph=graph,
            tables=resolved,
            keys={t: list(k) for t, k in keys.items()},
            name=name,
            inferred_fks=bool(infer_fks),
        )
        with self._lock:
            existing = self._by_fingerprint.get(entry.fingerprint)
            if existing is None:
                self._by_fingerprint[entry.fingerprint] = entry
                self._count("service.schemas.registered")
                self._persist(entry)
            else:
                self._count("service.schemas.duplicate_registrations")
                if name and not existing.name:
                    existing.name = name
                entry = existing
            if name:
                self._by_name[name] = entry.fingerprint
            return entry

    def resolve(self, ref: str) -> str:
        """Normalize a schema name or fingerprint to a fingerprint."""
        with self._lock:
            if ref in self._by_name:
                return self._by_name[ref]
            if ref in self._by_fingerprint:
                return ref
        raise UnknownSchemaError(ref)

    def get(self, ref: str) -> SchemaEntry:
        """Look up a schema by name or fingerprint."""
        with self._lock:
            return self._by_fingerprint[self.resolve(ref)]

    def list(self) -> List[Dict[str, object]]:
        """Summaries of every registered schema."""
        with self._lock:
            entries = sorted(
                self._by_fingerprint.values(), key=lambda e: e.registered_at
            )
            return [entry.describe() for entry in entries]

    # ------------------------------------------------------------------
    # Persistence (replica restarts — mirrors DatasetRegistry)
    # ------------------------------------------------------------------

    def _persist(self, entry: SchemaEntry) -> None:
        if self.persist_dir is None:
            return
        payload = {
            "format": "repro-fd-schema",
            "version": 1,
            "fingerprint": entry.fingerprint,
            "name": entry.name,
            "registered_at": entry.registered_at,
            "tables": entry.tables,
            "keys": entry.keys,
            "foreign_keys": [fk.to_payload() for fk in entry.graph.foreign_keys],
            "inferred_fks": entry.inferred_fks,
        }
        from .journal import atomic_write_text

        path = self.persist_dir / f"{entry.fingerprint[:32]}.json"
        atomic_write_text(path, json.dumps(payload) + "\n")

    def _load(self) -> None:
        """Rebuild persisted schemas from the (already loaded) registry.

        Every FK edge was validated at declaration time, so the rebuild
        re-declares with ``require_inclusion=False``; a schema whose
        dataset is gone — or whose rebuilt fingerprint no longer matches
        the recorded one — is skipped, never trusted.
        """
        loaded: List[SchemaEntry] = []
        for path in sorted(self.persist_dir.glob("*.json")):
            try:
                payload = json.loads(path.read_text(encoding="utf-8"))
                if payload.get("format") != "repro-fd-schema":
                    continue
                graph = SchemaGraph()
                tables = dict(payload["tables"])
                keys = {t: list(k) for t, k in dict(payload.get("keys") or {}).items()}
                for table_name in sorted(tables):
                    graph.add_table(
                        table_name,
                        self._registry.get(str(tables[table_name])).relation,
                        key=keys.get(table_name),
                    )
                for fk in payload.get("foreign_keys") or ():
                    graph.add_foreign_key(
                        str(fk["child"]),
                        [str(c) for c in fk["child_columns"]],
                        str(fk["parent"]),
                        [str(c) for c in fk["parent_columns"]],
                        require_inclusion=False,
                    )
                if graph.fingerprint() != payload["fingerprint"]:
                    raise ValueError("fingerprint mismatch")
                loaded.append(
                    SchemaEntry(
                        fingerprint=payload["fingerprint"],
                        graph=graph,
                        tables=tables,
                        keys=keys,
                        name=payload.get("name"),
                        inferred_fks=bool(payload.get("inferred_fks")),
                        registered_at=float(payload.get("registered_at") or 0.0),
                    )
                )
            except (ValueError, KeyError, TypeError, OSError, UnknownDatasetError):
                self._count("service.schemas.load_errors")
                continue
        for entry in sorted(loaded, key=lambda e: e.registered_at):
            self._by_fingerprint[entry.fingerprint] = entry
            if entry.name:
                self._by_name[entry.name] = entry.fingerprint
        self._count("service.schemas.loaded", len(loaded))
