"""Dataset registry: load once, key by content fingerprint, append in place.

The registry is the service's source of truth for data.  Every dataset
is identified by :meth:`Relation.fingerprint` — a stable SHA-256 over
the encoded code matrix, null masks, schema and null semantics — so
uploading the same content twice lands on the same entry no matter the
upload path.  Human-friendly names are aliases: a name always points
at the *latest* version of its dataset, while older fingerprints stay
resolvable (their cached covers remain correct for their content).

Appends route through the incremental layer: the relation grows via
:meth:`Relation.append_rows` (old DIIS codes keep their meaning) and
every cover the result store holds for the old fingerprint is migrated
to the new one by synergized induction — see
:meth:`~repro.service.store.ResultStore.update_for_append`.
"""

from __future__ import annotations

import json
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence, Union

from ..relational.null import is_null
from ..relational.relation import Relation
from .store import ResultStore, _noop_count


class UnknownDatasetError(KeyError):
    """Raised when a fingerprint or name resolves to no dataset."""

    def __init__(self, ref: str):
        super().__init__(f"unknown dataset {ref!r}")
        self.ref = ref


@dataclass
class DatasetEntry:
    """One immutable dataset version held by the registry."""

    fingerprint: str
    relation: Relation
    name: Optional[str] = None
    registered_at: float = field(default_factory=time.time)
    #: Fingerprint this version was appended from (None for uploads).
    parent: Optional[str] = None

    def describe(self) -> Dict[str, object]:
        """JSON-friendly summary for listings and HTTP responses."""
        return {
            "fingerprint": self.fingerprint,
            "name": self.name,
            "n_rows": self.relation.n_rows,
            "n_cols": self.relation.n_cols,
            "columns": self.relation.schema.names,
            "semantics": self.relation.semantics.value,
            "parent": self.parent,
        }


class DatasetRegistry:
    """Thread-safe fingerprint-keyed collection of datasets."""

    def __init__(
        self,
        store: Optional[ResultStore] = None,
        count: Callable[..., None] = _noop_count,
        persist_dir: Optional[Union[str, Path]] = None,
    ):
        """Args:
            store: result store whose cached covers :meth:`append`
                migrates to the appended dataset (optional).
            count: metrics hook ``count(name, amount=1)``.
            persist_dir: mirror every registered dataset to one JSON
                file here and reload on construction, so a restarted
                replica still owns its shard's datasets (None keeps
                the registry in-memory — the single-process default).
        """
        self._lock = threading.RLock()
        self._by_fingerprint: Dict[str, DatasetEntry] = {}
        self._by_name: Dict[str, str] = {}
        self._store = store
        self._count = count
        self.persist_dir = Path(persist_dir) if persist_dir is not None else None
        if self.persist_dir is not None:
            self.persist_dir.mkdir(parents=True, exist_ok=True)
            self._load()

    def __len__(self) -> int:
        with self._lock:
            return len(self._by_fingerprint)

    def register(self, relation: Relation, name: Optional[str] = None) -> DatasetEntry:
        """Add a relation (idempotent: same content ⇒ same entry).

        A re-upload of known content refreshes the name alias but keeps
        the existing entry, so cached covers are shared across callers.
        """
        fingerprint = relation.fingerprint()
        with self._lock:
            entry = self._by_fingerprint.get(fingerprint)
            if entry is None:
                entry = DatasetEntry(fingerprint, relation, name=name)
                self._by_fingerprint[fingerprint] = entry
                self._count("service.registry.registered")
                self._persist(entry)
                self._arena_ingest(relation)
            else:
                self._count("service.registry.duplicate_uploads")
                if name and not entry.name:
                    entry.name = name
            if name:
                self._by_name[name] = fingerprint
            return entry

    def resolve(self, ref: str) -> str:
        """Normalize a name or fingerprint to a fingerprint."""
        with self._lock:
            if ref in self._by_name:
                return self._by_name[ref]
            if ref in self._by_fingerprint:
                return ref
        raise UnknownDatasetError(ref)

    def get(self, ref: str) -> DatasetEntry:
        """Look up a dataset by name or fingerprint."""
        with self._lock:
            return self._by_fingerprint[self.resolve(ref)]

    def append(self, ref: str, rows: Sequence[Sequence[object]]) -> DatasetEntry:
        """Append rows to a dataset, producing (and returning) a new version.

        The new relation keeps the old version's DIIS codes (see
        :meth:`Relation.append_rows`); cached covers are migrated to
        the new fingerprint by synergized induction rather than
        rediscovery when a result store is attached.  The old version
        stays registered — its fingerprint still names its content —
        and the name alias moves to the new version.
        """
        old = self.get(ref)
        rows = [list(row) for row in rows]
        new_relation = old.relation.append_rows(rows)
        with self._lock:
            entry = self._by_fingerprint.get(new_relation.fingerprint())
            if entry is None:
                entry = DatasetEntry(
                    new_relation.fingerprint(),
                    new_relation,
                    name=old.name,
                    parent=old.fingerprint,
                )
                self._by_fingerprint[entry.fingerprint] = entry
                self._count("service.registry.appends")
                self._persist(entry)
                self._arena_ingest(new_relation, parent=old.fingerprint)
            if old.name:
                self._by_name[old.name] = entry.fingerprint
        if self._store is not None and rows:
            self._store.update_for_append(
                old.fingerprint, old.relation, rows, entry.fingerprint
            )
        return entry

    def _arena_ingest(self, relation: Relation, parent: Optional[str] = None) -> None:
        """Materialize a registered dataset in the memplane (best-effort).

        Registration is the natural ingest point: every later job on
        this replica — and every worker pool it spawns — attaches to
        the one arena copy instead of paying per-job copy-in.  Appends
        pass their parent so both versions can share one segment.  Any
        arena failure is swallowed: the registry must work with the
        memplane off or broken.
        """
        try:
            from ..memplane import arena

            if not arena.enabled():
                return
            if arena.get_arena().ingest(relation, parent_fingerprint=parent):
                self._count("service.registry.arena_ingests")
        except Exception:
            self._count("service.registry.arena_errors")

    def list(self) -> List[Dict[str, object]]:
        """Summaries of every registered dataset version."""
        with self._lock:
            entries = sorted(
                self._by_fingerprint.values(), key=lambda e: e.registered_at
            )
            return [entry.describe() for entry in entries]

    # ------------------------------------------------------------------
    # Persistence (replica restarts — see repro.cluster)
    # ------------------------------------------------------------------

    def _persist(self, entry: DatasetEntry) -> None:
        """Mirror one dataset version to its JSON file (best-effort).

        In-process registrations may hold values JSON cannot encode;
        those datasets simply stay memory-only (counted, not fatal) —
        every HTTP upload is JSON-clean by construction.
        """
        if self.persist_dir is None:
            return
        relation = entry.relation
        rows = [
            [None if is_null(value) else value for value in row]
            for row in relation.iter_rows()
        ]
        payload = {
            "format": "repro-fd-dataset",
            "version": 1,
            "fingerprint": entry.fingerprint,
            "name": entry.name,
            "parent": entry.parent,
            "registered_at": entry.registered_at,
            "semantics": relation.semantics.value,
            "columns": relation.schema.names,
            "rows": rows,
        }
        try:
            text = json.dumps(payload)
        except (TypeError, ValueError):
            self._count("service.registry.persist_skipped")
            return
        from .journal import atomic_write_text

        path = self.persist_dir / f"{entry.fingerprint[:32]}.json"
        atomic_write_text(path, text + "\n")

    def _load(self) -> None:
        """Reload persisted datasets, oldest first so name aliases land
        on the latest version; content is verified against the recorded
        fingerprint and mismatches are skipped, never trusted."""
        loaded = []
        for path in sorted(self.persist_dir.glob("*.json")):
            try:
                payload = json.loads(path.read_text(encoding="utf-8"))
                if payload.get("format") != "repro-fd-dataset":
                    continue
                relation = Relation.from_rows(
                    payload["rows"],
                    schema=list(payload["columns"]),
                    semantics=payload.get("semantics", "eq"),
                )
                if relation.fingerprint() != payload["fingerprint"]:
                    raise ValueError("fingerprint mismatch")
                loaded.append(
                    DatasetEntry(
                        payload["fingerprint"],
                        relation,
                        name=payload.get("name"),
                        registered_at=float(payload.get("registered_at") or 0.0),
                        parent=payload.get("parent"),
                    )
                )
            except (ValueError, KeyError, TypeError, OSError):
                self._count("service.registry.load_errors")
                continue
        for entry in sorted(loaded, key=lambda e: e.registered_at):
            self._by_fingerprint[entry.fingerprint] = entry
            if entry.name:
                self._by_name[entry.name] = entry.fingerprint
        self._count("service.registry.loaded", len(loaded))
