"""Schema decomposition: 3NF synthesis, BCNF decomposition, and the
classic quality checks (lossless join via the chase, dependency
preservation via the Beeri–Honeyman test).

Together with :mod:`repro.ranking` this closes the loop the paper
motivates: discover FDs, rank them by the redundancy they cause, and
eliminate that redundancy by decomposition.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Sequence

from ..covers.canonical import canonical_cover, merge_same_lhs
from ..covers.implication import ImplicationEngine
from ..relational import attrset
from ..relational.attrset import AttrSet
from ..relational.fd import FD
from ..relational.schema import RelationSchema
from .keys import candidate_keys


@dataclass(frozen=True)
class Decomposition:
    """A set of fragment schemas (attribute sets over the original R)."""

    n_cols: int
    fragments: List[AttrSet]

    def format(self, schema: RelationSchema) -> List[str]:
        """Render each fragment with column names."""
        return [schema.format_attr_set(f) for f in self.fragments]

    def covers_schema(self) -> bool:
        """Do the fragments jointly mention every attribute?"""
        mask = attrset.EMPTY
        for fragment in self.fragments:
            mask |= fragment
        return mask == attrset.full_set(self.n_cols)


def synthesize_3nf(n_cols: int, fds: Sequence[FD]) -> Decomposition:
    """Bernstein's 3NF synthesis from a canonical cover.

    One fragment per canonical FD (LHS ∪ RHS), plus a key fragment when
    no fragment contains a candidate key; fragments subsumed by others
    are dropped.  The result is dependency preserving and lossless.
    """
    cover = canonical_cover(fds)
    fragments: List[AttrSet] = [fd.lhs | fd.rhs for fd in cover]
    if not fragments:
        fragments = [attrset.full_set(n_cols)]

    keys = candidate_keys(n_cols, list(cover))
    if not any(
        any(attrset.is_subset(key, fragment) for fragment in fragments)
        for key in keys
    ):
        fragments.append(keys[0])

    # attributes mentioned in no FD still need a home: put them in the
    # key fragment (they are independent of everything else)
    mentioned = attrset.EMPTY
    for fragment in fragments:
        mentioned |= fragment
    orphans = attrset.complement(mentioned, n_cols)
    if orphans:
        fragments.append(keys[0] | orphans)

    pruned = [
        f for f in fragments
        if not any(other != f and attrset.is_subset(f, other) for other in fragments)
    ]
    return Decomposition(n_cols, sorted(set(pruned)))


def decompose_bcnf(n_cols: int, fds: Sequence[FD]) -> Decomposition:
    """Classic recursive BCNF decomposition (lossless, not necessarily
    dependency preserving)."""
    engine = ImplicationEngine(list(fds))
    fragments: List[AttrSet] = []
    stack = [attrset.full_set(n_cols)]
    while stack:
        schema_attrs = stack.pop()
        violation = _find_bcnf_violation(schema_attrs, fds, engine)
        if violation is None:
            fragments.append(schema_attrs)
            continue
        closure_in_schema = engine.closure(violation.lhs) & schema_attrs
        left = closure_in_schema
        right = violation.lhs | attrset.difference(schema_attrs, closure_in_schema)
        if left == schema_attrs or right == schema_attrs:
            fragments.append(schema_attrs)  # degenerate split; stop
            continue
        stack.append(left)
        stack.append(right)
    pruned = [
        f for f in fragments
        if not any(other != f and attrset.is_subset(f, other) for other in fragments)
    ]
    return Decomposition(n_cols, sorted(set(pruned)))


def _find_bcnf_violation(
    schema_attrs: AttrSet, fds: Sequence[FD], engine: ImplicationEngine
) -> "FD | None":
    """An FD (projected onto the sub-schema) violating BCNF there."""
    for fd in fds:
        if not attrset.is_subset(fd.lhs, schema_attrs):
            continue
        closure = engine.closure(fd.lhs)
        rhs_in_schema = attrset.difference(closure & schema_attrs, fd.lhs)
        if not rhs_in_schema:
            continue
        if not attrset.is_subset(schema_attrs, closure):
            return FD(fd.lhs, rhs_in_schema)
    return None


def is_lossless_join(
    n_cols: int, fds: Sequence[FD], decomposition: Decomposition
) -> bool:
    """Chase-based lossless-join test.

    Builds the tableau with one row per fragment (distinguished symbols
    on the fragment's attributes), chases it with the FDs, and checks
    whether some row becomes all-distinguished.
    """
    fragments = decomposition.fragments
    # tableau[i][a]: 0 means distinguished; i+1 a row-local symbol
    tableau = [
        [0 if attrset.contains(fragment, attr) else row + 1 for attr in range(n_cols)]
        for row, fragment in enumerate(fragments)
    ]
    changed = True
    while changed:
        changed = False
        for fd in fds:
            lhs = attrset.to_list(fd.lhs)
            rhs = attrset.to_list(fd.rhs)
            groups: dict = {}
            for row in tableau:
                key = tuple(row[a] for a in lhs)
                groups.setdefault(key, []).append(row)
            for rows in groups.values():
                if len(rows) < 2:
                    continue
                for attr in rhs:
                    values = {row[attr] for row in rows}
                    if len(values) > 1:
                        target = 0 if 0 in values else min(values)
                        replaced = values - {target}
                        for row in tableau:
                            if row[attr] in replaced:
                                row[attr] = target
                        changed = True
    return any(all(v == 0 for v in row) for row in tableau)


def preserves_dependencies(
    fds: Sequence[FD], decomposition: Decomposition
) -> bool:
    """Beeri–Honeyman dependency-preservation test.

    For each FD ``X → Y``: grow ``Z`` from ``X`` by repeatedly closing
    ``Z ∩ S`` within each fragment ``S``; the FD is preserved iff the
    fixpoint contains ``Y``.
    """
    engine = ImplicationEngine(list(fds))
    for fd in fds:
        attr_set = fd.lhs
        changed = True
        while changed:
            changed = False
            for fragment in decomposition.fragments:
                gained = engine.closure(attr_set & fragment) & fragment
                if attrset.difference(gained, attr_set):
                    attr_set |= gained
                    changed = True
        if not attrset.is_subset(fd.rhs, attr_set):
            return False
    return True
