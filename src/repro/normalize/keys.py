"""Candidate-key computation from FD covers (Lucchesi–Osborn).

A candidate key of schema ``R`` under FD set Σ is a minimal attribute
set whose closure is all of ``R``.  Keys drive the normal-form checks:
BCNF/3NF violations are defined relative to them, and the paper's
zero-redundancy FDs are exactly the key-like ones.

The enumeration follows the classic Lucchesi–Osborn queue: starting
from one key, every FD ``X → Y`` spawns the candidate
``X ∪ (K − Y)`` for each known key ``K``; minimized candidates that are
not supersets of known keys are new keys.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence

from ..covers.implication import ImplicationEngine
from ..relational import attrset
from ..relational.attrset import AttrSet
from ..relational.fd import FD


def minimize_superkey(
    superkey: AttrSet, n_cols: int, engine: ImplicationEngine
) -> AttrSet:
    """Shrink a superkey to a (not necessarily unique) candidate key."""
    all_attrs = attrset.full_set(n_cols)
    key = superkey
    for attr in attrset.to_list(superkey):
        candidate = attrset.remove(key, attr)
        if engine.closure(candidate, until=all_attrs) == all_attrs:
            key = candidate
    return key


def is_superkey(attrs: AttrSet, n_cols: int, fds: Iterable[FD]) -> bool:
    """Does ``attrs`` functionally determine the whole schema?"""
    engine = ImplicationEngine(list(fds))
    return engine.closure(attrs) == attrset.full_set(n_cols)


def candidate_keys(
    n_cols: int, fds: Sequence[FD], max_keys: int = 1000
) -> List[AttrSet]:
    """All candidate keys of the schema under ``fds``.

    ``max_keys`` bounds the enumeration (key counts can be exponential);
    hitting the bound raises so callers never silently miss keys.
    """
    engine = ImplicationEngine(list(fds))
    all_attrs = attrset.full_set(n_cols)
    first = minimize_superkey(all_attrs, n_cols, engine)
    keys: List[AttrSet] = [first]
    queue: List[AttrSet] = [first]
    seen = {first}

    while queue:
        key = queue.pop()
        for fd in fds:
            candidate = fd.lhs | attrset.difference(key, fd.rhs)
            if candidate in seen:
                continue
            if any(attrset.is_subset(existing, candidate) for existing in keys):
                continue
            minimized = minimize_superkey(candidate, n_cols, engine)
            if minimized in seen:
                continue
            seen.add(candidate)
            seen.add(minimized)
            keys.append(minimized)
            queue.append(minimized)
            if len(keys) > max_keys:
                raise RuntimeError(
                    f"more than {max_keys} candidate keys; raise max_keys"
                )
    # prune any non-minimal stragglers (defensive; minimization order
    # can in principle leave a superset discovered before its subset)
    keys = [
        k for k in keys
        if not any(other != k and attrset.is_subset(other, k) for other in keys)
    ]
    return sorted(set(keys))


def prime_attributes(n_cols: int, fds: Sequence[FD]) -> AttrSet:
    """Attributes appearing in at least one candidate key."""
    mask = attrset.EMPTY
    for key in candidate_keys(n_cols, fds):
        mask |= key
    return mask
