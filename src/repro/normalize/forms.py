"""Normal-form checks: BCNF and 3NF relative to a discovered cover.

The paper grounds its redundancy measure in Vincent's semantic
justification of normal forms: an FD causing redundant values is
exactly a normal-form violation worth repairing.  These checks make
that connection executable — feed them a discovered (canonical) cover
and they report the violating FDs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from ..covers.implication import ImplicationEngine
from ..relational import attrset
from ..relational.attrset import AttrSet
from ..relational.fd import FD
from .keys import candidate_keys, prime_attributes


@dataclass(frozen=True)
class NormalFormReport:
    """Outcome of a normal-form check."""

    satisfied: bool
    violations: List[FD]
    keys: List[AttrSet]


def _nontrivial_fds(fds: Sequence[FD]) -> List[FD]:
    return [fd for fd in fds if attrset.difference(fd.rhs, fd.lhs)]


def check_bcnf(n_cols: int, fds: Sequence[FD]) -> NormalFormReport:
    """BCNF: every non-trivial FD's LHS is a superkey."""
    engine = ImplicationEngine(list(fds))
    all_attrs = attrset.full_set(n_cols)
    keys = candidate_keys(n_cols, list(fds))
    violations = [
        fd for fd in _nontrivial_fds(fds)
        if engine.closure(fd.lhs) != all_attrs
    ]
    return NormalFormReport(not violations, violations, keys)


def check_3nf(n_cols: int, fds: Sequence[FD]) -> NormalFormReport:
    """3NF: LHS is a superkey, or every RHS attribute is prime."""
    engine = ImplicationEngine(list(fds))
    all_attrs = attrset.full_set(n_cols)
    keys = candidate_keys(n_cols, list(fds))
    prime = prime_attributes(n_cols, list(fds))
    violations = []
    for fd in _nontrivial_fds(fds):
        if engine.closure(fd.lhs) == all_attrs:
            continue
        nonprime_rhs = attrset.difference(
            attrset.difference(fd.rhs, fd.lhs), prime
        )
        if nonprime_rhs:
            violations.append(FD(fd.lhs, nonprime_rhs))
    return NormalFormReport(not violations, violations, keys)
