"""Normalization on top of discovered covers: keys, normal forms,
3NF/BCNF decomposition with lossless-join and preservation checks."""

from .decompose import (
    Decomposition,
    decompose_bcnf,
    is_lossless_join,
    preserves_dependencies,
    synthesize_3nf,
)
from .forms import NormalFormReport, check_3nf, check_bcnf
from .keys import candidate_keys, is_superkey, minimize_superkey, prime_attributes

__all__ = [
    "Decomposition",
    "NormalFormReport",
    "candidate_keys",
    "check_3nf",
    "check_bcnf",
    "decompose_bcnf",
    "is_lossless_join",
    "is_superkey",
    "minimize_superkey",
    "preserves_dependencies",
    "prime_attributes",
    "synthesize_3nf",
]
