"""Incremental FD maintenance under data changes."""

from .maintainer import IncrementalFDMaintainer

__all__ = ["IncrementalFDMaintainer"]
