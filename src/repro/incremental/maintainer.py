"""Incremental maintenance of a discovered FD cover under appends.

Appending rows can only *invalidate* FDs: a violating pair survives any
extension, so no new FD appears below an existing one — and the minimal
specializations of a previously valid FD are automatically valid on the
old rows (every old pair agreeing on the specialized LHS agrees on the
original LHS too).  The update therefore reduces to:

1. compute the agree sets of every (new row, any row) pair — the only
   pairs that can witness new violations;
2. apply them, largest LHS first, to an extended FD-tree holding the
   current cover via synergized induction.

The tree afterwards holds exactly the new left-reduced cover, without
touching the discovery algorithms again.  Deletions are different —
they can resurrect FDs anywhere in the lattice — so :meth:`remove_rows`
falls back to rediscovery (documented, correct, and still convenient).
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Set

import numpy as np

from ..algorithms.registry import make_algorithm
from ..fdtree.extended import ExtendedFDTree
from ..fdtree.induction import synergized_induct
from ..relational import attrset
from ..relational.attrset import AttrSet
from ..relational.fd import FDSet, normalize_singleton_cover
from ..relational.relation import Relation


class IncrementalFDMaintainer:
    """Keeps a relation and its left-reduced FD cover in sync."""

    def __init__(
        self,
        relation: Relation,
        algorithm: str = "dhyfd",
        cover: Optional[FDSet] = None,
        **algorithm_kwargs,
    ):
        """Args:
            relation: the initial data.
            algorithm: registry name used for (re)discovery.
            cover: a known-correct cover of ``relation`` (skips the
                initial discovery when provided).
            **algorithm_kwargs: constructor kwargs (``jobs``,
                ``backend``, ...) forwarded to *every* (re)discovery
                this maintainer performs — the initial one and the
                :meth:`remove_rows` fallback alike.
        """
        self.algorithm = algorithm
        self.algorithm_kwargs = dict(algorithm_kwargs)
        self.relation = relation
        if cover is None:
            cover = self._discover(relation)
        self._cover = cover
        #: Work counters for tests/diagnostics.
        self.appended_rows = 0
        self.pair_comparisons = 0
        self.rediscoveries = 0

    @property
    def cover(self) -> FDSet:
        """The current left-reduced cover (singleton RHSs)."""
        return self._cover

    def append_rows(self, rows: Sequence[Sequence[object]]) -> FDSet:
        """Append rows and incrementally repair the cover."""
        rows = list(rows)
        if not rows:
            return self._cover
        old_count = self.relation.n_rows
        self.relation = self.relation.append_rows(rows)
        self.appended_rows += len(rows)

        violations = self._new_pair_agree_sets(old_count)
        if violations:
            tree = self._tree_from_cover()
            ordered = sorted(
                violations, key=lambda lhs: (-attrset.count(lhs), lhs)
            )
            for lhs in ordered:
                synergized_induct(
                    tree, lhs, attrset.complement(lhs, self.relation.n_cols)
                )
            self._cover = normalize_singleton_cover(tree.iter_fds())
        return self._cover

    def remove_rows(self, row_indices: Sequence[int]) -> FDSet:
        """Delete rows; falls back to rediscovery (deletions may make
        arbitrary new FDs valid)."""
        doomed = set(row_indices)
        keep = [i for i in range(self.relation.n_rows) if i not in doomed]
        self.relation = self.relation.project_rows(keep)
        self._cover = self._discover(self.relation)
        self.rediscoveries += 1
        return self._cover

    # ------------------------------------------------------------------

    def _discover(self, relation: Relation) -> FDSet:
        """Run the configured algorithm with the configured kwargs."""
        algo = make_algorithm(self.algorithm, **self.algorithm_kwargs)
        return algo.discover(relation).fds

    def _tree_from_cover(self) -> ExtendedFDTree:
        tree = ExtendedFDTree(self.relation.n_cols)
        for fd in self._cover:
            tree.add_fd(fd.lhs, fd.rhs)
        return tree

    def _new_pair_agree_sets(self, old_count: int) -> Set[AttrSet]:
        """Agree sets of every pair that involves an appended row."""
        matrix = self.relation.matrix()
        n_rows = self.relation.n_rows
        full = attrset.full_set(self.relation.n_cols)
        agree_sets: Set[AttrSet] = set()
        for new_row in range(old_count, n_rows):
            row_codes = matrix[new_row]
            for other in range(new_row):
                self.pair_comparisons += 1
                equal = row_codes == matrix[other]
                mask = attrset.EMPTY
                for col in np.nonzero(equal)[0]:
                    mask = attrset.add(mask, int(col))
                if mask != full:
                    agree_sets.add(mask)
        return agree_sets
