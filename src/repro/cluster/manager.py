"""Replica manager: N ``repro serve`` worker processes, kept alive.

Each replica is a full single-process :mod:`repro.service` server
owning one shard of the dataset space (the router decides which — see
:mod:`repro.cluster.topology`).  The manager:

* **spawns** ``python -m repro serve --port 0`` per shard, parsing the
  announced URL from stdout, with a per-replica ``--store-dir`` so a
  restarted replica reloads its shard's cached covers;
* **health-checks** every replica (process liveness plus an HTTP
  ``/health`` probe) and **restarts** crashed or wedged ones with a
  small backoff, on a fresh port — the router re-reads
  :meth:`endpoints` every request, so a restart only 503s the shard
  for the restart window;
* **persists** a ``replicas.json`` table (shard, url, pid, state,
  restart count) next to the routing table, so operators and the load
  harness can see the topology;
* **stops** replicas by SIGTERM first (the server's graceful drain —
  in-flight jobs finish, the result store syncs) and SIGKILL only
  after ``drain_timeout`` expires.
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import threading
import time
import urllib.request
from pathlib import Path
from typing import Dict, List, Optional, Union

from ..memplane import arena as _arena
from ..service.journal import atomic_write_text

#: Replica lifecycle states (mirrored into ``replicas.json``).
STARTING = "starting"
UP = "up"
DOWN = "down"
STOPPED = "stopped"


class ReplicaStartupError(RuntimeError):
    """A replica process failed to boot and announce its URL."""


class ReplicaHandle:
    """One managed replica process and everything we know about it."""

    def __init__(self, shard: int):
        self.shard = shard
        self.url: Optional[str] = None
        self.proc: Optional[subprocess.Popen] = None
        self.state = STARTING
        self.restarts = 0
        self.started_at: Optional[float] = None
        #: Consecutive failed /health probes (reset on success).
        self.probe_failures = 0
        #: Last few stdout/stderr lines, for crash diagnostics.
        self.tail: List[str] = []

    @property
    def name(self) -> str:
        return f"replica-{self.shard}"

    @property
    def arena_owner(self) -> str:
        """Segment-owner token this replica's arena stamps on /dev/shm.

        Keyed by the manager pid plus the shard, so the manager can
        sweep a SIGKILLed replica's leftovers without ever touching
        segments of other clusters (or other shards) on the host.
        """
        return f"r{os.getpid()}s{self.shard}"

    @property
    def pid(self) -> Optional[int]:
        return self.proc.pid if self.proc is not None else None

    def describe(self) -> Dict[str, object]:
        """JSON-friendly row for the persisted ``replicas.json`` table."""
        return {
            "replica": self.name,
            "shard": self.shard,
            "url": self.url,
            "pid": self.pid,
            "state": self.state,
            "restarts": self.restarts,
            "started_at": self.started_at,
        }


class ReplicaManager:
    """Spawn, watch, restart and drain a fleet of service replicas."""

    def __init__(
        self,
        replicas: int = 2,
        data_dir: Optional[Union[str, Path]] = None,
        host: str = "127.0.0.1",
        max_workers: int = 2,
        drain_timeout: float = 10.0,
        probe_interval: float = 1.0,
        probe_failures: int = 3,
        probe_timeout: float = 2.0,
        startup_timeout: float = 30.0,
        verbose: bool = False,
    ):
        """Args:
            replicas: shard count — one worker process per shard.
            data_dir: holds per-replica store dirs, ``replicas.json``
                and the router's ``routes.json`` (None = no persistence:
                in-memory stores, table not written).
            host: interface each replica binds (always with port 0).
            max_workers: scheduler workers per replica.
            drain_timeout: SIGTERM→SIGKILL grace when stopping/restarting.
            probe_interval: seconds between health sweeps.
            probe_failures: consecutive failed /health probes (with the
                process still alive) before the replica is declared
                wedged and restarted.
            probe_timeout: socket timeout of one /health probe.
            startup_timeout: max wait for a replica to announce its URL.
            verbose: pass ``--verbose`` through to the replicas.
        """
        if replicas < 1:
            raise ValueError(f"replicas must be >= 1, got {replicas}")
        self.n_replicas = replicas
        self.data_dir = Path(data_dir) if data_dir is not None else None
        self.host = host
        self.max_workers = max_workers
        self.drain_timeout = drain_timeout
        self.probe_interval = probe_interval
        self.probe_failures = probe_failures
        self.probe_timeout = probe_timeout
        self.startup_timeout = startup_timeout
        self.verbose = verbose
        self.handles = [ReplicaHandle(shard) for shard in range(replicas)]
        self._lock = threading.RLock()
        self._stopping = threading.Event()
        self._monitor: Optional[threading.Thread] = None

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def start(self) -> "ReplicaManager":
        """Boot every replica and start the health monitor."""
        for handle in self.handles:
            self._spawn(handle)
        self._write_table()
        self._monitor = threading.Thread(
            target=self._monitor_loop, name="repro-cluster-monitor", daemon=True
        )
        self._monitor.start()
        return self

    def stop(self) -> None:
        """Gracefully drain and stop every replica (idempotent)."""
        self._stopping.set()
        if self._monitor is not None:
            self._monitor.join(timeout=self.probe_interval + 1.0)
        with self._lock:
            procs = [(h, h.proc) for h in self.handles if h.proc is not None]
        for handle, proc in procs:
            if proc.poll() is None:
                proc.send_signal(signal.SIGTERM)
        deadline = time.monotonic() + self.drain_timeout + 5.0
        for handle, proc in procs:
            remaining = max(0.1, deadline - time.monotonic())
            try:
                proc.wait(timeout=remaining)
            except subprocess.TimeoutExpired:
                proc.kill()
                proc.wait(timeout=5.0)
            handle.state = STOPPED
            # A drained replica unlinked its own segments; one that had
            # to be killed did not — sweep either way (idempotent).
            _arena.sweep_orphans(handle.arena_owner)
        self._write_table()

    def __enter__(self) -> "ReplicaManager":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.stop()
        return False

    # ------------------------------------------------------------------
    # Topology
    # ------------------------------------------------------------------

    def endpoints(self) -> List[Optional[str]]:
        """Current base URL per shard (None while a shard is down).

        The router calls this on every routing decision, so replica
        restarts (new port) propagate without coordination.
        """
        with self._lock:
            return [
                handle.url if handle.state == UP else None
                for handle in self.handles
            ]

    def describe(self) -> List[Dict[str, object]]:
        """The replicas table as JSON-friendly rows."""
        with self._lock:
            return [handle.describe() for handle in self.handles]

    # ------------------------------------------------------------------
    # Spawning
    # ------------------------------------------------------------------

    def _replica_args(self, handle: ReplicaHandle) -> List[str]:
        args = [
            sys.executable,
            "-m",
            "repro",
            "serve",
            "--host",
            self.host,
            "--port",
            "0",
            "--max-workers",
            str(self.max_workers),
            "--drain-timeout",
            str(self.drain_timeout),
        ]
        if self.data_dir is not None:
            store = self.data_dir / handle.name / "store"
            datasets = self.data_dir / handle.name / "datasets"
            store.mkdir(parents=True, exist_ok=True)
            datasets.mkdir(parents=True, exist_ok=True)
            args += ["--store-dir", str(store), "--dataset-dir", str(datasets)]
            # Replay the job journal on every (re)spawn: jobs that died
            # with a crashed replica are requeued or resumed from their
            # last checkpoint instead of 404ing (docs/durability.md).
            args.append("--recover")
        if self.verbose:
            args.append("--verbose")
        return args

    def _spawn(self, handle: ReplicaHandle) -> None:
        """Start one replica and wait for its URL announcement."""
        handle.state = STARTING
        handle.url = None
        handle.probe_failures = 0
        handle.tail = []
        env = dict(os.environ)
        env[_arena.ENV_ARENA_OWNER] = handle.arena_owner
        proc = subprocess.Popen(
            self._replica_args(handle),
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            text=True,
            env=env,
        )
        handle.proc = proc
        url: Optional[str] = None
        deadline = time.monotonic() + self.startup_timeout
        while time.monotonic() < deadline:
            line = proc.stdout.readline()
            if not line:
                if proc.poll() is not None:
                    break
                continue
            handle.tail = (handle.tail + [line.rstrip()])[-20:]
            if "listening on " in line:
                url = line.split("listening on ", 1)[1].split()[0]
                break
        if url is None:
            proc.kill()
            tail = "\n".join(handle.tail[-5:])
            raise ReplicaStartupError(
                f"{handle.name} did not announce a URL within "
                f"{self.startup_timeout}s (rc={proc.poll()}):\n{tail}"
            )
        # Keep draining stdout so the child never blocks on a full pipe.
        threading.Thread(
            target=self._drain_stdout,
            args=(handle, proc),
            name=f"repro-cluster-stdout-{handle.shard}",
            daemon=True,
        ).start()
        with self._lock:
            handle.url = url
            handle.state = UP
            handle.started_at = time.time()

    @staticmethod
    def _drain_stdout(handle: ReplicaHandle, proc: subprocess.Popen) -> None:
        for line in proc.stdout:
            handle.tail = (handle.tail + [line.rstrip()])[-20:]

    # ------------------------------------------------------------------
    # Health monitor
    # ------------------------------------------------------------------

    def _probe(self, handle: ReplicaHandle) -> bool:
        """One HTTP /health probe; True when the replica answered."""
        if handle.url is None:
            return False
        try:
            with urllib.request.urlopen(
                handle.url + "/health", timeout=self.probe_timeout
            ) as response:
                return response.status == 200
        except Exception:  # noqa: BLE001 — any failure is "not healthy"
            return False

    def _monitor_loop(self) -> None:
        while not self._stopping.wait(self.probe_interval):
            for handle in self.handles:
                if self._stopping.is_set():
                    return
                proc = handle.proc
                if proc is None or handle.state == STOPPED:
                    continue
                if proc.poll() is not None:
                    # Crashed (or exited): restart on a fresh port.
                    self._restart(handle, reason=f"exited rc={proc.returncode}")
                    continue
                if self._probe(handle):
                    if handle.probe_failures or handle.state != UP:
                        with self._lock:
                            handle.probe_failures = 0
                            handle.state = UP
                        self._write_table()
                    continue
                handle.probe_failures += 1
                if handle.probe_failures >= self.probe_failures:
                    # Alive but wedged: kill it and start over.
                    proc.kill()
                    try:
                        proc.wait(timeout=5.0)
                    except subprocess.TimeoutExpired:
                        pass
                    self._restart(handle, reason="health probes failed")

    def _restart(self, handle: ReplicaHandle, reason: str) -> None:
        with self._lock:
            handle.state = DOWN
            handle.url = None
        self._write_table()
        if self._stopping.is_set():
            return
        handle.restarts += 1
        # Small linear backoff so a crash-looping replica cannot spin.
        time.sleep(min(0.2 * handle.restarts, 2.0))
        # The dead replica never ran its atexit unlink (SIGKILL / hard
        # crash): reap its arena segments before the successor — which
        # reuses the owner token — recreates them.
        _arena.sweep_orphans(handle.arena_owner)
        try:
            self._spawn(handle)
        except ReplicaStartupError:
            with self._lock:
                handle.state = DOWN
        self._write_table()

    # ------------------------------------------------------------------
    # Persisted replicas table
    # ------------------------------------------------------------------

    def _write_table(self) -> None:
        if self.data_dir is None:
            return
        payload = {
            "format": "repro-fd-replicas",
            "version": 1,
            "replicas": self.describe(),
        }
        self.data_dir.mkdir(parents=True, exist_ok=True)
        atomic_write_text(
            self.data_dir / "replicas.json",
            json.dumps(payload, indent=2, sort_keys=True) + "\n",
        )
