"""repro.cluster — sharded service replicas behind an async front-end.

Horizontal scale-out for :mod:`repro.service` (ROADMAP item 3): the
dataset space is partitioned by content fingerprint across N replica
processes — each a full single-process discovery service owning one
shard of the registry — and a single-threaded, selectors-based HTTP
router places every request on the replica that owns its dataset.
``/metrics`` and ``/health`` fan out to all replicas and merge, with
per-replica metric prefixes plus ``cluster.*`` totals.

The pieces compose but also stand alone:

* :func:`shard_for` / :class:`RoutingTable` — deterministic placement
  (restart-stable hashing plus persisted pins for names and appended
  versions);
* :class:`ReplicaManager` — spawn/health-check/restart the replica
  processes, persisting a ``replicas.json`` table;
* :class:`Router` — the non-blocking proxy (point it at any list of
  service URLs, managed or not);
* :class:`Cluster` — manager + router as one unit (``repro-fd
  cluster``).

Covers served through a cluster are byte-identical to single-process
``discover()`` — routing only decides *where* the same deterministic
pipeline runs.  See ``docs/cluster.md``.
"""

from .controller import Cluster
from .manager import ReplicaHandle, ReplicaManager, ReplicaStartupError
from .router import Router, RouterError, merge_health, merge_metrics, upload_fingerprint
from .topology import RoutingTable, shard_for

__all__ = [
    "Cluster",
    "ReplicaHandle",
    "ReplicaManager",
    "ReplicaStartupError",
    "Router",
    "RouterError",
    "RoutingTable",
    "merge_health",
    "merge_metrics",
    "shard_for",
    "upload_fingerprint",
]
