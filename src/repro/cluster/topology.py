"""Shard topology: who owns which dataset.

The cluster partitions the dataset space by **content fingerprint**
(:meth:`Relation.fingerprint` — a SHA-256 over the encoded relation).
:func:`shard_for` hashes any reference string onto a shard index; the
hash is its own routing table, so a router restart — or a second
router — computes the same placement with no coordination.

Two kinds of reference cannot be placed by hashing alone, and for
those the :class:`RoutingTable` keeps *pinned* entries (persisted as
one JSON file, the moral equivalent of the ``routes.csv`` in the
tpch-psql exemplar the ROADMAP cites):

* **names** — a dataset uploaded as ``orders`` routes by the hash of
  its *fingerprint*, not its name, so the name is pinned to the shard
  the upload landed on;
* **appended versions** — an append changes the fingerprint, but the
  new version's partitions live on the replica that owns the parent,
  so the new fingerprint is pinned to the parent's shard.

Everything else (the common case: requests referencing a fingerprint
returned by an upload) resolves by pure hashing and never touches the
table.
"""

from __future__ import annotations

import hashlib
import json
import threading
from pathlib import Path
from typing import Dict, Optional, Union

from ..service.journal import atomic_write_text

#: Version tag for the persisted routing-table file format.
_ROUTES_FORMAT = "repro-fd-routes"


def shard_for(ref: str, n_shards: int) -> int:
    """Deterministic shard index for a reference string.

    Uses the first 8 bytes of SHA-256 — stable across processes,
    Python versions and restarts (unlike builtin ``hash``, which is
    salted per process).
    """
    if n_shards < 1:
        raise ValueError(f"n_shards must be >= 1, got {n_shards}")
    digest = hashlib.sha256(ref.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big") % n_shards


class RoutingTable:
    """Reference → shard placement with persisted pinned entries.

    Thread-safe; the router mutates it from its event loop while the
    replica manager may read it for diagnostics.
    """

    def __init__(self, n_shards: int, path: Optional[Union[str, Path]] = None):
        """Args:
            n_shards: number of shards keys hash onto.
            path: JSON file for pinned entries (loaded if it exists,
                rewritten atomically on every pin); None = in-memory.
        """
        if n_shards < 1:
            raise ValueError(f"n_shards must be >= 1, got {n_shards}")
        self.n_shards = n_shards
        self.path = Path(path) if path is not None else None
        self._lock = threading.Lock()
        self._pinned: Dict[str, int] = {}
        if self.path is not None and self.path.exists():
            self._load()

    def shard_of(self, ref: str) -> int:
        """The shard owning ``ref``: pinned entry if any, else the hash."""
        with self._lock:
            pinned = self._pinned.get(ref)
        if pinned is not None:
            return pinned
        return shard_for(ref, self.n_shards)

    def pin(self, ref: str, shard: int) -> None:
        """Record that ``ref`` lives on ``shard``.

        A no-op when hashing already places ``ref`` there (keeps the
        table small: only names and appended fingerprints persist).
        """
        if not 0 <= shard < self.n_shards:
            raise ValueError(f"shard {shard} out of range [0, {self.n_shards})")
        with self._lock:
            if shard_for(ref, self.n_shards) == shard:
                changed = self._pinned.pop(ref, None) is not None
            else:
                changed = self._pinned.get(ref) != shard
                self._pinned[ref] = shard
            if changed:
                self._save_locked()

    def pinned(self) -> Dict[str, int]:
        """A copy of the pinned entries (diagnostics / tests)."""
        with self._lock:
            return dict(self._pinned)

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------

    def _save_locked(self) -> None:
        if self.path is None:
            return
        payload = {
            "format": _ROUTES_FORMAT,
            "version": 1,
            "n_shards": self.n_shards,
            "routes": self._pinned,
        }
        self.path.parent.mkdir(parents=True, exist_ok=True)
        atomic_write_text(
            self.path, json.dumps(payload, indent=2, sort_keys=True) + "\n"
        )

    def _load(self) -> None:
        try:
            payload = json.loads(self.path.read_text(encoding="utf-8"))
        except (OSError, ValueError):
            return
        if payload.get("format") != _ROUTES_FORMAT:
            return
        if payload.get("n_shards") != self.n_shards:
            # A table persisted for a different shard count cannot be
            # reused — hashing fallback would disagree with the pins,
            # quietly routing appended datasets to the wrong replica.
            # Resharding needs a fresh data dir, so fail loudly.
            raise ValueError(
                f"routing table {self.path} was persisted for "
                f"n_shards={payload.get('n_shards')}, not {self.n_shards}; "
                "use a fresh --data-dir to change the replica count"
            )
        routes = payload.get("routes")
        if isinstance(routes, dict):
            self._pinned = {
                str(ref): int(shard)
                for ref, shard in routes.items()
                if isinstance(shard, int) and 0 <= shard < self.n_shards
            }
