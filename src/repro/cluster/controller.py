"""Cluster controller: replica manager + router as one unit.

This is what ``repro-fd cluster`` (and the load/smoke harnesses) boot:

* a :class:`~repro.cluster.manager.ReplicaManager` spawning N
  ``repro serve`` processes, one per shard, restarted on crash;
* a :class:`~repro.cluster.router.Router` bound to the manager's live
  :meth:`~repro.cluster.manager.ReplicaManager.endpoints`, with its
  pinned routing table persisted next to the replicas table.

::

    from repro.cluster import Cluster

    with Cluster(replicas=2, data_dir="cluster-state") as cluster:
        client = ServiceClient(cluster.url)       # same protocol
        client.upload_csv(csv_text, name="orders")
"""

from __future__ import annotations

from pathlib import Path
from typing import Optional, Union

from .manager import ReplicaManager
from .router import Router


class Cluster:
    """N sharded service replicas behind one fingerprint-routed router."""

    def __init__(
        self,
        replicas: int = 2,
        data_dir: Optional[Union[str, Path]] = None,
        host: str = "127.0.0.1",
        router_port: int = 0,
        max_workers: int = 2,
        drain_timeout: float = 10.0,
        upstream_timeout: float = 300.0,
        probe_interval: float = 1.0,
        verbose: bool = False,
    ):
        """Args mirror the ``repro-fd cluster`` CLI flags; ``data_dir``
        (when given) persists per-replica result stores, the replicas
        table, and the router's pinned routes across restarts."""
        self.data_dir = Path(data_dir) if data_dir is not None else None
        self.manager = ReplicaManager(
            replicas=replicas,
            data_dir=self.data_dir,
            host=host,
            max_workers=max_workers,
            drain_timeout=drain_timeout,
            probe_interval=probe_interval,
            verbose=verbose,
        )
        self._router_host = host
        self._router_port = router_port
        self._upstream_timeout = upstream_timeout
        self.router: Optional[Router] = None

    @property
    def url(self) -> str:
        """The router's base URL (valid after :meth:`start`)."""
        if self.router is None:
            raise RuntimeError("cluster is not started")
        return self.router.url

    def start(self) -> "Cluster":
        """Boot the replicas, then the router (on a daemon thread)."""
        self.manager.start()
        routes_path = (
            str(self.data_dir / "routes.json") if self.data_dir is not None else None
        )
        self.router = Router(
            self.manager.endpoints,
            host=self._router_host,
            port=self._router_port,
            routes_path=routes_path,
            describe=self.manager.describe,
            upstream_timeout=self._upstream_timeout,
        )
        self.router.start()
        return self

    def stop(self) -> None:
        """Stop the router, then gracefully drain the replicas."""
        if self.router is not None:
            self.router.shutdown()
        self.manager.stop()

    def __enter__(self) -> "Cluster":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.stop()
        return False
