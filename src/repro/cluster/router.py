"""Fingerprint-routed async HTTP front-end for a replica fleet.

A **single-threaded, non-blocking** (``selectors``-based) HTTP proxy —
no thread per connection, so thousands of concurrent clients cost one
file descriptor each, not a stack.  It speaks the exact
:mod:`repro.service` protocol, which means :class:`ServiceClient`
works against a cluster unchanged.

Routing rules (see :mod:`repro.cluster.topology`):

* ``POST /datasets`` — the router parses the upload, computes
  :meth:`Relation.fingerprint`, and hashes it to a shard, so the same
  content always lands on the same replica no matter who uploads it; a
  ``colocate_with`` body key instead routes the upload to the named
  dataset's shard (multi-table schemas need their base tables on one
  replica);
* ``POST /datasets/<ref>/append``, ``POST /discover``, ``POST /rank``
  — routed by the referenced dataset (pinned entry, else fingerprint
  hash); append responses pin the *new* fingerprint to the parent's
  shard;
* ``POST /multitable/schemas`` — requires every referenced table on
  one shard (409 otherwise — re-upload with ``colocate_with``);
  responses pin the schema fingerprint and name to that shard, and
  ``POST /multitable/discover`` / ``GET /multitable/schemas/<ref>``
  follow the pin;
* ``GET/POST /jobs...`` — job ids are namespaced ``s<shard>:<id>`` on
  the way out and routed by that prefix on the way back in;
* ``GET /health``, ``GET /metrics``, ``GET /datasets``, ``GET /jobs``
  — fanned out to every live replica and merged (metrics counters are
  re-published under per-replica prefixes plus ``cluster.*`` totals);
* ``GET /cluster`` — router-local topology: replicas table, pinned
  routes, router counters.

A request for a shard that is down is answered ``503`` with a
``Retry-After`` header immediately — never a hang — and the shard
comes back transparently once the replica manager restarts it
(:class:`ServiceClient`'s retry/backoff makes the window invisible to
callers).
"""

from __future__ import annotations

import json
import re
import selectors
import socket
import threading
import time
import urllib.parse
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

from ..relational.io import read_csv_text
from ..relational.relation import Relation
from ..service.server import MAX_BODY_BYTES
from .topology import RoutingTable

#: Prefixed job ids: ``s<shard>:<replica-local job id>``.
_JOB_REF = re.compile(r"^s(\d+):(.+)$")

_REASONS = {
    200: "OK",
    201: "Created",
    202: "Accepted",
    400: "Bad Request",
    404: "Not Found",
    409: "Conflict",
    500: "Internal Server Error",
    502: "Bad Gateway",
    503: "Service Unavailable",
    504: "Gateway Timeout",
}


class RouterError(RuntimeError):
    """Fatal router setup/runtime failure."""


class _PlanError(Exception):
    """A routing decision that ends in an immediate error response."""

    def __init__(self, status: int, message: str):
        super().__init__(message)
        self.status = status


# ----------------------------------------------------------------------
# Incremental HTTP/1.x parsing (requests from clients, responses from
# replicas).  Only what the service protocol needs: Content-Length
# framing, with read-until-EOF as the response fallback.
# ----------------------------------------------------------------------


class _HTTPParser:
    """Feed bytes in, get a complete message (or an error) out."""

    __slots__ = (
        "kind",
        "buf",
        "headers",
        "method",
        "path",
        "status",
        "content_length",
        "body",
        "complete",
        "error",
    )

    def __init__(self, kind: str):
        self.kind = kind  # "request" | "response"
        self.buf = bytearray()
        self.headers: Optional[Dict[str, str]] = None
        self.method: Optional[str] = None
        self.path: Optional[str] = None
        self.status: Optional[int] = None
        self.content_length: Optional[int] = None
        self.body: Optional[bytes] = None
        self.complete = False
        self.error: Optional[str] = None

    def feed(self, data: bytes) -> None:
        if self.complete or self.error:
            return
        self.buf += data
        self._advance()

    def finish(self) -> None:
        """EOF: responses without Content-Length complete here."""
        if self.complete or self.error:
            return
        if (
            self.kind == "response"
            and self.headers is not None
            and self.content_length is None
        ):
            self.body = bytes(self.buf)
            self.complete = True
        else:
            self.error = "connection closed mid-message"

    def _advance(self) -> None:
        if self.headers is None:
            idx = self.buf.find(b"\r\n\r\n")
            if idx < 0:
                if len(self.buf) > 65536:
                    self.error = "header block too large"
                return
            try:
                head = bytes(self.buf[:idx]).decode("latin-1")
            except UnicodeDecodeError:  # pragma: no cover — latin-1 total
                self.error = "undecodable header block"
                return
            del self.buf[: idx + 4]
            lines = head.split("\r\n")
            parts = lines[0].split(" ", 2)
            if self.kind == "request":
                if len(parts) != 3 or not parts[2].startswith("HTTP/1."):
                    self.error = f"malformed request line: {lines[0]!r}"
                    return
                self.method, self.path = parts[0].upper(), parts[1]
            else:
                if len(parts) < 2 or not parts[0].startswith("HTTP/1."):
                    self.error = f"malformed status line: {lines[0]!r}"
                    return
                try:
                    self.status = int(parts[1])
                except ValueError:
                    self.error = f"malformed status code: {parts[1]!r}"
                    return
            headers: Dict[str, str] = {}
            for line in lines[1:]:
                if ":" in line:
                    key, value = line.split(":", 1)
                    headers[key.strip().lower()] = value.strip()
            self.headers = headers
            raw_length = headers.get("content-length")
            if raw_length is not None:
                try:
                    self.content_length = int(raw_length)
                except ValueError:
                    self.error = f"malformed Content-Length: {raw_length!r}"
                    return
                if self.content_length > MAX_BODY_BYTES:
                    self.error = f"body exceeds {MAX_BODY_BYTES} bytes"
                    return
            elif self.kind == "request":
                self.content_length = 0  # chunked uploads unsupported
        if self.content_length is not None and not self.complete:
            if len(self.buf) >= self.content_length:
                self.body = bytes(self.buf[: self.content_length])
                self.complete = True


def _build_request(
    method: str,
    path: str,
    host: str,
    body: Optional[bytes],
    extra_headers: Optional[Dict[str, str]] = None,
) -> bytes:
    """Serialized upstream HTTP request (always ``Connection: close``)."""
    lines = [
        f"{method} {path} HTTP/1.1",
        f"Host: {host}",
        "Connection: close",
        "Accept: application/json",
    ]
    for name, value in (extra_headers or {}).items():
        lines.append(f"{name}: {value}")
    if body:
        lines.append("Content-Type: application/json")
        lines.append(f"Content-Length: {len(body)}")
    elif method == "POST":
        lines.append("Content-Length: 0")
    return ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1") + (body or b"")


def _serialize_response(
    status: int,
    body: bytes,
    content_type: str = "application/json",
    retry_after: Optional[int] = None,
) -> bytes:
    reason = _REASONS.get(status, "Unknown")
    lines = [
        f"HTTP/1.1 {status} {reason}",
        f"Content-Type: {content_type}",
        f"Content-Length: {len(body)}",
        "Connection: close",
    ]
    if retry_after is not None:
        lines.append(f"Retry-After: {retry_after}")
    return ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1") + body


# ----------------------------------------------------------------------
# Merging fanned-out replica payloads
# ----------------------------------------------------------------------


def _replica_name(shard: int) -> str:
    return f"replica-{shard}"


def merge_health(per_shard: Sequence[Optional[dict]]) -> dict:
    """Cluster /health: ok only when every shard answered ok."""
    replicas: Dict[str, dict] = {}
    datasets = cached = 0
    jobs: Dict[str, int] = {}
    healthy = 0
    for shard, payload in enumerate(per_shard):
        name = _replica_name(shard)
        if payload is None:
            replicas[name] = {"status": "down"}
            continue
        healthy += 1
        replicas[name] = payload
        datasets += int(payload.get("datasets", 0))
        cached += int(payload.get("cached_results", 0))
        for key, value in (payload.get("jobs") or {}).items():
            if isinstance(value, (int, float)):
                jobs[key] = jobs.get(key, 0) + value
    status = "ok" if healthy == len(per_shard) else ("degraded" if healthy else "down")
    return {
        "status": status,
        "replicas": replicas,
        "shards": len(per_shard),
        "healthy": healthy,
        "datasets": datasets,
        "cached_results": cached,
        "jobs": jobs,
    }


def merge_metrics(per_shard: Sequence[Optional[dict]]) -> dict:
    """Cluster /metrics: per-replica prefixed series plus cluster totals.

    Every replica counter/gauge reappears twice: once under its
    ``replica-<shard>.`` prefix (so a dashboard can tell shards apart)
    and summed under ``cluster.`` (so the load harness reads one
    number).  Gauges like ``worker_utilization`` sum into cluster-wide
    capacity terms; divide by ``cluster.replicas`` for an average.
    """
    counters: Dict[str, float] = {}
    gauges: Dict[str, float] = {}
    cluster_counters: Dict[str, float] = {}
    cluster_gauges: Dict[str, float] = {}
    healthy = 0
    for shard, payload in enumerate(per_shard):
        if payload is None:
            continue
        healthy += 1
        prefix = _replica_name(shard)
        for name, value in (payload.get("counters") or {}).items():
            counters[f"{prefix}.{name}"] = value
            cluster_counters[name] = cluster_counters.get(name, 0) + value
        for name, value in (payload.get("gauges") or {}).items():
            gauges[f"{prefix}.{name}"] = value
            cluster_gauges[name] = cluster_gauges.get(name, 0) + value
        for section in ("store", "scheduler", "journal"):
            for name, value in (payload.get(section) or {}).items():
                if isinstance(value, (int, float)):
                    counters[f"{prefix}.{section}.{name}"] = value
                    key = f"{section}.{name}"
                    cluster_counters[key] = cluster_counters.get(key, 0) + value
    counters.update({f"cluster.{k}": v for k, v in cluster_counters.items()})
    gauges.update({f"cluster.{k}": v for k, v in cluster_gauges.items()})
    return {
        "cluster": {"replicas": len(per_shard), "healthy": healthy},
        "counters": dict(sorted(counters.items())),
        "gauges": dict(sorted(gauges.items())),
    }


def merge_datasets(per_shard: Sequence[Optional[dict]]) -> dict:
    datasets: List[dict] = []
    for shard, payload in enumerate(per_shard):
        if payload is None:
            continue
        for entry in payload.get("datasets") or []:
            entry = dict(entry)
            entry["replica"] = _replica_name(shard)
            datasets.append(entry)
    return {"datasets": datasets}


def merge_schemas(per_shard: Sequence[Optional[dict]]) -> dict:
    schemas: List[dict] = []
    for shard, payload in enumerate(per_shard):
        if payload is None:
            continue
        for entry in payload.get("schemas") or []:
            entry = dict(entry)
            entry["replica"] = _replica_name(shard)
            schemas.append(entry)
    return {"schemas": schemas}


def merge_jobs(per_shard: Sequence[Optional[dict]]) -> dict:
    jobs: List[dict] = []
    for shard, payload in enumerate(per_shard):
        if payload is None:
            continue
        for entry in payload.get("jobs") or []:
            jobs.append(_prefix_job_ids(entry, shard))
    jobs.sort(key=lambda job: job.get("submitted_at") or 0)
    return {"jobs": jobs}


_MERGERS: Dict[str, Callable[[Sequence[Optional[dict]]], dict]] = {
    "health": merge_health,
    "metrics": merge_metrics,
    "datasets": merge_datasets,
    "jobs": merge_jobs,
}


def _prefix_job_ids(obj: object, shard: int) -> object:
    """Namespace every ``job_id`` value in a payload with its shard."""
    if isinstance(obj, dict):
        return {
            key: (
                f"s{shard}:{value}"
                if key == "job_id" and isinstance(value, str)
                else _prefix_job_ids(value, shard)
            )
            for key, value in obj.items()
        }
    if isinstance(obj, list):
        return [_prefix_job_ids(item, shard) for item in obj]
    return obj


def upload_fingerprint(body: dict) -> str:
    """The fingerprint a replica will assign this upload.

    Mirrors :meth:`FDService.register_csv` / ``register_rows`` exactly
    — same parse, same construction — so the router's routing decision
    and the replica's registry key always agree.
    """
    semantics = body.get("semantics", "eq")
    if "csv" in body:
        relation = read_csv_text(
            body["csv"],
            semantics=semantics,
            on_bad_row=body.get("on_bad_row", "raise"),
        )
    elif "columns" in body and "rows" in body:
        relation = Relation.from_rows(
            body["rows"], schema=list(body["columns"]), semantics=semantics
        )
    else:
        raise _PlanError(
            400, "dataset upload needs either 'csv' text or 'columns' + 'rows'"
        )
    return relation.fingerprint()


# ----------------------------------------------------------------------
# Event-loop plumbing
# ----------------------------------------------------------------------


class _Upstream:
    """One non-blocking exchange with a replica."""

    __slots__ = (
        "router",
        "session",
        "shard",
        "sock",
        "out",
        "parser",
        "state",
        "failure",
    )

    def __init__(self, router: "Router", session: "_Session", shard: int, url: str, request: bytes):
        self.router = router
        self.session = session
        self.shard = shard
        self.out = bytearray(request)
        self.parser = _HTTPParser("response")
        self.state = "connecting"
        self.failure: Optional[str] = None
        parsed = urllib.parse.urlsplit(url)
        self.sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self.sock.setblocking(False)
        self.sock.connect_ex((parsed.hostname, parsed.port or 80))
        router._register(self.sock, selectors.EVENT_WRITE, self)

    def on_event(self, mask: int) -> None:
        if self.state == "connecting" and mask & selectors.EVENT_WRITE:
            error = self.sock.getsockopt(socket.SOL_SOCKET, socket.SO_ERROR)
            if error:
                self._fail(f"connect failed (errno {error})")
                return
            self.state = "sending"
        if self.state == "sending" and mask & selectors.EVENT_WRITE:
            try:
                sent = self.sock.send(self.out)
            except (BlockingIOError, InterruptedError):
                return
            except OSError as exc:
                self._fail(f"send failed: {exc}")
                return
            del self.out[:sent]
            if not self.out:
                self.state = "receiving"
                self.router._modify(self.sock, selectors.EVENT_READ, self)
            return
        if self.state == "receiving" and mask & selectors.EVENT_READ:
            try:
                data = self.sock.recv(65536)
            except (BlockingIOError, InterruptedError):
                return
            except OSError as exc:
                self._fail(f"recv failed: {exc}")
                return
            if data:
                self.parser.feed(data)
                if self.parser.error:
                    self._fail(self.parser.error)
                elif self.parser.complete:
                    self._done()
            else:
                self.parser.finish()
                if self.parser.complete:
                    self._done()
                else:
                    self._fail(self.parser.error or "replica closed early")

    def abort(self, reason: str) -> None:
        self._fail(reason)

    def _fail(self, reason: str) -> None:
        self.failure = reason
        self._close()
        self.session.upstream_done(self)

    def _done(self) -> None:
        self._close()
        self.session.upstream_done(self)

    def _close(self) -> None:
        self.router._unregister(self.sock)
        try:
            self.sock.close()
        except OSError:  # pragma: no cover — close is best-effort
            pass


class _Session:
    """One client connection through its read → proxy → write lifecycle."""

    __slots__ = (
        "router",
        "sock",
        "parser",
        "out",
        "state",
        "upstreams",
        "pending",
        "finisher",
        "deadline",
    )

    def __init__(self, router: "Router", sock: socket.socket):
        self.router = router
        self.sock = sock
        self.parser = _HTTPParser("request")
        self.out = bytearray()
        self.state = "reading"
        self.upstreams: List[_Upstream] = []
        self.pending = 0
        #: Called with the finished upstreams to build the response.
        self.finisher: Optional[Callable[[List[_Upstream]], None]] = None
        self.deadline = time.monotonic() + router.client_timeout
        router._register(sock, selectors.EVENT_READ, self)

    # -- event handling -------------------------------------------------

    def on_event(self, mask: int) -> None:
        if self.state == "reading" and mask & selectors.EVENT_READ:
            try:
                data = self.sock.recv(65536)
            except (BlockingIOError, InterruptedError):
                return
            except OSError:
                self.close()
                return
            if not data:
                self.close()
                return
            self.parser.feed(data)
            if self.parser.error:
                self.respond_json(400, {"error": self.parser.error})
            elif self.parser.complete:
                self.state = "waiting"
                self.deadline = time.monotonic() + self.router.upstream_timeout
                self.router._route(self)
        elif self.state == "writing" and mask & selectors.EVENT_WRITE:
            try:
                sent = self.sock.send(self.out)
            except (BlockingIOError, InterruptedError):
                return
            except OSError:
                self.close()
                return
            del self.out[:sent]
            if not self.out:
                self.close()

    # -- responses ------------------------------------------------------

    def respond_json(
        self, status: int, payload: dict, retry_after: Optional[int] = None
    ) -> None:
        body = json.dumps(payload).encode("utf-8")
        self.respond_raw(status, body, retry_after=retry_after)

    def respond_raw(
        self,
        status: int,
        body: bytes,
        content_type: str = "application/json",
        retry_after: Optional[int] = None,
    ) -> None:
        self.out = bytearray(
            _serialize_response(status, body, content_type, retry_after)
        )
        self.state = "writing"
        self.deadline = time.monotonic() + self.router.client_timeout
        self.router._modify(self.sock, selectors.EVENT_WRITE, self)

    # -- upstream orchestration ----------------------------------------

    def launch(
        self,
        calls: List[Tuple[int, str, bytes]],
        finisher: Callable[[List[_Upstream]], None],
    ) -> None:
        """Start upstream exchanges; ``finisher`` runs when all settle."""
        self.finisher = finisher
        self.pending = len(calls)
        for shard, url, request in calls:
            self.upstreams.append(_Upstream(self.router, self, shard, url, request))

    def upstream_done(self, upstream: _Upstream) -> None:
        self.pending -= 1
        if self.pending <= 0 and self.state == "waiting":
            finisher, self.finisher = self.finisher, None
            if finisher is not None:
                finisher(self.upstreams)

    def expire(self, now: float) -> None:
        if now < self.deadline:
            return
        if self.state == "waiting":
            for upstream in self.upstreams:
                if upstream.failure is None and not upstream.parser.complete:
                    upstream.failure = "timed out"
                    upstream._close()
            self.pending = 0
            finisher, self.finisher = self.finisher, None
            if finisher is not None:
                finisher(self.upstreams)
            else:  # pragma: no cover — waiting always has a finisher
                self.respond_json(504, {"error": "upstream timeout"})
        else:
            self.close()

    def close(self) -> None:
        for upstream in self.upstreams:
            if upstream.failure is None and not upstream.parser.complete:
                upstream.failure = "session closed"
                upstream._close()
        self.upstreams = []
        self.router._unregister(self.sock)
        try:
            self.sock.close()
        except OSError:  # pragma: no cover — close is best-effort
            pass
        self.router._sessions.discard(self)


class Router:
    """Single-threaded selectors event loop proxying a replica fleet."""

    def __init__(
        self,
        endpoints: Union[Sequence[Optional[str]], Callable[[], Sequence[Optional[str]]]],
        host: str = "127.0.0.1",
        port: int = 0,
        routes_path: Optional[str] = None,
        describe: Optional[Callable[[], List[dict]]] = None,
        upstream_timeout: float = 300.0,
        fanout_timeout: float = 5.0,
        client_timeout: float = 30.0,
        retry_after: int = 1,
    ):
        """Args:
            endpoints: per-shard base URLs, or a callable returning them
                (the replica manager's :meth:`endpoints` — re-read every
                request so restarts propagate).  ``None`` entries mean
                the shard is down.
            host/port: router bind address (port 0 picks a free port).
            routes_path: persisted pinned-routes JSON (see
                :class:`RoutingTable`); None keeps them in memory.
            describe: optional replicas-table callable for ``/cluster``.
            upstream_timeout: per-request replica deadline (504 after).
            fanout_timeout: deadline for /health /metrics /datasets
                /jobs fanouts — a wedged replica is dropped from the
                merge after this long instead of stalling liveness
                checks (the manager restarts it independently).
            client_timeout: read/write deadline on the client side.
            retry_after: seconds advertised in 503 ``Retry-After``.
        """
        self._endpoints = endpoints if callable(endpoints) else (lambda: list(endpoints))
        self.n_shards = len(self._endpoints())
        if self.n_shards < 1:
            raise RouterError("router needs at least one replica endpoint")
        self.table = RoutingTable(self.n_shards, path=routes_path)
        self._describe = describe
        self.upstream_timeout = upstream_timeout
        self.fanout_timeout = fanout_timeout
        self.client_timeout = client_timeout
        self.retry_after = retry_after
        self.counters: Dict[str, int] = {}
        self._sel = selectors.DefaultSelector()
        self._sessions: set = set()
        self._running = False
        self._thread: Optional[threading.Thread] = None
        self._wake_r, self._wake_w = socket.socketpair()
        self._wake_r.setblocking(False)
        self._listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self._listener.bind((host, port))
        self._listener.listen(1024)
        self._listener.setblocking(False)
        self._sel.register(self._listener, selectors.EVENT_READ, "accept")
        self._sel.register(self._wake_r, selectors.EVENT_READ, "wake")

    # ------------------------------------------------------------------
    # Public surface
    # ------------------------------------------------------------------

    @property
    def address(self) -> Tuple[str, int]:
        return self._listener.getsockname()[:2]

    @property
    def url(self) -> str:
        host, port = self.address
        return f"http://{host}:{port}"

    def serve_forever(self) -> None:
        """Run the event loop until :meth:`shutdown` (blocking)."""
        self._running = True
        try:
            while self._running:
                events = self._sel.select(timeout=0.1)
                for key, mask in events:
                    if key.data == "accept":
                        self._accept()
                    elif key.data == "wake":
                        try:
                            self._wake_r.recv(4096)
                        except OSError:
                            pass
                    else:
                        try:
                            key.data.on_event(mask)
                        except Exception:  # noqa: BLE001 — isolate connections
                            self._count("router.connection_errors")
                            if isinstance(key.data, _Session):
                                key.data.close()
                            elif isinstance(key.data, _Upstream):
                                key.data.abort("internal error")
                now = time.monotonic()
                for session in list(self._sessions):
                    session.expire(now)
        finally:
            for session in list(self._sessions):
                session.close()
            self._sel.unregister(self._listener)
            self._sel.unregister(self._wake_r)
            self._listener.close()
            self._wake_r.close()
            self._wake_w.close()
            self._sel.close()

    def start(self) -> "Router":
        """Run :meth:`serve_forever` on a daemon thread."""
        self._thread = threading.Thread(
            target=self.serve_forever, name="repro-cluster-router", daemon=True
        )
        self._thread.start()
        return self

    def shutdown(self) -> None:
        """Stop the loop (from any thread) and join it if threaded."""
        self._running = False
        try:
            self._wake_w.send(b"x")
        except OSError:
            pass
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None

    # ------------------------------------------------------------------
    # Selector helpers (loop thread only)
    # ------------------------------------------------------------------

    def _register(self, sock: socket.socket, mask: int, data: object) -> None:
        self._sel.register(sock, mask, data)

    def _modify(self, sock: socket.socket, mask: int, data: object) -> None:
        self._sel.modify(sock, mask, data)

    def _unregister(self, sock: socket.socket) -> None:
        try:
            self._sel.unregister(sock)
        except (KeyError, ValueError):
            pass

    def _count(self, name: str, amount: int = 1) -> None:
        self.counters[name] = self.counters.get(name, 0) + amount

    def _accept(self) -> None:
        while True:
            try:
                sock, _addr = self._listener.accept()
            except (BlockingIOError, InterruptedError):
                return
            except OSError:
                return
            sock.setblocking(False)
            self._count("router.connections")
            self._sessions.add(_Session(self, sock))

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------

    def _route(self, session: _Session) -> None:
        request = session.parser
        try:
            self._plan(session, request)
        except _PlanError as exc:
            session.respond_json(exc.status, {"error": str(exc)})
        except Exception as exc:  # noqa: BLE001 — protocol boundary
            self._count("router.plan_errors")
            session.respond_json(500, {"error": f"{type(exc).__name__}: {exc}"})

    def _plan(self, session: _Session, request: _HTTPParser) -> None:
        method = request.method
        path, _, query = request.path.partition("?")
        parts = [p for p in path.split("/") if p]
        body_bytes = request.body or b""
        #: Proxied paths keep the original query string (``?top_k=`` on
        #: /discover and /rank must reach the replica verbatim).
        target = path + (f"?{query}" if query else "")

        if method == "GET" and parts == ["cluster"]:
            session.respond_json(200, self._cluster_payload())
            return
        if method == "GET" and parts in (["health"], ["metrics"], ["datasets"], ["jobs"]):
            self._fanout(session, method, "/" + parts[0], _MERGERS[parts[0]])
            return
        if method == "GET" and parts == ["multitable", "schemas"]:
            self._fanout(session, method, "/multitable/schemas", merge_schemas)
            return
        if (
            method == "GET"
            and len(parts) == 3
            and parts[:2] == ["multitable", "schemas"]
        ):
            shard = self.table.shard_of(parts[2])
            self._proxy(session, shard, method, target, body_bytes)
            return

        body = self._parse_body(body_bytes) if method == "POST" else {}
        if method == "POST" and parts == ["datasets"]:
            colocate = body.get("colocate_with")
            if colocate:
                # Land this upload on the named dataset's shard so a
                # schema over both tables can be registered there.
                shard = self.table.shard_of(str(colocate))
            else:
                shard = self.table.shard_of(upload_fingerprint(body))
            self._proxy(session, shard, method, target, body_bytes, hook="upload")
            return
        if method == "POST" and parts == ["multitable", "schemas"]:
            tables = body.get("tables")
            if not isinstance(tables, dict) or not tables:
                raise _PlanError(
                    400,
                    "schema registration needs a 'tables' object "
                    "(table name -> dataset name or fingerprint)",
                )
            shards = {
                str(ref): self.table.shard_of(str(ref)) for ref in tables.values()
            }
            if len(set(shards.values())) > 1:
                self._count("router.schema_colocation_409")
                raise _PlanError(
                    409,
                    "schema tables live on different shards "
                    f"({shards}); re-upload the tables with 'colocate_with' "
                    "so they share a replica",
                )
            shard = next(iter(shards.values()))
            self._proxy(session, shard, method, target, body_bytes, hook="schema")
            return
        if method == "POST" and parts == ["multitable", "discover"]:
            ref = body.get("schema") or body.get("dataset")
            if not ref:
                raise _PlanError(400, "multitable discovery needs a 'schema' reference")
            shard = self.table.shard_of(str(ref))
            idem = (request.headers or {}).get("idempotency-key")
            self._proxy(
                session,
                shard,
                method,
                target,
                body_bytes,
                hook="jobs",
                extra_headers={"Idempotency-Key": idem} if idem else None,
            )
            return
        if (
            method == "POST"
            and len(parts) == 3
            and parts[0] == "datasets"
            and parts[2] == "append"
        ):
            shard = self.table.shard_of(parts[1])
            self._proxy(session, shard, method, target, body_bytes, hook="append")
            return
        if method == "POST" and parts in (["discover"], ["rank"]):
            ref = body.get("dataset")
            if not ref:
                raise _PlanError(400, "job submission needs a 'dataset' reference")
            shard = self.table.shard_of(str(ref))
            # The client's Idempotency-Key must survive the proxy hop:
            # the replica dedups retried submissions through it.
            idem = (request.headers or {}).get("idempotency-key")
            self._proxy(
                session,
                shard,
                method,
                target,
                body_bytes,
                hook="jobs",
                extra_headers={"Idempotency-Key": idem} if idem else None,
            )
            return
        if parts and parts[0] == "jobs" and len(parts) in (2, 3):
            shard, local_id = self._parse_job_ref(parts[1])
            suffix = f"/{parts[2]}" if len(parts) == 3 else ""
            if (method, len(parts)) not in (("GET", 2), ("POST", 3)):
                raise _PlanError(404, f"no such endpoint: {method} {path}")
            if len(parts) == 3 and parts[2] != "cancel":
                raise _PlanError(404, f"no such endpoint: {method} {path}")
            self._proxy(
                session,
                shard,
                method,
                f"/jobs/{local_id}{suffix}" + (f"?{query}" if query else ""),
                body_bytes,
                hook="jobs",
            )
            return
        raise _PlanError(404, f"no such endpoint: {method} {path}")

    @staticmethod
    def _parse_body(body_bytes: bytes) -> dict:
        if not body_bytes:
            return {}
        try:
            payload = json.loads(body_bytes.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise _PlanError(400, f"invalid JSON body: {exc}") from None
        if not isinstance(payload, dict):
            raise _PlanError(400, "request body must be a JSON object")
        return payload

    def _parse_job_ref(self, ref: str) -> Tuple[int, str]:
        match = _JOB_REF.match(ref)
        if not match or not 0 <= int(match.group(1)) < self.n_shards:
            raise _PlanError(404, f"unknown job {ref!r} (cluster ids look like s0:job-1)")
        return int(match.group(1)), match.group(2)

    def _cluster_payload(self) -> dict:
        endpoints = list(self._endpoints())
        payload = {
            "shards": self.n_shards,
            "endpoints": endpoints,
            "healthy": sum(1 for url in endpoints if url),
            "routes": self.table.pinned(),
            "router": dict(sorted(self.counters.items())),
        }
        if self._describe is not None:
            payload["replicas"] = self._describe()
        return payload

    # ------------------------------------------------------------------
    # Proxy / fanout execution
    # ------------------------------------------------------------------

    def _shard_url(self, shard: int) -> Optional[str]:
        endpoints = self._endpoints()
        if shard >= len(endpoints):  # pragma: no cover — fixed shard count
            return None
        return endpoints[shard]

    def _proxy(
        self,
        session: _Session,
        shard: int,
        method: str,
        path: str,
        body: bytes,
        hook: Optional[str] = None,
        extra_headers: Optional[Dict[str, str]] = None,
    ) -> None:
        url = self._shard_url(shard)
        if url is None:
            self._count("router.shard_down_503")
            session.respond_json(
                503,
                {"error": f"shard {shard} is down; retry shortly"},
                retry_after=self.retry_after,
            )
            return
        self._count(f"router.routed.shard-{shard}")
        host = urllib.parse.urlsplit(url).netloc
        request = _build_request(method, path, host, body, extra_headers)

        def finish(upstreams: List[_Upstream]) -> None:
            self._finish_proxy(session, shard, hook, upstreams[0])

        session.launch([(shard, url, request)], finish)

    def _finish_proxy(
        self, session: _Session, shard: int, hook: Optional[str], upstream: _Upstream
    ) -> None:
        response = upstream.parser
        if upstream.failure is not None or response.status is None:
            timed_out = upstream.failure == "timed out"
            self._count("router.upstream_timeouts" if timed_out else "router.shard_down_503")
            status = 504 if timed_out else 503
            session.respond_json(
                status,
                {"error": f"shard {shard} unavailable: {upstream.failure}"},
                retry_after=None if timed_out else self.retry_after,
            )
            return
        body = response.body or b""
        content_type = (response.headers or {}).get("content-type", "application/json")
        if hook in ("upload", "append", "schema") and response.status in (200, 201):
            self._pin_from_response(shard, body)
        if hook == "jobs" and body:
            try:
                payload = json.loads(body.decode("utf-8"))
            except (UnicodeDecodeError, json.JSONDecodeError):
                payload = None
            if payload is not None:
                body = json.dumps(_prefix_job_ids(payload, shard)).encode("utf-8")
        session.respond_raw(response.status, body, content_type=content_type)

    def _pin_from_response(self, shard: int, body: bytes) -> None:
        """Pin the fingerprint (and name alias) an upload/append created."""
        try:
            payload = json.loads(body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError):
            return
        if not isinstance(payload, dict):
            return
        fingerprint = payload.get("fingerprint")
        if isinstance(fingerprint, str):
            self.table.pin(fingerprint, shard)
        name = payload.get("name")
        if isinstance(name, str) and name:
            self.table.pin(name, shard)

    def _fanout(
        self,
        session: _Session,
        method: str,
        path: str,
        merger: Callable[[Sequence[Optional[dict]]], dict],
    ) -> None:
        endpoints = list(self._endpoints())
        calls: List[Tuple[int, str, bytes]] = []
        for shard, url in enumerate(endpoints):
            if url is None:
                continue
            host = urllib.parse.urlsplit(url).netloc
            calls.append((shard, url, _build_request(method, path, host, None)))
        self._count("router.fanouts")
        session.deadline = time.monotonic() + self.fanout_timeout
        if not calls:
            session.respond_json(
                503,
                {"error": "no replicas are up"},
                retry_after=self.retry_after,
            )
            return

        def finish(upstreams: List[_Upstream]) -> None:
            per_shard: List[Optional[dict]] = [None] * len(endpoints)
            for upstream in upstreams:
                response = upstream.parser
                if upstream.failure is not None or response.status != 200:
                    continue
                try:
                    per_shard[upstream.shard] = json.loads(
                        (response.body or b"{}").decode("utf-8")
                    )
                except (UnicodeDecodeError, json.JSONDecodeError):
                    continue
            session.respond_json(200, merger(per_shard))

        session.launch(calls, finish)
