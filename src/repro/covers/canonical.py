"""Cover transformations: left-reduction, non-redundancy, canonical covers.

A *canonical cover* (Maier [11]) is a left-reduced, non-redundant cover
whose FDs have pairwise distinct LHSs.  The paper's Table III computes
canonical covers from the left-reduced covers that discovery algorithms
emit and reports ~50 % average savings; :func:`canonical_cover` is that
computation, with a timing wrapper used by the benchmark harness.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, Iterable, Tuple

from ..relational import attrset
from ..relational.attrset import AttrSet
from ..relational.fd import FD, FDSet
from .implication import ImplicationEngine


def left_reduce(fds: Iterable[FD]) -> FDSet:
    """Remove extraneous LHS attributes from every FD.

    Works on the singleton-RHS expansion: for ``X -> A``, any ``B ∈ X``
    with ``A ∈ (X − B)⁺`` is extraneous.  Discovery outputs are already
    left-reduced; this is for covers arriving from elsewhere.
    """
    singletons = [part for fd in fds for part in fd.split()]
    engine = ImplicationEngine(singletons)
    reduced = FDSet()
    for fd in singletons:
        lhs = fd.lhs
        for attr in attrset.to_list(lhs):
            candidate = attrset.remove(lhs, attr)
            reached = engine.closure(candidate, until=fd.rhs)
            if attrset.is_subset(fd.rhs, reached):
                lhs = candidate
        reduced.add(FD(lhs, fd.rhs))
    return reduced


def is_left_reduced(fds: Iterable[FD]) -> bool:
    """Is every FD's LHS minimal w.r.t. the whole set?"""
    fd_list = list(fds)
    engine = ImplicationEngine(fd_list)
    for fd in fd_list:
        for attr in attrset.iter_attrs(fd.lhs):
            candidate = attrset.remove(fd.lhs, attr)
            reached = engine.closure(candidate, until=fd.rhs)
            if attrset.is_subset(fd.rhs, reached):
                return False
    return True


def non_redundant_cover(fds: Iterable[FD]) -> FDSet:
    """Drop every FD implied by the remaining ones.

    Operates on singleton-RHS FDs, removing greedily in a
    deterministic order (larger LHS first, so specific FDs fall to
    general ones).  The result depends on the order but is always a
    non-redundant cover.
    """
    singletons = sorted(
        {part for fd in fds for part in fd.split()},
        key=lambda fd: (-fd.lhs_size, fd.lhs, fd.rhs),
    )
    engine = ImplicationEngine(singletons)
    for index, fd in enumerate(singletons):
        engine.remove(index)
        if not engine.implies(fd):
            engine.restore(index)
    return FDSet(singletons[i] for i in engine.active_indices())


def is_non_redundant(fds: Iterable[FD]) -> bool:
    """Is no FD implied by the others?"""
    fd_list = list(fds)
    engine = ImplicationEngine(fd_list)
    for index, fd in enumerate(fd_list):
        if engine.implies(fd, exclude=index):
            return False
    return True


def merge_same_lhs(fds: Iterable[FD]) -> FDSet:
    """Union the RHSs of FDs sharing a LHS (unique-LHS normal form)."""
    merged: Dict[AttrSet, AttrSet] = {}
    for fd in fds:
        merged[fd.lhs] = merged.get(fd.lhs, attrset.EMPTY) | fd.rhs
    return FDSet(FD(lhs, rhs) for lhs, rhs in merged.items())


def canonical_cover(fds: Iterable[FD], assume_left_reduced: bool = True) -> FDSet:
    """Compute a canonical cover (left-reduced, non-redundant, unique LHS).

    Args:
        fds: any cover; discovery outputs may set
            ``assume_left_reduced`` to skip the (already satisfied)
            LHS-minimization pass, matching how the paper times the
            Table III computation from left-reduced covers.
    """
    current: Iterable[FD] = fds
    if not assume_left_reduced:
        current = left_reduce(current)
    return merge_same_lhs(non_redundant_cover(current))


@dataclass(frozen=True)
class CoverComparison:
    """The Table III row for one data set."""

    left_reduced_count: int
    left_reduced_occurrences: int
    canonical_count: int
    canonical_occurrences: int
    seconds: float

    @property
    def size_percent(self) -> float:
        """%Size — |Can| / |L-r| in percent."""
        if self.left_reduced_count == 0:
            return 100.0
        return 100.0 * self.canonical_count / self.left_reduced_count

    @property
    def occurrence_percent(self) -> float:
        """%Card — ||Can|| / ||L-r|| in percent."""
        if self.left_reduced_occurrences == 0:
            return 100.0
        return 100.0 * self.canonical_occurrences / self.left_reduced_occurrences


def compare_covers(left_reduced: FDSet) -> Tuple[FDSet, CoverComparison]:
    """Canonical cover plus the paper's Table III metrics (timed)."""
    singleton_input = left_reduced.split()
    start = time.perf_counter()
    canonical = canonical_cover(left_reduced)
    elapsed = time.perf_counter() - start
    comparison = CoverComparison(
        left_reduced_count=len(singleton_input),
        left_reduced_occurrences=singleton_input.attribute_occurrences,
        canonical_count=len(canonical),
        canonical_occurrences=canonical.attribute_occurrences,
        seconds=elapsed,
    )
    return canonical, comparison
