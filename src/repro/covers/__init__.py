"""FD covers: implication, left-reduction, canonical covers."""

from .canonical import (
    CoverComparison,
    canonical_cover,
    compare_covers,
    is_left_reduced,
    is_non_redundant,
    left_reduce,
    merge_same_lhs,
    non_redundant_cover,
)
from .implication import ImplicationEngine, closure, equivalent, implies

__all__ = [
    "CoverComparison",
    "ImplicationEngine",
    "canonical_cover",
    "closure",
    "compare_covers",
    "equivalent",
    "implies",
    "is_left_reduced",
    "is_non_redundant",
    "left_reduce",
    "merge_same_lhs",
    "non_redundant_cover",
]
