"""FD implication via attribute-set closures.

The closure of ``X`` under an FD set Σ is the largest ``X⁺`` with
``Σ ⊨ X → X⁺``; Σ implies ``X → Y`` iff ``Y ⊆ X⁺``.  The
:class:`ImplicationEngine` implements the counter (countdown) algorithm
of Beeri & Bernstein with two engineering twists that make redundancy
elimination over covers with tens of thousands of FDs affordable:

* the per-FD LHS countdown runs vectorized — one
  ``np.subtract.at`` per attribute entering the closure — instead of a
  Python loop over every FD mentioning the attribute, and
* the countdown buffer is rolled back after each closure (only touched
  entries), so a closure costs what it visits, not ``O(|Σ|)``.

Removal/exclusion of FDs uses a large counter offset: a blocked FD's
countdown can never reach zero, so it never fires.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence

import numpy as np

from ..relational import attrset
from ..relational.attrset import AttrSet
from ..relational.fd import FD

#: Counter offset that keeps an FD from ever firing.
_BLOCKED = 1 << 30


class ImplicationEngine:
    """Closure computation over a fixed FD list with dynamic removals."""

    def __init__(self, fds: Sequence[FD]):
        self.fds: List[FD] = list(fds)
        n = len(self.fds)
        #: RHS masks, indexable by FD position.
        self._rhs: List[AttrSet] = [fd.rhs for fd in self.fds]
        #: Template countdown = |LHS| per FD (plus _BLOCKED when removed).
        self._template = np.array(
            [fd.lhs_size for fd in self.fds], dtype=np.int64
        )
        by_attr: Dict[int, List[int]] = {}
        self._empty_lhs: List[int] = []
        for index, fd in enumerate(self.fds):
            if fd.lhs == attrset.EMPTY:
                self._empty_lhs.append(index)
            for attr in attrset.iter_attrs(fd.lhs):
                by_attr.setdefault(attr, []).append(index)
        #: attr -> np array of FD indices whose LHS contains attr.
        self._by_attr: Dict[int, np.ndarray] = {
            attr: np.array(indices, dtype=np.int64)
            for attr, indices in by_attr.items()
        }
        self._removed: set = set()
        #: Working buffer, rolled back to the template after each closure.
        self._counts = self._template.copy()

    def remove(self, index: int) -> None:
        """Permanently exclude the FD at ``index`` from future closures."""
        if index not in self._removed:
            self._removed.add(index)
            self._template[index] += _BLOCKED
            self._counts[index] += _BLOCKED

    def restore(self, index: int) -> None:
        """Undo a :meth:`remove`."""
        if index in self._removed:
            self._removed.discard(index)
            self._template[index] -= _BLOCKED
            self._counts[index] -= _BLOCKED

    def active_indices(self) -> List[int]:
        """Indices of FDs not removed, in input order."""
        return [i for i in range(len(self.fds)) if i not in self._removed]

    def closure(
        self,
        attrs: AttrSet,
        exclude: Optional[int] = None,
        until: Optional[AttrSet] = None,
    ) -> AttrSet:
        """``attrs⁺`` under the active FDs, optionally excluding one more.

        ``until`` enables early exit: the computation stops as soon as
        the partial closure contains that mask.  Redundancy elimination
        over FD-rich covers lives on this — most FDs are redundant and
        their RHS is reached after a tiny fraction of the full closure.
        """
        counts = self._counts
        if exclude is not None:
            counts[exclude] += _BLOCKED
        touched: List[np.ndarray] = []
        result = attrs
        rhs_list = self._rhs
        queue: List[int] = list(attrset.iter_attrs(attrs))
        ready: List[int] = [
            index
            for index in self._empty_lhs
            if index not in self._removed and index != exclude
        ]

        done = until is not None and attrset.is_subset(until, result)
        while not done and (queue or ready):
            while ready:
                index = ready.pop()
                new = rhs_list[index] & ~result
                if new:
                    result |= new
                    queue.extend(attrset.iter_attrs(new))
                    if until is not None and until & ~result == 0:
                        done = True
                        break
            if done or not queue:
                break
            attr = queue.pop()
            indices = self._by_attr.get(attr)
            if indices is None:
                continue
            # each attr's index list is duplicate-free and each attr is
            # dequeued at most once per closure, so plain fancy-indexed
            # decrement is safe (and much faster than np.subtract.at)
            counts[indices] -= 1
            touched.append(indices)
            fired = indices[counts[indices] == 0]
            if len(fired):
                ready.extend(fired.tolist())

        # undo the temporary exclusion first, then roll back touched
        # counters to the template (which overwrites the exclusion slot
        # correctly whether or not it was decremented during the run)
        if exclude is not None:
            counts[exclude] -= _BLOCKED
        template = self._template
        for indices in touched:
            counts[indices] = template[indices]
        return result

    def implies(self, fd: FD, exclude: Optional[int] = None) -> bool:
        """Does the active FD set imply ``fd``? (early-exit closure)"""
        return attrset.is_subset(
            fd.rhs, self.closure(fd.lhs, exclude, until=fd.rhs)
        )


def closure(attrs: AttrSet, fds: Iterable[FD]) -> AttrSet:
    """One-shot closure (builds a throwaway engine)."""
    return ImplicationEngine(list(fds)).closure(attrs)


def implies(fds: Iterable[FD], fd: FD) -> bool:
    """One-shot implication test ``Σ ⊨ fd``."""
    return ImplicationEngine(list(fds)).implies(fd)


def equivalent(left: Iterable[FD], right: Iterable[FD]) -> bool:
    """Are the two FD sets covers of each other?"""
    left_list, right_list = list(left), list(right)
    left_engine = ImplicationEngine(left_list)
    right_engine = ImplicationEngine(right_list)
    return all(left_engine.implies(fd) for fd in right_list) and all(
        right_engine.implies(fd) for fd in left_list
    )
