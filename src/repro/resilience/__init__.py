"""repro.resilience — guardrails, anytime results, fault injection.

Three pillars (see ``docs/resilience.md``):

* **Guardrails** — :class:`RunBudget` (wall clock + partition-memory
  bytes + optional process-RSS ceiling) enforced by a
  :class:`MemorySentinel` that escalates through a degradation ladder
  before aborting with :class:`BudgetExceeded`;
* **Anytime partial results** — algorithms constructed with
  ``on_limit="partial"`` return a
  :class:`~repro.core.result.DiscoveryResult` with ``completed=False``,
  the sound subset of the cover, and the ``unverified`` remainder
  instead of raising;
* **Fault injection** — :mod:`repro.resilience.faults`, a registry of
  named failure points chaos tests and the CI chaos leg arm.
"""

from .budget import (
    BudgetExceeded,
    DegradationStage,
    ENV_ARENA_BUDGET,
    ENV_MEMORY_BUDGET,
    ENV_RSS_LIMIT,
    MemorySentinel,
    RunBudget,
    arena_budget_from_env,
    parse_bytes,
    process_rss_bytes,
)
from . import faults

__all__ = [
    "BudgetExceeded",
    "DegradationStage",
    "ENV_ARENA_BUDGET",
    "ENV_MEMORY_BUDGET",
    "ENV_RSS_LIMIT",
    "MemorySentinel",
    "RunBudget",
    "arena_budget_from_env",
    "faults",
    "parse_bytes",
    "process_rss_bytes",
]
