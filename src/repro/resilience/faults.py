"""Named fault-injection points for chaos testing the discovery stack.

This generalizes the original ad-hoc ``REPRO_FD_FAULT_INJECT`` worker
crash hook into a registry of *named failure points*.  Production code
never fails here on its own: each point is a no-op until a test (or a
chaos CI leg) arms it, after which the instrumented site raises the
failure the production code claims to survive.

Fault points
------------

====================== ====================================================
``worker.crash``           a pool worker hard-exits before doing any work
``shm.attach``             attaching a shared-memory segment fails
``partition.build.memory`` ``MemoryError`` while building a partition
``partition.refine.memory`` ``MemoryError`` while refining a partition
``csv.corrupt_row``        a CSV record loses its last field while parsed
``ddm.stale``              a dynamic DDM lookup is forced stale
``limit.deadline``         a deadline poll trips deterministically
``pool.broken``            the process pool reports itself broken mid-run
``arena.attach``           attaching a dataset-arena segment fails
``journal.torn_write``     a WAL append crashes after half the frame
``journal.replay``         WAL replay aborts mid-file (treated as torn)
``scheduler.recover``      scheduler recovery crashes mid-replay
====================== ====================================================

Arming
------

In-process (same interpreter, inherited by fork-started workers)::

    faults.activate("ddm.stale")                 # every firing
    faults.activate("limit.deadline", after=30)  # skip 30 calls, then fire
    faults.activate("worker.crash", times=1)     # fire once, then disarm

Across processes, via the ``REPRO_FD_FAULTS`` environment variable — a
comma-separated list of entries, each either a bare point name (always
fires) or ``name:once=<token-path>`` (fires exactly once *across all
processes*: whichever process unlinks the token file first wins)::

    REPRO_FD_FAULTS="ddm.stale,worker.crash:once=/tmp/tok" pytest ...

:func:`arm_once` creates the token file and appends the entry for you.
The legacy ``REPRO_FD_FAULT_INJECT=crash`` spelling still arms
``worker.crash``.
"""

from __future__ import annotations

import os
import tempfile
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

#: Environment variable holding comma-separated armed fault entries.
ENV_FAULTS = "REPRO_FD_FAULTS"

#: Legacy spelling (pre-registry): ``crash`` arms ``worker.crash``.
ENV_FAULT_INJECT_LEGACY = "REPRO_FD_FAULT_INJECT"

#: Every failure point the stack instruments.
FAULT_POINTS = frozenset(
    {
        "worker.crash",
        "shm.attach",
        "partition.build.memory",
        "partition.refine.memory",
        "csv.corrupt_row",
        "ddm.stale",
        "limit.deadline",
        "pool.broken",
        "arena.attach",
        "journal.torn_write",
        "journal.replay",
        "scheduler.recover",
    }
)


class FaultInjected(RuntimeError):
    """Default exception raised by a fired fault point."""

    def __init__(self, point: str):
        super().__init__(f"injected fault at {point!r}")
        self.point = point


@dataclass
class _Activation:
    """In-process arming state for one fault point."""

    skip: int = 0  # calls to ignore before firing
    remaining: Optional[int] = None  # firings left (None = unlimited)


_activations: Dict[str, _Activation] = {}


def _require_known(name: str) -> None:
    if name not in FAULT_POINTS:
        raise ValueError(
            f"unknown fault point {name!r}; choose from {sorted(FAULT_POINTS)}"
        )


def activate(name: str, times: Optional[int] = None, after: int = 0) -> None:
    """Arm ``name`` in this process.

    Args:
        name: a member of :data:`FAULT_POINTS`.
        times: fire at most this many times, then disarm (None = every
            call fires).
        after: skip this many :func:`should_fire` calls before the
            first firing — lets tests trip a limit mid-run
            deterministically instead of racing wall-clock time.
    """
    _require_known(name)
    if times is not None and times <= 0:
        raise ValueError("times must be positive (or None for unlimited)")
    if after < 0:
        raise ValueError("after must be >= 0")
    _activations[name] = _Activation(skip=after, remaining=times)


def deactivate(name: str) -> None:
    """Disarm an in-process activation (no-op if not armed)."""
    _activations.pop(name, None)


def reset() -> None:
    """Disarm every in-process activation (environment entries remain)."""
    _activations.clear()


def armed() -> bool:
    """Cheap guard: could *any* fault point fire right now?

    Hot paths call this before :func:`should_fire` so an unarmed
    process pays two dict probes per poll, nothing more.
    """
    return (
        bool(_activations)
        or ENV_FAULTS in os.environ
        or ENV_FAULT_INJECT_LEGACY in os.environ
    )


def is_active(name: str) -> bool:
    """True when ``name`` is armed in-process or via the environment."""
    if name in _activations:
        return True
    if any(entry.partition(":")[0] == name for entry in _env_entries()):
        return True
    return (
        name == "worker.crash"
        and os.environ.get(ENV_FAULT_INJECT_LEGACY) == "crash"
    )


def _env_entries() -> List[str]:
    raw = os.environ.get(ENV_FAULTS, "")
    return [entry for entry in (part.strip() for part in raw.split(",")) if entry]


def should_fire(name: str) -> bool:
    """Consume one firing opportunity for ``name``.

    Checks the in-process registry first (``after`` skips and ``times``
    budgets are decremented here), then the environment: a bare entry
    always fires; a ``name:once=<path>`` entry fires for whichever
    process unlinks the token file first.
    """
    activation = _activations.get(name)
    if activation is not None:
        if activation.skip > 0:
            activation.skip -= 1
        elif activation.remaining is None:
            return True
        else:
            activation.remaining -= 1
            if activation.remaining == 0:
                del _activations[name]
            return True
    for entry in _env_entries():
        point, _, qualifier = entry.partition(":")
        if point != name:
            continue
        if not qualifier:
            return True
        kind, _, arg = qualifier.partition("=")
        if kind == "once" and arg:
            try:
                os.unlink(arg)
                return True
            except OSError:
                continue  # token already claimed by another process
    if name == "worker.crash" and os.environ.get(ENV_FAULT_INJECT_LEGACY) == "crash":
        return True
    return False


def fire(name: str, make_exc: Optional[Callable[[], BaseException]] = None) -> None:
    """Raise at an instrumented site iff ``name`` is armed and due.

    The fast path (nothing armed anywhere) is two dict probes, so this
    is safe to place inside partition-construction hot loops.
    """
    if not armed():
        return
    if should_fire(name):
        raise make_exc() if make_exc is not None else FaultInjected(name)


def corrupt_csv_row(record: List[str]) -> List[str]:
    """The ``csv.corrupt_row`` point: drop the record's last field."""
    if armed() and record and should_fire("csv.corrupt_row"):
        return record[:-1]
    return record


def arm_once(name: str) -> str:
    """Arm ``name`` for exactly one firing across *all* processes.

    Creates a token file and appends a ``name:once=<path>`` entry to
    ``REPRO_FD_FAULTS``; returns the token path.  Call :func:`disarm`
    (or restore the environment) when done.
    """
    _require_known(name)
    handle, path = tempfile.mkstemp(prefix=f"repro-fault-{name.replace('.', '-')}-")
    os.close(handle)
    entry = f"{name}:once={path}"
    existing = os.environ.get(ENV_FAULTS)
    os.environ[ENV_FAULTS] = f"{existing},{entry}" if existing else entry
    return path


def disarm(name: str) -> None:
    """Remove ``name`` from the environment and the in-process registry."""
    deactivate(name)
    kept = []
    for entry in _env_entries():
        point, _, qualifier = entry.partition(":")
        if point != name:
            kept.append(entry)
            continue
        kind, _, arg = qualifier.partition("=")
        if kind == "once" and arg:
            try:
                os.unlink(arg)
            except OSError:
                pass
    if kept:
        os.environ[ENV_FAULTS] = ",".join(kept)
    else:
        os.environ.pop(ENV_FAULTS, None)
