"""Resource guardrails: run budgets and the memory-pressure sentinel.

The paper's efficiency–inefficiency ratio (Sec. V) is a policy for
*spending memory wisely*; this module is the enforcement side.  A
:class:`RunBudget` bundles the wall-clock limit the stack already had
with two new ceilings — a partition-memory byte budget and an optional
process-RSS ceiling.  A :class:`MemorySentinel`, polled at the same
sites as the deadline, reacts to pressure by walking an ordered
*degradation ladder* installed by the algorithm (evict refined
partitions, pin the DDM to no-refinement mode, shrink the worker pool)
— each stage emitting a ``degradation`` telemetry event — before the
last resort of aborting with :class:`BudgetExceeded`.

The sentinel never aborts a run whose usage has fallen to the
irreducible baseline recorded at install time (the universal plus
singleton partitions an algorithm cannot run without): once the ladder
is exhausted it only raises if usage grows beyond *both* the budget and
that baseline.  This is what makes a constrained run degrade to the
slower, memory-lean strategy instead of dying — and, because
refinement is a pure performance optimization, return a byte-identical
cover.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Callable, List, Optional, Union

from ..telemetry import current_tracer

#: Default partition-memory budget (bytes; suffixes ``k``/``m``/``g`` ok).
ENV_MEMORY_BUDGET = "REPRO_FD_MEMORY_BUDGET"

#: Default process-RSS ceiling (same syntax).
ENV_RSS_LIMIT = "REPRO_FD_RSS_LIMIT"

#: Byte budget for the host-wide dataset arena (see :mod:`repro.memplane`).
ENV_ARENA_BUDGET = "REPRO_FD_ARENA_BUDGET"

_UNITS = {
    "": 1,
    "b": 1,
    "k": 1024,
    "kb": 1024,
    "m": 1024 ** 2,
    "mb": 1024 ** 2,
    "g": 1024 ** 3,
    "gb": 1024 ** 3,
}


def parse_bytes(value: Union[int, str]) -> int:
    """Parse a byte count: plain integers or ``"64m"``-style suffixes."""
    if isinstance(value, int):
        result = value
    else:
        text = value.strip().lower()
        suffix = text.lstrip("0123456789.")
        number = text[: len(text) - len(suffix)] if suffix else text
        try:
            unit = _UNITS[suffix.strip()]
            result = int(float(number) * unit)
        except (KeyError, ValueError):
            raise ValueError(
                f"cannot parse byte count {value!r} (use e.g. 1048576, '4m', '1g')"
            ) from None
    if result <= 0:
        raise ValueError(f"byte budget must be positive, got {value!r}")
    return result


def arena_budget_from_env() -> Optional[int]:
    """The dataset-arena byte budget from ``REPRO_FD_ARENA_BUDGET``.

    Returns None (unlimited) when unset; malformed values raise the
    same :class:`ValueError` as :func:`parse_bytes` so a bad deployment
    fails loudly at arena construction, not mid-eviction.
    """
    raw = os.environ.get(ENV_ARENA_BUDGET)
    if raw is None or not raw.strip():
        return None
    return parse_bytes(raw)


class BudgetExceeded(Exception):
    """A resource budget was exhausted after all degradation stages.

    ``resource`` is ``"memory"`` (partition-memory budget) or ``"rss"``
    (process ceiling); the analogous wall-clock failure stays the
    pre-existing :class:`~repro.core.base.TimeLimitExceeded`.
    """

    def __init__(self, algorithm: str, resource: str, limit: int, usage: int):
        super().__init__(
            f"{algorithm} exceeded its {resource} budget: "
            f"{usage} > {limit} bytes after all degradation stages"
        )
        self.algorithm = algorithm
        self.resource = resource
        self.limit = limit
        self.usage = usage


@dataclass(frozen=True)
class RunBudget:
    """Resource limits for one discovery run (all optional)."""

    time_limit: Optional[float] = None
    memory_limit_bytes: Optional[int] = None
    rss_limit_bytes: Optional[int] = None

    @classmethod
    def from_env(cls, time_limit: Optional[float] = None) -> "RunBudget":
        """A budget from ``REPRO_FD_MEMORY_BUDGET``/``REPRO_FD_RSS_LIMIT``.

        The chaos CI leg uses these to put the whole test suite under a
        tight budget without touching call sites.
        """
        memory = os.environ.get(ENV_MEMORY_BUDGET)
        rss = os.environ.get(ENV_RSS_LIMIT)
        return cls(
            time_limit=time_limit,
            memory_limit_bytes=parse_bytes(memory) if memory else None,
            rss_limit_bytes=parse_bytes(rss) if rss else None,
        )

    @property
    def limits_memory(self) -> bool:
        """True when either byte ceiling is set."""
        return self.memory_limit_bytes is not None or self.rss_limit_bytes is not None


def process_rss_bytes() -> Optional[int]:
    """Current process resident set size, or None when unmeasurable.

    Reads ``/proc/self/statm`` (Linux); falls back to ``ru_maxrss``
    (peak, in kB on Linux) elsewhere.  Both are approximations — the
    RSS ceiling is a coarse safety net, not precise accounting.
    """
    try:
        with open("/proc/self/statm", "r", encoding="ascii") as handle:
            pages = int(handle.read().split()[1])
        return pages * os.sysconf("SC_PAGE_SIZE")
    except Exception:
        pass
    try:
        import resource

        return resource.getrusage(resource.RUSAGE_SELF).ru_maxrss * 1024
    except Exception:
        return None


class DegradationStage:
    """One rung of the ladder: a name plus an action returning bytes freed."""

    __slots__ = ("name", "action", "applied")

    def __init__(self, name: str, action: Callable[[], Optional[int]]):
        self.name = name
        self.action = action
        self.applied = False

    def apply(self) -> int:
        self.applied = True
        freed = self.action()
        return int(freed or 0)


class MemorySentinel:
    """Escalating memory guard polled alongside the deadline.

    ``probe`` reports the bytes governed by the budget (typically the
    partition store's ``memory_bytes``); ``floor_bytes`` is the
    irreducible baseline below which no stage can shrink usage.  Checks
    are strided so the probe — a sum over every live partition — stays
    off the per-candidate hot path.
    """

    #: Probe every Nth :meth:`check` call (polls sit in inner loops).
    CHECK_STRIDE = 16

    def __init__(
        self,
        budget: RunBudget,
        probe: Callable[[], int],
        algorithm: str,
        floor_bytes: int = 0,
        rss_probe: Callable[[], Optional[int]] = process_rss_bytes,
    ):
        self.budget = budget
        self.probe = probe
        self.algorithm = algorithm
        self.floor_bytes = floor_bytes
        self.rss_probe = rss_probe
        self.stages: List[DegradationStage] = []
        #: Stage names in the order they fired (telemetry mirror).
        self.fired: List[str] = []
        self._tick = 0

    def add_stage(self, name: str, action: Callable[[], Optional[int]]) -> None:
        """Append a rung to the degradation ladder (applied in order)."""
        self.stages.append(DegradationStage(name, action))

    @property
    def exhausted(self) -> bool:
        """True once every stage has been applied."""
        return all(stage.applied for stage in self.stages)

    def _next_stage(self) -> Optional[DegradationStage]:
        for stage in self.stages:
            if not stage.applied:
                return stage
        return None

    def check(self, force: bool = False) -> None:
        """Poll the budget; escalate (and eventually raise) on pressure."""
        self._tick += 1
        if not force and self._tick % self.CHECK_STRIDE:
            return
        self._enforce()

    def _apply_next(self, resource: str, usage: int, limit: int) -> bool:
        stage = self._next_stage()
        if stage is None:
            return False
        freed = stage.apply()
        self.fired.append(stage.name)
        current_tracer().event(
            "degradation",
            stage=stage.name,
            resource=resource,
            usage=usage,
            limit=limit,
            freed=freed,
        )
        return True

    def _enforce(self) -> None:
        limit = self.budget.memory_limit_bytes
        if limit is not None:
            usage = self.probe()
            while usage > limit:
                if not self._apply_next("memory", usage, limit):
                    # Ladder exhausted.  Tolerate usage at (or below) the
                    # irreducible baseline; abort only beyond both bars.
                    if usage > max(limit, self.floor_bytes):
                        raise BudgetExceeded(self.algorithm, "memory", limit, usage)
                    break
                usage = self.probe()
        rss_limit = self.budget.rss_limit_bytes
        if rss_limit is not None:
            rss = self.rss_probe()
            while rss is not None and rss > rss_limit:
                if not self._apply_next("rss", rss, rss_limit):
                    # The RSS ceiling is hard: no baseline tolerance.
                    raise BudgetExceeded(self.algorithm, "rss", rss_limit, rss)
                rss = self.rss_probe()
