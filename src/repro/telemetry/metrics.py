"""Counters, gauges and histograms for discovery-run accounting.

Metrics complement spans: a span answers "where did the time go", a
metric answers "how much work of kind X happened".  All instruments are
plain in-process objects — no background threads, no sampling — so a
:class:`MetricsRegistry` costs nothing until something increments it.

The no-op twins (:data:`NOOP_COUNTER` & co.) share the instruments'
interface but discard every update.  Instrumented call sites fetch
their instruments once (usually at construction time) from whatever
tracer is current; with tracing disabled they end up holding the shared
no-op singletons and each update is a single discarded method call.
"""

from __future__ import annotations

from typing import Dict, List, Optional


class Counter:
    """A monotonically increasing count of events."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        """Add ``amount`` (default 1) to the counter."""
        self.value += amount


class Gauge:
    """A point-in-time value (e.g. bytes currently held)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value: float = 0.0

    def set(self, value: float) -> None:
        """Record the current value."""
        self.value = value

    def set_max(self, value: float) -> None:
        """Record ``value`` only if it exceeds the current one."""
        if value > self.value:
            self.value = value


class Histogram:
    """A distribution of observed values with summary statistics."""

    __slots__ = ("name", "count", "total", "min", "max", "_values")

    def __init__(self, name: str):
        self.name = name
        self.count = 0
        self.total = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None
        self._values: List[float] = []

    def observe(self, value: float) -> None:
        """Record one observation."""
        self.count += 1
        self.total += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value
        self._values.append(value)

    @property
    def mean(self) -> float:
        """Average of the observations (0.0 when empty)."""
        if self.count == 0:
            return 0.0
        return self.total / self.count

    def percentile(self, q: float) -> float:
        """The ``q``-quantile (0 <= q <= 1) by nearest-rank; 0.0 if empty."""
        if not self._values:
            return 0.0
        ordered = sorted(self._values)
        rank = min(len(ordered) - 1, max(0, int(round(q * (len(ordered) - 1)))))
        return ordered[rank]

    def as_dict(self) -> Dict[str, float]:
        """Summary statistics as a JSON-friendly dict."""
        return {
            "count": self.count,
            "sum": self.total,
            "min": self.min if self.min is not None else 0.0,
            "max": self.max if self.max is not None else 0.0,
            "mean": self.mean,
        }


class MetricsRegistry:
    """Get-or-create store for named instruments."""

    __slots__ = ("counters", "gauges", "histograms")

    def __init__(self):
        self.counters: Dict[str, Counter] = {}
        self.gauges: Dict[str, Gauge] = {}
        self.histograms: Dict[str, Histogram] = {}

    def counter(self, name: str) -> Counter:
        """The counter registered under ``name`` (created on first use)."""
        instrument = self.counters.get(name)
        if instrument is None:
            instrument = self.counters[name] = Counter(name)
        return instrument

    def gauge(self, name: str) -> Gauge:
        """The gauge registered under ``name`` (created on first use)."""
        instrument = self.gauges.get(name)
        if instrument is None:
            instrument = self.gauges[name] = Gauge(name)
        return instrument

    def histogram(self, name: str) -> Histogram:
        """The histogram registered under ``name`` (created on first use)."""
        instrument = self.histograms.get(name)
        if instrument is None:
            instrument = self.histograms[name] = Histogram(name)
        return instrument

    def as_dict(self) -> Dict[str, Dict[str, object]]:
        """All instruments as a JSON-friendly nested dict."""
        return {
            "counters": {name: c.value for name, c in sorted(self.counters.items())},
            "gauges": {name: g.value for name, g in sorted(self.gauges.items())},
            "histograms": {
                name: h.as_dict() for name, h in sorted(self.histograms.items())
            },
        }


class _NoopCounter:
    """Counter twin whose updates are discarded."""

    __slots__ = ()
    name = "noop"
    value = 0

    def inc(self, amount: int = 1) -> None:
        pass


class _NoopGauge:
    """Gauge twin whose updates are discarded."""

    __slots__ = ()
    name = "noop"
    value = 0.0

    def set(self, value: float) -> None:
        pass

    def set_max(self, value: float) -> None:
        pass


class _NoopHistogram:
    """Histogram twin whose updates are discarded."""

    __slots__ = ()
    name = "noop"
    count = 0
    total = 0.0
    min = None
    max = None
    mean = 0.0

    def observe(self, value: float) -> None:
        pass

    def percentile(self, q: float) -> float:
        return 0.0

    def as_dict(self) -> Dict[str, float]:
        return {"count": 0, "sum": 0.0, "min": 0.0, "max": 0.0, "mean": 0.0}


NOOP_COUNTER = _NoopCounter()
NOOP_GAUGE = _NoopGauge()
NOOP_HISTOGRAM = _NoopHistogram()


class NoopMetricsRegistry:
    """Registry twin handing out the shared no-op instruments."""

    __slots__ = ()
    counters: Dict[str, Counter] = {}
    gauges: Dict[str, Gauge] = {}
    histograms: Dict[str, Histogram] = {}

    def counter(self, name: str) -> _NoopCounter:
        return NOOP_COUNTER

    def gauge(self, name: str) -> _NoopGauge:
        return NOOP_GAUGE

    def histogram(self, name: str) -> _NoopHistogram:
        return NOOP_HISTOGRAM

    def as_dict(self) -> Dict[str, Dict[str, object]]:
        return {"counters": {}, "gauges": {}, "histograms": {}}


NOOP_METRICS = NoopMetricsRegistry()
