"""Trace exporters: human-readable tree, JSONL event stream, flat summary.

Three views of the same :class:`~repro.telemetry.spans.Tracer`:

* :func:`format_trace` — an indented phase tree with millisecond
  timings, span attributes and point events, for terminals;
* :func:`write_trace_jsonl` / :func:`read_trace_jsonl` — one JSON
  object per line (spans depth-first, then events, then metrics), the
  machine-readable stream behind ``--trace-out``;
* :func:`trace_summary` — a flat JSON-friendly dict aggregating span
  durations by name plus all metrics, the shape the benchmark harness
  embeds in its ``BENCH_*.json`` payloads.
"""

from __future__ import annotations

import json
import math
from typing import IO, Dict, Iterator, List, Union

from .spans import Span, Tracer

#: Schema version stamped on the JSONL meta record.
JSONL_VERSION = 1


def _json_safe(value: object) -> object:
    """Clamp non-finite floats; JSON has no Infinity/NaN."""
    if isinstance(value, float) and not math.isfinite(value):
        return 1e9 if value > 0 else (-1e9 if value < 0 else 0.0)
    return value


def _safe_attrs(attrs: Dict[str, object]) -> Dict[str, object]:
    return {key: _json_safe(value) for key, value in attrs.items()}


# ----------------------------------------------------------------------
# Human-readable tree
# ----------------------------------------------------------------------


def _format_attrs(attrs: Dict[str, object]) -> str:
    parts = []
    for key, value in attrs.items():
        if isinstance(value, float):
            parts.append(f"{key}={value:.4g}")
        else:
            parts.append(f"{key}={value}")
    return " ".join(parts)


def _format_span_line(span: Span, depth: int, show_memory: bool) -> str:
    label = "  " * depth + span.name
    timing = "   (open)" if span.duration is None else f"{span.duration * 1e3:9.2f}ms"
    line = f"{label:<42}{timing}"
    if show_memory and span.memory_delta_bytes is not None:
        line += f"  mem{span.memory_delta_bytes / 1024.0:+9.1f}KiB"
    extras = _format_attrs(span.attrs)
    if extras:
        line += f"  {extras}"
    return line


def format_trace(tracer: Tracer, show_events: bool = True) -> str:
    """Render the span tree (plus events and counters) as aligned text."""
    show_memory = bool(getattr(tracer, "track_memory", False))
    lines: List[str] = []
    for span, depth in tracer.walk():
        lines.append(_format_span_line(span, depth, show_memory))
        if show_events:
            for event in span.events:
                extras = _format_attrs(event.attrs)
                lines.append("  " * (depth + 1) + f"* {event.name}  {extras}".rstrip())
    if show_events:
        for event in tracer.events:
            if event.span is None:
                extras = _format_attrs(event.attrs)
                lines.append(f"* {event.name}  {extras}".rstrip())
    metrics = tracer.metrics.as_dict()
    counters = metrics["counters"]
    if counters:
        lines.append("counters:")
        for name, value in counters.items():
            lines.append(f"  {name} = {value}")
    gauges = metrics["gauges"]
    if gauges:
        lines.append("gauges:")
        for name, value in gauges.items():
            lines.append(f"  {name} = {value}")
    return "\n".join(lines)


# ----------------------------------------------------------------------
# JSONL event stream
# ----------------------------------------------------------------------


def trace_records(tracer: Tracer) -> Iterator[Dict[str, object]]:
    """Yield every trace record as a JSON-friendly dict.

    Order: one ``meta`` record, spans in depth-first order, events in
    firing order, then counters/gauges/histograms.
    """
    yield {"type": "meta", "version": JSONL_VERSION, "spans": len(list(tracer.walk()))}
    for span, depth in tracer.walk():
        record: Dict[str, object] = {
            "type": "span",
            "name": span.name,
            "start": span.start,
            "duration": span.duration,
            "depth": depth,
            "attrs": _safe_attrs(span.attrs),
        }
        if span.memory_delta_bytes is not None:
            record["memory_delta_bytes"] = span.memory_delta_bytes
            record["memory_peak_bytes"] = span.memory_peak_bytes
        yield record
    for event in tracer.events:
        yield {
            "type": "event",
            "name": event.name,
            "time": event.time,
            "span": event.span,
            "attrs": _safe_attrs(event.attrs),
        }
    metrics = tracer.metrics.as_dict()
    for name, value in metrics["counters"].items():
        yield {"type": "counter", "name": name, "value": value}
    for name, value in metrics["gauges"].items():
        yield {"type": "gauge", "name": name, "value": _json_safe(value)}
    for name, stats in metrics["histograms"].items():
        yield {"type": "histogram", "name": name, **stats}


def write_trace_jsonl(tracer: Tracer, target: Union[str, IO[str]]) -> int:
    """Write the trace as JSONL to a path or text stream; returns #records."""
    if hasattr(target, "write"):
        handle: IO[str] = target  # type: ignore[assignment]
        count = 0
        for record in trace_records(tracer):
            handle.write(json.dumps(record, sort_keys=True) + "\n")
            count += 1
        return count
    with open(target, "w", encoding="utf-8") as handle:
        return write_trace_jsonl(tracer, handle)


def read_trace_jsonl(source: Union[str, IO[str]]) -> List[Dict[str, object]]:
    """Parse a JSONL trace back into a list of record dicts."""
    if hasattr(source, "read"):
        text: str = source.read()  # type: ignore[union-attr]
    else:
        with open(source, "r", encoding="utf-8") as handle:
            text = handle.read()
    return [json.loads(line) for line in text.splitlines() if line.strip()]


# ----------------------------------------------------------------------
# Flat summary (BENCH_*.json shape)
# ----------------------------------------------------------------------


def trace_summary(tracer: Tracer) -> Dict[str, object]:
    """Aggregate the trace into a flat JSON-friendly summary.

    Span durations are summed per span name (a per-level ``validation``
    span family becomes one row), event counts per event name, and the
    full metrics registry rides along verbatim.
    """
    spans: Dict[str, Dict[str, float]] = {}
    for span, _ in tracer.walk():
        row = spans.setdefault(span.name, {"count": 0, "seconds": 0.0})
        row["count"] += 1
        if span.duration is not None:
            row["seconds"] += span.duration
    events: Dict[str, int] = {}
    for event in tracer.events:
        events[event.name] = events.get(event.name, 0) + 1
    summary: Dict[str, object] = {"spans": spans, "events": events}
    summary.update(tracer.metrics.as_dict())
    return summary
