"""repro.telemetry — tracing, metrics and structured run reports.

The observability layer for the whole discovery stack.  DHyFD's
per-level economics (the efficiency–inefficiency ratio), partition-
cache behaviour and phase timings are recorded through three small
primitives:

* :class:`Tracer` — nested wall-clock spans (optionally with
  tracemalloc memory deltas), point events, and a metrics registry;
* :class:`MetricsRegistry` — counters, gauges and histograms;
* exporters — :func:`format_trace` (terminal tree),
  :func:`write_trace_jsonl` (event stream) and :func:`trace_summary`
  (flat dict for ``BENCH_*.json``).

Instrumented code asks :func:`current_tracer` for the context-local
tracer; the default is the shared no-op tracer, so with telemetry
disabled every instrumentation site degenerates to a discarded method
call.  Enable tracing around any call stack with::

    from repro.telemetry import Tracer, use_tracer, format_trace

    tracer = Tracer()
    with use_tracer(tracer):
        result = DHyFD().discover(relation)
    print(format_trace(tracer))
"""

from .exporters import (
    format_trace,
    read_trace_jsonl,
    trace_records,
    trace_summary,
    write_trace_jsonl,
)
from .metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NOOP_METRICS,
    NoopMetricsRegistry,
)
from .spans import (
    NOOP_TRACER,
    NoopTracer,
    Span,
    TraceEvent,
    Tracer,
    current_tracer,
    set_current_tracer,
    use_tracer,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NOOP_METRICS",
    "NOOP_TRACER",
    "NoopMetricsRegistry",
    "NoopTracer",
    "Span",
    "TraceEvent",
    "Tracer",
    "current_tracer",
    "format_trace",
    "read_trace_jsonl",
    "set_current_tracer",
    "trace_records",
    "trace_summary",
    "use_tracer",
    "write_trace_jsonl",
]
