"""Nested spans, point events, and the context-local current tracer.

A :class:`Tracer` records a tree of timed spans (monotonic wall clock,
optionally tracemalloc memory deltas) plus point events and a
:class:`~repro.telemetry.metrics.MetricsRegistry`.  Instrumented code
never takes a tracer argument: it asks :func:`current_tracer` — a
``contextvars``-backed lookup that defaults to the shared
:data:`NOOP_TRACER`, whose spans, events and instruments all discard
their input.  Enabling telemetry is therefore a caller-side decision::

    tracer = Tracer()
    with use_tracer(tracer):
        result = algo.discover(relation)
    print(format_trace(tracer))

and with no tracer installed the instrumentation sites cost one
attribute lookup and a no-op call each.
"""

from __future__ import annotations

import contextvars
import time
import tracemalloc
from typing import Callable, Dict, Iterator, List, Optional, Tuple

from .metrics import NOOP_METRICS, MetricsRegistry


class Span:
    """One completed (or still-open) section of a traced run."""

    __slots__ = (
        "name",
        "attrs",
        "start",
        "duration",
        "children",
        "events",
        "memory_delta_bytes",
        "memory_peak_bytes",
    )

    def __init__(self, name: str, attrs: Dict[str, object]):
        self.name = name
        self.attrs = attrs
        #: Seconds since the tracer's origin.
        self.start: float = 0.0
        #: Seconds; ``None`` while the span is still open.
        self.duration: Optional[float] = None
        self.children: List["Span"] = []
        self.events: List["TraceEvent"] = []
        #: tracemalloc current-memory delta over the span (None untracked).
        self.memory_delta_bytes: Optional[int] = None
        #: tracemalloc global peak observed at span exit (None untracked).
        self.memory_peak_bytes: Optional[int] = None

    def annotate(self, **attrs: object) -> None:
        """Attach (or overwrite) attributes on the span."""
        self.attrs.update(attrs)

    def walk(self, depth: int = 0) -> Iterator[Tuple["Span", int]]:
        """Depth-first ``(span, depth)`` traversal of this subtree."""
        yield self, depth
        for child in self.children:
            yield from child.walk(depth + 1)

    def __repr__(self) -> str:
        timing = "open" if self.duration is None else f"{self.duration:.6f}s"
        return f"Span({self.name}, {timing}, {len(self.children)} children)"


class TraceEvent:
    """A point-in-time event with attributes (e.g. one ratio decision)."""

    __slots__ = ("name", "time", "span", "attrs")

    def __init__(
        self, name: str, when: float, span: Optional[str], attrs: Dict[str, object]
    ):
        self.name = name
        #: Seconds since the tracer's origin.
        self.time = when
        #: Name of the span open when the event fired (None at top level).
        self.span = span
        self.attrs = attrs

    def __repr__(self) -> str:
        return f"TraceEvent({self.name} @ {self.time:.6f}s)"


class _SpanContext:
    """Context manager that opens a span on enter and closes it on exit."""

    __slots__ = ("_tracer", "_span")

    def __init__(self, tracer: "Tracer", span: Span):
        self._tracer = tracer
        self._span = span

    def __enter__(self) -> Span:
        self._tracer._open(self._span)
        return self._span

    def __exit__(self, exc_type, exc, tb) -> bool:
        self._tracer._close(self._span)
        return False


class Tracer:
    """Collects spans, events and metrics for one run.

    Args:
        track_memory: also record tracemalloc deltas per span.  Starts
            tracemalloc if nothing else did (call :meth:`close` — or use
            the tracer as a context manager — to stop it again).
        clock: monotonic time source, injectable for deterministic tests.
    """

    enabled = True

    def __init__(
        self,
        track_memory: bool = False,
        clock: Callable[[], float] = time.perf_counter,
    ):
        self._clock = clock
        self._origin = clock()
        self.roots: List[Span] = []
        self.events: List[TraceEvent] = []
        self.metrics = MetricsRegistry()
        self._stack: List[Span] = []
        self.track_memory = track_memory
        self._started_tracemalloc = False
        if track_memory and not tracemalloc.is_tracing():
            tracemalloc.start()
            self._started_tracemalloc = True

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------

    def span(self, name: str, **attrs: object) -> _SpanContext:
        """Open a nested span: ``with tracer.span("validation", level=2):``"""
        return _SpanContext(self, Span(name, attrs))

    def event(self, name: str, **attrs: object) -> TraceEvent:
        """Record a point event under the currently open span."""
        parent = self._stack[-1].name if self._stack else None
        record = TraceEvent(name, self._clock() - self._origin, parent, attrs)
        self.events.append(record)
        if self._stack:
            self._stack[-1].events.append(record)
        return record

    def record_completed(self, name: str, duration: float, **attrs: object) -> Span:
        """Append an already-finished span under the current stack top.

        Used to replay spans measured elsewhere — e.g. summaries coming
        back from pool workers, whose tracers cannot share this one's
        context.  The span's start is back-dated so ``start + duration``
        lands at the current clock reading (clamped at the origin).
        """
        span = Span(name, dict(attrs))
        now = self._clock() - self._origin
        span.start = max(0.0, now - duration)
        span.duration = duration
        if self._stack:
            self._stack[-1].children.append(span)
        else:
            self.roots.append(span)
        return span

    def counter(self, name: str):
        """Shorthand for ``tracer.metrics.counter(name)``."""
        return self.metrics.counter(name)

    def gauge(self, name: str):
        """Shorthand for ``tracer.metrics.gauge(name)``."""
        return self.metrics.gauge(name)

    def histogram(self, name: str):
        """Shorthand for ``tracer.metrics.histogram(name)``."""
        return self.metrics.histogram(name)

    # ------------------------------------------------------------------
    # Span lifecycle (called by _SpanContext)
    # ------------------------------------------------------------------

    def _open(self, span: Span) -> None:
        if self._stack:
            self._stack[-1].children.append(span)
        else:
            self.roots.append(span)
        self._stack.append(span)
        if self.track_memory and tracemalloc.is_tracing():
            span.memory_delta_bytes = -tracemalloc.get_traced_memory()[0]
        span.start = self._clock() - self._origin

    def _close(self, span: Span) -> None:
        span.duration = self._clock() - self._origin - span.start
        if self.track_memory and span.memory_delta_bytes is not None:
            current, peak = tracemalloc.get_traced_memory()
            span.memory_delta_bytes += current
            span.memory_peak_bytes = peak
        if self._stack and self._stack[-1] is span:
            self._stack.pop()

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def walk(self) -> Iterator[Tuple[Span, int]]:
        """Depth-first ``(span, depth)`` traversal over all root spans."""
        for root in self.roots:
            yield from root.walk()

    def span_names(self) -> List[str]:
        """Every span name in traversal order (duplicates kept)."""
        return [span.name for span, _ in self.walk()]

    def find_spans(self, name: str) -> List[Span]:
        """All spans called ``name`` anywhere in the tree."""
        return [span for span, _ in self.walk() if span.name == name]

    def find_events(self, name: str) -> List[TraceEvent]:
        """All events called ``name``."""
        return [event for event in self.events if event.name == name]

    def close(self) -> None:
        """Stop tracemalloc if this tracer started it."""
        if self._started_tracemalloc and tracemalloc.is_tracing():
            tracemalloc.stop()
            self._started_tracemalloc = False

    def __enter__(self) -> "Tracer":
        self._token = _current_tracer.set(self)
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        _current_tracer.reset(self._token)
        self.close()
        return False


class _NoopSpan:
    """Shared do-nothing span/context-manager for the no-op tracer."""

    __slots__ = ()
    name = "noop"
    attrs: Dict[str, object] = {}
    start = 0.0
    duration = 0.0
    children: List[Span] = []
    events: List[TraceEvent] = []
    memory_delta_bytes = None
    memory_peak_bytes = None

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False

    def annotate(self, **attrs: object) -> None:
        pass


_NOOP_SPAN = _NoopSpan()


class NoopTracer:
    """Tracer twin that records nothing; the module default.

    Every method is safe to call and returns a shared inert object, so
    instrumentation sites need no ``if tracing:`` guards.
    """

    enabled = False
    track_memory = False
    roots: Tuple[Span, ...] = ()
    events: Tuple[TraceEvent, ...] = ()
    metrics = NOOP_METRICS

    __slots__ = ()

    def span(self, name: str, **attrs: object) -> _NoopSpan:
        return _NOOP_SPAN

    def record_completed(self, name: str, duration: float, **attrs: object) -> _NoopSpan:
        return _NOOP_SPAN

    def event(self, name: str, **attrs: object) -> None:
        return None

    def counter(self, name: str):
        return NOOP_METRICS.counter(name)

    def gauge(self, name: str):
        return NOOP_METRICS.gauge(name)

    def histogram(self, name: str):
        return NOOP_METRICS.histogram(name)

    def walk(self) -> Iterator[Tuple[Span, int]]:
        return iter(())

    def span_names(self) -> List[str]:
        return []

    def find_spans(self, name: str) -> List[Span]:
        return []

    def find_events(self, name: str) -> List[TraceEvent]:
        return []

    def close(self) -> None:
        pass


NOOP_TRACER = NoopTracer()

_current_tracer: contextvars.ContextVar = contextvars.ContextVar(
    "repro_current_tracer", default=NOOP_TRACER
)


def current_tracer():
    """The context-local tracer (the no-op tracer unless one is active)."""
    return _current_tracer.get()


def set_current_tracer(tracer) -> contextvars.Token:
    """Install ``tracer`` as current; returns a token for manual reset."""
    return _current_tracer.set(tracer if tracer is not None else NOOP_TRACER)


class _UseTracer:
    """``with use_tracer(t):`` — install a tracer, restore the old one."""

    __slots__ = ("_tracer", "_token")

    def __init__(self, tracer):
        self._tracer = tracer if tracer is not None else NOOP_TRACER

    def __enter__(self):
        self._token = _current_tracer.set(self._tracer)
        return self._tracer

    def __exit__(self, exc_type, exc, tb) -> bool:
        _current_tracer.reset(self._token)
        return False


def use_tracer(tracer) -> _UseTracer:
    """Context manager making ``tracer`` current for the enclosed block.

    ``None`` installs the no-op tracer (i.e. disables telemetry inside).
    """
    return _UseTracer(tracer)
