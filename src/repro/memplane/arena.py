"""The dataset arena: one shared-memory copy of each relation per host.

Every consumer of a relation's encoded data — worker pools, service
jobs, ranking passes — used to materialize its *own* copy (per-run shm
buffers, per-replica registries).  The arena replaces those with a
host-wide, fingerprint-keyed store of pinned columnar segments:

* a dataset is **ingested** at most once — the row-major int64 DIIS
  code matrix and the boolean null-mask matrix are copied into two
  POSIX shared-memory segments keyed by
  :meth:`~repro.relational.relation.Relation.fingerprint`;
* consumers **lease** the segments (:meth:`DatasetArena.lease`): a
  refcounted pin plus a picklable :class:`~repro.parallel.shm.ShmSpec`
  any :class:`~repro.parallel.shm.SharedRelationView` can attach to —
  so N pools over the same dataset share one copy, not N;
* unpinned entries are **evicted** LRU-first when the arena exceeds
  its byte budget (``REPRO_FD_ARENA_BUDGET``), and :meth:`shed` plugs
  into the :class:`~repro.resilience.MemorySentinel` degradation
  ladder;
* **append versions share pages**: when a relation appended from a
  registered parent is ingested with ``parent_fingerprint``, the
  parent's rows are verified to be a bit-identical prefix of the
  child's matrix (DIIS codes survive appends) and the parent entry is
  remapped onto the child's segment — the old parent copy is unlinked.

Segment names are ``reprofd-<owner>-<fp16>-{m,n}`` where ``owner``
defaults to ``p<pid>`` (override with ``REPRO_FD_ARENA_OWNER`` — the
cluster manager sets one per replica).  The owner prefix is what makes
:func:`sweep_orphans` safe: after a replica is SIGKILLed, the manager
unlinks exactly that replica's leftovers before respawning it.

Disable the whole plane with ``REPRO_FD_MEMPLANE=0`` (or the CLI
``--no-memplane``): every consumer falls back to the pre-arena private
copies and results stay byte-identical either way.
"""

from __future__ import annotations

import atexit
import os
import re
import threading
from multiprocessing import shared_memory
from typing import Dict, List, Optional

import numpy as np

from ..parallel.shm import ShmSpec, relation_arrays
from ..resilience import faults
from ..resilience.budget import arena_budget_from_env

#: Kill switch: set to ``0``/``false``/``off`` to disable the memplane.
ENV_MEMPLANE = "REPRO_FD_MEMPLANE"

#: Segment-name owner token (defaults to ``p<pid>``); one per replica.
ENV_ARENA_OWNER = "REPRO_FD_ARENA_OWNER"

#: Leading token of every arena segment name (and /dev/shm file).
SEGMENT_PREFIX = "reprofd"

_OWNER_SANITIZER = re.compile(r"[^A-Za-z0-9_.-]+")

_enabled_override: Optional[bool] = None


def enabled() -> bool:
    """Is the memplane on?  Env default is on; :func:`set_enabled` wins."""
    if _enabled_override is not None:
        return _enabled_override
    raw = os.environ.get(ENV_MEMPLANE, "").strip().lower()
    return raw not in ("0", "false", "off", "no")


def set_enabled(value: Optional[bool]) -> None:
    """Process-wide override (None restores the environment default)."""
    global _enabled_override
    _enabled_override = value


def default_owner() -> str:
    """The segment-owner token: ``REPRO_FD_ARENA_OWNER`` or ``p<pid>``."""
    raw = os.environ.get(ENV_ARENA_OWNER, "").strip()
    if raw:
        return _OWNER_SANITIZER.sub("-", raw)[:48]
    return f"p{os.getpid()}"


class _Segment:
    """One refcounted pair of shared-memory segments (codes + nulls).

    Entries reference segments rather than owning them because an
    append remap leaves two entries (parent and child) viewing one
    physical segment; it is unlinked when the last reference drops.
    """

    __slots__ = ("matrix_shm", "nulls_shm", "nbytes", "refs")

    def __init__(
        self,
        matrix_shm: shared_memory.SharedMemory,
        nulls_shm: shared_memory.SharedMemory,
        nbytes: int,
    ):
        self.matrix_shm = matrix_shm
        self.nulls_shm = nulls_shm
        self.nbytes = nbytes
        self.refs = 1

    def decref(self) -> None:
        self.refs -= 1
        if self.refs > 0:
            return
        for shm in (self.matrix_shm, self.nulls_shm):
            try:
                shm.close()
            except Exception:
                pass
            try:
                shm.unlink()
            except FileNotFoundError:
                pass
            except Exception:
                pass


class _Entry:
    """One pinned dataset: a (possibly shared) segment plus its shape."""

    __slots__ = ("fingerprint", "segment", "n_rows", "n_cols", "pins", "tick")

    def __init__(self, fingerprint: str, segment: _Segment, n_rows: int, n_cols: int):
        self.fingerprint = fingerprint
        self.segment = segment
        self.n_rows = n_rows
        self.n_cols = n_cols
        self.pins = 0
        self.tick = 0

    @property
    def spec(self) -> ShmSpec:
        return ShmSpec(
            matrix_name=self.segment.matrix_shm.name,
            nulls_name=self.segment.nulls_shm.name,
            n_rows=self.n_rows,
            n_cols=self.n_cols,
        )

    def matrix_view(self) -> np.ndarray:
        return np.ndarray(
            (self.n_rows, self.n_cols),
            dtype=np.int64,
            buffer=self.segment.matrix_shm.buf,
        )

    def nulls_view(self) -> np.ndarray:
        return np.ndarray(
            (self.n_rows, self.n_cols),
            dtype=bool,
            buffer=self.segment.nulls_shm.buf,
        )


class ArenaLease:
    """A refcounted pin on one arena entry (context manager).

    ``spec`` is the picklable handle pool workers attach to; the pinned
    entry cannot be evicted until :meth:`release` (idempotent).
    """

    __slots__ = ("_arena", "_entry", "spec", "nbytes", "fingerprint")

    def __init__(self, arena: "DatasetArena", entry: _Entry):
        self._arena = arena
        self._entry = entry
        self.spec = entry.spec
        self.nbytes = entry.segment.nbytes
        self.fingerprint = entry.fingerprint

    def release(self) -> None:
        entry, self._entry = self._entry, None
        if entry is not None:
            self._arena._unpin(entry)

    def __enter__(self) -> "ArenaLease":
        return self

    def __exit__(self, *exc_info) -> None:
        self.release()


class DatasetArena:
    """Fingerprint-keyed shared-memory store of relation columns."""

    def __init__(self, budget_bytes: Optional[int] = None, owner: Optional[str] = None):
        """Args:
            budget_bytes: evict unpinned entries LRU-first past this
                total (None = unlimited; env default via
                ``REPRO_FD_ARENA_BUDGET``).
            owner: segment-name token (default :func:`default_owner`).
        """
        self.budget_bytes = budget_bytes
        self.owner = owner if owner else default_owner()
        self._lock = threading.RLock()
        self._entries: Dict[str, _Entry] = {}
        self._tick = 0
        self._seq = 0
        self.attach_hits = 0
        self.attach_misses = 0
        self.evictions = 0
        self.prefix_shared = 0
        self.stale_reclaimed = 0
        self.closed = False

    # ------------------------------------------------------------------
    # Leasing / ingest
    # ------------------------------------------------------------------

    def lease(self, relation) -> Optional[ArenaLease]:
        """Pin ``relation``'s columns in the arena and return a lease.

        Ingests on first sight (the one copy-in this host will pay for
        this dataset); later calls attach to the existing segments.
        Returns None for relations without a content fingerprint (e.g.
        worker-side shared views).  Raises whatever the armed
        ``arena.attach`` fault injects — callers treat any failure as
        "use a private copy".
        """
        fingerprint_of = getattr(relation, "fingerprint", None)
        if fingerprint_of is None:
            return None
        faults.fire(
            "arena.attach",
            lambda: RuntimeError("injected arena attach failure"),
        )
        fingerprint = fingerprint_of()
        with self._lock:
            if self.closed:
                return None
            entry = self._entries.get(fingerprint)
            if entry is None:
                entry = self._ingest_locked(fingerprint, relation)
                self.attach_misses += 1
            else:
                self.attach_hits += 1
            entry.pins += 1
            entry.tick = self._next_tick()
            lease = ArenaLease(self, entry)
            self._enforce_budget_locked()
            return lease

    def ingest(
        self, relation, parent_fingerprint: Optional[str] = None
    ) -> Optional[str]:
        """Materialize ``relation`` in the arena without pinning it.

        The registry path: datasets become attachable (and evictable)
        the moment they are registered.  With ``parent_fingerprint``
        set — an append — the parent entry is remapped onto the child's
        segment when its rows are a verified bit-identical prefix, so
        both versions share one physical copy.  Returns the ingested
        fingerprint, or None when the memplane is off / unusable.
        """
        if not enabled():
            return None
        fingerprint_of = getattr(relation, "fingerprint", None)
        if fingerprint_of is None:
            return None
        fingerprint = fingerprint_of()
        with self._lock:
            if self.closed:
                return None
            entry = self._entries.get(fingerprint)
            if entry is None:
                entry = self._ingest_locked(fingerprint, relation)
                entry.tick = self._next_tick()
            if parent_fingerprint is not None:
                self._share_prefix_locked(entry, parent_fingerprint)
            self._enforce_budget_locked(protect=fingerprint)
            return fingerprint

    def _ingest_locked(self, fingerprint: str, relation) -> _Entry:
        matrix, nulls = relation_arrays(relation)
        base = f"{SEGMENT_PREFIX}-{self.owner}-{fingerprint[:16]}-{self._seq}"
        self._seq += 1
        matrix_shm = self._create_segment(f"{base}m", matrix)
        nulls_shm = self._create_segment(f"{base}n", nulls)
        segment = _Segment(matrix_shm, nulls_shm, matrix.nbytes + nulls.nbytes)
        entry = _Entry(fingerprint, segment, relation.n_rows, relation.n_cols)
        self._entries[fingerprint] = entry
        return entry

    def _create_segment(
        self, name: str, array: np.ndarray
    ) -> shared_memory.SharedMemory:
        try:
            shm = shared_memory.SharedMemory(
                name=name, create=True, size=max(1, array.nbytes)
            )
        except FileExistsError:
            # A leftover from a killed predecessor sharing our owner
            # token: never trust its contents, reclaim the name.
            try:
                stale = shared_memory.SharedMemory(name=name)
                stale.close()
                stale.unlink()
            except Exception:
                pass
            self.stale_reclaimed += 1
            shm = shared_memory.SharedMemory(
                name=name, create=True, size=max(1, array.nbytes)
            )
        if array.nbytes:
            target = np.ndarray(array.shape, dtype=array.dtype, buffer=shm.buf)
            target[...] = array
        return shm

    def _share_prefix_locked(self, child: _Entry, parent_fingerprint: str) -> None:
        """Remap an append's parent onto the child's segment when safe.

        Safe means: same width, parent no taller, the parent's rows are
        bit-identical to the child's prefix (verified, never assumed),
        and the parent is unpinned — live leases hold the parent's
        current segment names, so a pinned parent keeps its own copy
        until the next ingest gets another chance.
        """
        parent = self._entries.get(parent_fingerprint)
        if (
            parent is None
            or parent.segment is child.segment
            or parent.pins > 0
            or parent.n_cols != child.n_cols
            or parent.n_rows > child.n_rows
        ):
            return
        if not (
            np.array_equal(parent.matrix_view(), child.matrix_view()[: parent.n_rows])
            and np.array_equal(
                parent.nulls_view(), child.nulls_view()[: parent.n_rows]
            )
        ):
            return
        old = parent.segment
        child.segment.refs += 1
        parent.segment = child.segment
        old.decref()
        self.prefix_shared += 1

    # ------------------------------------------------------------------
    # Pinning / eviction
    # ------------------------------------------------------------------

    def _unpin(self, entry: _Entry) -> None:
        with self._lock:
            if entry.pins > 0:
                entry.pins -= 1

    def _next_tick(self) -> int:
        self._tick += 1
        return self._tick

    def memory_bytes(self) -> int:
        """Total bytes of distinct live segments."""
        with self._lock:
            return self._bytes_locked()

    def _bytes_locked(self) -> int:
        seen = set()
        total = 0
        for entry in self._entries.values():
            if id(entry.segment) not in seen:
                seen.add(id(entry.segment))
                total += entry.segment.nbytes
        return total

    def _enforce_budget_locked(self, protect: Optional[str] = None) -> None:
        if self.budget_bytes is None:
            return
        self._shed_locked(self.budget_bytes, protect=protect)

    def shed(self, target_bytes: Optional[int] = None) -> int:
        """Evict unpinned entries, least-recently-leased first.

        Degradation hook for the memory sentinel (and the budget
        enforcer): stops once usage falls to ``target_bytes`` (evicts
        every unpinned entry when None).  Pinned entries are never
        touched — a lease is a correctness contract.  Returns the
        bytes freed.
        """
        with self._lock:
            return self._shed_locked(target_bytes)

    def _shed_locked(
        self, target_bytes: Optional[int], protect: Optional[str] = None
    ) -> int:
        victims = sorted(
            (
                entry
                for entry in self._entries.values()
                if entry.pins == 0 and entry.fingerprint != protect
            ),
            key=lambda entry: entry.tick,
        )
        freed = 0
        for entry in victims:
            if target_bytes is not None and self._bytes_locked() <= target_bytes:
                break
            before = self._bytes_locked()
            del self._entries[entry.fingerprint]
            entry.segment.decref()
            freed += before - self._bytes_locked()
            self.evictions += 1
        return freed

    # ------------------------------------------------------------------
    # Introspection / lifecycle
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, fingerprint: str) -> bool:
        with self._lock:
            return fingerprint in self._entries

    def pins(self, fingerprint: str) -> int:
        """Current pin count of one entry (0 when absent)."""
        with self._lock:
            entry = self._entries.get(fingerprint)
            return entry.pins if entry is not None else 0

    def gauges(self) -> Dict[str, float]:
        """``memplane.*`` gauge snapshot for ``/metrics`` exports."""
        with self._lock:
            pinned = sum(1 for entry in self._entries.values() if entry.pins > 0)
            return {
                "memplane.datasets": float(len(self._entries)),
                "memplane.pinned_datasets": float(pinned),
                "memplane.arena_bytes": float(self._bytes_locked()),
                "memplane.attach_hits": float(self.attach_hits),
                "memplane.attach_misses": float(self.attach_misses),
                "memplane.evictions": float(self.evictions),
                "memplane.prefix_shared": float(self.prefix_shared),
            }

    def close(self) -> None:
        """Unlink every segment, pinned or not (interpreter shutdown)."""
        with self._lock:
            entries = list(self._entries.values())
            self._entries.clear()
            self.closed = True
            seen = set()
            for entry in entries:
                if id(entry.segment) in seen:
                    continue
                seen.add(id(entry.segment))
                # Force the unlink even when an append remap left the
                # segment multiply-referenced.
                entry.segment.refs = 1
                entry.segment.decref()

    def __enter__(self) -> "DatasetArena":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:
        return (
            f"DatasetArena(owner={self.owner!r}, datasets={len(self)}, "
            f"bytes={self.memory_bytes()})"
        )


# ----------------------------------------------------------------------
# Process-wide arena
# ----------------------------------------------------------------------

_arena: Optional[DatasetArena] = None
_arena_lock = threading.Lock()


def get_arena() -> DatasetArena:
    """The process-wide arena (created on first use, closed atexit)."""
    global _arena
    with _arena_lock:
        if _arena is None or _arena.closed:
            _arena = DatasetArena(budget_bytes=arena_budget_from_env())
            atexit.register(_arena.close)
        return _arena


def current_arena() -> Optional[DatasetArena]:
    """The process-wide arena if one exists (never creates one)."""
    with _arena_lock:
        return _arena if _arena is not None and not _arena.closed else None


def reset_arena() -> None:
    """Close and drop the process-wide arena (tests / shutdown)."""
    global _arena
    with _arena_lock:
        if _arena is not None:
            _arena.close()
            _arena = None


def sweep_orphans(owner: str, shm_dir: str = "/dev/shm") -> List[str]:
    """Unlink every leftover arena segment of ``owner``; returns names.

    The crash-recovery path: a SIGKILLed replica cannot run its atexit
    unlink, so whoever respawns it (the cluster manager) sweeps the
    dead process's ``reprofd-<owner>-*`` files first.  Scoped strictly
    by the owner token — segments of live replicas are never touched.
    """
    owner = _OWNER_SANITIZER.sub("-", owner.strip())[:48]
    if not owner:
        return []
    prefix = f"{SEGMENT_PREFIX}-{owner}-"
    removed: List[str] = []
    try:
        names = os.listdir(shm_dir)
    except OSError:
        return removed
    for name in names:
        if not name.startswith(prefix):
            continue
        try:
            os.unlink(os.path.join(shm_dir, name))
            removed.append(name)
        except OSError:
            pass
    return removed
