"""The shared partition tier: low-level partitions reused across jobs.

A :class:`~repro.partitions.cache.PartitionCache` is per-pass — every
ranking or redundancy run re-derives the same singleton and low-level
stripped partitions for the same dataset.  After single-flight dedup
the dominant service pattern is *different* jobs against the *same*
registered dataset, so those derivations are pure waste.

This module keeps one process-wide
:class:`SharedPartitionTier` per ``(fingerprint, null semantics,
resolved backend)`` triple.  A tier stores partitions over at most
:data:`MAX_SHARED_ATTRS` attributes — the wide base of the lattice
that every pass touches — and hands them to any ``PartitionCache``
constructed with ``shared=``.  Safe to share because
:class:`~repro.partitions.stripped.StrippedPartition` is immutable
(nothing in the stack mutates ``clusters`` in place) and the key pins
down everything that affects cluster bytes: the data (fingerprint),
the equality semantics, and the kernel backend (canonical cluster
order is backend-identical by PR 2's guarantee, but keying by backend
keeps the tiers independently evictable and the provenance obvious).

The registry is LRU-bounded (:data:`MAX_TIERS` datasets) and obeys the
same ``REPRO_FD_MEMPLANE`` kill switch as the arena.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Dict, Optional, Tuple

from ..partitions.kernels import resolve_backend
from ..partitions.stripped import StrippedPartition
from ..relational import attrset
from ..relational.attrset import AttrSet
from . import arena as _arena

#: Widest attribute set a tier will retain — the lattice base levels
#: every ranking/redundancy pass rebuilds; deeper partitions are too
#: pass-specific to be worth pinning host-wide.
MAX_SHARED_ATTRS = 4

#: Datasets with live tiers, LRU-bounded.
MAX_TIERS = 32


class SharedPartitionTier:
    """Thread-safe store of one dataset's low-level partitions."""

    __slots__ = ("key", "_store", "_lock", "hits", "misses")

    def __init__(self, key: Tuple[str, str, str]):
        self.key = key
        self._store: Dict[AttrSet, StrippedPartition] = {}
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0

    def get(self, attrs: AttrSet) -> Optional[StrippedPartition]:
        """The shared partition for ``attrs``, counting hit/miss."""
        with self._lock:
            partition = self._store.get(attrs)
            if partition is not None:
                self.hits += 1
            else:
                self.misses += 1
            return partition

    def put(self, partition: StrippedPartition) -> None:
        """Publish a partition (ignored above :data:`MAX_SHARED_ATTRS`).

        First publisher wins — identical inputs produce identical
        partitions, so replacing would only churn references.
        """
        if attrset.count(partition.attrs) > MAX_SHARED_ATTRS:
            return
        with self._lock:
            self._store.setdefault(partition.attrs, partition)

    def __len__(self) -> int:
        with self._lock:
            return len(self._store)

    def memory_bytes(self) -> int:
        with self._lock:
            return sum(p.memory_bytes() for p in self._store.values())


_tiers: "OrderedDict[Tuple[str, str, str], SharedPartitionTier]" = OrderedDict()
_tiers_lock = threading.Lock()


def tier_for(relation, backend: Optional[str] = None) -> Optional[SharedPartitionTier]:
    """The shared tier for ``relation`` (None when unusable).

    Unusable means: the memplane is disabled, or the relation carries
    no content fingerprint (worker-side shared views don't — workers
    keep their private caches).
    """
    if not _arena.enabled():
        return None
    fingerprint_of = getattr(relation, "fingerprint", None)
    semantics = getattr(relation, "semantics", None)
    if fingerprint_of is None or semantics is None:
        return None
    key = (fingerprint_of(), semantics.value, resolve_backend(backend))
    with _tiers_lock:
        tier = _tiers.get(key)
        if tier is None:
            tier = SharedPartitionTier(key)
            _tiers[key] = tier
            while len(_tiers) > MAX_TIERS:
                _tiers.popitem(last=False)
        else:
            _tiers.move_to_end(key)
        return tier


def reset_tiers() -> None:
    """Drop every shared tier (tests / dataset churn)."""
    with _tiers_lock:
        _tiers.clear()


def tier_gauges() -> Dict[str, float]:
    """``memplane.tier_*`` gauge snapshot for ``/metrics`` exports."""
    with _tiers_lock:
        tiers = list(_tiers.values())
    hits = sum(t.hits for t in tiers)
    misses = sum(t.misses for t in tiers)
    lookups = hits + misses
    return {
        "memplane.tier_datasets": float(len(tiers)),
        "memplane.tier_partitions": float(sum(len(t) for t in tiers)),
        "memplane.tier_bytes": float(sum(t.memory_bytes() for t in tiers)),
        "memplane.tier_hits": float(hits),
        "memplane.tier_misses": float(misses),
        "memplane.tier_hit_rate": (hits / lookups) if lookups else 0.0,
    }
