"""repro.memplane — the one-copy-per-host memory plane.

Two pieces (see ``docs/memplane.md``):

* :mod:`repro.memplane.arena` — the :class:`DatasetArena`, a
  fingerprint-keyed shared-memory store of relation columns that
  worker pools, service jobs and replicas lease zero-copy (refcounted
  pins, LRU eviction under ``REPRO_FD_ARENA_BUDGET``, append versions
  sharing their parent's pages);
* :mod:`repro.memplane.tier` — the :class:`SharedPartitionTier`, a
  per-dataset store of low-level stripped partitions reused by every
  ``PartitionCache`` constructed with ``shared=``.

Both obey the ``REPRO_FD_MEMPLANE`` kill switch (CLI
``--no-memplane``); covers are byte-identical with the plane on or
off.
"""

from typing import Dict

from .arena import (
    ArenaLease,
    DatasetArena,
    ENV_ARENA_OWNER,
    ENV_MEMPLANE,
    SEGMENT_PREFIX,
    current_arena,
    default_owner,
    enabled,
    get_arena,
    reset_arena,
    set_enabled,
    sweep_orphans,
)
from .tier import (
    MAX_SHARED_ATTRS,
    SharedPartitionTier,
    reset_tiers,
    tier_for,
    tier_gauges,
)

__all__ = [
    "ArenaLease",
    "DatasetArena",
    "ENV_ARENA_OWNER",
    "ENV_MEMPLANE",
    "MAX_SHARED_ATTRS",
    "SEGMENT_PREFIX",
    "SharedPartitionTier",
    "current_arena",
    "default_owner",
    "enabled",
    "gauges",
    "get_arena",
    "reset_arena",
    "reset_tiers",
    "set_enabled",
    "sweep_orphans",
    "tier_for",
    "tier_gauges",
]


def gauges() -> Dict[str, float]:
    """Combined ``memplane.*`` gauges (arena + tier) for ``/metrics``.

    Never *creates* an arena: a process that registered no dataset
    reports zeros instead of allocating segments for a metrics scrape.
    """
    arena = current_arena()
    out: Dict[str, float] = (
        arena.gauges()
        if arena is not None
        else {
            "memplane.datasets": 0.0,
            "memplane.pinned_datasets": 0.0,
            "memplane.arena_bytes": 0.0,
            "memplane.attach_hits": 0.0,
            "memplane.attach_misses": 0.0,
            "memplane.evictions": 0.0,
            "memplane.prefix_shared": 0.0,
        }
    )
    out.update(tier_gauges())
    out["memplane.enabled"] = 1.0 if enabled() else 0.0
    return out
