"""Reddit-May2015-style star-schema workload for multi-table discovery.

A deterministic replica of the Reddit May-2015 comment-dump regime
(posts referencing authors and subreddits) in the same spirit as
:mod:`repro.datasets.benchmarks`: the *shape* is faithful — a wide fact
table with two foreign keys, planted intra-table FDs (``country →
lang``, ``score_band → gilded``, ``topic → nsfw``) and dirty FK rows
(dangling author references plus null FKs) — while the values are
synthetic.  It is the exemplar workload for
:mod:`repro.multitable` (``docs/multitable.md``) and is registered in
the benchmark registry as ``reddit_star`` (the registry entry loads
the *virtual join* at bench scale).

``dirty_fraction`` controls referential dirt in ``posts.author_id``:
half of the dirty rows dangle (a ghost author), half are null.  The
``subreddit_id`` foreign key is always clean so join paths through it
validate under ``on_dangling="raise"``.  Author ``a0`` is a lurker who
never posts, so the expand step always has a childless parent: under
``on_dangling="pad"`` the joined relation carries outer-join nulls at
every scale (the ``reddit_star`` registry entry declares
``has_nulls=True`` on the strength of this).
"""

from __future__ import annotations

import random
from typing import Dict, Optional, Tuple, Union

from ..multitable.discovery import JoinFDResult, discover_join_fds
from ..multitable.provenance import lift_relation, build_provenance
from ..multitable.schema import SchemaGraph
from ..relational.null import NullSemantics
from ..relational.relation import Relation

#: The canonical join path through the star: authors fan out over their
#: posts (one-to-many), each post resolves its subreddit (many-to-one).
STAR_PATH: Tuple[str, str, str] = ("authors", "posts", "subreddits")

_COUNTRIES = ["us", "uk", "de", "fr", "jp", "br", "in", "au"]
_LANG = {
    "us": "en", "uk": "en", "de": "de", "fr": "fr",
    "jp": "ja", "br": "pt", "in": "en", "au": "en",
}
_TOPICS = ["cats", "science", "news", "gaming", "music", "sports"]
_NSFW = {t: ("yes" if t in ("news", "gaming") else "no") for t in _TOPICS}


def reddit_star_tables(
    n_posts: int = 400,
    seed: int = 0,
    dirty_fraction: float = 0.05,
    semantics: Union[str, NullSemantics] = NullSemantics.EQ,
) -> Dict[str, Relation]:
    """Generate the three base tables (``posts``, ``authors``, ``subreddits``)."""
    semantics = NullSemantics.parse(semantics)
    rng = random.Random(seed)
    n_authors = max(2, n_posts // 4)
    n_subreddits = max(2, n_posts // 50)

    author_rows = []
    for i in range(n_authors):
        country = _COUNTRIES[rng.randrange(len(_COUNTRIES))]
        author_rows.append([
            f"a{i}",
            f"user_{i}",
            country,
            _LANG[country],
            f"k{rng.randrange(5)}",
        ])
    authors = Relation.from_rows(
        author_rows,
        ["author_id", "username", "country", "lang", "karma_band"],
        semantics=semantics,
    )

    subreddit_rows = []
    for i in range(n_subreddits):
        topic = _TOPICS[rng.randrange(len(_TOPICS))]
        subreddit_rows.append([f"s{i}", f"r_{i}", topic, _NSFW[topic]])
    subreddits = Relation.from_rows(
        subreddit_rows,
        ["subreddit_id", "name", "topic", "nsfw"],
        semantics=semantics,
    )

    n_dirty = int(n_posts * dirty_fraction)
    post_rows = []
    for i in range(n_posts):
        # a0 never posts (see module docstring): clean posts draw from
        # a1.. so the expand step always has one childless parent
        author: Optional[str] = f"a{1 + rng.randrange(n_authors - 1)}"
        if i < n_dirty:
            # alternate dangling ghosts and null FKs among the dirty rows
            author = f"ghost{i}" if i % 2 == 0 else None
        score_band = f"s{rng.randrange(6)}"
        post_rows.append([
            f"p{i}",
            author,
            f"s{rng.randrange(n_subreddits)}",
            f"d{rng.randrange(28)}",
            score_band,
            "gilded" if score_band in ("s4", "s5") else "plain",
        ])
    posts = Relation.from_rows(
        post_rows,
        ["post_id", "author_id", "subreddit_id", "day", "score_band", "gilded"],
        semantics=semantics,
    )
    return {"posts": posts, "authors": authors, "subreddits": subreddits}


def reddit_star_graph(
    n_posts: int = 400,
    seed: int = 0,
    dirty_fraction: float = 0.05,
    semantics: Union[str, NullSemantics] = NullSemantics.EQ,
) -> SchemaGraph:
    """The star as a :class:`~repro.multitable.schema.SchemaGraph`."""
    tables = reddit_star_tables(
        n_posts=n_posts,
        seed=seed,
        dirty_fraction=dirty_fraction,
        semantics=semantics,
    )
    graph = SchemaGraph()
    graph.add_table("posts", tables["posts"], key=["post_id"])
    graph.add_table("authors", tables["authors"], key=["author_id"])
    graph.add_table("subreddits", tables["subreddits"], key=["subreddit_id"])
    graph.add_foreign_key(
        "posts", ["author_id"], "authors", ["author_id"],
        require_inclusion=dirty_fraction <= 0,
    )
    graph.add_foreign_key(
        "posts", ["subreddit_id"], "subreddits", ["subreddit_id"]
    )
    return graph


def reddit_star_joined(
    n_posts: int = 400,
    seed: int = 0,
    dirty_fraction: float = 0.05,
    semantics: Union[str, NullSemantics] = NullSemantics.EQ,
) -> Relation:
    """The star's virtual join along :data:`STAR_PATH` as one relation.

    Built through the provenance lift with ``on_dangling="pad"`` (dirty
    author rows become outer-join nulls), so it exercises the null
    semantics; this is what the ``reddit_star`` benchmark entry loads.
    """
    graph = reddit_star_graph(
        n_posts=n_posts,
        seed=seed,
        dirty_fraction=dirty_fraction,
        semantics=semantics,
    )
    provenance = build_provenance(graph, STAR_PATH, on_dangling="pad")
    return lift_relation(graph, provenance)


def reddit_star_fds(
    n_posts: int = 400,
    seed: int = 0,
    dirty_fraction: float = 0.05,
    top_k: Optional[int] = 25,
    **kwargs,
) -> JoinFDResult:
    """One-call demo: discover and rank the star's join FDs."""
    graph = reddit_star_graph(
        n_posts=n_posts, seed=seed, dirty_fraction=dirty_fraction
    )
    return discover_join_fds(
        graph, STAR_PATH, on_dangling="pad", top_k=top_k, **kwargs
    )
