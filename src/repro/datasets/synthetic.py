"""Synthetic relation generators.

The paper's evaluation uses real UCI/Metanome CSVs, which are not
available offline.  These generators produce deterministic (seeded)
relations in the same *regimes* — the properties that actually drive
the relative behaviour of FD-discovery algorithms:

* row count and column count,
* per-column cardinality (which controls cluster sizes and hence both
  partition memory and sampling quality),
* planted exact FDs (low-level structure TANE finds fast),
* accidental FDs from small domains (what makes wide, short data sets
  like hepatitis/horse/flight exhibit 10⁴–10⁶ FDs), and
* null rates.

All generators return :class:`~repro.relational.relation.Relation`
objects encoded under ``null = null`` semantics by default.
"""

from __future__ import annotations

import random
from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Union

from ..relational.null import NULL, NullSemantics
from ..relational.relation import Relation
from ..relational.schema import RelationSchema


def random_relation(
    n_rows: int,
    n_cols: int,
    domain_sizes: Union[int, Sequence[int]] = 8,
    null_rate: float = 0.0,
    seed: int = 0,
    semantics: Union[str, NullSemantics] = NullSemantics.EQ,
) -> Relation:
    """Independent uniform columns.

    ``domain_sizes`` may be one int for all columns or one per column.
    Small domains yield many accidental FDs; domains near ``n_rows``
    yield near-keys and almost none.
    """
    rng = random.Random(seed)
    if isinstance(domain_sizes, int):
        sizes = [domain_sizes] * n_cols
    else:
        sizes = list(domain_sizes)
        if len(sizes) != n_cols:
            raise ValueError("need one domain size per column")
    rows: List[List[object]] = []
    for _ in range(n_rows):
        row: List[object] = []
        for col in range(n_cols):
            if null_rate > 0.0 and rng.random() < null_rate:
                row.append(NULL)
            else:
                row.append(f"v{rng.randrange(max(1, sizes[col]))}")
        rows.append(row)
    return Relation.from_rows(rows, RelationSchema.of_width(n_cols), semantics)


def planted_fd_relation(
    n_rows: int,
    n_cols: int,
    planted: Sequence[Tuple[Sequence[int], int]],
    base_domain: int = 16,
    noise_rate: float = 0.0,
    null_rate: float = 0.0,
    seed: int = 0,
    semantics: Union[str, NullSemantics] = NullSemantics.EQ,
) -> Relation:
    """Random base columns plus columns derived to satisfy planted FDs.

    Each ``(lhs_columns, rhs_column)`` entry makes the RHS column a
    deterministic function of the LHS columns' values (so the FD holds
    exactly), except that with probability ``noise_rate`` a row gets an
    independent random value — turning the FD into a violated pattern,
    useful for testing that discovery does *not* report it.
    """
    rng = random.Random(seed)
    derived: Dict[int, Sequence[int]] = {}
    for lhs, rhs in planted:
        if rhs in derived:
            raise ValueError(f"column {rhs} derived twice")
        if rhs in lhs:
            raise ValueError("a column cannot determine itself")
        derived[rhs] = list(lhs)

    # Deterministic per-column mapping from LHS value tuples to RHS
    # values (Python's built-in hash is randomized per process).
    value_maps: Dict[int, Dict[Tuple[object, ...], str]] = {
        col: {} for col in derived
    }

    rows: List[List[object]] = []
    for _ in range(n_rows):
        row: List[object] = [None] * n_cols
        for col in range(n_cols):
            if col not in derived:
                row[col] = f"v{rng.randrange(base_domain)}"
        for col in range(n_cols):
            if col in derived:
                if noise_rate > 0.0 and rng.random() < noise_rate:
                    row[col] = f"n{rng.randrange(base_domain)}"
                else:
                    source = tuple(row[c] for c in derived[col])
                    mapping = value_maps[col]
                    if source not in mapping:
                        mapping[source] = f"d{len(mapping)}"
                    row[col] = mapping[source]
        if null_rate > 0.0:
            for col in range(n_cols):
                if rng.random() < null_rate:
                    row[col] = NULL
        rows.append(row)
    return Relation.from_rows(rows, RelationSchema.of_width(n_cols), semantics)


def fd_rich_relation(
    n_rows: int,
    n_cols: int,
    domain_size: int = 3,
    null_rate: float = 0.0,
    seed: int = 0,
    semantics: Union[str, NullSemantics] = NullSemantics.EQ,
) -> Relation:
    """Short-and-wide data over tiny domains.

    With ``domain_size**k`` quickly exceeding ``n_rows``, most k-column
    combinations become keys, so enormous numbers of accidental FDs
    appear at middle lattice levels — the hepatitis/horse/flight
    regime that row-based algorithms love and TANE cannot survive.
    """
    return random_relation(
        n_rows, n_cols, domain_size, null_rate, seed, semantics
    )


def fd_reduced_relation(
    n_rows: int,
    n_cols: int = 30,
    lhs_size: int = 3,
    n_planted: int = 10,
    base_domain: int = 12,
    seed: int = 0,
) -> Relation:
    """A Metanome ``fd_reduced``-style generator.

    All planted FDs have exactly ``lhs_size`` LHS attributes drawn from
    the base columns, so valid FDs concentrate on one low lattice level
    — the one regime where TANE shines in Table II.
    """
    rng = random.Random(seed)
    n_base = n_cols - n_planted
    if n_base < lhs_size:
        raise ValueError("not enough base columns for the requested LHS size")
    planted: List[Tuple[List[int], int]] = []
    for rhs in range(n_base, n_cols):
        lhs = sorted(rng.sample(range(n_base), lhs_size))
        planted.append((lhs, rhs))
    return planted_fd_relation(
        n_rows, n_cols, planted, base_domain=base_domain, seed=seed
    )


def zipf_relation(
    n_rows: int,
    n_cols: int,
    domain_sizes: Sequence[int],
    skew: float = 1.2,
    null_rate: float = 0.0,
    seed: int = 0,
) -> Relation:
    """Columns with Zipf-skewed value frequencies.

    Real categorical data is skewed: a few values dominate.  Skew makes
    singleton-partition clusters uneven, which matters to the sorted
    neighborhood sampler and to redundancy counts.
    """
    rng = random.Random(seed)
    columns: Dict[str, List[object]] = {}
    for col in range(n_cols):
        size = max(1, domain_sizes[col])
        weights = [1.0 / (rank + 1) ** skew for rank in range(size)]
        values = rng.choices(range(size), weights=weights, k=n_rows)
        columns[f"col{col}"] = [
            NULL if null_rate > 0.0 and rng.random() < null_rate else f"v{v}"
            for v in values
        ]
    return Relation.from_columns(columns)


def constant_column_relation(
    n_rows: int, n_cols: int, constant_cols: Iterable[int], seed: int = 0
) -> Relation:
    """Random data with some columns held constant (∅ -> A FDs)."""
    rng = random.Random(seed)
    constants = set(constant_cols)
    rows = [
        [
            "fixed" if col in constants else f"v{rng.randrange(max(2, n_rows // 2))}"
            for col in range(n_cols)
        ]
        for _ in range(n_rows)
    ]
    return Relation.from_rows(rows, RelationSchema.of_width(n_cols))


def template_correlated_relation(
    n_rows: int,
    n_cols: int,
    n_templates: int,
    high_cards: Sequence[int] = (),
    mutate_cols: Sequence[int] = (),
    mutation_rate: float = 0.08,
    null_rates: Optional[Dict[int, float]] = None,
    seed: int = 0,
) -> Relation:
    """Wide data whose categorical block is drawn from few templates.

    The first ``len(high_cards)`` columns are independent high-
    cardinality columns; the remaining columns come from a pool of
    ``n_templates`` template rows, with per-cell mutations applied to
    ``mutate_cols`` (indices *within the template block*).  Because any
    combination of template columns takes at most
    ``n_templates × mutation variants`` distinct values, accidental
    uniqueness — and with it the key explosion that plagues independent
    wide columns — stays bounded even at thousands of rows.  This is
    the correlation profile of real high-dimensional categorical data
    (the paper's diabetic set).
    """
    rng = random.Random(seed)
    n_high = len(high_cards)
    n_tpl_cols = n_cols - n_high
    if n_tpl_cols <= 0:
        raise ValueError("need at least one template column")
    templates = [
        [
            f"t{rng.randrange(8)}_{col}" if rng.random() < 0.7 else f"s{rng.randrange(3)}"
            for col in range(n_tpl_cols)
        ]
        for _ in range(max(1, n_templates))
    ]
    rows: List[List[object]] = []
    for _ in range(n_rows):
        row: List[object] = [f"h{rng.randrange(max(1, card))}" for card in high_cards]
        template = list(rng.choice(templates))
        for col in mutate_cols:
            if rng.random() < mutation_rate:
                template[col] = f"m{rng.randrange(6)}"
        row.extend(template)
        if null_rates:
            for col, rate in null_rates.items():
                if rng.random() < rate:
                    row[col] = NULL
        rows.append(row)
    return Relation.from_rows(rows, RelationSchema.of_width(n_cols))


def duplicate_template_relation(
    n_rows: int,
    n_cols: int,
    n_templates: int,
    mutation_rate: float = 0.1,
    null_rate: float = 0.0,
    seed: int = 0,
) -> Relation:
    """Rows cloned from a template pool with per-cell mutations.

    Mimics dirty real-world data (the merge/purge setting the sorted
    neighborhood method was built for): near-duplicate rows produce
    large, informative agree sets.
    """
    rng = random.Random(seed)
    templates = [
        [f"t{t}_{col}" for col in range(n_cols)] for t in range(max(1, n_templates))
    ]
    rows: List[List[object]] = []
    for _ in range(n_rows):
        row = list(rng.choice(templates))
        for col in range(n_cols):
            if rng.random() < mutation_rate:
                row[col] = f"m{rng.randrange(n_rows)}"
            if null_rate > 0.0 and rng.random() < null_rate:
                row[col] = NULL
        rows.append(row)
    return Relation.from_rows(rows, RelationSchema.of_width(n_cols))
