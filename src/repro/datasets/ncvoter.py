"""A deterministic ncvoter-style replica (paper Table I / §VI-B).

The paper's running example is the ncvoter benchmark: 1,000 rows and 19
columns of North-Carolina voter registrations with a near-key voter id,
a constant state, zip codes that mostly determine cities, mostly-null
name suffixes, and a couple of dirty duplicate rows.  This generator
reproduces those *relationships* with synthetic vocabularies so the
qualitative analyses (σ1–σ4, the city-determinant table) have the
structure they need.
"""

from __future__ import annotations

import random
from typing import List

from ..relational.null import NULL
from ..relational.relation import Relation
from ..relational.schema import RelationSchema

NCVOTER_COLUMNS = [
    "voter_id",
    "first_name",
    "middle_name",
    "last_name",
    "name_suffix",
    "age",
    "gender",
    "street_address",
    "city",
    "state",
    "zip_code",
    "full_phone_num",
    "race",
    "ethnic",
    "party",
    "reg_status",
    "precinct",
    "register_date",
    "download_month",
]

_FIRST_NAMES = [
    "joseph", "essie", "lila", "sallie", "herbert", "barbara", "albert",
    "clyde", "louise", "walter", "christine", "mary", "james", "linda",
    "robert", "patricia", "john", "jennifer", "michael", "elizabeth",
]
_LAST_NAMES = [
    "cox", "warren", "morris", "futrell", "johnson", "davenport", "hurst",
    "smith", "brown", "jones", "miller", "davis", "wilson", "moore",
]
_SUFFIXES = ["jr", "sr", "ii", "iii"]
_RACES = ["w", "b", "a", "o"]
_PARTIES = ["dem", "rep", "una", "lib"]


def ncvoter_like(
    n_rows: int = 1000,
    seed: int = 0,
    n_cities: int = 40,
    dirty_duplicates: int = 1,
) -> Relation:
    """Generate an ncvoter-shaped relation.

    Structural guarantees baked in:

    * ``state`` is constant ("nc") — the paper's σ1 with ``n_rows``
      redundant occurrences;
    * ``voter_id`` is a key except for ``dirty_duplicates`` repeated ids
      with differing street addresses — σ4's two redundant occurrences;
    * each city has 1–2 zip codes and most zips map to one city, but a
      few zips are shared between two cities, so ``zip_code`` alone does
      not determine ``city`` while composites like
      ``last_name, zip_code`` largely do — the σ2 pattern;
    * ``name_suffix`` and ``middle_name`` are null-heavy, feeding the
      σ3 "accidental FD" analysis;
    * ``precinct`` is derived from (city, street) so genuine non-trivial
      FDs exist for the covers experiments.
    """
    rng = random.Random(seed)
    cities = [f"city{i}" for i in range(n_cities)]
    # Zip assignment: most cities get their own zips; every 5th city
    # shares a zip with its successor so zip alone is not a determinant.
    zips_of_city: List[List[str]] = []
    zip_counter = 27000
    for i, _ in enumerate(cities):
        if i % 5 == 1:
            zips_of_city.append([zips_of_city[i - 1][0]])
            continue
        count = 1 + (i % 2)
        zips_of_city.append([str(zip_counter + j) for j in range(count)])
        zip_counter += count

    streets_of_city = {
        city: [f"{rng.randrange(1, 9999)} {word} st" for word in
               rng.sample(["oak", "main", "elm", "pine", "maple", "hwy",
                           "kimesville", "jefferson", "purvis", "gentry"], 6)]
        for city in cities
    }

    rows: List[List[object]] = []
    used_dirty = 0
    for i in range(n_rows):
        city_idx = rng.randrange(n_cities)
        city = cities[city_idx]
        zip_code = rng.choice(zips_of_city[city_idx])
        street = rng.choice(streets_of_city[city])
        first = rng.choice(_FIRST_NAMES)
        last = rng.choice(_LAST_NAMES)
        gender = "f" if first in _FIRST_NAMES[1::2] else "m"
        suffix = rng.choice(_SUFFIXES) if rng.random() < 0.04 else NULL
        middle = rng.choice(_FIRST_NAMES) if rng.random() < 0.5 else NULL
        age = str(18 + rng.randrange(80))
        phone = f"252{rng.randrange(10 ** 7):07d}" if rng.random() < 0.9 else NULL
        precinct = f"p{city_idx}_{abs(streets_of_city[city].index(street))}"
        rows.append([
            str(i + 1),
            first,
            middle,
            last,
            suffix,
            age,
            gender,
            street,
            city,
            "nc",
            zip_code,
            phone,
            rng.choice(_RACES),
            "ni" if rng.random() < 0.8 else "hl",
            rng.choice(_PARTIES),
            "a",
            precinct,
            f"200{rng.randrange(10)}-{1 + rng.randrange(12):02d}",
            "2011-10",
        ])
        # Inject the σ4 dirty duplicate: same voter id, different street.
        if used_dirty < dirty_duplicates and i == n_rows // 3:
            dirty = list(rows[-1])
            dirty[7] = rng.choice(streets_of_city[city])
            dirty[16] = f"p{city_idx}_{streets_of_city[city].index(dirty[7])}"
            rows.append(dirty)
            used_dirty += 1
    rows = rows[:n_rows]
    return Relation.from_rows(rows, RelationSchema(NCVOTER_COLUMNS))
