"""Data sets: synthetic generators and named benchmark replicas."""

from .armstrong import armstrong_relation, closed_sets
from .benchmarks import (
    BenchmarkSpec,
    benchmark_names,
    get_spec,
    load_benchmark,
)
from .ncvoter import NCVOTER_COLUMNS, ncvoter_like
from .star import (
    STAR_PATH,
    reddit_star_fds,
    reddit_star_graph,
    reddit_star_joined,
    reddit_star_tables,
)
from .synthetic import (
    constant_column_relation,
    duplicate_template_relation,
    fd_reduced_relation,
    fd_rich_relation,
    planted_fd_relation,
    random_relation,
    template_correlated_relation,
    zipf_relation,
)

__all__ = [
    "BenchmarkSpec",
    "armstrong_relation",
    "closed_sets",
    "NCVOTER_COLUMNS",
    "benchmark_names",
    "constant_column_relation",
    "duplicate_template_relation",
    "fd_reduced_relation",
    "fd_rich_relation",
    "get_spec",
    "load_benchmark",
    "ncvoter_like",
    "planted_fd_relation",
    "random_relation",
    "STAR_PATH",
    "reddit_star_fds",
    "reddit_star_graph",
    "reddit_star_joined",
    "reddit_star_tables",
    "template_correlated_relation",
    "zipf_relation",
]
