"""Deterministic replicas of the paper's benchmark data sets.

Each named spec records the *paper-scale* shape (rows, columns, and the
Table II FD count where given) and a *bench-scale* default row count at
which the pure-Python harness runs in reasonable time.

Two generator families cover the two regimes that matter:

* **FD-sparse** data (chess, adult, weather, pdbx, lineitem, ...) uses
  :func:`~repro.datasets.engineered.engineered_relation`, which plants
  keys and FDs and *kills* everything else with twin rows.  Independent
  random columns cannot replicate these data sets: at bench scale some
  lattice level always turns accidentally unique and floods the output
  with FDs the real data does not have.  The replica FD counts are
  therefore deliberate, but smaller than the paper's (documented in
  EXPERIMENTS.md).
* **FD-rich** data (hepatitis, horse, plista, flight, echo, ...) uses
  small-domain random columns whose natural accidental-FD explosion *is*
  the phenomenon; rows/columns are tuned so FD counts land within a
  small factor of the paper's at tractable runtimes.

The replicas reproduce each data set's *regime* — shapes, cardinality
profile, FD structure, null rates — not its actual values; see
DESIGN.md §3.
"""

from __future__ import annotations

import itertools
import random
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..relational.null import NULL
from ..relational.relation import Relation
from ..relational.schema import RelationSchema
from .engineered import engineered_relation
from .ncvoter import ncvoter_like
from .synthetic import template_correlated_relation


def _mixed_relation(
    n_rows: int,
    domains: Sequence[int],
    planted: Sequence[Tuple[Sequence[int], int]] = (),
    null_rates: Optional[Dict[int, float]] = None,
    seed: int = 0,
) -> Relation:
    """Per-column domain sizes, derived columns, per-column null rates.

    The FD-rich workhorse: base columns draw uniformly from their
    domain; each planted ``(lhs, rhs)`` makes ``rhs`` a deterministic
    function of the LHS values.  No accidental-FD suppression — the
    explosion is the point for the data sets that use this.
    """
    rng = random.Random(seed)
    null_rates = null_rates or {}
    n_cols = len(domains)
    derived = {rhs: list(lhs) for lhs, rhs in planted}
    value_maps: Dict[int, Dict[Tuple[object, ...], str]] = {c: {} for c in derived}

    rows: List[List[object]] = []
    for _ in range(n_rows):
        row: List[object] = [None] * n_cols
        for col in range(n_cols):
            if col not in derived:
                row[col] = f"v{rng.randrange(max(1, domains[col]))}"
        for col, lhs in derived.items():
            source = tuple(row[c] for c in lhs)
            mapping = value_maps[col]
            if source not in mapping:
                mapping[source] = f"d{len(mapping) % max(1, domains[col])}"
            row[col] = mapping[source]
        for col, rate in null_rates.items():
            if rng.random() < rate:
                row[col] = NULL
        rows.append(row)
    return Relation.from_rows(rows, RelationSchema.of_width(n_cols))


def _balance_like(n_rows: int, seed: int = 0) -> Relation:
    """balance-scale: the class column is a pure function of 4 features."""
    rng = random.Random(seed)
    combos = list(itertools.product(range(5), repeat=4))
    rng.shuffle(combos)
    chosen = list(itertools.islice(itertools.cycle(combos), n_rows))
    rows = []
    for lw, ld, rw, rd in chosen:
        left, right = (lw + 1) * (ld + 1), (rw + 1) * (rd + 1)
        label = "L" if left > right else ("R" if right > left else "B")
        rows.append([str(lw), str(ld), str(rw), str(rd), label])
    schema = RelationSchema(
        ["left_weight", "left_dist", "right_weight", "right_dist", "class"]
    )
    return Relation.from_rows(rows, schema)


@dataclass(frozen=True)
class BenchmarkSpec:
    """One named benchmark replica."""

    name: str
    paper_rows: int
    paper_cols: int
    paper_fds: Optional[int]
    bench_rows: int
    description: str
    has_nulls: bool
    builder: Callable[[int, int], Relation]

    def load(self, n_rows: Optional[int] = None, seed: int = 0) -> Relation:
        """Generate the replica at ``n_rows`` (default: bench scale)."""
        rows = self.bench_rows if n_rows is None else n_rows
        return self.builder(rows, seed)


_SPECS: Dict[str, BenchmarkSpec] = {}


def _register(
    name: str,
    paper_rows: int,
    paper_cols: int,
    paper_fds: Optional[int],
    bench_rows: int,
    description: str,
    builder: Callable[[int, int], Relation],
    has_nulls: bool = False,
) -> None:
    _SPECS[name] = BenchmarkSpec(
        name=name,
        paper_rows=paper_rows,
        paper_cols=paper_cols,
        paper_fds=paper_fds,
        bench_rows=bench_rows,
        description=description,
        has_nulls=has_nulls,
        builder=builder,
    )


# ---------------------------------------------------------------------------
# Small natural data sets (accidental structure at true scale is fine)
# ---------------------------------------------------------------------------

_register(
    "iris", 150, 5, 4, 150,
    "tiny numeric; a handful of FDs",
    lambda rows, seed: _mixed_relation(
        rows, [22, 16, 24, 15, 3], [([0, 1, 2], 4)], seed=seed
    ),
)
_register(
    "balance", 625, 5, 1, 625,
    "4 features functionally determine the class",
    lambda rows, seed: _balance_like(rows, seed),
)
_register(
    "abalone", 4177, 9, 137, 2000,
    "numeric columns of graded cardinality; moderate FD count",
    lambda rows, seed: _mixed_relation(
        rows, [3, 90, 80, 75, 300, 260, 220, 200, 28],
        [([1, 4], 2), ([4, 5], 6)], seed=seed,
    ),
)
_register(
    "echo", 132, 13, 527, 132,
    "tiny rows, mid-cardinality numerics: many accidental FDs",
    lambda rows, seed: _mixed_relation(
        rows, [25, 2, 40, 30, 2, 35, 30, 28, 26, 24, 3, 2, 2],
        null_rates={2: 0.08, 5: 0.1, 9: 0.05}, seed=seed,
    ),
    has_nulls=True,
)

# ---------------------------------------------------------------------------
# FD-sparse data sets: engineered exact FD structure
# ---------------------------------------------------------------------------

_register(
    "chess", 28056, 7, 1, 3000,
    "many rows, few columns, a single FD (position -> outcome)",
    lambda rows, seed: engineered_relation(
        rows, 7, planted=[([0, 1, 2, 3, 4, 5], 6)], domains=8, seed=seed
    ),
)
_register(
    "nursery", 12960, 9, 1, 2500,
    "categorical features functionally determine the class",
    lambda rows, seed: engineered_relation(
        rows, 9, planted=[([0, 1, 2, 3, 4, 5, 6, 7], 8)], domains=4, seed=seed
    ),
)
_register(
    "breast", 699, 11, 46, 699,
    "near-key id plus cytology features",
    lambda rows, seed: engineered_relation(
        rows, 11, keys=[[0]], planted=[([1, 2], 3), ([4, 5], 6)],
        domains=10, null_rates={7: 0.03}, duplicate_factor=0.02, seed=seed,
    ),
    has_nulls=True,
)
_register(
    "bridges", 108, 13, 142, 108,
    "small mixed-type data with missing values",
    lambda rows, seed: engineered_relation(
        rows, 13, keys=[[0], [1, 2]], planted=[([3, 4], 5)],
        domains=6, null_rates={8: 0.12, 11: 0.06}, seed=seed,
    ),
    has_nulls=True,
)
_register(
    "adult", 48842, 14, 78, 3000,
    "census rows; mixed cardinalities, few FDs",
    lambda rows, seed: engineered_relation(
        rows, 14, keys=[[0, 1], [2, 3]],
        planted=[([4, 5], 6), ([7], 8)],
        domains=12, duplicate_factor=0.05, seed=seed,
    ),
)
_register(
    "letter", 20000, 17, 61, 3000,
    "16 numeric features plus class; a few dozen FDs",
    lambda rows, seed: engineered_relation(
        rows, 17, keys=[[0, 1], [2, 3], [4, 5]],
        planted=[([6, 7], 8)],
        domains=16, seed=seed,
    ),
)
_register(
    "fd_reduced", 250000, 30, 89571, 2000,
    "synthetic Metanome generator: FDs concentrated on 3-attribute LHSs",
    lambda rows, seed: engineered_relation(
        rows, 18,
        planted=[
            ([0, 1, 2], 12), ([3, 4, 5], 13), ([6, 7, 8], 14),
            ([9, 10, 11], 15),
        ],
        domains=12, seed=seed,
    ),
)
_register(
    "weather", 262920, 18, 918, 4000,
    "many rows, 18 cols, FDs spread over several lattice levels",
    lambda rows, seed: engineered_relation(
        rows, 18, keys=[[0, 1]],
        planted=[([2, 3], 4), ([5, 6, 7], 8), ([9, 10], 11), ([12, 13, 14], 15)],
        domains=20, duplicate_factor=0.05, seed=seed,
    ),
)
_register(
    "pdbx", 17305799, 13, 68, 6000,
    "huge rows, tiny FD count: id-like keys determine everything",
    lambda rows, seed: engineered_relation(
        rows, 13, keys=[[0], [1]], planted=[([2, 3], 4)],
        domains=40, null_rates={8: 0.01}, duplicate_factor=0.02, seed=seed,
    ),
    has_nulls=True,
)
_register(
    "lineitem", 6001215, 16, 3984, 3000,
    "TPC-H lineitem: composite order key plus derived pricing columns",
    lambda rows, seed: engineered_relation(
        rows, 16, keys=[[0, 1]],
        planted=[([2, 3], 4), ([5], 6), ([7, 8], 9)],
        domains=25, seed=seed,
    ),
)
_register(
    "uniprot", 512000, 30, 3703, 700,
    "protein records: id keys, wide schema, nulls",
    lambda rows, seed: engineered_relation(
        rows, 30, keys=[[0], [1]],
        planted=[([2, 3], 4), ([5, 6], 7), ([8], 9), ([10, 11, 12], 13)],
        domains=25, null_rates={22: 0.1, 24: 0.12, 26: 0.15}, seed=seed,
    ),
    has_nulls=True,
)
_register(
    "china", 197190, 24, None, 800,
    "Table IV-only data set; keyed records with heavy nulls",
    lambda rows, seed: engineered_relation(
        rows, 24, keys=[[0]], planted=[([1, 2], 3), ([4], 5)],
        domains=18, null_rates={18: 0.08, 20: 0.1},
        duplicate_factor=0.08, seed=seed,
    ),
    has_nulls=True,
)

# ---------------------------------------------------------------------------
# FD-rich data sets: natural accidental explosion, scaled for runtime
# ---------------------------------------------------------------------------

_register(
    "ncvoter", 1000, 19, 758, 1000,
    "the paper's running example: voters with a constant state",
    lambda rows, seed: ncvoter_like(rows, seed),
    has_nulls=True,
)
_register(
    "hepatitis", 155, 20, 8250, 70,
    "short and wide over tiny domains: thousands of accidental FDs",
    lambda rows, seed: _mixed_relation(
        rows, [70, 2, 2, 2, 2, 2, 2, 2, 2, 2, 2, 2, 2, 30, 25, 35, 20, 28, 2, 2],
        null_rates={13: 0.06, 15: 0.1, 16: 0.04}, seed=seed,
    ),
    has_nulls=True,
)
_register(
    "horse", 368, 29, 128727, 40,
    "the FD explosion case: 29 columns, small domains, nulls",
    lambda rows, seed: _mixed_relation(
        rows, [60, 2, 50, 45, 40, 5, 4, 6, 5, 5, 5, 4, 4, 4, 5, 5, 4, 25,
               22, 4, 4, 4, 35, 3, 2, 30, 28, 3, 2],
        null_rates={3: 0.15, 4: 0.2, 17: 0.25, 22: 0.3}, seed=seed,
    ),
    has_nulls=True,
)
_register(
    "plista", 1000, 63, 178152, 50,
    "wide web-log data (63 cols); bench replica uses 31 cols",
    lambda rows, seed: _mixed_relation(
        rows, [40, 30, 25, 22, 20, 18, 16, 6, 5, 6, 5, 6, 5, 6, 5, 6,
               5, 6, 5, 6, 5, 6, 5, 6, 5, 6, 5, 6, 5, 6, 5],
        null_rates={8: 0.08}, seed=seed,
    ),
    has_nulls=True,
)
_register(
    "flight", 1000, 109, 982631, 40,
    "the widest data set (109 cols); bench replica uses 33 cols",
    lambda rows, seed: _mixed_relation(
        rows, [35, 28, 24, 20, 18, 16, 6, 5, 6, 5, 6, 5, 6, 5, 6, 5,
               6, 5, 6, 5, 6, 5, 6, 5, 6, 5, 6, 5, 6, 5, 6, 5, 6],
        null_rates={7: 0.1}, seed=seed,
    ),
    has_nulls=True,
)
_register(
    "reddit_star", 54504410, 15, None, 300,
    "star schema (posts/authors/subreddits) served as its virtual join",
    lambda rows, seed: _reddit_star(rows, seed),
    has_nulls=True,
)
_register(
    "diabetic", 101766, 30, 40195, 300,
    "high-dimensional clinical data: correlated categorical block",
    lambda rows, seed: template_correlated_relation(
        rows, 30, n_templates=50,
        high_cards=[max(2, rows // 2), 25],
        mutate_cols=list(range(10)), mutation_rate=0.08,
        null_rates={5: 0.03}, seed=seed,
    ),
    has_nulls=True,
)


def _reddit_star(rows: int, seed: int) -> Relation:
    # lazy import: repro.datasets.star pulls in repro.multitable, which
    # this registry must not load unless the replica is actually used.
    from .star import reddit_star_joined

    return reddit_star_joined(n_posts=rows, seed=seed)


def benchmark_names() -> List[str]:
    """All replica names, in registration order."""
    return list(_SPECS)


def get_spec(name: str) -> BenchmarkSpec:
    """Look up a replica spec by name."""
    try:
        return _SPECS[name]
    except KeyError:
        raise ValueError(
            f"unknown benchmark {name!r}; choose from {benchmark_names()}"
        ) from None


def load_benchmark(
    name: str, n_rows: Optional[int] = None, seed: int = 0
) -> Relation:
    """Generate a named replica (``n_rows`` overrides the bench scale)."""
    return get_spec(name).load(n_rows=n_rows, seed=seed)
