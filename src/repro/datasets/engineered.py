"""Engineered relations with exactly-controlled FD structure.

Independent random columns cannot replicate FD-*sparse* benchmarks
(weather, pdbx, lineitem, ...): at any bench scale there is a lattice
level where attribute combinations become accidentally unique, and the
accidental keys flood the output with FDs the real data set does not
have.  Real data avoids this through massive value-combination reuse.

:func:`engineered_relation` solves the control problem directly.  The
valid minimal FDs of its output are exactly:

* one FD ``X* -> A`` per planted ``(lhs, rhs)`` pair (RHS values are a
  deterministic function of the LHS values), and
* ``K -> B`` for every planted key ``K`` and column ``B ∉ K`` (key
  combinations are unique by construction).

Everything else is *killed* by injected twin rows: for every column
``A`` (and, for planted/key structure, every way an LHS could dodge
it) a pair of rows is added that agrees everywhere except on a small,
chosen difference set containing ``A``.  Each such pair is a
ground-truth violation of all FDs ``X -> A`` with ``X`` inside the
agree set, so no accidental FD or accidental key can survive.
"""

from __future__ import annotations

import itertools
import random
from typing import Dict, List, Optional, Sequence, Tuple

from ..relational.null import NULL
from ..relational.relation import Relation
from ..relational.schema import RelationSchema


class EngineeringError(ValueError):
    """Raised when the requested FD structure is inconsistent."""


def engineered_relation(
    n_rows: int,
    n_cols: int,
    keys: Sequence[Sequence[int]] = (),
    planted: Sequence[Tuple[Sequence[int], int]] = (),
    domains: int = 12,
    derived_domain: Optional[int] = None,
    duplicate_factor: float = 0.0,
    null_rates: Optional[Dict[int, float]] = None,
    seed: int = 0,
) -> Relation:
    """Build a relation whose minimal FDs are exactly the requested ones.

    Args:
        n_rows: number of base rows (twins and duplicates add a few
            percent on top).
        n_cols: schema width.
        keys: column sets to make unique (pairwise disjoint; at most
            3 recommended — twin count grows with their product).
        planted: ``(lhs, rhs)`` FDs; LHSs must be pairwise disjoint,
            drawn from base columns only (not key or derived columns).
        domains: domain size of plain base columns.
        derived_domain: codomain size for derived columns (defaults to
            ``max(4, int(n_rows ** 0.5))``); must be small enough that
            the derived column does not accidentally determine its
            sources.
        duplicate_factor: fraction of extra exact-duplicate rows to
            append (no FD effect; enriches redundancy counts).
        null_rates: per-column null probability — allowed only on
            columns not involved in keys or planted FDs, so the nulls
            never disturb the engineered structure.
        seed: RNG seed; output is deterministic in all arguments.

    Exactness guarantee: under ``null = null`` semantics the minimal
    FDs of the output are exactly :func:`expected_fds`.  Under
    ``null ≠ null`` the same holds unless *both* nulls and duplicates
    are enabled: a duplicated row containing a null then genuinely
    violates ``key -> nulled column`` (the two null occurrences count
    as different values), so those key FDs correctly disappear.
    """
    rng = random.Random(seed)
    null_rates = dict(null_rates or {})
    if derived_domain is None:
        derived_domain = max(4, int(n_rows ** 0.5))

    key_cols = _validate(n_cols, keys, planted, null_rates)
    derived = {rhs: list(lhs) for lhs, rhs in planted}

    fresh_counter = itertools.count()

    def fresh(prefix: str) -> str:
        return f"{prefix}!{next(fresh_counter)}"

    # ------------------------------------------------------------------
    # Base rows
    # ------------------------------------------------------------------
    value_maps: Dict[int, Dict[Tuple[object, ...], str]] = {c: {} for c in derived}

    def derive(col: int, row: List[object]) -> str:
        source = tuple(row[c] for c in derived[col])
        mapping = value_maps[col]
        if source not in mapping:
            mapping[source] = f"d{col}_{len(mapping) % derived_domain}"
        return mapping[source]

    side = max(2, int(n_rows ** 0.5) + 1)
    rows: List[List[object]] = []
    for index in range(n_rows):
        row: List[object] = [None] * n_cols
        for key_index, key in enumerate(keys):
            parts = _mixed_radix(index, len(key), side)
            for position, col in enumerate(key):
                row[col] = f"k{key_index}.{position}_{parts[position]}"
        for col in range(n_cols):
            if row[col] is None and col not in derived:
                row[col] = f"b{col}_{rng.randrange(domains)}"
        for col in derived:
            row[col] = derive(col, row)
        rows.append(row)

    # ------------------------------------------------------------------
    # Twin rows: one violating pair per (column, dodge combination)
    # ------------------------------------------------------------------
    # Every twin must break every key (otherwise it would duplicate a
    # key combination); ``key_breaks`` enumerates which one column of
    # each key the twin refreshes.
    key_breaks: List[List[int]] = [
        list(combo) for combo in itertools.product(*[list(k) for k in keys])
    ] or [[]]

    #: Base-row indices used as twin partners: they must stay exactly as
    #: generated (no nulls later), or the violating pair's agree set
    #: would shrink and the kill would weaken.
    protected: set = set()

    def add_twin(
        base_index: int,
        changes: Dict[int, str],
        moving_derived: Optional[int] = None,
    ) -> None:
        """Append the twin of base row ``base_index`` (a violating pair).

        The twin differs from the base on exactly ``changes`` plus
        ``moving_derived`` (when set).  Derived columns whose sources
        the changes touch are *pinned* to the base value by force-
        registering the new (necessarily fresh) source tuple in the
        value map — otherwise the recomputed derived value would leak
        into the difference set and weaken the kill.
        """
        protected.add(base_index)
        base = rows[base_index]
        twin = list(base)
        for col, value in changes.items():
            twin[col] = value
        for col, sources in derived.items():
            if not any(s in changes for s in sources):
                continue
            source = tuple(twin[c] for c in sources)
            mapping = value_maps[col]
            if col == moving_derived:
                twin[col] = derive(col, twin)
            else:
                # ``source`` contains a fresh value, so it cannot have
                # been seen before; pin it to the base value.
                mapping.setdefault(source, base[col])
                twin[col] = mapping[source]
        rows.append(twin)

    for col in range(n_cols):
        if col in derived:
            # Change one LHS source (so the planted FD is respected)
            # and pick fresh sources until the derived value moves.
            for source_col in derived[col]:
                for breaks in key_breaks:
                    base_index = rng.randrange(n_rows)
                    base = rows[base_index]
                    changes = {
                        k: fresh(f"k{k}") for k in breaks if k != source_col
                    }
                    probe = list(base)
                    for change_col, value in changes.items():
                        probe[change_col] = value
                    while True:
                        candidate = fresh(f"b{source_col}")
                        probe[source_col] = candidate
                        if derive(col, probe) != base[col]:
                            changes[source_col] = candidate
                            break
                    add_twin(base_index, changes, moving_derived=col)
        else:
            for breaks in key_breaks:
                base_index = rng.randrange(n_rows)
                changes = {k: fresh(f"k{k}") for k in breaks if k != col}
                changes[col] = fresh(f"c{col}")
                add_twin(base_index, changes)

    # ------------------------------------------------------------------
    # Nulls (unprotected base rows only — twin pairs stay null-free so
    # their kills are exact under both null semantics), then exact
    # duplicates (redundancy fodder, no FD effect).
    # ------------------------------------------------------------------
    if null_rates:
        for index in range(n_rows):
            if index in protected:
                continue
            for col, rate in null_rates.items():
                if rng.random() < rate:
                    rows[index][col] = NULL

    n_duplicates = int(duplicate_factor * n_rows)
    for _ in range(n_duplicates):
        rows.append(list(rng.choice(rows[:n_rows])))

    return Relation.from_rows(rows, RelationSchema.of_width(n_cols))


def expected_fds(
    n_cols: int,
    keys: Sequence[Sequence[int]] = (),
    planted: Sequence[Tuple[Sequence[int], int]] = (),
) -> List[Tuple[Tuple[int, ...], int]]:
    """The minimal FDs :func:`engineered_relation` is designed to satisfy.

    Returns ``(lhs_columns, rhs_column)`` pairs: one per planted FD and
    one per (key, non-member column) combination.
    """
    result: List[Tuple[Tuple[int, ...], int]] = [
        (tuple(sorted(lhs)), rhs) for lhs, rhs in planted
    ]
    for key in keys:
        members = set(key)
        for col in range(n_cols):
            if col not in members:
                result.append((tuple(sorted(key)), col))
    return sorted(set(result))


def _mixed_radix(index: int, length: int, base: int) -> List[int]:
    """Split ``index`` into ``length`` digits so the tuple is unique."""
    if length == 1:
        return [index]
    digits = []
    remaining = index
    for _ in range(length - 1):
        digits.append(remaining % base)
        remaining //= base
    digits.append(remaining)
    return digits


def _validate(
    n_cols: int,
    keys: Sequence[Sequence[int]],
    planted: Sequence[Tuple[Sequence[int], int]],
    null_rates: Dict[int, float],
) -> set:
    """Check structural constraints; return the set of key columns."""
    key_cols: set = set()
    for key in keys:
        if not key:
            raise EngineeringError("keys must be non-empty")
        members = set(key)
        if not members.isdisjoint(key_cols):
            raise EngineeringError("keys must be pairwise disjoint")
        if any(not 0 <= c < n_cols for c in members):
            raise EngineeringError("key column out of range")
        key_cols |= members

    derived_cols = set()
    lhs_cols: set = set()
    for lhs, rhs in planted:
        lhs_set = set(lhs)
        if not lhs_set:
            raise EngineeringError("planted FDs need a non-empty LHS")
        if rhs in lhs_set:
            raise EngineeringError("planted FD may not be trivial")
        if rhs in derived_cols:
            raise EngineeringError(f"column {rhs} derived twice")
        if not lhs_set.isdisjoint(lhs_cols):
            raise EngineeringError("planted LHSs must be pairwise disjoint")
        if not lhs_set.isdisjoint(key_cols) or rhs in key_cols:
            raise EngineeringError("planted FDs may not touch key columns")
        derived_cols.add(rhs)
        lhs_cols |= lhs_set
    if not lhs_cols.isdisjoint(derived_cols):
        raise EngineeringError("planted LHSs may not include derived columns")

    structural = key_cols | derived_cols | lhs_cols
    for col in null_rates:
        if col in structural:
            raise EngineeringError(
                f"null injection on structural column {col} would break the"
                " engineered FDs"
            )
    return key_cols
