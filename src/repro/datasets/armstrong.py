"""Armstrong relations: data sets realizing exactly a given FD set.

An Armstrong relation for Σ satisfies every FD implied by Σ and
violates every FD not implied by it (Lopes et al. [10] use them for
profiling; we use them to round-trip the discovery pipeline).

Construction: a *spine* row ``t0`` plus, for every closed attribute set
``C ⊊ R`` (``C = C⁺``), one row agreeing with ``t0`` exactly on ``C``.
Any two non-spine rows then agree exactly on the intersection of their
closed sets (itself closed), so ``X → A`` is violated iff some closed
``C ⊇ X`` misses ``A`` — which happens iff ``A ∉ X⁺``.  Closed sets
are enumerated by closing all subsets of ``R``, so the construction is
exponential and guarded to small schemas (the intended use is testing
and examples).
"""

from __future__ import annotations

from typing import Iterable, List, Sequence, Set

from ..covers.implication import ImplicationEngine
from ..relational import attrset
from ..relational.attrset import AttrSet
from ..relational.fd import FD
from ..relational.relation import Relation
from ..relational.schema import RelationSchema

#: Enumerating closed sets walks all 2^n subsets; keep schemas small.
MAX_ARMSTRONG_COLS = 16


def closed_sets(n_cols: int, fds: Sequence[FD]) -> List[AttrSet]:
    """All closed attribute sets ``C = C⁺`` strictly below ``R``."""
    if n_cols > MAX_ARMSTRONG_COLS:
        raise ValueError(
            f"closed-set enumeration is exponential; max {MAX_ARMSTRONG_COLS} columns"
        )
    engine = ImplicationEngine(list(fds))
    full = attrset.full_set(n_cols)
    closed: Set[AttrSet] = set()
    for subset in attrset.iter_subsets(full):
        closure = engine.closure(subset)
        if closure != full:
            closed.add(closure)
    return sorted(closed)


def armstrong_relation(
    n_cols: int,
    fds: Iterable[FD],
    schema: "RelationSchema | None" = None,
) -> Relation:
    """Build an Armstrong relation for ``fds`` over ``n_cols`` columns.

    The relation has ``#closed_sets + 1`` rows (the spine plus one per
    closed set); every implied FD holds, every non-implied FD is
    violated by the (spine, closed-set) pair.  When Σ implies
    ``∅ → R`` there are no closed sets and the spine alone realizes Σ.
    """
    fd_list = list(fds)
    sets = closed_sets(n_cols, fd_list)
    if schema is None:
        schema = RelationSchema.of_width(n_cols)

    spine = [f"spine_{col}" for col in range(n_cols)]
    rows: List[List[object]] = [spine]
    for index, closed in enumerate(sets):
        row = list(spine)
        for col in range(n_cols):
            if not attrset.contains(closed, col):
                row[col] = f"x{index}_{col}"
        rows.append(row)
    return Relation.from_rows(rows, schema)
