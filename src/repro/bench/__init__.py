"""Shared benchmark harness: runs, measurement, table formatting."""

from .runner import RunRecord, measure, run_discovery, run_matrix
from .tables import format_series, format_table

__all__ = [
    "RunRecord",
    "format_series",
    "format_table",
    "measure",
    "run_discovery",
    "run_matrix",
]
