"""Experiment runner: timed, memory-tracked discovery runs with TL.

The benchmark scripts in ``benchmarks/`` share this machinery: run one
algorithm over one relation, capture wall time and tracemalloc peak
memory, and record "TL" outcomes when the configured limit trips —
mirroring Table II's reporting.
"""

from __future__ import annotations

import contextlib
import time
import tracemalloc
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Tuple, TypeVar, Union

from ..algorithms.registry import make_algorithm
from ..core.base import TimeLimitExceeded
from ..core.result import DiscoveryResult
from ..relational.relation import Relation
from ..telemetry import Tracer, trace_summary, use_tracer

T = TypeVar("T")


def measure(fn: Callable[[], T]) -> Tuple[T, float, int]:
    """Run ``fn``; return (result, seconds, tracemalloc peak bytes)."""
    tracemalloc.start()
    start = time.perf_counter()
    try:
        result = fn()
    finally:
        elapsed = time.perf_counter() - start
        _, peak = tracemalloc.get_traced_memory()
        tracemalloc.stop()
    return result, elapsed, peak


@dataclass
class RunRecord:
    """Outcome of one (data set, algorithm) cell of a results table."""

    dataset: str
    algorithm: str
    n_rows: int
    n_cols: int
    seconds: Optional[float]
    peak_memory_bytes: Optional[int]
    fd_count: Optional[int]
    timed_out: bool = False
    #: Flat telemetry summary (phase timings + metrics) when the run
    #: was traced; embeddable directly in ``BENCH_*.json`` payloads.
    telemetry: Optional[Dict[str, object]] = field(default=None, repr=False)

    @property
    def seconds_text(self) -> str:
        """Formatted runtime, or the paper's 'TL' marker."""
        if self.timed_out or self.seconds is None:
            return "TL"
        return f"{self.seconds:.3f}"

    @property
    def memory_mb_text(self) -> str:
        """Peak memory in MB (blank on timeout)."""
        if self.timed_out or self.peak_memory_bytes is None:
            return "-"
        return f"{self.peak_memory_bytes / (1024 * 1024):.1f}"


def run_discovery(
    relation: Relation,
    algorithm: str,
    dataset: str = "?",
    time_limit: Optional[float] = None,
    track_memory: bool = True,
    trace: Union[bool, Tracer] = False,
    **algorithm_kwargs,
) -> Tuple[RunRecord, Optional[DiscoveryResult]]:
    """Run one algorithm over one relation, TL-aware.

    With ``trace`` set (``True`` for a fresh tracer, or a
    :class:`~repro.telemetry.Tracer` to record onto), the per-phase
    telemetry summary lands in ``RunRecord.telemetry`` — including on
    timeouts, where the partial trace shows which phase hit the limit.
    """
    algo = make_algorithm(algorithm, time_limit=time_limit, **algorithm_kwargs)
    tracer = Tracer() if trace is True else (trace or None)
    timed_out = False
    result = None
    seconds: Optional[float] = None
    peak: Optional[int] = None
    context = use_tracer(tracer) if tracer is not None else contextlib.nullcontext()
    with context:
        try:
            if track_memory:
                result, seconds, peak = measure(lambda: algo.discover(relation))
            else:
                start = time.perf_counter()
                result = algo.discover(relation)
                seconds, peak = time.perf_counter() - start, 0
        except TimeLimitExceeded:
            timed_out = True
    record = RunRecord(
        dataset=dataset,
        algorithm=algorithm,
        n_rows=relation.n_rows,
        n_cols=relation.n_cols,
        seconds=None if timed_out else seconds,
        peak_memory_bytes=None if timed_out else peak,
        fd_count=None if timed_out else result.fd_count,
        timed_out=timed_out,
        telemetry=trace_summary(tracer) if tracer is not None else None,
    )
    return record, result


def run_matrix(
    relations: Dict[str, Relation],
    algorithms: Iterable[str],
    time_limit: Optional[float] = None,
    trace: bool = False,
) -> List[RunRecord]:
    """Run every algorithm over every relation (a results-table sweep).

    ``trace=True`` gives every cell its own tracer so each record
    carries an independent per-phase telemetry summary.
    """
    records: List[RunRecord] = []
    for dataset, relation in relations.items():
        for algorithm in algorithms:
            record, _ = run_discovery(
                relation,
                algorithm,
                dataset=dataset,
                time_limit=time_limit,
                trace=trace,
            )
            records.append(record)
    return records
