"""Plain-text table rendering for benchmark reports.

The benchmark scripts print the same rows/series the paper's tables and
figures report; this module keeps that formatting in one place.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    title: str = "",
) -> str:
    """Render an aligned monospace table."""
    str_rows: List[List[str]] = [[str(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            if i < len(widths):
                widths[i] = max(widths[i], len(cell))
            else:
                widths.append(len(cell))
    lines: List[str] = []
    if title:
        lines.append(title)
    header_line = "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers))
    lines.append(header_line)
    lines.append("-" * len(header_line))
    for row in str_rows:
        lines.append(
            "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row))
        )
    return "\n".join(lines)


def format_series(
    x_label: str,
    y_label: str,
    points: Iterable[Sequence[object]],
    title: str = "",
) -> str:
    """Render an (x, y, ...) series the way figures report data."""
    return format_table([x_label, y_label], points, title=title)
