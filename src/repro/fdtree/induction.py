"""FD induction: turning non-FDs into refined FD candidates.

Two flavours are implemented:

* :func:`synergized_induct` — the paper's Algorithm 2.  A non-FD
  ``X ↛ Y`` is applied to an *extended* FD-tree in a single traversal:
  every FD ``X' → Y'`` with ``X' ⊆ X`` loses the RHS attributes in
  ``Y``, and all non-trivial specializations ``X'A' → Y''`` that are not
  already implied by a generalization in the tree are inserted.

* :func:`classic_induct` — the induction of Flach & Savnik's FDEP,
  which handles one RHS attribute at a time (``X ↛ A`` for each
  ``A ∈ Y``) on a classical FD-tree.  It exists so the FDEP baseline
  behaves like the original algorithm the paper compares against.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence, Tuple

from ..relational import attrset
from ..relational.attrset import AttrSet
from .classic import ClassicFDTree
from .extended import ExtendedFDTree, ExtFDNode


def synergized_induct(
    tree: ExtendedFDTree,
    lhs: AttrSet,
    rhs: AttrSet,
    cl: int = 0,
    vl: int = 0,
    vl_nodes: Optional[List[ExtFDNode]] = None,
    tally: Optional[object] = None,
) -> None:
    """Apply the non-FD ``lhs ↛ rhs`` to an extended FD-tree (Algorithm 2).

    ``cl``/``vl``/``vl_nodes`` thread the controlled/validation level
    context through to Algorithm 1 so newly inserted paths receive
    consistent ids; they default to "no level tracking" for plain
    FDEP-style use.  ``tally``, when given, must expose integer
    ``induction_nodes_visited`` / ``induction_fds_inserted`` attributes
    (:class:`~repro.core.result.DiscoveryStats` does) and accumulates
    the traversal's work for telemetry.
    """
    all_attrs = attrset.full_set(tree.n_cols)
    rhs = attrset.difference(rhs & all_attrs, lhs)
    if not rhs:
        return
    visited = _induct_recursive(tree, tree.root, lhs, rhs, cl, vl, vl_nodes, tally)
    if tally is not None:
        tally.induction_nodes_visited += visited


def _induct_recursive(
    tree: ExtendedFDTree,
    node: ExtFDNode,
    full_lhs: AttrSet,
    rhs: AttrSet,
    cl: int,
    vl: int,
    vl_nodes: Optional[List[ExtFDNode]],
    tally: Optional[object] = None,
) -> int:
    """Visit every path ``⊆ full_lhs``; strip and specialize FD-nodes.

    Returns the number of nodes visited in this subtree (accumulated in
    locals so the untraced hot path pays no per-node attribute writes).
    """
    visited = 1
    removed = node.rhs & rhs
    if removed:
        tree.strip_rhs(node, rhs)
        _specialize(tree, node.path(), full_lhs, removed, cl, vl, vl_nodes, tally)

    # Iterate children (few) rather than LHS attrs (possibly many);
    # paths are strictly increasing so each node is visited once.
    # Specializations inserted along the way extend the LHS with attrs
    # outside full_lhs, so snapshotting the children keeps the visit
    # set exactly "paths ⊆ full_lhs that existed at entry".
    for attr, child in list(node.children.items()):
        if full_lhs >> attr & 1:
            visited += _induct_recursive(
                tree, child, full_lhs, rhs, cl, vl, vl_nodes, tally
            )

    if node is not tree.root and not node.children and not node.rhs:
        tree.prune_dead_path(node)
    return visited


def _specialize(
    tree: ExtendedFDTree,
    base_lhs: AttrSet,
    full_lhs: AttrSet,
    removed: AttrSet,
    cl: int,
    vl: int,
    vl_nodes: Optional[List[ExtFDNode]],
    tally: Optional[object] = None,
) -> None:
    """Insert all non-trivial, non-implied specializations of a removed FD.

    Two extension sources per the paper: attributes outside
    ``full_lhs ∪ removed`` (the invalidated FD's LHS cannot stay inside
    the non-FD's LHS), and attributes drawn from ``removed`` itself
    (which then leave the RHS).
    """
    # Minimality checks only need generalizations *through* the added
    # attribute (see find_covered_requiring) — a large prune on FD-rich
    # trees where find_covered dominates the induction cost.
    outside = attrset.complement(full_lhs | removed | base_lhs, tree.n_cols)
    for extra in attrset.iter_attrs(outside):
        new_lhs = attrset.add(base_lhs, extra)
        new_rhs = attrset.difference(
            removed, tree.find_covered_requiring(new_lhs, removed, extra)
        )
        if new_rhs:
            tree.add_fd(new_lhs, new_rhs, cl, vl, vl_nodes)
            if tally is not None:
                tally.induction_fds_inserted += attrset.count(new_rhs)

    if attrset.count(removed) > 1:
        for extra in attrset.iter_attrs(removed):
            rest = attrset.remove(removed, extra)
            new_lhs = attrset.add(base_lhs, extra)
            new_rhs = attrset.difference(
                rest, tree.find_covered_requiring(new_lhs, rest, extra)
            )
            if new_rhs:
                tree.add_fd(new_lhs, new_rhs, cl, vl, vl_nodes)
                if tally is not None:
                    tally.induction_fds_inserted += attrset.count(new_rhs)


def classic_induct(tree: ClassicFDTree, lhs: AttrSet, rhs: AttrSet) -> None:
    """Apply the non-FD ``lhs ↛ rhs`` one RHS attribute at a time.

    This is the classical FDEP induction the paper improves on: each
    attribute in ``rhs`` triggers its own traversal of the tree.
    """
    all_attrs = attrset.full_set(tree.n_cols)
    rhs = attrset.difference(rhs & all_attrs, lhs)
    for attr in attrset.iter_attrs(rhs):
        _classic_induct_one(tree, lhs, attr)


def _classic_induct_one(tree: ClassicFDTree, lhs: AttrSet, attr: int) -> None:
    """Handle the single-RHS non-FD ``lhs ↛ attr`` (Flach & Savnik)."""
    removed = tree.remove_generalizations(lhs, attr)
    if not removed:
        return
    forbidden = attrset.add(lhs, attr)
    extensions = attrset.complement(forbidden, tree.n_cols)
    for old_lhs in removed:
        for extra in attrset.iter_attrs(extensions):
            new_lhs = attrset.add(old_lhs, extra)
            if not tree.contains_generalization(new_lhs, attr):
                tree.add_fd(new_lhs, attr)


def sort_non_fds(non_fds: Iterable[Tuple[AttrSet, AttrSet]]) -> List[Tuple[AttrSet, AttrSet]]:
    """Sort non-FDs by descending LHS size (paper §IV-H).

    Applying more specific non-FDs first avoids inducting FDs that a
    later, more general non-FD would immediately re-eliminate.  Ties
    break on the masks so the ordering is deterministic.
    """
    return sorted(
        non_fds, key=lambda pair: (-attrset.count(pair[0]), pair[0], pair[1])
    )


def non_redundant_non_fds(
    non_fds: Iterable[Tuple[AttrSet, AttrSet]]
) -> List[Tuple[AttrSet, AttrSet]]:
    """Reduce non-FDs to a non-redundant cover (FDEP1's preprocessing).

    The atomic facts are pairs ``(X, A)`` meaning ``X ↛ A``; the fact is
    redundant when some other non-FD ``X' ↛ Y'`` with ``X ⊂ X'`` and
    ``A ∈ Y'`` is kept (paper §IV-H).  For agree-set non-FDs
    ``X ↛ R−X`` this strips from each RHS every attribute outside some
    proper LHS superset; non-FDs whose RHS empties out are dropped.
    Quadratic in the number of non-FDs — the paper found exactly this
    cost not to pay off (FDEP2 always beats FDEP1).
    """
    pairs = sort_non_fds(non_fds)
    kept: List[Tuple[AttrSet, AttrSet]] = []
    for index, (lhs, rhs) in enumerate(pairs):
        reduced = rhs
        for other_lhs, _ in pairs:
            if other_lhs != lhs and attrset.is_subset(lhs, other_lhs):
                # A fact (lhs, A) is dominated iff A ∉ other_lhs.
                reduced &= other_lhs
                if not reduced:
                    break
        if reduced:
            kept.append((lhs, reduced))
    return kept
