"""Extended FD-trees (paper §IV-C, Algorithm 1).

An extended FD-tree stores a set of FDs as paths of attribute nodes in
ascending attribute order.  Unlike the classical FD-tree of Flach &
Savnik, RHS labels live *only* at FD-nodes — the node where an FD's LHS
path ends — which removes the label-propagation maintenance the paper
identifies as the classical tree's main overhead.

Every node carries an integer ``id``:

* ``id < n_cols``  — the *default* id; it denotes the singleton stripped
  partition of that attribute.
* ``id >= n_cols`` — a *dynamic* id; ``id - n_cols`` indexes the dynamic
  data manager's partition array (see :mod:`repro.core.ddm`), and the
  indexed partition ``π_X'`` is guaranteed to satisfy ``X' ⊆ path``.

Algorithm 1 keeps ids consistent while inserting FDs mid-discovery, and
keeps the running list of validation-level nodes up to date so DHyFD
never loses paths that induction creates at the current level
(Example 2 of the paper).
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Tuple

from ..relational import attrset
from ..relational.attrset import AttrSet
from ..relational.fd import FD

ROOT_ATTR = -1


class ExtFDNode:
    """One node of an extended FD-tree.

    ``rhs`` is non-empty exactly when this node is an FD-node: the FD
    ``path(self) -> rhs`` is a member of the represented FD set.
    """

    __slots__ = ("attr", "parent", "children", "rhs", "id", "depth", "deleted")

    def __init__(self, attr: int, parent: Optional["ExtFDNode"], node_id: int):
        self.attr = attr
        self.parent = parent
        self.children: Dict[int, ExtFDNode] = {}
        self.rhs: AttrSet = attrset.EMPTY
        self.id = node_id
        self.depth = 0 if parent is None else parent.depth + 1
        self.deleted = False

    @property
    def is_fd_node(self) -> bool:
        """True iff an FD ends at this node."""
        return self.rhs != attrset.EMPTY

    @property
    def is_leaf(self) -> bool:
        """True iff the node has no children (the paper's reusability test)."""
        return not self.children

    def path(self) -> AttrSet:
        """The attribute set spelled by the root-to-here path."""
        mask = attrset.EMPTY
        node: Optional[ExtFDNode] = self
        while node is not None and node.attr != ROOT_ATTR:
            mask = attrset.add(mask, node.attr)
            node = node.parent
        return mask

    def __repr__(self) -> str:
        return f"ExtFDNode(attr={self.attr}, depth={self.depth}, rhs={bin(self.rhs)})"


class ExtendedFDTree:
    """An extended FD-tree over a schema of ``n_cols`` attributes."""

    def __init__(self, n_cols: int):
        if n_cols <= 0:
            raise ValueError("tree needs a positive number of columns")
        self.n_cols = n_cols
        self.root = ExtFDNode(ROOT_ATTR, None, n_cols)  # root id is never used
        #: Running total of FDs in the tree (Σ |rhs(n)|), the paper's |tree|.
        self.fd_count = 0

    # ------------------------------------------------------------------
    # Insertion — Algorithm 1
    # ------------------------------------------------------------------

    def add_fd(
        self,
        lhs: AttrSet,
        rhs: AttrSet,
        cl: int = 0,
        vl: int = 0,
        vl_nodes: Optional[List[ExtFDNode]] = None,
    ) -> ExtFDNode:
        """Insert ``lhs -> rhs``, assigning consistent ids (Algorithm 1).

        New nodes deeper than the controlled level ``cl`` inherit their
        parent's id (the parent's partition attribute set is a subset of
        any extension of the parent's path, so consistency is
        preserved); nodes at depth <= ``cl`` fall back to the default
        singleton id because inherited dynamic ids are not guaranteed to
        reference subsets of the *new* path.  Nodes created at exactly
        the validation level ``vl`` are appended to ``vl_nodes``.
        """
        current = self.root
        depth = 0
        for attr in attrset.iter_attrs(lhs):
            depth += 1
            child = current.children.get(attr)
            if child is None:
                child = ExtFDNode(attr, current, attr)
                if depth > cl and current is not self.root:
                    child.id = current.id
                current.children[attr] = child
                if vl_nodes is not None and depth == vl:
                    vl_nodes.append(child)
            current = child
        added = attrset.difference(rhs, current.rhs)
        current.rhs |= rhs
        self.fd_count += attrset.count(added)
        return current

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def find_covered(self, lhs: AttrSet, candidates: AttrSet) -> AttrSet:
        """Return the candidate attrs ``B`` with some ``Z -> B``, ``Z ⊆ lhs``.

        This is the minimal-RHS test of synergized induction: an FD
        ``lhs -> B`` would be redundant iff ``B`` is in the returned set.
        """
        covered = attrset.EMPTY

        def descend(node: ExtFDNode) -> None:
            # Iterate the node's children (few) rather than the LHS
            # attrs (possibly many); paths are strictly increasing so
            # every path inside ``lhs`` is visited exactly once.
            nonlocal covered
            if node.rhs:
                covered |= node.rhs & candidates
            if covered == candidates:
                return
            for attr, child in node.children.items():
                if lhs >> attr & 1:
                    descend(child)
                    if covered == candidates:
                        return

        descend(self.root)
        return covered

    def find_covered_requiring(
        self, lhs: AttrSet, candidates: AttrSet, required: int
    ) -> AttrSet:
        """Like :meth:`find_covered`, restricted to paths through one attr.

        Synergized induction checks whether the specialization
        ``X'A' -> B`` is implied by a generalization ``Z -> B`` with
        ``Z ⊆ X'A'``.  While the tree is minimal, any such ``Z`` must
        contain ``A'`` (otherwise ``Z ⊆ X'`` would have made the FD
        being specialized non-minimal already), so paths that cannot
        pass through ``A'`` are pruned: attributes are ascending along
        paths, so once the current attribute exceeds ``required``
        without having met it, the whole subtree is skipped.
        """
        covered = attrset.EMPTY

        def descend(node: ExtFDNode, has_required: bool) -> bool:
            nonlocal covered
            if has_required and node.rhs:
                covered |= node.rhs & candidates
                if covered == candidates:
                    return True
            for attr, child in node.children.items():
                if not (lhs >> attr & 1):
                    continue
                if not has_required and attr > required:
                    continue
                if descend(child, has_required or attr == required):
                    return True
            return False

        descend(self.root, False)
        return covered

    def contains_generalization(self, lhs: AttrSet, attr: int) -> bool:
        """True iff some FD ``Z -> attr`` with ``Z ⊆ lhs`` is in the tree."""
        mask = attrset.singleton(attr)
        return self.find_covered(lhs, mask) == mask

    def nodes_at_level(self, level: int) -> List[ExtFDNode]:
        """All live nodes at depth ``level`` (DFS; root is level 0)."""
        if level == 0:
            return [self.root]
        result: List[ExtFDNode] = []
        stack: List[ExtFDNode] = [self.root]
        while stack:
            node = stack.pop()
            for child in node.children.values():
                if child.depth == level:
                    result.append(child)
                elif child.depth < level:
                    stack.append(child)
        return result

    def max_depth(self) -> int:
        """Depth of the deepest node."""
        deepest = 0
        stack: List[ExtFDNode] = [self.root]
        while stack:
            node = stack.pop()
            if node.depth > deepest:
                deepest = node.depth
            stack.extend(node.children.values())
        return deepest

    def node_count(self) -> int:
        """Number of nodes excluding the root."""
        total = 0
        stack: List[ExtFDNode] = [self.root]
        while stack:
            node = stack.pop()
            total += len(node.children)
            stack.extend(node.children.values())
        return total

    def iter_fds(self) -> Iterator[FD]:
        """Yield all FDs currently represented by the tree."""
        stack: List[ExtFDNode] = [self.root]
        while stack:
            node = stack.pop()
            if node.rhs:
                yield FD(node.path(), node.rhs)
            stack.extend(node.children.values())

    def iter_fd_nodes(self) -> Iterator[ExtFDNode]:
        """Yield all FD-nodes (nodes with non-empty RHS)."""
        stack: List[ExtFDNode] = [self.root]
        while stack:
            node = stack.pop()
            if node.rhs:
                yield node
            stack.extend(node.children.values())

    # ------------------------------------------------------------------
    # Removal support used by induction
    # ------------------------------------------------------------------

    def strip_rhs(self, node: ExtFDNode, removed: AttrSet) -> None:
        """Remove ``removed`` from a node's RHS, updating the FD count."""
        actually_removed = node.rhs & removed
        node.rhs = attrset.difference(node.rhs, removed)
        self.fd_count -= attrset.count(actually_removed)

    def prune_dead_path(self, node: ExtFDNode) -> None:
        """Detach ``node`` and any ancestors left childless and FD-less.

        Keeping garbage paths would inflate the paper's *reusable node*
        counts (a leaf whose only children are dead would wrongly count
        as reusable), skewing the efficiency–inefficiency ratio.
        """
        current: Optional[ExtFDNode] = node
        while (
            current is not None
            and current is not self.root
            and not current.children
            and not current.rhs
        ):
            parent = current.parent
            current.deleted = True
            if parent is not None:
                parent.children.pop(current.attr, None)
            current = parent
