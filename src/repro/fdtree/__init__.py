"""FD-trees: classical (FDEP) and the paper's extended FD-tree."""

from .classic import ClassicFDTree, ClassicNode
from .extended import ExtendedFDTree, ExtFDNode
from .induction import (
    classic_induct,
    non_redundant_non_fds,
    sort_non_fds,
    synergized_induct,
)

__all__ = [
    "ClassicFDTree",
    "ClassicNode",
    "ExtFDNode",
    "ExtendedFDTree",
    "classic_induct",
    "non_redundant_non_fds",
    "sort_non_fds",
    "synergized_induct",
]
