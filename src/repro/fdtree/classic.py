"""Classical FD-trees (Flach & Savnik [6]).

In the classical tree every node carries the RHS attributes of *all*
FDs in its subtree, not only of the FD ending at the node.  The paper
(§IV-C, Figure 1) identifies this excessive labeling as overhead: the
labels rarely prune searches yet must be maintained on every insert.

We keep the labels conservative on removal (they are never shrunk when
an FD disappears), which matches typical implementations — stale labels
cost traversal time but never correctness, and reproducing that cost is
the point of carrying this baseline.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional

from ..relational import attrset
from ..relational.attrset import AttrSet
from ..relational.fd import FD

ROOT_ATTR = -1


class ClassicNode:
    """A classical FD-tree node with propagated subtree RHS labels."""

    __slots__ = ("attr", "parent", "children", "subtree_rhs", "fd_rhs")

    def __init__(self, attr: int, parent: Optional["ClassicNode"]):
        self.attr = attr
        self.parent = parent
        self.children: Dict[int, ClassicNode] = {}
        #: RHS attrs of any FD at or below this node (conservative).
        self.subtree_rhs: AttrSet = attrset.EMPTY
        #: RHS attrs of FDs ending exactly at this node.
        self.fd_rhs: AttrSet = attrset.EMPTY

    def path(self) -> AttrSet:
        """The attribute set spelled by the root-to-here path."""
        mask = attrset.EMPTY
        node: Optional[ClassicNode] = self
        while node is not None and node.attr != ROOT_ATTR:
            mask = attrset.add(mask, node.attr)
            node = node.parent
        return mask


class ClassicFDTree:
    """A classical FD-tree over ``n_cols`` attributes."""

    def __init__(self, n_cols: int):
        if n_cols <= 0:
            raise ValueError("tree needs a positive number of columns")
        self.n_cols = n_cols
        self.root = ClassicNode(ROOT_ATTR, None)

    def add_fd(self, lhs: AttrSet, rhs_attr: int) -> None:
        """Insert ``lhs -> rhs_attr``, propagating the label along the path."""
        bit = attrset.singleton(rhs_attr)
        current = self.root
        current.subtree_rhs |= bit
        for attr in attrset.iter_attrs(lhs):
            child = current.children.get(attr)
            if child is None:
                child = ClassicNode(attr, current)
                current.children[attr] = child
            child.subtree_rhs |= bit
            current = child
        current.fd_rhs |= bit

    def contains_generalization(self, lhs: AttrSet, rhs_attr: int) -> bool:
        """True iff some ``Z -> rhs_attr`` with ``Z ⊆ lhs`` is present.

        Descends only into children whose subtree label mentions the
        attribute — the classical pruning the labels exist for.
        """
        bit = attrset.singleton(rhs_attr)

        def descend(node: ClassicNode, remaining: AttrSet) -> bool:
            if node.fd_rhs & bit:
                return True
            sub = remaining
            while sub:
                attr = attrset.lowest(sub)
                sub = attrset.remove(sub, attr)
                child = node.children.get(attr)
                if child is not None and child.subtree_rhs & bit:
                    if descend(child, sub):
                        return True
            return False

        return descend(self.root, lhs)

    def remove_generalizations(self, lhs: AttrSet, rhs_attr: int) -> List[AttrSet]:
        """Remove every ``Z -> rhs_attr`` with ``Z ⊆ lhs``; return the Zs.

        Subtree labels are left stale on purpose (see module docstring).
        """
        bit = attrset.singleton(rhs_attr)
        removed: List[AttrSet] = []

        def descend(node: ClassicNode, remaining: AttrSet, path: AttrSet) -> None:
            if node.fd_rhs & bit:
                node.fd_rhs = attrset.difference(node.fd_rhs, bit)
                removed.append(path)
            sub = remaining
            while sub:
                attr = attrset.lowest(sub)
                sub = attrset.remove(sub, attr)
                child = node.children.get(attr)
                if child is not None and child.subtree_rhs & bit:
                    descend(child, sub, attrset.add(path, attr))

        descend(self.root, lhs, attrset.EMPTY)
        return removed

    def iter_fds(self) -> Iterator[FD]:
        """Yield all FDs stored in the tree."""
        stack: List[ClassicNode] = [self.root]
        while stack:
            node = stack.pop()
            if node.fd_rhs:
                yield FD(node.path(), node.fd_rhs)
            stack.extend(node.children.values())

    def fd_count(self) -> int:
        """Number of (singleton-RHS) FDs in the tree."""
        total = 0
        stack: List[ClassicNode] = [self.root]
        while stack:
            node = stack.pop()
            total += attrset.count(node.fd_rhs)
            stack.extend(node.children.values())
        return total

    def node_count(self) -> int:
        """Number of nodes excluding the root."""
        total = 0
        stack: List[ClassicNode] = [self.root]
        while stack:
            node = stack.pop()
            total += len(node.children)
            stack.extend(node.children.values())
        return total
