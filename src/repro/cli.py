"""Command-line interface: ``repro-fd`` / ``python -m repro``.

Subcommands::

    discover   run FD discovery on a CSV file or a benchmark replica
    rank       discover + canonical cover + redundancy ranking
    covers     compare left-reduced vs canonical cover sizes
    multitable join-FD discovery across CSV tables (virtual join)
    datasets   list the built-in benchmark replicas
    generate   write a benchmark replica to a CSV file
    serve      run the repro.service discovery server (HTTP)
    cluster    run N sharded service replicas behind a routed front-end
    submit     upload a dataset to a server and run discover/rank there
"""

from __future__ import annotations

import argparse
import contextlib
import os
import sys
from typing import List, Optional

from . import memplane
from .algorithms.registry import algorithm_names, make_algorithm
from .bench.tables import format_table
from .covers.canonical import compare_covers
from .datasets.benchmarks import benchmark_names, get_spec, load_benchmark
from . import parallel
from .partitions import kernels
from .profiling.profiler import profile
from .relational.io import ON_BAD_ROW_POLICIES, read_csv, write_csv
from .relational.null import NullSemantics
from .relational.relation import Relation
from .resilience import RunBudget, parse_bytes
from .telemetry import Tracer, format_trace, use_tracer, write_trace_jsonl


def package_version() -> str:
    """The installed package version, falling back to ``repro.__version__``."""
    try:
        from importlib.metadata import version

        return version("repro")
    except Exception:
        from . import __version__

        return __version__


def _load_input(args: argparse.Namespace) -> Relation:
    """Resolve --csv / --benchmark inputs into a relation.

    Also applies ``--backend`` and ``--jobs`` (when the subcommand has
    them) as process-wide defaults, so every algorithm and ranking pass
    in the invocation uses the chosen backend and worker count.
    """
    backend = getattr(args, "backend", None)
    if backend is not None:
        kernels.set_default_backend(backend)
    jobs = getattr(args, "jobs", None)
    if jobs is not None:
        parallel.set_default_jobs(jobs)
    _apply_memplane_flag(args)
    semantics = NullSemantics.parse(args.null_semantics)
    if args.csv:
        return read_csv(
            args.csv,
            semantics=semantics,
            max_rows=args.rows,
            on_bad_row=getattr(args, "on_bad_row", "raise"),
        )
    relation = load_benchmark(args.benchmark, n_rows=args.rows, seed=args.seed)
    if semantics is not relation.semantics:
        relation = relation.with_semantics(semantics)
    return relation


def _parse_jobs_arg(value: str) -> int:
    """argparse type for --jobs: int or 'auto' (0), clean error otherwise."""
    try:
        return parallel.config._parse_jobs(value, "--jobs")
    except ValueError as exc:
        raise argparse.ArgumentTypeError(str(exc)) from None


def _add_input_args(parser: argparse.ArgumentParser) -> None:
    source = parser.add_mutually_exclusive_group(required=True)
    source.add_argument("--csv", help="path to a CSV file with a header row")
    source.add_argument(
        "--benchmark",
        choices=benchmark_names(),
        help="name of a built-in benchmark replica",
    )
    parser.add_argument("--rows", type=int, default=None, help="row cap / fragment size")
    parser.add_argument("--seed", type=int, default=0, help="replica generator seed")
    parser.add_argument(
        "--null-semantics",
        default="eq",
        choices=["eq", "neq"],
        help="null=null (eq, default) or null!=null (neq)",
    )
    parser.add_argument(
        "--backend",
        default=None,
        choices=list(kernels.BACKENDS),
        help="partition-kernel backend (default: %s, or $REPRO_FD_BACKEND)"
        % kernels.get_default_backend(),
    )
    parser.add_argument(
        "--jobs",
        default=None,
        metavar="N",
        type=_parse_jobs_arg,
        help="worker processes for validation/ranking: a count, 0 or "
        "'auto' for one per core (default: serial, or $REPRO_FD_JOBS)",
    )
    parser.add_argument(
        "--on-bad-row",
        default="raise",
        choices=list(ON_BAD_ROW_POLICIES),
        help="ragged/undecodable CSV rows: raise (default), skip "
        "(quarantine), or pad with nulls",
    )
    _add_memplane_arg(parser)


def _add_memplane_arg(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--no-memplane",
        action="store_true",
        help="disable the shared dataset arena / partition tier "
        "(private per-run copies, as before; also $REPRO_FD_MEMPLANE=0)",
    )


def _apply_memplane_flag(args: argparse.Namespace) -> None:
    """Honor --no-memplane: this process and every child it spawns.

    The environment export is what reaches worker pools started with
    the spawn method and the replicas a cluster manager forks.
    """
    if getattr(args, "no_memplane", False):
        memplane.set_enabled(False)
        os.environ[memplane.ENV_MEMPLANE] = "0"


def _parse_bytes_arg(value: str) -> int:
    """argparse type for --memory-budget: bytes or '64m'/'1g' suffixes."""
    try:
        return parse_bytes(value)
    except ValueError as exc:
        raise argparse.ArgumentTypeError(str(exc)) from None


def _add_limit_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--time-limit",
        type=float,
        default=None,
        metavar="SECONDS",
        help="wall-clock cap for the run",
    )
    parser.add_argument(
        "--memory-budget",
        type=_parse_bytes_arg,
        default=None,
        metavar="BYTES",
        help="partition-memory budget (plain bytes or '64m'/'1g'; "
        "default: $REPRO_FD_MEMORY_BUDGET); pressure degrades the run "
        "before aborting",
    )
    parser.add_argument(
        "--on-limit",
        default="raise",
        choices=["raise", "partial"],
        help="what a tripped limit does: fail the run (raise, default) "
        "or return the sound partial cover (partial)",
    )


def _limit_kwargs(args: argparse.Namespace) -> dict:
    """Algorithm kwargs from the --time-limit/--memory-budget/--on-limit flags."""
    kwargs = {
        "time_limit": args.time_limit,
        "on_limit": getattr(args, "on_limit", "raise"),
    }
    memory_budget = getattr(args, "memory_budget", None)
    if memory_budget is not None:
        kwargs["budget"] = RunBudget(
            time_limit=args.time_limit, memory_limit_bytes=memory_budget
        )
    return kwargs


def _print_partial_notice(result) -> None:
    """One-line warning when a limit turned the run into a partial result."""
    if not result.completed:
        print(
            f"PARTIAL RESULT ({result.limit_reason} limit): "
            f"{result.fd_count} FDs verified sound, "
            f"{len(result.unverified)} candidates unverified"
        )


def _add_trace_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--trace",
        action="store_true",
        help="record phase telemetry and print the span tree",
    )
    parser.add_argument(
        "--trace-out",
        default=None,
        metavar="PATH",
        help="write trace events as JSONL to PATH (implies --trace)",
    )
    parser.add_argument(
        "--trace-memory",
        action="store_true",
        help="also record tracemalloc memory deltas per span (implies --trace)",
    )


def _make_tracer(args: argparse.Namespace) -> Optional[Tracer]:
    """A tracer when any --trace* flag was given, else None."""
    if args.trace or args.trace_out or args.trace_memory:
        return Tracer(track_memory=args.trace_memory)
    return None


def _finish_trace(tracer: Optional[Tracer], args: argparse.Namespace) -> None:
    """Print the span tree and write the JSONL stream as requested."""
    if tracer is None:
        return
    tracer.close()
    print()
    print(format_trace(tracer))
    if args.trace_out:
        count = write_trace_jsonl(tracer, args.trace_out)
        print(f"wrote {count} trace events to {args.trace_out}")


def _cmd_discover(args: argparse.Namespace) -> int:
    relation = _load_input(args)
    algo = make_algorithm(args.algorithm, **_limit_kwargs(args))
    tracer = _make_tracer(args)
    context = use_tracer(tracer) if tracer is not None else contextlib.nullcontext()
    with context:
        if args.top_k is not None:
            result = algo.discover_top_k(relation, args.top_k)
        else:
            result = algo.discover(relation)
    kind = "" if result.top_k is None else f"top-{result.top_k} "
    print(
        f"{result.algorithm}: {kind}{result.fd_count} FDs in "
        f"{result.elapsed_seconds:.3f}s on {relation.n_rows} rows x "
        f"{relation.n_cols} cols"
    )
    if result.top_k is not None and result.stats.pruned_candidates:
        print(f"  ({result.stats.pruned_candidates} candidates pruned by rank bound)")
    _print_partial_notice(result)
    if args.show_fds:
        for line in result.format_fds():
            print(" ", line)
    _finish_trace(tracer, args)
    return 0


def _cmd_rank(args: argparse.Namespace) -> int:
    relation = _load_input(args)
    tracer = _make_tracer(args)
    outcome = profile(
        relation,
        algorithm=args.algorithm,
        trace=tracer or False,
        top_k=args.top_k,
        **_limit_kwargs(args),
    )
    print(outcome.summary())
    print()
    if outcome.ranking is None:
        print("(ranking skipped: the time limit ran out before it finished)")
        _finish_trace(tracer, args)
        return 0
    top = outcome.ranking.top(args.top)
    rows = [
        (
            ranked.fd.format(relation.schema),
            ranked.redundancy,
            ranked.redundancy_excluding_null,
        )
        for ranked in top
    ]
    print(format_table(["FD", "#red+0", "#red"], rows, title="Top-ranked FDs"))
    _finish_trace(tracer, args)
    return 0


def _cmd_covers(args: argparse.Namespace) -> int:
    relation = _load_input(args)
    algo = make_algorithm(args.algorithm, **_limit_kwargs(args))
    result = algo.discover(relation)
    _print_partial_notice(result)
    _, comparison = compare_covers(result.fds)
    rows = [
        ("left-reduced |Σ|", comparison.left_reduced_count),
        ("left-reduced ||Σ||", comparison.left_reduced_occurrences),
        ("canonical |Σ|", comparison.canonical_count),
        ("canonical ||Σ||", comparison.canonical_occurrences),
        ("%Size", f"{comparison.size_percent:.0f}%"),
        ("%Card", f"{comparison.occurrence_percent:.0f}%"),
        ("cover time", f"{comparison.seconds:.4f}s"),
    ]
    print(format_table(["metric", "value"], rows, title="Cover comparison"))
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    from .profiling.report import markdown_report

    relation = _load_input(args)
    outcome = profile(relation, algorithm=args.algorithm, **_limit_kwargs(args))
    text = markdown_report(outcome, title=args.title)
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(text + "\n")
        print(f"wrote report to {args.output}")
    else:
        print(text)
    return 0


def _cmd_normalize(args: argparse.Namespace) -> int:
    from .normalize import (
        candidate_keys,
        check_3nf,
        check_bcnf,
        is_lossless_join,
        preserves_dependencies,
        synthesize_3nf,
    )
    from .covers.canonical import canonical_cover

    relation = _load_input(args)
    algo = make_algorithm(args.algorithm, **_limit_kwargs(args))
    discovered = algo.discover(relation)
    _print_partial_notice(discovered)
    cover = list(canonical_cover(discovered.fds))
    n_cols = relation.n_cols
    schema = relation.schema

    keys = candidate_keys(n_cols, cover)
    print("candidate keys:")
    for key in keys:
        print("  ", schema.format_attr_set(key))
    bcnf = check_bcnf(n_cols, cover)
    third = check_3nf(n_cols, cover)
    print(f"BCNF: {bcnf.satisfied}   3NF: {third.satisfied}")
    for violation in bcnf.violations[: args.top]:
        print("  BCNF violation:", violation.format(schema))

    decomposition = synthesize_3nf(n_cols, cover)
    print("3NF synthesis:")
    for fragment in decomposition.format(schema):
        print("  table(", fragment, ")")
    print(
        "lossless join:",
        is_lossless_join(n_cols, cover, decomposition),
        "  dependency preserving:",
        preserves_dependencies(cover, decomposition),
    )
    return 0


def _cmd_keys(args: argparse.Namespace) -> int:
    from .ucc import discover_uccs

    relation = _load_input(args)
    result = discover_uccs(relation, time_limit=args.time_limit)
    if not result.uccs:
        print(
            "no unique column combinations (the relation contains duplicate rows)"
        )
        return 0
    print(
        f"{len(result.uccs)} minimal unique column combination(s) in "
        f"{result.elapsed_seconds:.3f}s "
        f"({result.rounds} rounds, {result.validations} validations):"
    )
    for line in result.format():
        print("  ", line)
    return 0


def _parse_fk_side(side: str) -> tuple:
    """``table.col[+col...]`` → ``(table, [cols])`` for --fk specs."""
    table, dot, cols = side.partition(".")
    if not dot or not table or not cols:
        raise argparse.ArgumentTypeError(
            f"foreign-key side must look like table.col or table.c1+c2, got {side!r}"
        )
    return table, cols.split("+")


def _parse_fk_spec(spec: str) -> tuple:
    """``child.col=parent.col`` → ``(child, ccols, parent, pcols)``."""
    child_side, sep, parent_side = spec.partition("=")
    if not sep:
        raise argparse.ArgumentTypeError(
            f"--fk must look like child.col=parent.col, got {spec!r}"
        )
    child, ccols = _parse_fk_side(child_side)
    parent, pcols = _parse_fk_side(parent_side)
    return child, ccols, parent, pcols


def _cmd_multitable(args: argparse.Namespace) -> int:
    import json

    from .multitable import MultitableError, SchemaGraph, discover_join_fds

    if args.backend is not None:
        kernels.set_default_backend(args.backend)
    if args.jobs is not None:
        parallel.set_default_jobs(args.jobs)
    _apply_memplane_flag(args)
    try:
        if args.star or not args.table:
            # Demo mode: the reddit_star workload (docs/multitable.md).
            from .datasets.star import STAR_PATH, reddit_star_graph

            graph = reddit_star_graph(
                n_posts=args.rows or 400, seed=args.seed
            )
            path = args.path.split(",") if args.path else list(STAR_PATH)
        else:
            semantics = NullSemantics.parse(args.null_semantics)
            keys = {}
            for spec in args.key:
                table, sep, cols = spec.partition("=")
                if not sep or not cols:
                    print(
                        f"error: --key must look like table=col or table=c1+c2, "
                        f"got {spec!r}",
                        file=sys.stderr,
                    )
                    return 2
                keys[table] = cols.split("+")
            graph = SchemaGraph()
            for spec in args.table:
                name, sep, csv_path = spec.partition("=")
                if not sep or not csv_path:
                    print(
                        f"error: --table must look like name=path.csv, got {spec!r}",
                        file=sys.stderr,
                    )
                    return 2
                relation = read_csv(
                    csv_path,
                    semantics=semantics,
                    max_rows=args.rows,
                    on_bad_row=args.on_bad_row,
                )
                graph.add_table(name, relation, key=keys.get(name))
            for child, ccols, parent, pcols in args.fk:
                graph.add_foreign_key(
                    child, ccols, parent, pcols, require_inclusion=False
                )
            if args.infer_fks:
                graph.infer_foreign_keys()
            if not args.path:
                print(
                    "error: --path T1,T2[,T3...] is required with --table inputs",
                    file=sys.stderr,
                )
                return 2
            path = [p for p in args.path.split(",") if p]
        result = discover_join_fds(
            graph,
            path,
            algorithm=args.algorithm,
            on_dangling=args.on_dangling,
            top_k=args.top_k,
            jobs=args.jobs,
            backend=args.backend,
            time_limit=args.time_limit,
        )
    except MultitableError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if args.json:
        print(json.dumps(result.payload(), indent=2, sort_keys=True))
        return 0
    provenance = result.provenance
    print(
        f"{result.algorithm}: {len(result.ranking.ranked)} join FDs over "
        f"{' -> '.join(result.path)} ({provenance.n_rows} virtual rows, "
        f"never materialized) in {result.discovery.elapsed_seconds:.3f}s"
    )
    print(
        f"  on_dangling={result.policy}: {provenance.dropped_rows} rows dropped, "
        f"{provenance.padded_cells} cells padded; "
        f"{result.intra_count} intra / {result.inter_count} inter-table"
    )
    for line in result.format_fds()[: args.top]:
        print(" ", line)
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    import signal
    import threading

    from .service import FDService
    from .service.server import make_server

    _apply_memplane_flag(args)
    service = FDService(
        max_workers=args.max_workers,
        store_dir=args.store_dir,
        dataset_dir=args.dataset_dir,
        recover=args.recover,
    )
    if service.recovery:
        print(
            "recovered jobs from journal: "
            + ", ".join(f"{k}={v}" for k, v in sorted(service.recovery.items())),
            flush=True,
        )
    server = make_server(
        service, host=args.host, port=args.port, quiet=not args.verbose
    )
    host, port = server.server_address[:2]
    print(
        f"repro.service listening on http://{host}:{port} "
        f"(workers={args.max_workers}"
        + (f", store={args.store_dir})" if args.store_dir else ")"),
        flush=True,
    )

    # SIGTERM = graceful drain (the cluster's replica manager relies on
    # this for clean restarts): stop accepting, let in-flight jobs
    # finish up to --drain-timeout, sync the result store, exit 0.
    draining = threading.Event()

    def _on_sigterm(signum, frame):  # noqa: ARG001 — signal signature
        draining.set()
        # serve_forever() runs on this (main) thread, so the actual
        # shutdown() call has to come from another one.
        threading.Thread(target=server.shutdown, daemon=True).start()

    signal.signal(signal.SIGTERM, _on_sigterm)
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        server.shutdown()
        if draining.is_set():
            finished = service.drain(args.drain_timeout)
            print(
                "drained cleanly" if finished else
                f"drain timed out after {args.drain_timeout}s; "
                "cancelling remaining jobs",
                flush=True,
            )
        service.close()
        # Unlink this replica's arena segments now rather than at
        # atexit — the manager's orphan sweep then only ever has
        # SIGKILL leftovers to deal with.
        memplane.reset_arena()
    return 0


def _cmd_cluster(args: argparse.Namespace) -> int:
    import signal
    import threading

    from .cluster import Cluster

    _apply_memplane_flag(args)
    cluster = Cluster(
        replicas=args.replicas,
        data_dir=args.data_dir,
        host=args.host,
        router_port=args.router_port,
        max_workers=args.max_workers,
        drain_timeout=args.drain_timeout,
        verbose=args.verbose,
    )
    cluster.start()
    host, port = cluster.router.address
    print(
        f"repro.cluster router listening on http://{host}:{port} "
        f"(replicas={args.replicas}, workers={args.max_workers}/replica"
        + (f", data={args.data_dir})" if args.data_dir else ")"),
        flush=True,
    )
    stop = threading.Event()

    def _on_signal(signum, frame):  # noqa: ARG001 — signal signature
        stop.set()

    signal.signal(signal.SIGTERM, _on_signal)
    try:
        while not stop.wait(0.5):
            pass
    except KeyboardInterrupt:
        pass
    finally:
        print("stopping cluster (draining replicas)...", flush=True)
        cluster.stop()
    return 0


def _cmd_submit(args: argparse.Namespace) -> int:
    from .service.client import ServiceClient, ServiceError

    client = ServiceClient(args.server, timeout=args.request_timeout)
    relation = _load_input(args)
    info = client.upload_rows(
        relation.schema.names,
        list(relation.iter_rows()),
        name=args.name,
        semantics="eq" if relation.semantics is NullSemantics.EQ else "neq",
    )
    print(
        f"dataset {info['fingerprint'][:16]}... "
        f"({info['n_rows']} rows x {info['n_cols']} cols)"
    )
    config = {"algorithm": args.algorithm, "on_limit": getattr(args, "on_limit", "raise")}
    if args.jobs is not None:
        config["jobs"] = args.jobs
    if args.backend is not None:
        config["backend"] = args.backend
    if args.time_limit is not None:
        config["time_limit"] = args.time_limit
    if getattr(args, "memory_budget", None) is not None:
        config["memory_budget"] = args.memory_budget
    job_id = client.submit(
        info["fingerprint"],
        kind=args.kind,
        config=config,
        priority=args.priority,
        top_k=args.top_k,
    )
    print(f"submitted {job_id} ({args.kind}, priority {args.priority})")
    if args.no_wait:
        return 0
    status = client.wait(job_id)
    if status["status"] != "done":
        print(f"job {job_id} {status['status']}: {status.get('error') or ''}")
        return 1
    try:
        result = ServiceClient.result_from_status(status)
    except ServiceError as exc:
        print(f"error: {exc}")
        return 1
    cached = " (cached)" if status.get("cached") else ""
    kind = "" if result.top_k is None else f"top-{result.top_k} "
    print(
        f"{result.algorithm}: {kind}{result.fd_count} FDs in "
        f"{result.elapsed_seconds:.3f}s{cached}"
    )
    _print_partial_notice(result)
    if args.show_fds:
        for line in result.format_fds():
            print(" ", line)
    if args.kind == "rank" and status.get("ranking") is not None:
        rows = [
            (r["fd"], r["redundancy"], r["redundancy_excluding_null"])
            for r in status["ranking"][: args.top]
        ]
        print(format_table(["FD", "#red+0", "#red"], rows, title="Top-ranked FDs"))
    return 0


def _cmd_datasets(_: argparse.Namespace) -> int:
    rows = []
    for name in benchmark_names():
        spec = get_spec(name)
        rows.append(
            (
                spec.name,
                f"{spec.paper_rows}x{spec.paper_cols}",
                spec.paper_fds if spec.paper_fds is not None else "-",
                spec.bench_rows,
                "yes" if spec.has_nulls else "no",
                spec.description,
            )
        )
    print(
        format_table(
            ["name", "paper shape", "#FD", "bench rows", "nulls", "description"],
            rows,
            title="Benchmark replicas",
        )
    )
    return 0


def _cmd_generate(args: argparse.Namespace) -> int:
    relation = load_benchmark(args.benchmark, n_rows=args.rows, seed=args.seed)
    write_csv(relation, args.output)
    print(
        f"wrote {relation.n_rows} rows x {relation.n_cols} cols to {args.output}"
    )
    return 0


def build_parser() -> argparse.ArgumentParser:
    """Construct the CLI argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro-fd",
        description="FD discovery and ranking (Wei & Link, ICDE 2019 reproduction)",
    )
    parser.add_argument(
        "--version",
        action="version",
        version=f"%(prog)s {package_version()}",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    discover = sub.add_parser("discover", help="run FD discovery")
    _add_input_args(discover)
    discover.add_argument("--algorithm", default="dhyfd", choices=algorithm_names())
    _add_limit_args(discover)
    discover.add_argument(
        "--top-k",
        type=int,
        default=None,
        metavar="K",
        help="discover only the K FDs of highest redundancy (rank-aware "
        "pruning + early termination; identical to the first K of the "
        "full ranked cover)",
    )
    discover.add_argument("--show-fds", action="store_true")
    _add_trace_args(discover)
    discover.set_defaults(handler=_cmd_discover)

    rank = sub.add_parser("rank", help="discover + canonical cover + ranking")
    _add_input_args(rank)
    rank.add_argument("--algorithm", default="dhyfd", choices=algorithm_names())
    _add_limit_args(rank)
    rank.add_argument("--top", type=int, default=15)
    rank.add_argument(
        "--top-k",
        type=int,
        default=None,
        metavar="K",
        help="bound the ranking pass to the K highest-redundancy FDs "
        "(skips measuring FDs that provably cannot reach the top K)",
    )
    _add_trace_args(rank)
    rank.set_defaults(handler=_cmd_rank)

    covers = sub.add_parser("covers", help="left-reduced vs canonical cover")
    _add_input_args(covers)
    covers.add_argument("--algorithm", default="dhyfd", choices=algorithm_names())
    _add_limit_args(covers)
    covers.set_defaults(handler=_cmd_covers)

    report = sub.add_parser("report", help="full markdown data profile")
    _add_input_args(report)
    report.add_argument("--algorithm", default="dhyfd", choices=algorithm_names())
    _add_limit_args(report)
    report.add_argument("--title", default="Data profile")
    report.add_argument("--output", default=None, help="write to file")
    report.set_defaults(handler=_cmd_report)

    normalize = sub.add_parser(
        "normalize", help="keys, normal forms, 3NF synthesis"
    )
    _add_input_args(normalize)
    normalize.add_argument("--algorithm", default="dhyfd", choices=algorithm_names())
    _add_limit_args(normalize)
    normalize.add_argument("--top", type=int, default=10)
    normalize.set_defaults(handler=_cmd_normalize)

    keys = sub.add_parser("keys", help="minimal unique column combinations")
    _add_input_args(keys)
    keys.add_argument("--time-limit", type=float, default=None)
    keys.set_defaults(handler=_cmd_keys)

    multitable = sub.add_parser(
        "multitable",
        help="join-FD discovery across CSV tables without materializing the join",
        description="Declare a schema of base tables plus key/foreign-key "
        "structure, then discover and rank the FDs of a join path's "
        "virtual join (docs/multitable.md). With no --table inputs the "
        "built-in reddit_star workload is used as a demo.",
    )
    multitable.add_argument(
        "--table",
        action="append",
        default=[],
        metavar="NAME=PATH.csv",
        help="add a base table from a CSV file (repeatable)",
    )
    multitable.add_argument(
        "--key",
        action="append",
        default=[],
        metavar="TABLE=COL[+COL...]",
        help="declare a table's primary key (default: inferred UCCs)",
    )
    multitable.add_argument(
        "--fk",
        action="append",
        default=[],
        type=_parse_fk_spec,
        metavar="CHILD.COL=PARENT.COL",
        help="declare a foreign-key edge, e.g. posts.author_id=authors.author_id "
        "(composite: child.c1+c2=parent.p1+p2; repeatable)",
    )
    multitable.add_argument(
        "--infer-fks",
        action="store_true",
        help="additionally infer unary foreign keys by inclusion testing",
    )
    multitable.add_argument(
        "--path",
        default=None,
        metavar="T1,T2[,T3...]",
        help="join path as a comma-separated table list",
    )
    multitable.add_argument(
        "--star",
        action="store_true",
        help="use the built-in reddit_star workload (--rows posts, --seed)",
    )
    multitable.add_argument("--rows", type=int, default=None, help="row cap / demo size")
    multitable.add_argument("--seed", type=int, default=0, help="demo generator seed")
    multitable.add_argument(
        "--null-semantics", default="eq", choices=["eq", "neq"],
        help="null=null (eq, default) or null!=null (neq)",
    )
    multitable.add_argument(
        "--on-bad-row",
        default="raise",
        choices=list(ON_BAD_ROW_POLICIES),
        help="ragged/undecodable CSV rows: raise (default), skip, or pad",
    )
    multitable.add_argument(
        "--on-dangling",
        default="raise",
        choices=["raise", "drop", "pad"],
        help="referential violations in the join: fail (raise, default), "
        "drop the rows (inner join), or pad with nulls (outer join)",
    )
    multitable.add_argument("--algorithm", default="dhyfd", choices=algorithm_names())
    multitable.add_argument("--time-limit", type=float, default=None, metavar="SECONDS")
    multitable.add_argument(
        "--top-k",
        type=int,
        default=None,
        metavar="K",
        help="bound the ranking to the K highest-redundancy join FDs",
    )
    multitable.add_argument(
        "--top", type=int, default=25, help="ranked FDs to print (default 25)"
    )
    multitable.add_argument(
        "--backend",
        default=None,
        choices=list(kernels.BACKENDS),
        help="provenance/partition-kernel backend",
    )
    multitable.add_argument(
        "--jobs", default=None, metavar="N", type=_parse_jobs_arg,
        help="worker processes for validation/ranking",
    )
    multitable.add_argument(
        "--json", action="store_true", help="print the full JSON payload"
    )
    _add_memplane_arg(multitable)
    multitable.set_defaults(handler=_cmd_multitable)

    datasets = sub.add_parser("datasets", help="list benchmark replicas")
    datasets.set_defaults(handler=_cmd_datasets)

    generate = sub.add_parser("generate", help="write a replica to CSV")
    generate.add_argument("--benchmark", required=True, choices=benchmark_names())
    generate.add_argument("--rows", type=int, default=None)
    generate.add_argument("--seed", type=int, default=0)
    generate.add_argument("--output", required=True)
    generate.set_defaults(handler=_cmd_generate)

    serve = sub.add_parser("serve", help="run the FD discovery service (HTTP)")
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument(
        "--port", type=int, default=8765, help="0 picks a free port (printed)"
    )
    serve.add_argument(
        "--max-workers",
        type=int,
        default=2,
        help="concurrent discovery jobs (each may still use --jobs workers)",
    )
    serve.add_argument(
        "--store-dir",
        default=None,
        help="persist cached covers here so they survive restarts",
    )
    serve.add_argument(
        "--dataset-dir",
        default=None,
        help="persist registered datasets here so a restarted replica "
        "still owns its shard (see docs/cluster.md)",
    )
    serve.add_argument(
        "--drain-timeout",
        type=float,
        default=15.0,
        metavar="SECONDS",
        help="on SIGTERM: stop accepting and let in-flight jobs finish "
        "for up to this long before exiting (graceful drain)",
    )
    serve.add_argument(
        "--recover",
        action="store_true",
        help="replay the job journal on startup: requeue jobs that never "
        "ran, resume checkpointed ones (see docs/durability.md)",
    )
    serve.add_argument("--verbose", action="store_true", help="log every request")
    _add_memplane_arg(serve)
    serve.set_defaults(handler=_cmd_serve)

    cluster = sub.add_parser(
        "cluster",
        help="run a sharded cluster: N service replicas + routed front-end",
        description="Boot N repro-fd serve replicas (one dataset shard "
        "each, restarted on crash) behind a fingerprint-routed async "
        "HTTP front-end speaking the same protocol as a single server "
        "(docs/cluster.md). `repro-fd submit --server` works unchanged.",
    )
    cluster.add_argument(
        "--replicas", type=int, default=2, help="service worker processes / shards"
    )
    cluster.add_argument(
        "--router-port",
        type=int,
        default=8900,
        help="router bind port; 0 picks a free port (printed)",
    )
    cluster.add_argument("--host", default="127.0.0.1")
    cluster.add_argument(
        "--max-workers",
        type=int,
        default=2,
        help="concurrent discovery jobs per replica",
    )
    cluster.add_argument(
        "--data-dir",
        default=None,
        help="persist per-replica result stores, the replicas table and "
        "the routing table here",
    )
    cluster.add_argument(
        "--drain-timeout",
        type=float,
        default=10.0,
        metavar="SECONDS",
        help="graceful-drain window per replica on stop/restart",
    )
    cluster.add_argument("--verbose", action="store_true", help="log every request")
    _add_memplane_arg(cluster)
    cluster.set_defaults(handler=_cmd_cluster)

    submit = sub.add_parser(
        "submit", help="upload a dataset to a server and discover/rank there"
    )
    submit.add_argument(
        "--server", required=True, help="server base URL, e.g. http://127.0.0.1:8765"
    )
    _add_input_args(submit)
    submit.add_argument("--algorithm", default="dhyfd", choices=algorithm_names())
    _add_limit_args(submit)
    submit.add_argument(
        "--kind", default="discover", choices=["discover", "rank"]
    )
    submit.add_argument("--name", default=None, help="dataset name alias on the server")
    submit.add_argument("--priority", type=int, default=0)
    submit.add_argument(
        "--top-k",
        type=int,
        default=None,
        metavar="K",
        help="server-side top-k: discover only (or rank only) the K "
        "highest-redundancy FDs (sent as the ?top_k= query param)",
    )
    submit.add_argument("--top", type=int, default=15)
    submit.add_argument("--show-fds", action="store_true")
    submit.add_argument(
        "--no-wait", action="store_true", help="print the job id and exit"
    )
    submit.add_argument(
        "--request-timeout", type=float, default=120.0, help="per-request socket timeout"
    )
    submit.set_defaults(handler=_cmd_submit)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point."""
    args = build_parser().parse_args(argv)
    return args.handler(args)


if __name__ == "__main__":
    sys.exit(main())
