"""Stripped partitions (paper §III) and their operations.

The stripped partition ``π_X(r)`` is the set of X-equivalence classes of
``r`` with at least two tuples.  Equivalence classes of size one are
"stripped" because they can never witness an FD violation.

Three operations drive every algorithm in this library:

* building ``π_A`` for a single attribute,
* the TANE partition *product* ``π_X ∩ π_Y = π_XY``, and
* *refinement* ``refine(r, π_X, A) = π_XA`` (the paper's Algorithm 5),
  which splits each cluster by the DIIS codes of one more attribute.

Refinement is the primitive that makes the dynamic data manager
possible: it derives a finer partition from a coarser one without ever
re-touching rows outside existing clusters.

All of these bottom out in :mod:`repro.partitions.kernels`, which
provides a per-row ``python`` reference backend and a vectorized
``numpy`` backend; every operation takes an optional ``backend``
argument (``None`` uses the process default).
"""

from __future__ import annotations

from typing import Iterable, Iterator, List, Optional, Sequence

import numpy as np

from ..relational import attrset
from ..relational.attrset import AttrSet
from ..relational.relation import Relation
from ..resilience import faults
from . import kernels

Cluster = List[int]


class StrippedPartition:
    """An immutable stripped partition ``π_X(r)``.

    Attributes:
        attrs: the attribute-set bitmask ``X`` the partition refines on.
        clusters: equivalence classes of size >= 2, as row-index lists.
        n_rows: the number of rows of the underlying relation.
    """

    __slots__ = ("attrs", "clusters", "n_rows")

    def __init__(self, attrs: AttrSet, clusters: Sequence[Cluster], n_rows: int):
        self.attrs = attrs
        self.clusters: List[Cluster] = [list(c) for c in clusters]
        self.n_rows = n_rows

    @classmethod
    def _from_kernel(
        cls, attrs: AttrSet, clusters: List[Cluster], n_rows: int
    ) -> "StrippedPartition":
        """Adopt freshly built cluster lists without the defensive copy."""
        partition = cls.__new__(cls)
        partition.attrs = attrs
        partition.clusters = clusters
        partition.n_rows = n_rows
        return partition

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    @classmethod
    def from_flat(
        cls,
        attrs: AttrSet,
        rows: np.ndarray,
        lengths: np.ndarray,
        n_rows: int,
    ) -> "StrippedPartition":
        """Rebuild a partition from its flat ``(rows, lengths)`` transport
        form (:func:`repro.partitions.kernels.flatten_clusters`)."""
        return cls._from_kernel(
            attrs, kernels.unflatten_clusters(rows, lengths), n_rows
        )

    @classmethod
    def universal(cls, relation: Relation) -> "StrippedPartition":
        """``π_∅``: one cluster of all rows (empty when |r| < 2)."""
        if relation.n_rows >= 2:
            clusters = [list(range(relation.n_rows))]
        else:
            clusters = []
        return cls._from_kernel(attrset.EMPTY, clusters, relation.n_rows)

    @classmethod
    def for_attribute(
        cls, relation: Relation, attr: int, backend: Optional[str] = None
    ) -> "StrippedPartition":
        """Build ``π_A`` by grouping rows on the column's DIIS codes."""
        faults.fire("partition.build.memory", MemoryError)
        clusters = kernels.group_rows(relation.codes(attr), backend=backend)
        return cls._from_kernel(attrset.singleton(attr), clusters, relation.n_rows)

    @classmethod
    def for_attrs(
        cls, relation: Relation, attrs: AttrSet, backend: Optional[str] = None
    ) -> "StrippedPartition":
        """Build ``π_X`` for arbitrary ``X`` in one multi-key grouping pass."""
        members = attrset.to_list(attrs)
        if not members:
            return cls.universal(relation)
        faults.fire("partition.build.memory", MemoryError)
        base = cls.universal(relation)
        clusters = kernels.refine_clusters(
            [relation.codes(attr) for attr in members],
            base.clusters,
            backend=backend,
        )
        return cls._from_kernel(attrs, clusters, relation.n_rows)

    # ------------------------------------------------------------------
    # Measures
    # ------------------------------------------------------------------

    @property
    def num_clusters(self) -> int:
        """``|π_X|``: the number of (non-singleton) equivalence classes."""
        return len(self.clusters)

    @property
    def size(self) -> int:
        """``||π_X||``: total number of tuples inside the clusters."""
        return sum(len(c) for c in self.clusters)

    @property
    def error(self) -> int:
        """TANE's e-measure ``||π|| - |π|``; zero iff X is a key."""
        return self.size - self.num_clusters

    def is_key(self) -> bool:
        """True iff X uniquely identifies every row (no duplicates)."""
        return not self.clusters

    def memory_bytes(self) -> int:
        """Rough memory footprint (row indices at 8 bytes each)."""
        return 8 * self.size + 64 * len(self.clusters)

    def __len__(self) -> int:
        return len(self.clusters)

    def __iter__(self) -> Iterator[Cluster]:
        return iter(self.clusters)

    def __repr__(self) -> str:
        return (
            f"StrippedPartition(attrs={bin(self.attrs)}, |π|={self.num_clusters}, "
            f"||π||={self.size})"
        )

    # ------------------------------------------------------------------
    # Refinement (Algorithm 5) and product
    # ------------------------------------------------------------------

    def refine(
        self, relation: Relation, attr: int, backend: Optional[str] = None
    ) -> "StrippedPartition":
        """``π_XA`` from ``π_X``: split every cluster on attribute codes."""
        faults.fire("partition.refine.memory", MemoryError)
        clusters = kernels.refine_clusters(
            [relation.codes(attr)], self.clusters, backend=backend
        )
        return StrippedPartition._from_kernel(
            attrset.add(self.attrs, attr), clusters, self.n_rows
        )

    def refine_many(
        self,
        relation: Relation,
        attrs: Iterable[int],
        backend: Optional[str] = None,
    ) -> "StrippedPartition":
        """Refine by several attributes in one kernel pass."""
        attr_list = list(attrs)
        if not attr_list:
            return self
        faults.fire("partition.refine.memory", MemoryError)
        clusters = kernels.refine_clusters(
            [relation.codes(attr) for attr in attr_list],
            self.clusters,
            backend=backend,
        )
        return StrippedPartition._from_kernel(
            self.attrs | attrset.from_attrs(attr_list), clusters, self.n_rows
        )

    def intersect(
        self, other: "StrippedPartition", backend: Optional[str] = None
    ) -> "StrippedPartition":
        """TANE's partition product: ``π_X ∩ π_Y = π_{X∪Y}``.

        Implements the classic probe-table algorithm: rows are tagged
        with their cluster id in ``self``; rows of each ``other``
        cluster are then grouped by that tag.
        """
        clusters = kernels.intersect_clusters(
            self.n_rows, self.clusters, other.clusters, backend=backend
        )
        return StrippedPartition._from_kernel(
            self.attrs | other.attrs, clusters, self.n_rows
        )

    # ------------------------------------------------------------------
    # FD checks
    # ------------------------------------------------------------------

    def refines_attribute(
        self, relation: Relation, attr: int, backend: Optional[str] = None
    ) -> bool:
        """True iff the FD ``X -> attr`` holds on ``relation``.

        Holds exactly when every cluster of ``π_X`` is constant on the
        attribute's codes.
        """
        return kernels.clusters_constant_on(
            relation.codes(attr), self.clusters, backend=backend
        )


def refine_cluster(codes: np.ndarray, cluster: Cluster) -> List[Cluster]:
    """Split one cluster by an attribute's DIIS codes (Algorithm 5 core).

    The paper indexes a pre-allocated ``sets_array`` by code; a dict
    keyed by code plays the same role here without the O(|r|) clearing
    pass.  This is the per-row reference primitive behind the kernels'
    ``python`` backend; hot paths call
    :func:`repro.partitions.kernels.refine_clusters` instead.
    """
    buckets: dict = {}
    for row in cluster:
        code = int(codes[row])
        bucket = buckets.get(code)
        if bucket is None:
            buckets[code] = [row]
        else:
            bucket.append(row)
    return [bucket for bucket in buckets.values() if len(bucket) >= 2]
