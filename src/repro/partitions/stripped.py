"""Stripped partitions (paper §III) and their operations.

The stripped partition ``π_X(r)`` is the set of X-equivalence classes of
``r`` with at least two tuples.  Equivalence classes of size one are
"stripped" because they can never witness an FD violation.

Three operations drive every algorithm in this library:

* building ``π_A`` for a single attribute (vectorized with numpy),
* the TANE partition *product* ``π_X ∩ π_Y = π_XY``, and
* *refinement* ``refine(r, π_X, A) = π_XA`` (the paper's Algorithm 5),
  which splits each cluster by the DIIS codes of one more attribute.

Refinement is the primitive that makes the dynamic data manager
possible: it derives a finer partition from a coarser one without ever
re-touching rows outside existing clusters.
"""

from __future__ import annotations

from typing import Iterable, Iterator, List, Optional, Sequence

import numpy as np

from ..relational import attrset
from ..relational.attrset import AttrSet
from ..relational.relation import Relation

Cluster = List[int]


class StrippedPartition:
    """An immutable stripped partition ``π_X(r)``.

    Attributes:
        attrs: the attribute-set bitmask ``X`` the partition refines on.
        clusters: equivalence classes of size >= 2, as row-index lists.
        n_rows: the number of rows of the underlying relation.
    """

    __slots__ = ("attrs", "clusters", "n_rows")

    def __init__(self, attrs: AttrSet, clusters: Sequence[Cluster], n_rows: int):
        self.attrs = attrs
        self.clusters: List[Cluster] = [list(c) for c in clusters]
        self.n_rows = n_rows

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    @classmethod
    def universal(cls, relation: Relation) -> "StrippedPartition":
        """``π_∅``: one cluster of all rows (empty when |r| < 2)."""
        if relation.n_rows >= 2:
            clusters = [list(range(relation.n_rows))]
        else:
            clusters = []
        return cls(attrset.EMPTY, clusters, relation.n_rows)

    @classmethod
    def for_attribute(cls, relation: Relation, attr: int) -> "StrippedPartition":
        """Build ``π_A`` by grouping rows on the column's DIIS codes."""
        codes = relation.codes(attr)
        if len(codes) == 0:
            return cls(attrset.singleton(attr), [], 0)
        order = np.argsort(codes, kind="stable")
        sorted_codes = codes[order]
        boundaries = np.nonzero(np.diff(sorted_codes))[0] + 1
        clusters = [
            group.tolist()
            for group in np.split(order, boundaries)
            if len(group) >= 2
        ]
        return cls(attrset.singleton(attr), clusters, relation.n_rows)

    @classmethod
    def for_attrs(cls, relation: Relation, attrs: AttrSet) -> "StrippedPartition":
        """Build ``π_X`` for arbitrary ``X`` by iterated refinement."""
        members = attrset.to_list(attrs)
        if not members:
            return cls.universal(relation)
        partition = cls.for_attribute(relation, members[0])
        for attr in members[1:]:
            partition = partition.refine(relation, attr)
        return partition

    # ------------------------------------------------------------------
    # Measures
    # ------------------------------------------------------------------

    @property
    def num_clusters(self) -> int:
        """``|π_X|``: the number of (non-singleton) equivalence classes."""
        return len(self.clusters)

    @property
    def size(self) -> int:
        """``||π_X||``: total number of tuples inside the clusters."""
        return sum(len(c) for c in self.clusters)

    @property
    def error(self) -> int:
        """TANE's e-measure ``||π|| - |π|``; zero iff X is a key."""
        return self.size - self.num_clusters

    def is_key(self) -> bool:
        """True iff X uniquely identifies every row (no duplicates)."""
        return not self.clusters

    def memory_bytes(self) -> int:
        """Rough memory footprint (row indices at 8 bytes each)."""
        return 8 * self.size + 64 * len(self.clusters)

    def __len__(self) -> int:
        return len(self.clusters)

    def __iter__(self) -> Iterator[Cluster]:
        return iter(self.clusters)

    def __repr__(self) -> str:
        return (
            f"StrippedPartition(attrs={bin(self.attrs)}, |π|={self.num_clusters}, "
            f"||π||={self.size})"
        )

    # ------------------------------------------------------------------
    # Refinement (Algorithm 5) and product
    # ------------------------------------------------------------------

    def refine(self, relation: Relation, attr: int) -> "StrippedPartition":
        """``π_XA`` from ``π_X``: split every cluster on attribute codes."""
        codes = relation.codes(attr)
        new_clusters: List[Cluster] = []
        for cluster in self.clusters:
            new_clusters.extend(refine_cluster(codes, cluster))
        return StrippedPartition(
            attrset.add(self.attrs, attr), new_clusters, self.n_rows
        )

    def refine_many(self, relation: Relation, attrs: Iterable[int]) -> "StrippedPartition":
        """Refine by several attributes in sequence."""
        partition = self
        for attr in attrs:
            partition = partition.refine(relation, attr)
        return partition

    def intersect(self, other: "StrippedPartition") -> "StrippedPartition":
        """TANE's partition product: ``π_X ∩ π_Y = π_{X∪Y}``.

        Implements the classic probe-table algorithm: rows are tagged
        with their cluster id in ``self``; rows of each ``other``
        cluster are then grouped by that tag.
        """
        tag = np.full(self.n_rows, -1, dtype=np.int64)
        for cluster_id, cluster in enumerate(self.clusters):
            for row in cluster:
                tag[row] = cluster_id
        new_clusters: List[Cluster] = []
        for cluster in other.clusters:
            groups: dict = {}
            for row in cluster:
                t = tag[row]
                if t >= 0:
                    groups.setdefault(int(t), []).append(row)
            for group in groups.values():
                if len(group) >= 2:
                    new_clusters.append(group)
        return StrippedPartition(
            self.attrs | other.attrs, new_clusters, self.n_rows
        )

    # ------------------------------------------------------------------
    # FD checks
    # ------------------------------------------------------------------

    def refines_attribute(self, relation: Relation, attr: int) -> bool:
        """True iff the FD ``X -> attr`` holds on ``relation``.

        Holds exactly when every cluster of ``π_X`` is constant on the
        attribute's codes.
        """
        codes = relation.codes(attr)
        for cluster in self.clusters:
            first = codes[cluster[0]]
            for row in cluster[1:]:
                if codes[row] != first:
                    return False
        return True


def refine_cluster(codes: np.ndarray, cluster: Cluster) -> List[Cluster]:
    """Split one cluster by an attribute's DIIS codes (Algorithm 5 core).

    The paper indexes a pre-allocated ``sets_array`` by code; a dict
    keyed by code plays the same role here without the O(|r|) clearing
    pass, while keeping the per-tuple work constant.
    """
    buckets: dict = {}
    for row in cluster:
        code = int(codes[row])
        bucket = buckets.get(code)
        if bucket is None:
            buckets[code] = [row]
        else:
            bucket.append(row)
    return [bucket for bucket in buckets.values() if len(bucket) >= 2]
