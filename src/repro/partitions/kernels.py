"""Backend-switchable kernels for the partition and agree-set hot paths.

Every discovery algorithm in this library bottoms out in four array
operations: grouping rows by codes (partition construction), splitting
existing clusters by more codes (Algorithm 5 refinement), the TANE
partition product, and agree-set computation over row pairs.  This
module implements each operation twice:

* ``backend="python"`` — the original per-row dict/loop reference
  implementations, kept as the differential-testing oracle;
* ``backend="numpy"`` — vectorized implementations over flat row-index
  arrays (``lexsort`` grouping, ``reduceat`` reductions, ``packbits``
  bitmask packing) that do O(rows) work in C instead of Python.

Both backends return *identical* results: cluster lists are emitted in
a canonical order (sorted by each cluster's first row index, with rows
inside a cluster in ascending order, assuming ascending inputs), and
agree sets are plain :class:`~repro.relational.attrset.AttrSet` ints.
``tests/test_kernels_differential.py`` cross-checks the two backends on
randomized relations under both null semantics.

The process-wide default backend is ``numpy``; it can be overridden
with the ``REPRO_FD_BACKEND`` environment variable, per call via the
``backend=`` keyword, or globally via :func:`set_default_backend`
(the CLI's ``--backend`` flag does the latter).

When telemetry is enabled (:func:`repro.telemetry.current_tracer`),
every kernel call records a ``kernels.<op>.<backend>`` counter and a
seconds histogram, so traces show exactly where partition time goes.
"""

from __future__ import annotations

import itertools
import os
import time
from typing import List, Optional, Sequence, Set, Tuple

import numpy as np

from ..relational.attrset import AttrSet
from ..telemetry import current_tracer

Cluster = List[int]

#: Recognized backend names, in reference-first order.
BACKENDS = ("python", "numpy")

_default_backend = os.environ.get("REPRO_FD_BACKEND", "numpy")
if _default_backend not in BACKENDS:
    raise ValueError(
        f"REPRO_FD_BACKEND must be one of {BACKENDS}, got {_default_backend!r}"
    )


def get_default_backend() -> str:
    """The backend used when a kernel is called with ``backend=None``."""
    return _default_backend


def set_default_backend(backend: str) -> str:
    """Set the process-wide default backend; returns the previous one."""
    global _default_backend
    backend = resolve_backend(backend)
    previous = _default_backend
    _default_backend = backend
    return previous


def resolve_backend(backend: Optional[str]) -> str:
    """Validate ``backend``, mapping ``None`` to the current default."""
    if backend is None:
        return _default_backend
    if backend not in BACKENDS:
        raise ValueError(f"backend must be one of {BACKENDS}, got {backend!r}")
    return backend


class use_backend:
    """Context manager that temporarily switches the default backend."""

    def __init__(self, backend: str):
        self.backend = resolve_backend(backend)
        self._previous: Optional[str] = None

    def __enter__(self) -> str:
        self._previous = set_default_backend(self.backend)
        return self.backend

    def __exit__(self, *exc_info) -> None:
        assert self._previous is not None
        set_default_backend(self._previous)


def _record(tracer, op: str, backend: str, seconds: float) -> None:
    metrics = tracer.metrics
    metrics.counter(f"kernels.{op}.{backend}.calls").inc()
    metrics.histogram(f"kernels.{op}.{backend}.seconds").observe(seconds)


def _canonical(clusters: List[Cluster]) -> List[Cluster]:
    """Order clusters by their first row so backends agree exactly."""
    clusters.sort(key=lambda cluster: cluster[0])
    return clusters


def _flatten(
    clusters: Sequence[Cluster], dtype=np.int64
) -> Tuple[np.ndarray, np.ndarray]:
    """Flatten cluster lists into flat (rows, cluster-ids) arrays."""
    lengths = np.fromiter(
        (len(c) for c in clusters), dtype=np.int64, count=len(clusters)
    )
    rows = np.fromiter(
        itertools.chain.from_iterable(clusters),
        dtype=dtype,
        count=int(lengths.sum()),
    )
    cids = np.repeat(np.arange(len(clusters), dtype=dtype), lengths)
    return rows, cids


def flatten_clusters(
    clusters: Sequence[Cluster],
) -> Tuple[np.ndarray, np.ndarray]:
    """Flatten cluster lists into ``(rows, lengths)`` index arrays.

    The compact transport format used to ship partitions to pool
    workers: two int64 arrays instead of nested Python lists.  Inverse
    of :func:`unflatten_clusters`.
    """
    lengths = np.fromiter(
        (len(c) for c in clusters), dtype=np.int64, count=len(clusters)
    )
    rows = np.fromiter(
        itertools.chain.from_iterable(clusters),
        dtype=np.int64,
        count=int(lengths.sum()),
    )
    return rows, lengths


def unflatten_clusters(rows: np.ndarray, lengths: np.ndarray) -> List[Cluster]:
    """Rebuild cluster lists from ``(rows, lengths)`` index arrays."""
    clusters: List[Cluster] = []
    start = 0
    row_list = rows.tolist()
    for length in lengths.tolist():
        clusters.append(row_list[start:start + length])
        start += length
    return clusters


def _emit(srows: np.ndarray, starts: np.ndarray, ends: np.ndarray) -> List[Cluster]:
    """Slice sorted rows into clusters, already in canonical order.

    Reorders the (start, end) group bounds by each group's first row —
    groups are disjoint so first rows are unique — then does one bulk
    ``tolist`` and cheap Python-list slicing per group.
    """
    if len(starts) == 0:
        return []
    order = np.argsort(srows[starts], kind="stable")
    starts_list = starts[order].tolist()
    ends_list = ends[order].tolist()
    rows_list = srows.tolist()
    return [rows_list[s:e] for s, e in zip(starts_list, ends_list)]


# ----------------------------------------------------------------------
# Grouping: all rows by one code array (π_A construction)
# ----------------------------------------------------------------------


def group_rows(codes: np.ndarray, backend: Optional[str] = None) -> List[Cluster]:
    """Group all rows by ``codes``; clusters of size >= 2, canonical order."""
    backend = resolve_backend(backend)
    impl = _group_rows_numpy if backend == "numpy" else _group_rows_python
    tracer = current_tracer()
    if not tracer.enabled:
        return impl(codes)
    start = time.perf_counter()
    result = impl(codes)
    _record(tracer, "group", backend, time.perf_counter() - start)
    return result


def _group_rows_python(codes: np.ndarray) -> List[Cluster]:
    buckets: dict = {}
    for row in range(len(codes)):
        code = int(codes[row])
        bucket = buckets.get(code)
        if bucket is None:
            buckets[code] = [row]
        else:
            bucket.append(row)
    return _canonical([b for b in buckets.values() if len(b) >= 2])


def _group_rows_numpy(codes: np.ndarray) -> List[Cluster]:
    if len(codes) < 2:
        return []
    order = np.argsort(codes, kind="stable")
    sorted_codes = codes[order]
    boundaries = np.nonzero(np.diff(sorted_codes))[0] + 1
    starts = np.concatenate(([0], boundaries))
    ends = np.concatenate((boundaries, [len(order)]))
    keep = np.nonzero(ends - starts >= 2)[0]
    return _emit(order, starts[keep], ends[keep])


# ----------------------------------------------------------------------
# Refinement: split clusters by one or more code arrays (Algorithm 5)
# ----------------------------------------------------------------------


def refine_clusters(
    codes_list: Sequence[np.ndarray],
    clusters: Sequence[Cluster],
    backend: Optional[str] = None,
) -> List[Cluster]:
    """Split every cluster by the codes of one or more attributes.

    Rows that end up alone are stripped; the surviving clusters come
    back in canonical order.  ``codes_list`` may hold several code
    arrays — the numpy backend then groups by the full key tuple in a
    single ``lexsort`` pass instead of refining attribute by attribute.
    """
    backend = resolve_backend(backend)
    impl = (
        _refine_clusters_numpy if backend == "numpy" else _refine_clusters_python
    )
    tracer = current_tracer()
    if not tracer.enabled:
        return impl(codes_list, clusters)
    start = time.perf_counter()
    result = impl(codes_list, clusters)
    _record(tracer, "refine", backend, time.perf_counter() - start)
    return result


def _refine_clusters_python(
    codes_list: Sequence[np.ndarray], clusters: Sequence[Cluster]
) -> List[Cluster]:
    result: List[Cluster] = [list(c) for c in clusters]
    for codes in codes_list:
        next_clusters: List[Cluster] = []
        for cluster in result:
            buckets: dict = {}
            for row in cluster:
                code = int(codes[row])
                bucket = buckets.get(code)
                if bucket is None:
                    buckets[code] = [row]
                else:
                    bucket.append(row)
            next_clusters.extend(
                bucket for bucket in buckets.values() if len(bucket) >= 2
            )
        result = next_clusters
        if not result:
            break
    return _canonical(result)


def _refine_clusters_numpy(
    codes_list: Sequence[np.ndarray], clusters: Sequence[Cluster]
) -> List[Cluster]:
    if not clusters:
        return []
    if not codes_list:
        return _canonical([list(c) for c in clusters])
    rows, cids = _flatten(clusters)
    keys = [codes[rows] for codes in codes_list]
    # lexsort's last key is primary: cluster id first, then the codes.
    order = np.lexsort(tuple(keys) + (cids,))
    srows = rows[order]
    scids = cids[order]
    change = scids[1:] != scids[:-1]
    for key in keys:
        skey = key[order]
        change |= skey[1:] != skey[:-1]
    boundaries = np.nonzero(change)[0] + 1
    starts = np.concatenate(([0], boundaries))
    ends = np.concatenate((boundaries, [len(srows)]))
    keep = np.nonzero(ends - starts >= 2)[0]
    return _emit(srows, starts[keep], ends[keep])


# ----------------------------------------------------------------------
# Partition product (TANE's π_X ∩ π_Y)
# ----------------------------------------------------------------------


def intersect_clusters(
    n_rows: int,
    left: Sequence[Cluster],
    right: Sequence[Cluster],
    backend: Optional[str] = None,
) -> List[Cluster]:
    """The probe-table partition product of two cluster lists."""
    backend = resolve_backend(backend)
    impl = (
        _intersect_clusters_numpy if backend == "numpy" else _intersect_clusters_python
    )
    tracer = current_tracer()
    if not tracer.enabled:
        return impl(n_rows, left, right)
    start = time.perf_counter()
    result = impl(n_rows, left, right)
    _record(tracer, "intersect", backend, time.perf_counter() - start)
    return result


def _intersect_clusters_python(
    n_rows: int, left: Sequence[Cluster], right: Sequence[Cluster]
) -> List[Cluster]:
    tag = np.full(n_rows, -1, dtype=np.int64)
    for cluster_id, cluster in enumerate(left):
        for row in cluster:
            tag[row] = cluster_id
    new_clusters: List[Cluster] = []
    for cluster in right:
        groups: dict = {}
        for row in cluster:
            t = tag[row]
            if t >= 0:
                groups.setdefault(int(t), []).append(row)
        for group in groups.values():
            if len(group) >= 2:
                new_clusters.append(group)
    return _canonical(new_clusters)


def _intersect_clusters_numpy(
    n_rows: int, left: Sequence[Cluster], right: Sequence[Cluster]
) -> List[Cluster]:
    if not left or not right:
        return []
    # int32 keys make the radix sort roughly twice as cheap; fall back
    # to int64 when the composite (cid, tag) key could overflow.
    if n_rows < 2**31 and len(left) * len(right) < 2**31:
        dtype = np.int32
    else:
        dtype = np.int64
    tag = np.full(n_rows, -1, dtype=dtype)
    left_rows, left_cids = _flatten(left, dtype)
    tag[left_rows] = left_cids
    rows, cids = _flatten(right, dtype)
    tags = tag[rows]
    if tags.min(initial=0) < 0:
        valid = tags >= 0
        rows, cids, tags = rows[valid], cids[valid], tags[valid]
    if len(rows) < 2:
        return []
    # single composite key: (cid, tag) packed into one integer.
    key = cids * dtype(len(left)) + tags
    order = np.argsort(key, kind="stable")
    srows = rows[order]
    skey = key[order]
    boundaries = np.nonzero(skey[1:] != skey[:-1])[0] + 1
    starts = np.concatenate(([0], boundaries))
    ends = np.concatenate((boundaries, [len(srows)]))
    keep = np.nonzero(ends - starts >= 2)[0]
    return _emit(srows, starts[keep], ends[keep])


# ----------------------------------------------------------------------
# Constant-per-cluster check (FD verification π_X refines A)
# ----------------------------------------------------------------------


def clusters_constant_on(
    codes: np.ndarray,
    clusters: Sequence[Cluster],
    backend: Optional[str] = None,
) -> bool:
    """True iff every cluster holds a single code value of ``codes``."""
    backend = resolve_backend(backend)
    impl = (
        _clusters_constant_on_numpy
        if backend == "numpy"
        else _clusters_constant_on_python
    )
    tracer = current_tracer()
    if not tracer.enabled:
        return impl(codes, clusters)
    start = time.perf_counter()
    result = impl(codes, clusters)
    _record(tracer, "constant", backend, time.perf_counter() - start)
    return result


def _clusters_constant_on_python(
    codes: np.ndarray, clusters: Sequence[Cluster]
) -> bool:
    for cluster in clusters:
        first = codes[cluster[0]]
        for row in cluster[1:]:
            if codes[row] != first:
                return False
    return True


def _clusters_constant_on_numpy(
    codes: np.ndarray, clusters: Sequence[Cluster]
) -> bool:
    if not clusters:
        return True
    lengths = np.fromiter(
        (len(c) for c in clusters), dtype=np.int64, count=len(clusters)
    )
    rows = np.concatenate([np.asarray(c, dtype=np.int64) for c in clusters])
    starts = np.concatenate(([0], np.cumsum(lengths)[:-1]))
    values = codes[rows]
    mins = np.minimum.reduceat(values, starts)
    maxs = np.maximum.reduceat(values, starts)
    return bool(np.all(mins == maxs))


# ----------------------------------------------------------------------
# Agree sets (sampling and FDEP's negative cover)
# ----------------------------------------------------------------------


def agree_masks(
    matrix: np.ndarray,
    rows_a: np.ndarray,
    rows_b: np.ndarray,
    backend: Optional[str] = None,
) -> List[AttrSet]:
    """Agree-set bitmask of each row pair ``(rows_a[i], rows_b[i])``."""
    backend = resolve_backend(backend)
    impl = _agree_masks_numpy if backend == "numpy" else _agree_masks_python
    tracer = current_tracer()
    if not tracer.enabled:
        return impl(matrix, rows_a, rows_b)
    start = time.perf_counter()
    result = impl(matrix, rows_a, rows_b)
    _record(tracer, "agree", backend, time.perf_counter() - start)
    return result


def _agree_masks_python(
    matrix: np.ndarray, rows_a: np.ndarray, rows_b: np.ndarray
) -> List[AttrSet]:
    masks: List[AttrSet] = []
    for row_a, row_b in zip(rows_a, rows_b):
        equal = matrix[row_a] == matrix[row_b]
        mask = 0
        for col in np.nonzero(equal)[0]:
            mask |= 1 << int(col)
        masks.append(mask)
    return masks


def _pack_bool_rows(equal: np.ndarray) -> List[AttrSet]:
    """Turn an ``(n, n_cols)`` bool array into per-row bitmask ints."""
    if equal.shape[0] == 0:
        return []
    packed = np.packbits(equal, axis=1, bitorder="little")
    width = packed.shape[1]
    data = packed.tobytes()
    return [
        int.from_bytes(data[i * width:(i + 1) * width], "little")
        for i in range(equal.shape[0])
    ]


def _agree_masks_numpy(
    matrix: np.ndarray, rows_a: np.ndarray, rows_b: np.ndarray
) -> List[AttrSet]:
    rows_a = np.asarray(rows_a, dtype=np.int64)
    rows_b = np.asarray(rows_b, dtype=np.int64)
    return _pack_bool_rows(matrix[rows_a] == matrix[rows_b])


def pairwise_agree_sets(
    matrix: np.ndarray, backend: Optional[str] = None
) -> Set[AttrSet]:
    """Distinct agree sets over *all* row pairs (FDEP's negative cover).

    Full-schema masks from duplicate rows are included; callers that
    need the non-trivial cover filter them out.
    """
    backend = resolve_backend(backend)
    impl = (
        _pairwise_agree_sets_numpy
        if backend == "numpy"
        else _pairwise_agree_sets_python
    )
    tracer = current_tracer()
    if not tracer.enabled:
        return impl(matrix)
    start = time.perf_counter()
    result = impl(matrix)
    _record(tracer, "agree_all", backend, time.perf_counter() - start)
    return result


def _pairwise_agree_sets_python(matrix: np.ndarray) -> Set[AttrSet]:
    n_rows = matrix.shape[0]
    agree_sets: Set[AttrSet] = set()
    for i in range(n_rows):
        row_i = matrix[i]
        for j in range(i + 1, n_rows):
            equal = row_i == matrix[j]
            mask = 0
            for col in np.nonzero(equal)[0]:
                mask |= 1 << int(col)
            agree_sets.add(mask)
    return agree_sets


def _pairwise_agree_sets_numpy(matrix: np.ndarray) -> Set[AttrSet]:
    n_rows = matrix.shape[0]
    agree_sets: Set[AttrSet] = set()
    for i in range(n_rows - 1):
        agree_sets.update(_pack_bool_rows(matrix[i + 1:] == matrix[i]))
    return agree_sets
