"""Stripped partitions: construction, refinement, products, caching."""

from .cache import PartitionCache
from .stripped import Cluster, StrippedPartition, refine_cluster

__all__ = ["Cluster", "PartitionCache", "StrippedPartition", "refine_cluster"]
