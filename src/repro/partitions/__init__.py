"""Stripped partitions: construction, refinement, products, caching, kernels."""

from . import kernels
from .cache import PartitionCache
from .kernels import (
    BACKENDS,
    get_default_backend,
    resolve_backend,
    set_default_backend,
    use_backend,
)
from .stripped import Cluster, StrippedPartition, refine_cluster

__all__ = [
    "BACKENDS",
    "Cluster",
    "PartitionCache",
    "StrippedPartition",
    "get_default_backend",
    "kernels",
    "refine_cluster",
    "resolve_backend",
    "set_default_backend",
    "use_backend",
]
