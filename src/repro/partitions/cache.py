"""Partition cache with memory accounting.

TANE and the brute-force oracle repeatedly ask for ``π_X`` of related
attribute sets.  The cache memoizes partitions keyed by their bitmask,
derives new entries cheaply from cached subsets (preferring the largest
cached subset so the fewest refinement steps run), and tracks an
approximate memory footprint so benchmarks can report partition memory
the way Table II reports process memory.
"""

from __future__ import annotations

from typing import Dict, Optional

from ..relational import attrset
from ..relational.attrset import AttrSet
from ..relational.relation import Relation
from ..telemetry import current_tracer
from .stripped import StrippedPartition


class PartitionCache:
    """Memoized stripped-partition store for one relation."""

    def __init__(self, relation: Relation):
        self.relation = relation
        self._store: Dict[AttrSet, StrippedPartition] = {}
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        # Instruments resolved once against the tracer current at
        # construction; with telemetry off these are shared no-ops.
        telemetry = current_tracer()
        self._hit_counter = telemetry.counter("partition_cache.hits")
        self._miss_counter = telemetry.counter("partition_cache.misses")
        self._evict_counter = telemetry.counter("partition_cache.evictions")
        self._memory_gauge = telemetry.gauge("partition_cache.memory_bytes")
        self._seed_singletons()

    def _seed_singletons(self) -> None:
        universal = StrippedPartition.universal(self.relation)
        self._store[attrset.EMPTY] = universal
        for attr in range(self.relation.n_cols):
            self._store[attrset.singleton(attr)] = StrippedPartition.for_attribute(
                self.relation, attr
            )

    def __len__(self) -> int:
        return len(self._store)

    def memory_bytes(self) -> int:
        """Approximate bytes held by all cached partitions."""
        return sum(p.memory_bytes() for p in self._store.values())

    def record_telemetry(self, scope: str = "cache") -> None:
        """Emit a summary event + memory gauge on the current tracer.

        Cheap no-op when telemetry is disabled; callers invoke it once
        at the end of a cache-using pass (ranking, redundancy, naive
        discovery), not per lookup.
        """
        tracer = current_tracer()
        if not tracer.enabled:
            return
        memory = self.memory_bytes()
        self._memory_gauge.set_max(memory)
        tracer.event(
            "partition_cache",
            scope=scope,
            hits=self.hits,
            misses=self.misses,
            evictions=self.evictions,
            entries=len(self._store),
            memory_bytes=memory,
        )

    def peek(self, attrs: AttrSet) -> Optional[StrippedPartition]:
        """Return the cached partition for ``attrs`` if present."""
        return self._store.get(attrs)

    def get(self, attrs: AttrSet) -> StrippedPartition:
        """Return ``π_attrs``, building it from the best cached subset."""
        cached = self._store.get(attrs)
        if cached is not None:
            self.hits += 1
            self._hit_counter.inc()
            return cached
        self.misses += 1
        self._miss_counter.inc()
        base = self._best_subset(attrs)
        partition = base.refine_many(
            self.relation, attrset.iter_attrs(attrset.difference(attrs, base.attrs))
        )
        self._store[attrs] = partition
        return partition

    def put(self, partition: StrippedPartition) -> None:
        """Insert an externally computed partition."""
        self._store[partition.attrs] = partition

    def evict_level(self, level: int) -> None:
        """Drop all cached partitions over exactly ``level`` attributes.

        TANE uses this to keep only two lattice levels in memory.
        Singleton and empty partitions are never evicted.
        """
        if level <= 1:
            return
        victims = [a for a in self._store if attrset.count(a) == level]
        for victim in victims:
            del self._store[victim]
        self.evictions += len(victims)
        self._evict_counter.inc(len(victims))

    def _best_subset(self, attrs: AttrSet) -> StrippedPartition:
        """A cached partition over a large subset of ``attrs``.

        Checks the immediate sub-masks (``attrs`` minus one attribute)
        first — the common case when related attribute sets are queried
        in sorted order — then falls back to the smallest singleton.
        Constant-time per candidate instead of a scan of the whole
        cache, which matters when ranking covers with many thousands of
        FDs.
        """
        for attr in attrset.iter_attrs(attrs):
            parent = self._store.get(attrset.remove(attrs, attr))
            if parent is not None:
                return parent
        best: Optional[StrippedPartition] = None
        for attr in attrset.iter_attrs(attrs):
            candidate = self._store[attrset.singleton(attr)]
            if best is None or candidate.size < best.size:
                best = candidate
        return best if best is not None else self._store[attrset.EMPTY]
