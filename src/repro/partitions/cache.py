"""Partition cache with memory accounting.

TANE and the brute-force oracle repeatedly ask for ``π_X`` of related
attribute sets.  The cache memoizes partitions keyed by their bitmask,
derives new entries cheaply from cached subsets (preferring the largest
cached subset so the fewest refinement steps run), and tracks an
approximate memory footprint so benchmarks can report partition memory
the way Table II reports process memory.
"""

from __future__ import annotations

from typing import Dict, Optional

from ..relational import attrset
from ..relational.attrset import AttrSet
from ..relational.relation import Relation
from ..telemetry import current_tracer
from .stripped import StrippedPartition


#: Upper bound on cached masks examined per subset scan; keeps
#: ``_best_subset`` cheap even when thousands of partitions are cached.
SUBSET_SCAN_LIMIT = 4096


class PartitionCache:
    """Memoized stripped-partition store for one relation.

    ``shared`` optionally plugs in a
    :class:`~repro.memplane.tier.SharedPartitionTier`: singleton seeds
    come from the tier when warm, local misses consult it before
    deriving, and freshly derived low-level partitions are published
    back — so repeated passes over the same dataset stop re-deriving
    the lattice base.  ``hits``/``misses`` keep their original meaning
    (local store only); tier hits are counted in ``shared_hits`` on
    top of the local miss.
    """

    def __init__(
        self,
        relation: Relation,
        backend: Optional[str] = None,
        shared=None,
    ):
        self.relation = relation
        self.backend = backend
        self.shared = shared
        self._store: Dict[AttrSet, StrippedPartition] = {}
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.shared_hits = 0
        # Instruments resolved once against the tracer current at
        # construction; with telemetry off these are shared no-ops.
        telemetry = current_tracer()
        self._hit_counter = telemetry.counter("partition_cache.hits")
        self._miss_counter = telemetry.counter("partition_cache.misses")
        self._evict_counter = telemetry.counter("partition_cache.evictions")
        self._shared_hit_counter = telemetry.counter("partition_cache.shared_hits")
        self._memory_gauge = telemetry.gauge("partition_cache.memory_bytes")
        self._seed_singletons()

    def _seed_singletons(self) -> None:
        universal = StrippedPartition.universal(self.relation)
        self._store[attrset.EMPTY] = universal
        for attr in range(self.relation.n_cols):
            mask = attrset.singleton(attr)
            partition = None
            if self.shared is not None:
                partition = self.shared.get(mask)
                if partition is not None:
                    self.shared_hits += 1
                    self._shared_hit_counter.inc()
            if partition is None:
                partition = StrippedPartition.for_attribute(
                    self.relation, attr, backend=self.backend
                )
                if self.shared is not None:
                    self.shared.put(partition)
            self._store[mask] = partition

    def __len__(self) -> int:
        return len(self._store)

    def memory_bytes(self) -> int:
        """Approximate bytes held by all cached partitions."""
        return sum(p.memory_bytes() for p in self._store.values())

    def record_telemetry(self, scope: str = "cache") -> None:
        """Emit a summary event + memory gauge on the current tracer.

        Cheap no-op when telemetry is disabled; callers invoke it once
        at the end of a cache-using pass (ranking, redundancy, naive
        discovery), not per lookup.
        """
        tracer = current_tracer()
        if not tracer.enabled:
            return
        memory = self.memory_bytes()
        self._memory_gauge.set_max(memory)
        tracer.event(
            "partition_cache",
            scope=scope,
            hits=self.hits,
            misses=self.misses,
            evictions=self.evictions,
            shared_hits=self.shared_hits,
            entries=len(self._store),
            memory_bytes=memory,
        )

    def peek(self, attrs: AttrSet) -> Optional[StrippedPartition]:
        """Return the cached partition for ``attrs`` if present."""
        return self._store.get(attrs)

    def get(self, attrs: AttrSet) -> StrippedPartition:
        """Return ``π_attrs``, building it from the best cached subset."""
        cached = self._store.get(attrs)
        if cached is not None:
            self.hits += 1
            self._hit_counter.inc()
            return cached
        self.misses += 1
        self._miss_counter.inc()
        if self.shared is not None:
            partition = self.shared.get(attrs)
            if partition is not None:
                self.shared_hits += 1
                self._shared_hit_counter.inc()
                self._store[attrs] = partition
                return partition
        base = self._best_subset(attrs)
        partition = base.refine_many(
            self.relation,
            attrset.iter_attrs(attrset.difference(attrs, base.attrs)),
            backend=self.backend,
        )
        self._store[attrs] = partition
        if self.shared is not None:
            self.shared.put(partition)
        return partition

    def put(self, partition: StrippedPartition) -> None:
        """Insert an externally computed partition."""
        self._store[partition.attrs] = partition

    def evict_level(self, level: int) -> None:
        """Drop all cached partitions over exactly ``level`` attributes.

        TANE uses this to keep only two lattice levels in memory.
        Singleton and empty partitions are never evicted.
        """
        if level <= 1:
            return
        victims = [a for a in self._store if attrset.count(a) == level]
        for victim in victims:
            del self._store[victim]
        self.evictions += len(victims)
        self._evict_counter.inc(len(victims))

    def shed_coarsest(self, target_bytes: Optional[int] = None) -> int:
        """Evict multi-attribute entries, widest first; returns bytes freed.

        Degradation hook for the memory sentinel: drops the cached
        partitions with the most attributes (the deepest, most
        re-derivable entries) until usage falls to ``target_bytes``
        (everything multi-attribute when None).  Singleton and empty
        partitions are never evicted — they are the rebuild seeds.
        """
        victims = sorted(
            (a for a in self._store if attrset.count(a) > 1),
            key=attrset.count,
            reverse=True,
        )
        freed = 0
        usage = self.memory_bytes() if target_bytes is not None else None
        for victim in victims:
            if usage is not None and usage - freed <= target_bytes:
                break
            freed += self._store[victim].memory_bytes()
            del self._store[victim]
            self.evictions += 1
            self._evict_counter.inc()
        return freed

    def _best_subset(self, attrs: AttrSet) -> StrippedPartition:
        """The cached partition over the largest subset of ``attrs``.

        Checks the immediate sub-masks (``attrs`` minus one attribute)
        first — the common case when related attribute sets are queried
        in sorted order.  Failing that, scans the cached multi-attribute
        masks (bounded by :data:`SUBSET_SCAN_LIMIT` candidates) for the
        largest subset of ``attrs``, so e.g. a cached ``π_AB`` seeds
        ``π_ABCD`` with two refinement steps instead of three from a
        singleton.  Only then falls back to the smallest singleton.
        """
        for attr in attrset.iter_attrs(attrs):
            parent = self._store.get(attrset.remove(attrs, attr))
            if parent is not None:
                return parent
        best_mask = attrset.EMPTY
        best_count = 1  # only beat singletons; they are handled below
        scanned = 0
        for mask in self._store:
            scanned += 1
            if scanned > SUBSET_SCAN_LIMIT:
                break
            if mask & (mask - 1) == 0:
                continue  # empty or singleton mask
            if not attrset.is_proper_subset(mask, attrs):
                continue
            mask_count = attrset.count(mask)
            if mask_count > best_count or (
                mask_count == best_count
                and self._store[mask].size < self._store[best_mask].size
            ):
                best_mask = mask
                best_count = mask_count
        if best_mask != attrset.EMPTY:
            return self._store[best_mask]
        best: Optional[StrippedPartition] = None
        for attr in attrset.iter_attrs(attrs):
            candidate = self._store[attrset.singleton(attr)]
            if best is None or candidate.size < best.size:
                best = candidate
        return best if best is not None else self._store[attrset.EMPTY]
