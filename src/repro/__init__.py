"""repro — reproduction of "Discovery and Ranking of Functional
Dependencies" (Ziheng Wei & Sebastian Link, ICDE 2019).

The package provides:

* :class:`~repro.core.dhyfd.DHyFD` — the paper's dynamic hybrid FD
  discovery algorithm, plus the baselines it is evaluated against
  (TANE, FDEP/FDEP1/FDEP2, HyFD) in :mod:`repro.algorithms`;
* canonical-cover computation in :mod:`repro.covers`;
* redundancy-based FD ranking in :mod:`repro.ranking`;
* synthetic replicas of the paper's benchmark data in
  :mod:`repro.datasets`; and
* the one-call :func:`~repro.profiling.profile` front door.

Quickstart::

    from repro import Relation, profile
    relation = Relation.from_rows(rows, ["city", "zip", "state"])
    result = profile(relation, algorithm="dhyfd")
    print(result.summary())
"""

from .algorithms import (
    DHyFD,
    FDEP,
    FDEP1,
    FDEP2,
    HyFD,
    NaiveFDDiscovery,
    TANE,
    algorithm_names,
    make_algorithm,
)
from .core import DiscoveryResult, TimeLimitExceeded
from .covers import canonical_cover, closure, compare_covers, equivalent
from .incremental import IncrementalFDMaintainer
from .normalize import (
    candidate_keys,
    check_3nf,
    check_bcnf,
    decompose_bcnf,
    synthesize_3nf,
)
from .profiling import FDProfile, markdown_report, profile
from .ranking import NullPolicy, dataset_redundancy, rank_cover
from .resilience import BudgetExceeded, RunBudget
from .telemetry import (
    MetricsRegistry,
    Tracer,
    current_tracer,
    format_trace,
    trace_summary,
    use_tracer,
    write_trace_jsonl,
)
from .ucc import UCCResult, discover_uccs
from .relational import (
    FD,
    FDSet,
    NULL,
    NullSemantics,
    Relation,
    RelationSchema,
    read_csv,
)

__version__ = "1.0.0"

__all__ = [
    "BudgetExceeded",
    "DHyFD",
    "DiscoveryResult",
    "FD",
    "FDEP",
    "FDEP1",
    "FDEP2",
    "FDProfile",
    "FDSet",
    "HyFD",
    "IncrementalFDMaintainer",
    "MetricsRegistry",
    "NULL",
    "NaiveFDDiscovery",
    "NullPolicy",
    "NullSemantics",
    "Relation",
    "RelationSchema",
    "RunBudget",
    "TANE",
    "TimeLimitExceeded",
    "Tracer",
    "algorithm_names",
    "candidate_keys",
    "canonical_cover",
    "check_3nf",
    "check_bcnf",
    "UCCResult",
    "closure",
    "compare_covers",
    "current_tracer",
    "dataset_redundancy",
    "discover_uccs",
    "decompose_bcnf",
    "equivalent",
    "format_trace",
    "make_algorithm",
    "markdown_report",
    "profile",
    "rank_cover",
    "read_csv",
    "synthesize_3nf",
    "trace_summary",
    "use_tracer",
    "write_trace_jsonl",
]
