"""Normalization guidance from canonical covers and redundancy ranking.

The paper motivates redundancy-based ranking by normalization: an FD
causing many redundant values is exactly an FD worth normalizing away
(Boyce-Codd / 3NF).  This example profiles a denormalized order table
and proposes decompositions for the highest-ranked FDs.

Run with::

    python examples/schema_normalization.py
"""

from __future__ import annotations

import random

from repro import Relation, profile
from repro.relational import attrset

SCHEMA = [
    "order_id", "customer_id", "customer_name", "customer_city",
    "product_id", "product_name", "unit_price", "quantity",
]


def build_orders(n_orders: int = 400, seed: int = 0) -> Relation:
    """A classic denormalized orders table: customer and product
    attributes are functionally dependent on their ids and repeated on
    every order line."""
    rng = random.Random(seed)
    customers = {
        f"c{i}": (f"name{i}", f"city{i % 12}") for i in range(40)
    }
    products = {
        f"p{i}": (f"product{i}", f"{(i * 7) % 90 + 10}.99") for i in range(25)
    }
    rows = []
    for order in range(n_orders):
        customer_id = rng.choice(list(customers))
        product_id = rng.choice(list(products))
        name, city = customers[customer_id]
        product_name, price = products[product_id]
        rows.append(
            (
                f"o{order}", customer_id, name, city,
                product_id, product_name, price, str(rng.randrange(1, 9)),
            )
        )
    return Relation.from_rows(rows, SCHEMA)


def main() -> None:
    relation = build_orders()
    result = profile(relation)
    schema = relation.schema
    assert result.ranking is not None

    print(result.summary())

    print("\n--- normalization candidates (most redundancy first) ---")
    for ranked in result.ranking.ranked:
        if ranked.redundancy == 0 or ranked.fd.lhs == attrset.EMPTY:
            continue
        print(
            f"  {ranked.fd.format(schema):60s} "
            f"fixes {ranked.redundancy} values"
        )

    from repro.normalize import (
        candidate_keys,
        check_3nf,
        check_bcnf,
        is_lossless_join,
        preserves_dependencies,
        synthesize_3nf,
    )

    cover = list(result.canonical)
    n_cols = relation.n_cols

    print("\n--- normal-form diagnosis ---")
    keys = candidate_keys(n_cols, cover)
    print("candidate keys:", [schema.format_attr_set(k) for k in keys])
    bcnf = check_bcnf(n_cols, cover)
    third = check_3nf(n_cols, cover)
    print(f"BCNF: {bcnf.satisfied}; 3NF: {third.satisfied}")
    for violation in bcnf.violations:
        print("  BCNF violation:", violation.format(schema))

    print("\n--- 3NF synthesis from the canonical cover ---")
    decomposition = synthesize_3nf(n_cols, cover)
    for fragment in decomposition.format(schema):
        print("  table(", fragment, ")")
    print(
        "lossless join:",
        is_lossless_join(n_cols, cover, decomposition),
        "| dependency preserving:",
        preserves_dependencies(cover, decomposition),
    )


if __name__ == "__main__":
    main()
