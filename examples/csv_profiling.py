"""Profiling a CSV file under both null semantics.

Generates a benchmark replica as a CSV (standing in for any file you
have), loads it back through the CSV reader, and compares discovery
under ``null = null`` vs ``null ≠ null`` — the two interpretations the
paper evaluates in §V-B.

Run with::

    python examples/csv_profiling.py [benchmark] [rows]
"""

from __future__ import annotations

import sys
import tempfile
from pathlib import Path

from repro import profile, read_csv
from repro.datasets import load_benchmark
from repro.relational.io import write_csv


def main(benchmark: str = "bridges", n_rows: int = 108) -> None:
    workdir = Path(tempfile.mkdtemp(prefix="repro-example-"))
    csv_path = workdir / f"{benchmark}.csv"

    replica = load_benchmark(benchmark, n_rows=n_rows)
    write_csv(replica, csv_path)
    print(f"wrote {csv_path} ({replica.n_rows} rows x {replica.n_cols} cols)")

    for semantics in ("eq", "neq"):
        relation = read_csv(csv_path, semantics=semantics)
        result = profile(relation)
        assert result.redundancy is not None
        print(f"\n=== null semantics: {relation.semantics.value} ===")
        print(
            f"left-reduced cover: {result.discovery.fd_count} FDs, "
            f"canonical: {len(result.canonical)} FDs "
            f"({result.cover_comparison.size_percent:.0f}%)"
        )
        print(
            f"redundant occurrences: {result.redundancy.red_including_null} "
            f"({result.redundancy.red_excluding_null} excluding nulls) of "
            f"{result.redundancy.n_values} values"
        )
        assert result.ranking is not None
        print("top 5 FDs by redundancy:")
        for ranked in result.ranking.top(5):
            print("  ", ranked.format(relation.schema))


if __name__ == "__main__":
    main(
        sys.argv[1] if len(sys.argv) > 1 else "bridges",
        int(sys.argv[2]) if len(sys.argv) > 2 else 108,
    )
