"""The paper's ncvoter walkthrough (§I and §VI-B) on the bundled replica.

Reproduces the qualitative analysis: the constant-state FD σ1, the
dirty-duplicate voter id σ4, null-heavy "accidental" FDs like σ3, and
the city-determinant table with #red / #red-0 columns.

Run with::

    python examples/voter_profiling.py [n_rows]
"""

from __future__ import annotations

import sys

from repro import profile
from repro.datasets import ncvoter_like
from repro.ranking import column_determinants
from repro.relational import attrset


def main(n_rows: int = 1000) -> None:
    relation = ncvoter_like(n_rows, seed=0)
    print(f"ncvoter replica: {relation.n_rows} rows x {relation.n_cols} cols, "
          f"{relation.null_count()} nulls")

    result = profile(relation)
    print()
    print(result.summary())
    assert result.ranking is not None

    schema = relation.schema
    state = attrset.singleton(schema.index_of("state"))

    print("\n--- σ1-style constant FDs (every row redundant) ---")
    for ranked in result.ranking.ranked:
        if ranked.fd.lhs == attrset.EMPTY:
            print(" ", ranked.format(schema))

    print("\n--- σ4-style near-key FDs (tiny redundancy = dirty data?) ---")
    for ranked in result.ranking.ranked:
        if 0 < ranked.redundancy <= 4:
            print(" ", ranked.format(schema))

    print("\n--- σ3-style likely-accidental FDs (mostly-null redundancy) ---")
    for ranked in result.ranking.likely_accidental()[:10]:
        print(
            f"  {ranked.format(schema)}  "
            f"({100 * ranked.null_fraction:.0f}% of it null markers)"
        )

    print("\n--- σ4 drill-down: who violates voter_id -> street_address? ---")
    from repro.ranking import violating_pairs
    from repro.relational.fd import FD

    voter = schema.index_of("voter_id")
    street = schema.index_of("street_address")
    sigma4 = FD(attrset.singleton(voter), attrset.singleton(street))
    for left, right in violating_pairs(relation, sigma4, limit=3):
        print(
            f"  rows {left}/{right}: voter_id="
            f"{relation.value(left, voter)!r} with streets "
            f"{relation.value(left, street)!r} vs {relation.value(right, street)!r}"
        )

    print("\n--- minimal LHSs determining `city` (paper §VI-B table) ---")
    print(f"{'LHS':55s} {'#red':>6s} {'#red-0':>7s}")
    for row in column_determinants(relation, result.canonical, "city"):
        print(
            f"{schema.format_attr_set(row.lhs):55s} "
            f"{row.red:6d} {row.red_null_free:7d}"
        )


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 1000)
