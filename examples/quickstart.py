"""Quickstart: discover, cover, and rank FDs on a small relation.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

from repro import NULL, Relation, profile

# A tiny voter-registration-style table (cf. Table I of the paper).
ROWS = [
    # voter_id, name,    street,            city,          state, zip
    ("131", "joseph cox", "1108 highland ave", "new bern", "nc", "28562"),
    ("131", "joseph cox", "9 casey rd", "new bern", "nc", "28562"),
    ("657", "essie warren", "105 south st", "lasker", "nc", "27845"),
    ("725", "lila morris", "500 w jefferson st", "jackson", "nc", "27845"),
    ("244", "sallie futrell", "9802 us hwy 258", "murfreesboro", "nc", "27855"),
    ("247", "herbert futrell", "9802 us hwy 258", "murfreesboro", "nc", "27855"),
    ("440", "barbara johnson", "6155 kimesville rd", "liberty", "nc", "27298"),
    ("464", "albert johnson", "6155 kimesville rd", "liberty", "nc", "27298"),
    ("265", "w johnson", "11957 us hwy 158", "conway", "nc", "27820"),
    ("272", "clyde johnson", "8944 us hwy 158", "conway", "nc", "27820"),
    ("026", "louise johnson", "113 gentry st #20", "wilkesboro", "nc", "28659"),
    ("042", "walter johnson", "169 otis brown dr", "wilkesboro", "nc", NULL),
]

SCHEMA = ["voter_id", "name", "street", "city", "state", "zip"]


def main() -> None:
    relation = Relation.from_rows(ROWS, SCHEMA)

    # One call: discovery (DHyFD) + canonical cover + redundancy ranking.
    result = profile(relation, algorithm="dhyfd")

    print("=== profile summary ===")
    print(result.summary())

    print("\n=== left-reduced cover (discovery output) ===")
    for line in result.discovery.format_fds():
        print(" ", line)

    print("\n=== canonical cover ===")
    for fd in result.canonical:
        print(" ", fd.format(relation.schema))

    print("\n=== FDs ranked by redundant data values ===")
    assert result.ranking is not None
    for ranked in result.ranking.ranked:
        print(" ", ranked.format(relation.schema))

    print("\nkey-candidate FDs (zero redundancy):")
    for ranked in result.ranking.zero_redundancy():
        print(" ", ranked.fd.format(relation.schema))

    from repro import discover_uccs

    print("\n=== minimal unique column combinations ===")
    uccs = discover_uccs(relation)
    if uccs.uccs:
        for line in uccs.format():
            print(" ", line)
    else:
        print("  none — the table contains duplicate rows")


if __name__ == "__main__":
    main()
