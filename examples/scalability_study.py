"""A miniature of the paper's Figure 9 scalability study.

Sweeps row counts on the weather replica and column counts on the
diabetic replica, timing TANE, FDEP, HyFD and DHyFD with a time limit —
the same series the paper plots, at laptop scale.

Run with::

    python examples/scalability_study.py
"""

from __future__ import annotations

from repro.bench import format_table, run_discovery
from repro.datasets import load_benchmark

ALGORITHMS = ["tane", "fdep2", "hyfd", "dhyfd"]
TIME_LIMIT = 10.0


def row_scalability() -> None:
    print("row scalability on the weather replica (18 cols)")
    rows_axis = [250, 500, 1000, 2000]
    table = []
    for n_rows in rows_axis:
        relation = load_benchmark("weather", n_rows=n_rows)
        cells = [n_rows]
        for algorithm in ALGORITHMS:
            record, _ = run_discovery(
                relation, algorithm, dataset="weather",
                time_limit=TIME_LIMIT, track_memory=False,
            )
            cells.append(record.seconds_text)
        table.append(cells)
    print(format_table(["rows"] + ALGORITHMS, table))


def column_scalability() -> None:
    print("\ncolumn scalability on the diabetic replica (300 rows)")
    base = load_benchmark("diabetic", n_rows=300)
    cols_axis = [8, 12, 16, 20, 24]
    table = []
    for n_cols in cols_axis:
        relation = base.project_columns(list(range(n_cols)))
        cells = [n_cols]
        fd_count = "-"
        for algorithm in ALGORITHMS:
            record, result = run_discovery(
                relation, algorithm, dataset="diabetic",
                time_limit=TIME_LIMIT, track_memory=False,
            )
            cells.append(record.seconds_text)
            if result is not None:
                fd_count = result.fd_count
        cells.append(fd_count)
        table.append(cells)
    print(format_table(["cols"] + ALGORITHMS + ["#FD"], table))


if __name__ == "__main__":
    row_scalability()
    column_scalability()
