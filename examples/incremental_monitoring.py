"""Monitoring FDs on a growing table with incremental maintenance.

Simulates an append-only ingest: batches of rows arrive, the cover is
repaired incrementally (no rediscovery), and every FD that a batch
breaks is reported — the "constraint drift" monitoring workflow that
FD profiling enables.

Run with::

    python examples/incremental_monitoring.py
"""

from __future__ import annotations

import random

from repro.datasets import ncvoter_like
from repro.incremental import IncrementalFDMaintainer
from repro.relational.null import NULL


def main() -> None:
    base = ncvoter_like(400, seed=0)
    maintainer = IncrementalFDMaintainer(base)
    print(
        f"initial: {base.n_rows} rows, "
        f"{len(maintainer.cover)} FDs in the left-reduced cover"
    )

    rng = random.Random(7)
    template = list(base.row_values(10))

    for batch_no in range(1, 5):
        batch = []
        for i in range(20):
            row = list(template)
            row[0] = f"new{batch_no}_{i}"              # fresh voter id
            row[1] = rng.choice(["amy", "ben", "cod"])  # first name
            row[5] = str(18 + rng.randrange(80))        # age
            if batch_no >= 3:
                # drift: new rows from out of state break σ1
                row[9] = "va"
            if rng.random() < 0.3:
                row[4] = NULL
            batch.append(tuple(row))

        before = maintainer.cover
        after = maintainer.append_rows(batch)
        broken = [fd for fd in before if fd not in after]
        added = [fd for fd in after if fd not in before]
        print(
            f"batch {batch_no}: +{len(batch)} rows -> "
            f"{len(after)} FDs ({len(broken)} broken, {len(added)} refined)"
        )
        for fd in broken[:5]:
            print("   broke:", fd.format(base.schema))

    print(
        f"\ntotal pair comparisons spent on maintenance: "
        f"{maintainer.pair_comparisons} "
        f"(vs ~{maintainer.relation.n_rows ** 2 // 2} for rediscovery)"
    )


if __name__ == "__main__":
    main()
