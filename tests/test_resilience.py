"""Tests for repro.resilience: budgets, degradation, faults, partial results.

The load-bearing properties:

* a tripped limit with ``on_limit="partial"`` returns a *sound* cover —
  every FD in it holds on the full relation — plus the unverified rest;
* a memory budget degrades a run (evict refined partitions, pin the DDM
  to no-refinement, shrink the pool) instead of killing it, and the
  degraded cover is byte-identical to the unconstrained one;
* armed fault points make the stack fail exactly where production code
  claims to survive, and it does.
"""

from __future__ import annotations

import pytest

from repro.algorithms import make_algorithm
from repro.core.base import Deadline, RunContext, TimeLimitExceeded
from repro.core.ddm import DynamicDataManager
from repro.core.dhyfd import DHyFD
from repro.core.validation import check_fd
from repro.covers.canonical import canonical_cover
from repro.partitions.stripped import StrippedPartition
from repro.ranking.ranker import rank_cover
from repro.ranking.redundancy import dataset_redundancy
from repro.resilience import (
    BudgetExceeded,
    MemorySentinel,
    RunBudget,
    faults,
    parse_bytes,
)
from repro.resilience.budget import ENV_MEMORY_BUDGET, ENV_RSS_LIMIT
from repro.telemetry import Tracer, use_tracer
from repro.ucc.discovery import discover_uccs
from tests.conftest import make_random_relation

#: Force the parallel path regardless of relation size.
FORCE_PARALLEL = dict(parallel_min_rows=0, parallel_min_candidates=1)


@pytest.fixture(autouse=True)
def _clean_faults(monkeypatch):
    """Every test starts and ends with nothing armed anywhere."""
    monkeypatch.delenv(faults.ENV_FAULTS, raising=False)
    monkeypatch.delenv(faults.ENV_FAULT_INJECT_LEGACY, raising=False)
    monkeypatch.delenv(ENV_MEMORY_BUDGET, raising=False)
    monkeypatch.delenv(ENV_RSS_LIMIT, raising=False)
    faults.reset()
    yield
    faults.reset()


def _fd_tuples(fds):
    return {(fd.lhs, fd.rhs) for fd in fds}


def _assert_sound(relation, fds):
    for fd in fds:
        assert check_fd(relation, fd.lhs, fd.rhs), (
            f"partial cover contains a violated FD: "
            f"{fd.format(relation.schema)}"
        )


# ----------------------------------------------------------------------
# Deadline edge cases (regression: zero/negative limits never fired)
# ----------------------------------------------------------------------


class TestDeadlineEdges:
    def test_zero_limit_trips_on_first_check(self):
        deadline = Deadline(0.0, "edge")
        with pytest.raises(TimeLimitExceeded):
            deadline.check()

    def test_negative_limit_clamps_to_expired(self):
        deadline = Deadline(-5.0, "edge")
        with pytest.raises(TimeLimitExceeded):
            deadline.check()

    def test_none_never_trips(self):
        Deadline(None, "edge").check()

    def test_generous_limit_does_not_trip(self):
        Deadline(3600.0, "edge").check()


# ----------------------------------------------------------------------
# Budget parsing
# ----------------------------------------------------------------------


class TestParseBytes:
    @pytest.mark.parametrize(
        "value,expected",
        [
            (1024, 1024),
            ("1024", 1024),
            ("4k", 4 * 1024),
            ("4K", 4 * 1024),
            ("64m", 64 * 1024 ** 2),
            ("64MB", 64 * 1024 ** 2),
            ("1g", 1024 ** 3),
            ("1.5g", int(1.5 * 1024 ** 3)),
        ],
    )
    def test_valid(self, value, expected):
        assert parse_bytes(value) == expected

    @pytest.mark.parametrize("value", ["", "nope", "4x", "m", 0, -1, "0"])
    def test_invalid(self, value):
        with pytest.raises(ValueError):
            parse_bytes(value)


class TestRunBudget:
    def test_defaults_limit_nothing(self):
        budget = RunBudget()
        assert not budget.limits_memory
        assert budget.time_limit is None

    def test_from_env(self, monkeypatch):
        monkeypatch.setenv(ENV_MEMORY_BUDGET, "4m")
        monkeypatch.setenv(ENV_RSS_LIMIT, "2g")
        budget = RunBudget.from_env(time_limit=1.5)
        assert budget.memory_limit_bytes == 4 * 1024 ** 2
        assert budget.rss_limit_bytes == 2 * 1024 ** 3
        assert budget.time_limit == 1.5
        assert budget.limits_memory

    def test_from_env_empty(self):
        assert not RunBudget.from_env().limits_memory


# ----------------------------------------------------------------------
# Memory sentinel
# ----------------------------------------------------------------------


class _FakeStore:
    """A byte counter with named shedding actions for sentinel tests."""

    def __init__(self, usage):
        self.usage = usage
        self.log = []

    def probe(self):
        return self.usage

    def shed(self, name, amount):
        def action():
            self.log.append(name)
            freed = min(amount, self.usage)
            self.usage -= freed
            return freed

        return action


class TestMemorySentinel:
    def _sentinel(self, store, limit, floor=0):
        budget = RunBudget(memory_limit_bytes=limit)
        return MemorySentinel(budget, store.probe, "test", floor_bytes=floor)

    def test_stages_fire_in_order_until_under_limit(self):
        store = _FakeStore(1000)
        sentinel = self._sentinel(store, limit=400)
        sentinel.add_stage("first", store.shed("first", 300))
        sentinel.add_stage("second", store.shed("second", 500))
        sentinel.add_stage("third", store.shed("third", 500))
        tracer = Tracer()
        with use_tracer(tracer):
            sentinel.check(force=True)
        # 1000 -> 700 (still over) -> 200 (under): third stage unused.
        assert store.log == ["first", "second"]
        assert sentinel.fired == ["first", "second"]
        assert not sentinel.exhausted
        stages = [e.attrs["stage"] for e in tracer.find_events("degradation")]
        assert stages == ["first", "second"]
        events = tracer.find_events("degradation")
        assert events[0].attrs["resource"] == "memory"
        assert events[0].attrs["freed"] == 300

    def test_exhausted_ladder_aborts_beyond_floor(self):
        store = _FakeStore(1000)
        sentinel = self._sentinel(store, limit=100, floor=200)
        sentinel.add_stage("only", store.shed("only", 500))
        with pytest.raises(BudgetExceeded) as excinfo:
            sentinel.check(force=True)
        assert excinfo.value.resource == "memory"
        assert excinfo.value.limit == 100
        assert sentinel.exhausted

    def test_floor_tolerance_prevents_abort(self):
        # Usage sheds down to the irreducible baseline; budget is below
        # the baseline, but the sentinel tolerates it (no abort).
        store = _FakeStore(1000)
        sentinel = self._sentinel(store, limit=100, floor=500)
        sentinel.add_stage("only", store.shed("only", 500))
        sentinel.check(force=True)  # 1000 -> 500 == floor: tolerated
        assert store.usage == 500
        sentinel.check(force=True)  # still over limit, still tolerated

    def test_checks_are_strided(self):
        store = _FakeStore(1000)
        sentinel = self._sentinel(store, limit=100, floor=1000)
        probes = []
        sentinel.probe = lambda: probes.append(1) or store.usage
        for _ in range(MemorySentinel.CHECK_STRIDE - 1):
            sentinel.check()
        assert not probes
        sentinel.check()
        assert probes

    def test_rss_ceiling_is_hard(self):
        budget = RunBudget(rss_limit_bytes=100)
        sentinel = MemorySentinel(
            budget, lambda: 0, "test", rss_probe=lambda: 200
        )
        with pytest.raises(BudgetExceeded) as excinfo:
            sentinel.check(force=True)
        assert excinfo.value.resource == "rss"

    def test_rss_unmeasurable_is_tolerated(self):
        budget = RunBudget(rss_limit_bytes=100)
        sentinel = MemorySentinel(
            budget, lambda: 0, "test", rss_probe=lambda: None
        )
        sentinel.check(force=True)


# ----------------------------------------------------------------------
# Fault registry
# ----------------------------------------------------------------------


class TestFaultRegistry:
    def test_unknown_point_rejected(self):
        with pytest.raises(ValueError):
            faults.activate("no.such.point")

    def test_unarmed_is_silent(self):
        assert not faults.armed()
        assert not faults.should_fire("ddm.stale")
        faults.fire("ddm.stale")  # no-op

    def test_times_and_after(self):
        faults.activate("ddm.stale", times=2, after=1)
        assert not faults.should_fire("ddm.stale")  # skipped
        assert faults.should_fire("ddm.stale")
        assert faults.should_fire("ddm.stale")
        assert not faults.should_fire("ddm.stale")  # budget spent
        assert not faults.is_active("ddm.stale")

    def test_fire_raises_default_and_custom(self):
        faults.activate("partition.build.memory")
        with pytest.raises(MemoryError):
            faults.fire("partition.build.memory", MemoryError)
        with pytest.raises(faults.FaultInjected) as excinfo:
            faults.fire("partition.build.memory")
        assert excinfo.value.point == "partition.build.memory"

    def test_deactivate_and_reset(self):
        faults.activate("ddm.stale")
        faults.deactivate("ddm.stale")
        assert not faults.is_active("ddm.stale")
        faults.activate("ddm.stale")
        faults.reset()
        assert not faults.armed()

    def test_env_bare_entry_always_fires(self, monkeypatch):
        monkeypatch.setenv(faults.ENV_FAULTS, "ddm.stale , shm.attach")
        assert faults.is_active("ddm.stale")
        assert faults.is_active("shm.attach")
        assert faults.should_fire("ddm.stale")
        assert faults.should_fire("ddm.stale")
        assert not faults.should_fire("worker.crash")

    def test_legacy_env_arms_worker_crash(self, monkeypatch):
        monkeypatch.setenv(faults.ENV_FAULT_INJECT_LEGACY, "crash")
        assert faults.armed()
        assert faults.is_active("worker.crash")
        assert faults.should_fire("worker.crash")

    def test_arm_once_fires_exactly_once(self):
        import os

        token = faults.arm_once("worker.crash")
        try:
            assert os.path.exists(token)
            assert faults.is_active("worker.crash")
            assert faults.should_fire("worker.crash")  # claims the token
            assert not os.path.exists(token)
            assert not faults.should_fire("worker.crash")
        finally:
            faults.disarm("worker.crash")
        assert faults.ENV_FAULTS not in os.environ

    def test_corrupt_csv_row(self):
        record = ["a", "b", "c"]
        assert faults.corrupt_csv_row(record) == record
        faults.activate("csv.corrupt_row", times=1)
        assert faults.corrupt_csv_row(record) == ["a", "b"]
        assert faults.corrupt_csv_row(record) == record


# ----------------------------------------------------------------------
# RunContext
# ----------------------------------------------------------------------


class TestRunContext:
    def test_quacks_like_deadline(self):
        context = RunContext("test", RunBudget())
        context.check()

    def test_limit_deadline_fault_trips_check(self):
        context = RunContext("test", RunBudget())
        faults.activate("limit.deadline", times=1)
        with pytest.raises(TimeLimitExceeded):
            context.check()
        context.check()  # disarmed again

    def test_sentinel_only_with_memory_budget(self):
        unlimited = RunContext("test", RunBudget(time_limit=5.0))
        assert unlimited.install_memory_sentinel(lambda: 0) is None
        limited = RunContext("test", RunBudget(memory_limit_bytes=1024))
        sentinel = limited.install_memory_sentinel(lambda: 512)
        assert sentinel is not None
        assert sentinel.floor_bytes == 512  # defaults to install-time probe

    def test_partial_cover_defaults_empty(self):
        context = RunContext("test", RunBudget())
        sound, unverified = context.partial_cover()
        assert len(sound) == 0 and len(unverified) == 0

    def test_on_limit_validated(self):
        with pytest.raises(ValueError):
            make_algorithm("dhyfd", on_limit="bogus")


# ----------------------------------------------------------------------
# Anytime partial results
# ----------------------------------------------------------------------


PARTIAL_ALGORITHMS = ["dhyfd", "hyfd", "tane"]


class TestPartialResults:
    @pytest.mark.parametrize("name", PARTIAL_ALGORITHMS)
    @pytest.mark.parametrize("after", [0, 5, 40, 300])
    def test_partial_cover_is_sound(self, name, after):
        relation = make_random_relation(11)
        complete = make_algorithm(name).discover(relation)
        faults.activate("limit.deadline", times=1, after=after)
        tracer = Tracer()
        with use_tracer(tracer):
            result = make_algorithm(name, on_limit="partial").discover(relation)
        faults.reset()
        if result.completed:
            # The limit fired after discovery finished polling: the run
            # completed normally and must equal the unconstrained cover.
            assert _fd_tuples(result.fds) == _fd_tuples(complete.fds)
            return
        assert result.limit_reason == "time"
        _assert_sound(relation, result.fds)
        events = tracer.find_events("partial_result")
        assert events and events[0].attrs["algorithm"] == name

    @pytest.mark.parametrize("name", PARTIAL_ALGORITHMS)
    def test_raise_policy_propagates(self, name):
        relation = make_random_relation(11)
        faults.activate("limit.deadline", times=1)
        with pytest.raises(TimeLimitExceeded):
            make_algorithm(name).discover(relation)

    def test_partial_result_repr_and_counts(self):
        relation = make_random_relation(11)
        faults.activate("limit.deadline", times=1, after=10)
        result = DHyFD(on_limit="partial").discover(relation)
        if result.completed:
            pytest.skip("relation too small to interrupt mid-run")
        assert "partial/time" in repr(result)
        assert result.limit_reason == "time"

    def test_memory_fault_yields_memory_partial(self):
        relation = make_random_relation(11)
        faults.activate("partition.build.memory", times=1)
        result = DHyFD(on_limit="partial").discover(relation)
        assert not result.completed
        assert result.limit_reason == "memory"
        _assert_sound(relation, result.fds)


# ----------------------------------------------------------------------
# Degradation ladder (DHyFD under a memory budget)
# ----------------------------------------------------------------------


class TestDegradation:
    def test_tiny_budget_walks_full_ladder_and_still_completes(self, monkeypatch):
        # Pin the probe stride to 1 so even a fast run polls the budget.
        monkeypatch.setattr(MemorySentinel, "CHECK_STRIDE", 1)
        relation = make_random_relation(11)
        baseline = DHyFD().discover(relation)
        tracer = Tracer()
        with use_tracer(tracer):
            result = DHyFD(budget=RunBudget(memory_limit_bytes=1)).discover(
                relation
            )
        assert result.completed
        assert _fd_tuples(result.fds) == _fd_tuples(baseline.fds)
        stages = [e.attrs["stage"] for e in tracer.find_events("degradation")]
        assert stages == [
            "evict_refined_partitions",
            "disable_refinement",
            "shrink_worker_pool",
            "evict_arena_datasets",
        ]

    def test_half_peak_budget_byte_identical_cover(self, monkeypatch):
        relation = make_random_relation(11)
        peak = {"bytes": 0}
        original_update = DynamicDataManager.update
        original_init = DynamicDataManager.__init__

        def tracking_init(self, *args, **kwargs):
            original_init(self, *args, **kwargs)
            peak["bytes"] = max(peak["bytes"], self.memory_bytes())

        def tracking_update(self, reusables):
            out = original_update(self, reusables)
            peak["bytes"] = max(peak["bytes"], self.memory_bytes())
            return out

        monkeypatch.setattr(DynamicDataManager, "__init__", tracking_init)
        monkeypatch.setattr(DynamicDataManager, "update", tracking_update)
        baseline = DHyFD().discover(relation)
        monkeypatch.undo()
        assert peak["bytes"] > 0
        budget = RunBudget(memory_limit_bytes=max(1, peak["bytes"] // 2))
        result = DHyFD(budget=budget).discover(relation)
        assert result.completed
        assert _fd_tuples(result.fds) == _fd_tuples(baseline.fds)

    def test_env_budget_applies_without_call_site_changes(self, monkeypatch):
        relation = make_random_relation(11)
        baseline = DHyFD().discover(relation)
        monkeypatch.setenv(ENV_MEMORY_BUDGET, "1")
        result = DHyFD().discover(relation)
        assert result.completed
        assert _fd_tuples(result.fds) == _fd_tuples(baseline.fds)


# ----------------------------------------------------------------------
# Chaos: injected faults at the instrumented sites
# ----------------------------------------------------------------------


class TestChaosFaults:
    def test_partition_build_fault_fires(self, city_relation):
        faults.activate("partition.build.memory", times=1)
        with pytest.raises(MemoryError):
            StrippedPartition.for_attribute(city_relation, 0)
        StrippedPartition.for_attribute(city_relation, 0)  # disarmed

    def test_partition_refine_fault_fires(self, city_relation):
        base = StrippedPartition.for_attribute(city_relation, 1)
        faults.activate("partition.refine.memory", times=1)
        with pytest.raises(MemoryError):
            base.refine(city_relation, 2)

    def test_refine_fault_degrades_dhyfd_not_kills(self):
        # A MemoryError inside DDM refinement flips no-refinement mode;
        # the run finishes with the correct cover.
        relation = make_random_relation(11)
        baseline = DHyFD().discover(relation)
        faults.activate("partition.refine.memory", times=1, after=2)
        tracer = Tracer()
        with use_tracer(tracer):
            result = DHyFD().discover(relation)
        assert result.completed
        assert _fd_tuples(result.fds) == _fd_tuples(baseline.fds)

    def test_ddm_stale_fault_keeps_cover_correct(self):
        relation = make_random_relation(7)
        baseline = DHyFD().discover(relation)
        faults.activate("ddm.stale")
        result = DHyFD().discover(relation)
        assert _fd_tuples(result.fds) == _fd_tuples(baseline.fds)


def _stats_signature(stats):
    return (
        stats.validations,
        stats.comparisons,
        stats.sampled_non_fds,
        stats.induction_calls,
        stats.induction_nodes_visited,
        stats.induction_fds_inserted,
        stats.levels_processed,
        stats.partition_refreshes,
        stats.level_log,
    )


class TestPoolRetry:
    def test_single_crash_retries_without_serial_fallback(self, monkeypatch):
        relation = make_random_relation(7)
        baseline = DHyFD().discover(relation)
        faults.arm_once("worker.crash")
        tracer = Tracer()
        try:
            with use_tracer(tracer):
                result = DHyFD(jobs=2, **FORCE_PARALLEL).discover(relation)
        finally:
            faults.disarm("worker.crash")
        assert _fd_tuples(result.fds) == _fd_tuples(baseline.fds)
        assert _stats_signature(result.stats) == _stats_signature(baseline.stats)
        retries = tracer.find_events("pool_retry")
        assert retries
        assert retries[0].attrs["attempt"] == 1
        assert not tracer.find_events("parallel_fallback")

    def test_persistent_crash_exhausts_retries_then_falls_back(
        self, monkeypatch
    ):
        relation = make_random_relation(7)
        baseline = DHyFD().discover(relation)
        monkeypatch.setenv(faults.ENV_FAULTS, "worker.crash")
        tracer = Tracer()
        with use_tracer(tracer):
            result = DHyFD(jobs=2, **FORCE_PARALLEL).discover(relation)
        assert _fd_tuples(result.fds) == _fd_tuples(baseline.fds)
        assert tracer.find_events("pool_retry")
        assert tracer.find_events("parallel_fallback")

    def test_shm_attach_fault_falls_back_serially(self, monkeypatch):
        relation = make_random_relation(7)
        baseline = DHyFD().discover(relation)
        monkeypatch.setenv(faults.ENV_FAULTS, "shm.attach")
        tracer = Tracer()
        with use_tracer(tracer):
            result = DHyFD(jobs=2, **FORCE_PARALLEL).discover(relation)
        assert _fd_tuples(result.fds) == _fd_tuples(baseline.fds)
        assert tracer.find_events("parallel_fallback")


# ----------------------------------------------------------------------
# Profile: ranking under the leftover time budget
# ----------------------------------------------------------------------


class TestProfilePartial:
    def test_ranking_timeout_skips_under_partial(self, monkeypatch, city_relation):
        from repro.profiling import profiler

        def exploding_rank(relation, cover, deadline=None, top_k=None):
            raise TimeLimitExceeded("ranking", 0.0)

        monkeypatch.setattr(profiler, "rank_cover", exploding_rank)
        outcome = profiler.profile(
            city_relation, algorithm="dhyfd", on_limit="partial"
        )
        assert outcome.ranking is None
        assert outcome.redundancy is None
        assert outcome.discovery.completed

    def test_ranking_timeout_propagates_under_raise(
        self, monkeypatch, city_relation
    ):
        from repro.profiling import profiler

        def exploding_rank(relation, cover, deadline=None, top_k=None):
            raise TimeLimitExceeded("ranking", 0.0)

        monkeypatch.setattr(profiler, "rank_cover", exploding_rank)
        with pytest.raises(TimeLimitExceeded):
            profiler.profile(city_relation, algorithm="dhyfd")

    def test_partial_summary_mentions_limit(self):
        relation = make_random_relation(11)
        faults.activate("limit.deadline", times=1, after=5)
        from repro.profiling import profiler

        outcome = profiler.profile(
            relation, algorithm="dhyfd", on_limit="partial", rank=False
        )
        faults.reset()
        if not outcome.discovery.completed:
            assert "PARTIAL RESULT" in outcome.summary()


# ----------------------------------------------------------------------
# Deadline plumbing in ranking and UCC discovery
# ----------------------------------------------------------------------


class TestDownstreamDeadlines:
    def test_rank_cover_polls_deadline(self, city_relation):
        cover = canonical_cover(DHyFD().discover(city_relation).fds)
        with pytest.raises(TimeLimitExceeded):
            rank_cover(city_relation, cover, deadline=Deadline(0.0, "ranking"))

    def test_dataset_redundancy_polls_deadline(self, city_relation):
        cover = canonical_cover(DHyFD().discover(city_relation).fds)
        with pytest.raises(TimeLimitExceeded):
            dataset_redundancy(
                city_relation, cover, deadline=Deadline(0.0, "ranking")
            )

    def test_discover_uccs_accepts_shared_deadline(self, city_relation):
        with pytest.raises(TimeLimitExceeded):
            discover_uccs(city_relation, deadline=Deadline(0.0, "ucc"))

    def test_discover_uccs_zero_time_limit(self, city_relation):
        with pytest.raises(TimeLimitExceeded):
            discover_uccs(city_relation, time_limit=0.0)
