"""Unit tests for closures and FD implication."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.covers.implication import (
    ImplicationEngine,
    closure,
    equivalent,
    implies,
)
from repro.relational import attrset
from repro.relational.fd import FD


def A(*attrs):
    return attrset.from_attrs(attrs)


FDS = [FD(A(0), A(1)), FD(A(1, 2), A(3)), FD(A(3), A(4))]


class TestClosure:
    def test_transitive_chain(self):
        assert closure(A(0, 2), FDS) == A(0, 1, 2, 3, 4)

    def test_no_fire(self):
        assert closure(A(4), FDS) == A(4)

    def test_partial(self):
        assert closure(A(0), FDS) == A(0, 1)

    def test_empty_lhs_fd_always_fires(self):
        fds = [FD(attrset.EMPTY, A(2)), FD(A(2), A(3))]
        assert closure(attrset.EMPTY, fds) == A(2, 3)

    def test_empty_fd_set(self):
        assert closure(A(1), []) == A(1)

    def test_reflexive(self):
        assert attrset.is_subset(A(0, 2), closure(A(0, 2), FDS))


class TestEngine:
    def test_exclude_breaks_chain(self):
        engine = ImplicationEngine(FDS)
        assert engine.closure(A(0, 2), exclude=1) == A(0, 1, 2)

    def test_remove_restore(self):
        engine = ImplicationEngine(FDS)
        engine.remove(0)
        assert engine.closure(A(0)) == A(0)
        engine.restore(0)
        assert engine.closure(A(0)) == A(0, 1)

    def test_active_indices(self):
        engine = ImplicationEngine(FDS)
        engine.remove(1)
        assert engine.active_indices() == [0, 2]

    def test_implies(self):
        engine = ImplicationEngine(FDS)
        assert engine.implies(FD(A(0, 2), A(4)))
        assert not engine.implies(FD(A(0), A(3)))

    def test_repeated_closures_independent(self):
        engine = ImplicationEngine(FDS)
        first = engine.closure(A(0, 2))
        second = engine.closure(A(0, 2))
        assert first == second


class TestImpliesAndEquivalent:
    def test_implies_helper(self):
        assert implies(FDS, FD(A(0, 1, 2), A(4)))
        assert not implies(FDS, FD(A(2), A(3)))

    def test_reflexive_closure_implication(self):
        # reflexivity: the closure of X always contains X itself
        assert closure(A(0, 1), []) == A(0, 1)

    def test_equivalent_true(self):
        left = [FD(A(0), A(1)), FD(A(1), A(2))]
        right = [FD(A(0), A(1, 2)), FD(A(1), A(2))]
        assert equivalent(left, right)

    def test_equivalent_false(self):
        assert not equivalent([FD(A(0), A(1))], [FD(A(1), A(0))])

    def test_equivalent_empty(self):
        assert equivalent([], [])


@settings(deadline=None, max_examples=40)
@given(
    fds=st.lists(
        st.tuples(st.integers(0, 31), st.integers(1, 31)).map(
            lambda pair: FD(pair[0] & ~pair[1], pair[1])
            if pair[1] and (pair[0] & ~pair[1]) != pair[1]
            else FD(attrset.EMPTY, pair[1])
        ),
        max_size=8,
    ),
    start=st.integers(0, 31),
)
def test_closure_properties(fds, start):
    """Closure is extensive, monotone-ish, and idempotent."""
    engine = ImplicationEngine(fds)
    closed = engine.closure(start)
    assert attrset.is_subset(start, closed)
    assert engine.closure(closed) == closed
    # naive fixpoint agrees
    naive = start
    changed = True
    while changed:
        changed = False
        for fd in fds:
            if attrset.is_subset(fd.lhs, naive) and fd.rhs & ~naive:
                naive |= fd.rhs
                changed = True
    assert closed == naive
