"""Unit tests for the partition cache."""

from __future__ import annotations

from repro.datasets.synthetic import random_relation
from repro.partitions.cache import PartitionCache
from repro.partitions.stripped import StrippedPartition
from repro.relational import attrset


class TestCache:
    def test_seeds_singletons(self, city_relation):
        cache = PartitionCache(city_relation)
        assert len(cache) == city_relation.n_cols + 1  # singletons + empty

    def test_get_matches_direct(self, city_relation):
        cache = PartitionCache(city_relation)
        mask = attrset.from_attrs([1, 2])
        cached = cache.get(mask)
        direct = StrippedPartition.for_attrs(city_relation, mask)
        assert {frozenset(c) for c in cached.clusters} == {
            frozenset(c) for c in direct.clusters
        }

    def test_hit_tracking(self, city_relation):
        cache = PartitionCache(city_relation)
        mask = attrset.from_attrs([1, 2])
        cache.get(mask)
        misses = cache.misses
        cache.get(mask)
        assert cache.misses == misses
        assert cache.hits >= 1

    def test_empty_set(self, city_relation):
        cache = PartitionCache(city_relation)
        assert cache.get(attrset.EMPTY).size == city_relation.n_rows

    def test_peek(self, city_relation):
        cache = PartitionCache(city_relation)
        mask = attrset.from_attrs([0, 1])
        assert cache.peek(mask) is None
        cache.get(mask)
        assert cache.peek(mask) is not None

    def test_put(self, city_relation):
        cache = PartitionCache(city_relation)
        mask = attrset.from_attrs([1, 3])
        partition = StrippedPartition.for_attrs(city_relation, mask)
        cache.put(partition)
        assert cache.peek(mask) is partition

    def test_evict_level(self, city_relation):
        cache = PartitionCache(city_relation)
        mask = attrset.from_attrs([1, 2])
        cache.get(mask)
        cache.evict_level(2)
        assert cache.peek(mask) is None
        # singletons survive eviction
        assert cache.peek(attrset.singleton(1)) is not None

    def test_evict_level_protects_singletons(self, city_relation):
        cache = PartitionCache(city_relation)
        cache.evict_level(1)
        assert cache.peek(attrset.singleton(0)) is not None

    def test_memory_accounting(self, city_relation):
        cache = PartitionCache(city_relation)
        before = cache.memory_bytes()
        cache.get(attrset.from_attrs([1, 2]))
        assert cache.memory_bytes() >= before

    def test_uses_best_subset(self):
        rel = random_relation(50, 4, domain_sizes=3, seed=7)
        cache = PartitionCache(rel)
        two = attrset.from_attrs([0, 1])
        three = attrset.from_attrs([0, 1, 2])
        cache.get(two)
        result = cache.get(three)
        direct = StrippedPartition.for_attrs(rel, three)
        assert {frozenset(c) for c in result.clusters} == {
            frozenset(c) for c in direct.clusters
        }

    def test_reuses_cached_multi_attr_subset(self):
        # Regression: _best_subset used to consider only immediate
        # sub-masks and singletons, so a cached π_AB was never reused
        # for π_ABCD (no 3-attribute subset is cached here).
        rel = random_relation(60, 5, domain_sizes=3, seed=11)
        cache = PartitionCache(rel)
        two = attrset.from_attrs([0, 1])
        four = attrset.from_attrs([0, 1, 2, 3])
        cached_two = cache.get(two)
        assert cache._best_subset(four) is cached_two
        result = cache.get(four)
        direct = StrippedPartition.for_attrs(rel, four)
        assert {frozenset(c) for c in result.clusters} == {
            frozenset(c) for c in direct.clusters
        }

    def test_prefers_largest_cached_subset(self):
        rel = random_relation(60, 5, domain_sizes=3, seed=11)
        cache = PartitionCache(rel)
        cache.get(attrset.from_attrs([0, 1]))
        cached_three = cache.get(attrset.from_attrs([0, 1, 2]))
        target = attrset.from_attrs([0, 1, 2, 4])
        assert cache._best_subset(target) is cached_three

    def test_subset_scan_ignores_non_subsets(self):
        rel = random_relation(60, 5, domain_sizes=3, seed=11)
        cache = PartitionCache(rel)
        cache.get(attrset.from_attrs([2, 3]))  # not a subset of target
        target = attrset.from_attrs([0, 1, 4])
        base = cache._best_subset(target)
        assert attrset.is_proper_subset(base.attrs, target)
        assert attrset.count(base.attrs) <= 1
