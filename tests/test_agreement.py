"""Cross-algorithm agreement: every algorithm returns the oracle cover.

This is the core correctness property of the whole library: TANE, the
FDEP family, HyFD and DHyFD are different strategies for the same
problem and must produce the identical left-reduced cover.
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.algorithms import make_algorithm
from repro.algorithms.naive import NaiveFDDiscovery
from repro.datasets.synthetic import (
    duplicate_template_relation,
    planted_fd_relation,
    random_relation,
)
from repro.relational.null import NULL
from repro.relational.relation import Relation

COMPARED = ["tane", "fdep", "fdep1", "fdep2", "hyfd", "dhyfd"]


def oracle(relation):
    return NaiveFDDiscovery().discover(relation).fds


@pytest.mark.parametrize("name", COMPARED)
@pytest.mark.parametrize("seed", [0, 1, 2])
def test_random_small_domains(name, seed):
    rel = random_relation(35, 5, domain_sizes=2, seed=seed)
    assert make_algorithm(name).discover(rel).fds == oracle(rel)


@pytest.mark.parametrize("name", COMPARED)
def test_with_nulls_eq(name):
    rel = random_relation(30, 5, domain_sizes=3, null_rate=0.25, seed=3)
    assert make_algorithm(name).discover(rel).fds == oracle(rel)


@pytest.mark.parametrize("name", COMPARED)
def test_with_nulls_neq(name):
    rel = random_relation(30, 5, domain_sizes=3, null_rate=0.25, seed=3,
                          semantics="neq")
    assert make_algorithm(name).discover(rel).fds == oracle(rel)


@pytest.mark.parametrize("name", COMPARED)
def test_planted_fds(name):
    rel = planted_fd_relation(
        45, 6, [([0, 1], 2), ([3], 4)], base_domain=6, seed=5
    )
    assert make_algorithm(name).discover(rel).fds == oracle(rel)


@pytest.mark.parametrize("name", COMPARED)
def test_near_duplicates(name):
    rel = duplicate_template_relation(40, 6, 4, mutation_rate=0.15, seed=6)
    assert make_algorithm(name).discover(rel).fds == oracle(rel)


@pytest.mark.parametrize("name", COMPARED)
def test_all_rows_identical(name):
    rel = Relation.from_rows([("a", "b", "c")] * 5)
    got = make_algorithm(name).discover(rel).fds
    assert got == oracle(rel)
    assert len(got) == 3  # each column constant


@pytest.mark.parametrize("name", COMPARED)
def test_two_rows(name):
    rel = Relation.from_rows([("a", "x", "1"), ("a", "y", "1")])
    assert make_algorithm(name).discover(rel).fds == oracle(rel)


# ---------------------------------------------------------------------------
# Property-based: random relations drawn by hypothesis
# ---------------------------------------------------------------------------

relations = st.builds(
    random_relation,
    n_rows=st.integers(1, 30),
    n_cols=st.integers(1, 5),
    domain_sizes=st.integers(1, 4),
    null_rate=st.sampled_from([0.0, 0.2]),
    seed=st.integers(0, 10_000),
)


@settings(
    deadline=None,
    max_examples=30,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(rel=relations, name=st.sampled_from(COMPARED))
def test_agreement_property(rel, name):
    assert make_algorithm(name).discover(rel).fds == oracle(rel)


@settings(deadline=None, max_examples=15)
@given(
    rows=st.lists(
        st.tuples(
            st.one_of(st.none(), st.integers(0, 2)),
            st.one_of(st.none(), st.integers(0, 2)),
            st.one_of(st.none(), st.integers(0, 2)),
            st.one_of(st.none(), st.integers(0, 2)),
        ),
        min_size=1,
        max_size=20,
    ),
    semantics=st.sampled_from(["eq", "neq"]),
    name=st.sampled_from(["tane", "fdep2", "hyfd", "dhyfd"]),
)
def test_agreement_arbitrary_tables(rows, semantics, name):
    """Arbitrary tables with nulls under both semantics."""
    rel = Relation.from_rows(
        [[NULL if v is None else v for v in row] for row in rows],
        semantics=semantics,
    )
    assert make_algorithm(name).discover(rel).fds == oracle(rel)
