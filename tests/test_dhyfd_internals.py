"""White-box tests of DHyFD invariants (ids, levels, DDM consistency)."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.ddm import DynamicDataManager
from repro.core.dhyfd import DHyFD
from repro.core.validation import check_fd
from repro.datasets.synthetic import planted_fd_relation, random_relation
from repro.fdtree.extended import ExtendedFDTree
from repro.fdtree.induction import synergized_induct
from repro.relational import attrset


class TestTreeLevelConsistency:
    """nodes_at_level must agree with the incremental vl_nodes tracking
    that Algorithm 1 performs during induction."""

    @settings(deadline=None, max_examples=15)
    @given(seed=st.integers(0, 500))
    def test_vl_nodes_tracking_matches_dfs(self, seed):
        import random as rnd

        rng = rnd.Random(seed)
        n_cols = 6
        tree = ExtendedFDTree(n_cols)
        tree.add_fd(attrset.EMPTY, attrset.full_set(n_cols))
        vl = 2
        vl_nodes = []
        # seed the tree with a few inductions without tracking
        for _ in range(4):
            lhs = attrset.from_attrs(rng.sample(range(n_cols), rng.randint(1, 3)))
            synergized_induct(tree, lhs, attrset.complement(lhs, n_cols))
        vl_nodes = tree.nodes_at_level(vl)
        before = {id(n) for n in vl_nodes}
        # now induct with tracking at vl
        for _ in range(4):
            lhs = attrset.from_attrs(rng.sample(range(n_cols), rng.randint(2, 4)))
            synergized_induct(
                tree, lhs, attrset.complement(lhs, n_cols), cl=1, vl=vl,
                vl_nodes=vl_nodes,
            )
        tracked = {id(n) for n in vl_nodes if not n.deleted}
        dfs = {id(n) for n in tree.nodes_at_level(vl)}
        # tracking may retain pruned-then-deleted ids; DFS is ground truth
        assert dfs <= tracked | before
        assert dfs == {id(n) for n in tree.nodes_at_level(vl)}
        for node in tree.nodes_at_level(vl):
            assert node.depth == vl


class TestDDMConsistencyInvariant:
    @settings(deadline=None, max_examples=10)
    @given(seed=st.integers(0, 300))
    def test_dynamic_ids_reference_subset_partitions(self, seed):
        """Property (8) of extended FD-trees: a dynamic id's partition
        attribute set is a subset of the node's path (or the lookup
        falls back, which partition_for_node guarantees)."""
        rel = random_relation(40, 6, domain_sizes=3, seed=seed)
        ddm = DynamicDataManager(rel)
        tree = ExtendedFDTree(6)
        import random as rnd

        rng = rnd.Random(seed)
        for _ in range(6):
            attrs = rng.sample(range(6), rng.randint(1, 4))
            lhs = attrset.from_attrs(attrs[:-1]) or attrset.singleton(attrs[0])
            rhs_attr = next(a for a in range(6) if not attrset.contains(lhs, a))
            tree.add_fd(lhs, attrset.singleton(rhs_attr))
        level2 = tree.nodes_at_level(2)
        if level2:
            ddm.update(level2)
        for level in (1, 2, 3):
            for node in tree.nodes_at_level(level):
                partition = ddm.partition_for_node(node)
                assert attrset.is_subset(partition.attrs, node.path())


class TestDiscoveryOutcomes:
    def test_all_outputs_valid_and_minimal(self):
        rel = planted_fd_relation(60, 6, [([0, 1], 2)], base_domain=5, seed=2)
        result = DHyFD().discover(rel)
        for fd in result.fds:
            assert check_fd(rel, fd.lhs, fd.rhs)
            for attr in attrset.iter_attrs(fd.lhs):
                assert not check_fd(rel, attrset.remove(fd.lhs, attr), fd.rhs)

    def test_stats_populated(self):
        rel = random_relation(50, 6, domain_sizes=3, seed=3)
        result = DHyFD().discover(rel)
        stats = result.stats
        assert stats.validations > 0
        assert stats.comparisons > 0
        assert stats.induction_calls > 0
        assert stats.partition_memory_peak_bytes > 0

    def test_refreshes_happen_on_fd_dense_levels(self):
        # valid level-2 FDs *with more FDs above them* (deeper planted
        # LHSs) make the ratio trigger a DDM refresh: refreshing only
        # pays off when reusable nodes lead to FDs at higher levels
        rel = planted_fd_relation(
            200, 8,
            [([0, 1], 4), ([0, 1, 2, 3], 5), ([0, 1, 2], 6)],
            base_domain=6, seed=1,
        )
        result = DHyFD(ratio_threshold=0.01).discover(rel)
        assert result.stats.partition_refreshes >= 1

    def test_no_refresh_when_disabled(self):
        rel = planted_fd_relation(
            150, 8, [([0, 1], 4), ([2, 3], 5)], base_domain=8, seed=1
        )
        result = DHyFD(
            ratio_threshold=0.01, enable_ddm_updates=False
        ).discover(rel)
        assert result.stats.partition_refreshes == 0

    def test_forced_refresh_every_level_still_correct(self):
        """ratio_threshold 0 forces a DDM refresh at every eligible
        level; the output must not change and ids stay consistent."""
        rel = planted_fd_relation(
            120, 7, [([0, 1], 3), ([0, 1, 2], 4)], base_domain=5, seed=8
        )
        forced = DHyFD(ratio_threshold=0.0).discover(rel)
        normal = DHyFD().discover(rel)
        assert forced.fds == normal.fds
        assert forced.stats.partition_refreshes >= normal.stats.partition_refreshes

    def test_level_log_monotone_levels(self):
        rel = random_relation(60, 6, domain_sizes=3, seed=6)
        result = DHyFD().discover(rel)
        levels = [entry["level"] for entry in result.stats.level_log]
        assert levels == sorted(levels)
        assert levels and levels[0] == 1
