"""Unit tests for the dynamic data manager (Algorithm 3)."""

from __future__ import annotations

from repro.core.ddm import DynamicDataManager
from repro.fdtree.extended import ExtendedFDTree
from repro.partitions.stripped import StrippedPartition
from repro.relational import attrset


def A(*attrs):
    return attrset.from_attrs(attrs)


def clusters_as_sets(partition):
    return {frozenset(c) for c in partition.clusters}


class TestLookup:
    def test_precomputes_singletons(self, city_relation):
        ddm = DynamicDataManager(city_relation)
        assert len(ddm.singletons) == city_relation.n_cols
        for attr, partition in enumerate(ddm.singletons):
            assert partition.attrs == attrset.singleton(attr)

    def test_best_singleton_prefers_smallest(self, city_relation):
        ddm = DynamicDataManager(city_relation)
        # name is a key -> its partition is empty (size 0), the smallest
        best = ddm.best_singleton(A(0, 2, 3))
        assert best.attrs == attrset.singleton(0)

    def test_best_singleton_empty_path_gives_universal(self, city_relation):
        ddm = DynamicDataManager(city_relation)
        assert ddm.best_singleton(attrset.EMPTY) is ddm.universal

    def test_partition_for_default_id_node(self, city_relation):
        ddm = DynamicDataManager(city_relation)
        tree = ExtendedFDTree(city_relation.n_cols)
        node = tree.add_fd(A(1, 2), A(3))
        partition = ddm.partition_for_node(node)
        assert attrset.is_subset(partition.attrs, A(1, 2))

    def test_partition_for_inconsistent_id_falls_back(self, city_relation):
        ddm = DynamicDataManager(city_relation)
        ddm.dynamic = [StrippedPartition.for_attribute(city_relation, 3)]
        tree = ExtendedFDTree(city_relation.n_cols)
        node = tree.add_fd(A(1, 2), A(0))
        node.id = city_relation.n_cols  # points at π_3, not ⊆ {1,2}
        partition = ddm.partition_for_node(node)
        assert attrset.is_subset(partition.attrs, A(1, 2))

    def test_partition_for_out_of_range_id(self, city_relation):
        ddm = DynamicDataManager(city_relation)
        tree = ExtendedFDTree(city_relation.n_cols)
        node = tree.add_fd(A(1), A(0))
        node.id = 99
        partition = ddm.partition_for_node(node)
        assert partition.attrs == attrset.singleton(1)


class TestAccounting:
    """Regression: lookup counters must not conflate by-design
    singleton-id resolutions with real stale fallbacks, and internal
    resolutions made by update() must not count at all."""

    def test_singleton_id_counts_as_singleton_lookup(self, city_relation):
        ddm = DynamicDataManager(city_relation)
        tree = ExtendedFDTree(city_relation.n_cols)
        node = tree.add_fd(A(1, 2), A(3))
        ddm.partition_for_node(node)
        assert ddm.singleton_lookups == 1
        assert ddm.hits == 0
        assert ddm.stale_fallbacks == 0
        assert ddm.misses == 0

    def test_dynamic_id_counts_as_hit(self, city_relation):
        ddm = DynamicDataManager(city_relation)
        tree = ExtendedFDTree(city_relation.n_cols)
        end = tree.add_fd(A(1, 2), A(3))
        ddm.update([end])
        ddm.partition_for_node(end)
        assert ddm.hits == 1
        assert ddm.singleton_lookups == 0
        assert ddm.stale_fallbacks == 0

    def test_stale_id_counts_as_fallback(self, city_relation):
        ddm = DynamicDataManager(city_relation)
        ddm.dynamic = [StrippedPartition.for_attribute(city_relation, 3)]
        tree = ExtendedFDTree(city_relation.n_cols)
        node = tree.add_fd(A(1, 2), A(0))
        node.id = city_relation.n_cols  # points at π_3, not ⊆ {1,2}
        ddm.partition_for_node(node)
        assert ddm.stale_fallbacks == 1
        assert ddm.misses == 1
        assert ddm.hits == 0
        assert ddm.singleton_lookups == 0

    def test_update_does_not_inflate_counters(self, city_relation):
        ddm = DynamicDataManager(city_relation)
        tree = ExtendedFDTree(city_relation.n_cols)
        end = tree.add_fd(A(1, 2), A(3))
        ddm.update([end])
        ddm.update([end])  # second round resolves the dynamic id again
        assert ddm.hits == 0
        assert ddm.singleton_lookups == 0
        assert ddm.stale_fallbacks == 0


class TestUpdate:
    def test_update_refines_to_paths(self, city_relation):
        ddm = DynamicDataManager(city_relation)
        tree = ExtendedFDTree(city_relation.n_cols)
        end = tree.add_fd(A(1, 2), A(3))
        parent = end.parent  # node for attr 1 at level 1
        ddm.update([parent])
        assert len(ddm.dynamic) == 1
        assert ddm.dynamic[0].attrs == A(1)
        assert parent.id == city_relation.n_cols

    def test_update_copies_ids_to_descendants(self, city_relation):
        ddm = DynamicDataManager(city_relation)
        tree = ExtendedFDTree(city_relation.n_cols)
        end = tree.add_fd(A(1, 2), A(3))
        parent = end.parent
        ddm.update([parent])
        assert end.id == parent.id

    def test_updated_partition_correct(self, city_relation):
        ddm = DynamicDataManager(city_relation)
        tree = ExtendedFDTree(city_relation.n_cols)
        end = tree.add_fd(A(1, 2), A(3))
        ddm.update([end])
        expected = StrippedPartition.for_attrs(city_relation, A(1, 2))
        assert clusters_as_sets(ddm.dynamic[0]) == clusters_as_sets(expected)

    def test_second_update_reuses_previous(self, city_relation):
        ddm = DynamicDataManager(city_relation)
        tree = ExtendedFDTree(city_relation.n_cols)
        end = tree.add_fd(A(1, 2), A(3))
        parent = end.parent
        ddm.update([parent])
        ddm.update([end])  # refine π_1 -> π_12 starting from dynamic
        assert ddm.update_count == 2
        expected = StrippedPartition.for_attrs(city_relation, A(1, 2))
        assert clusters_as_sets(ddm.dynamic[0]) == clusters_as_sets(expected)
        assert end.id == city_relation.n_cols

    def test_memory_accounting(self, city_relation):
        ddm = DynamicDataManager(city_relation)
        assert ddm.dynamic_memory_bytes() == 0
        tree = ExtendedFDTree(city_relation.n_cols)
        end = tree.add_fd(A(1, 2), A(3))
        ddm.update([end])
        assert ddm.dynamic_memory_bytes() > 0
        assert ddm.memory_bytes() > ddm.dynamic_memory_bytes()
