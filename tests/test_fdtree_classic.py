"""Unit tests for classical FD-trees (Flach & Savnik)."""

from __future__ import annotations

import pytest

from repro.fdtree.classic import ClassicFDTree
from repro.relational import attrset
from repro.relational.fd import FD


def A(*attrs):
    return attrset.from_attrs(attrs)


class TestAddAndIterate:
    def test_single(self):
        tree = ClassicFDTree(4)
        tree.add_fd(A(0, 1), 2)
        assert set(tree.iter_fds()) == {FD(A(0, 1), A(2))}
        assert tree.fd_count() == 1

    def test_labels_propagate_along_path(self):
        tree = ClassicFDTree(4)
        tree.add_fd(A(0, 1), 2)
        root = tree.root
        assert attrset.contains(root.subtree_rhs, 2)
        child = root.children[0]
        assert attrset.contains(child.subtree_rhs, 2)
        grandchild = child.children[1]
        assert attrset.contains(grandchild.fd_rhs, 2)

    def test_empty_lhs(self):
        tree = ClassicFDTree(3)
        tree.add_fd(attrset.EMPTY, 1)
        assert attrset.contains(tree.root.fd_rhs, 1)

    def test_multiple_rhs_same_path(self):
        tree = ClassicFDTree(4)
        tree.add_fd(A(0), 1)
        tree.add_fd(A(0), 2)
        assert set(tree.iter_fds()) == {FD(A(0), A(1, 2))}
        assert tree.fd_count() == 2

    def test_rejects_bad_width(self):
        with pytest.raises(ValueError):
            ClassicFDTree(0)


class TestGeneralizations:
    def build(self):
        tree = ClassicFDTree(6)
        tree.add_fd(A(0), 1)
        tree.add_fd(A(0, 2), 3)
        tree.add_fd(A(2, 3), 5)
        return tree

    def test_contains_exact(self):
        tree = self.build()
        assert tree.contains_generalization(A(0), 1)

    def test_contains_superset_lhs(self):
        tree = self.build()
        assert tree.contains_generalization(A(0, 2, 4), 3)

    def test_missing(self):
        tree = self.build()
        assert not tree.contains_generalization(A(0), 3)
        assert not tree.contains_generalization(A(2), 5)

    def test_remove_generalizations(self):
        tree = self.build()
        removed = tree.remove_generalizations(A(0, 2, 3), 3)
        assert removed == [A(0, 2)]
        assert not tree.contains_generalization(A(0, 2), 3)
        # other FDs untouched
        assert tree.contains_generalization(A(0), 1)

    def test_remove_multiple(self):
        tree = ClassicFDTree(5)
        tree.add_fd(A(0), 4)
        tree.add_fd(A(1, 2), 4)
        removed = tree.remove_generalizations(A(0, 1, 2), 4)
        assert {frozenset(attrset.to_list(m)) for m in removed} == {
            frozenset({0}),
            frozenset({1, 2}),
        }
        assert tree.fd_count() == 0

    def test_remove_nothing(self):
        tree = self.build()
        assert tree.remove_generalizations(A(4, 5), 1) == []

    def test_stale_labels_tolerated(self):
        tree = self.build()
        tree.remove_generalizations(A(0), 1)
        # subtree label may be stale but queries stay correct
        assert not tree.contains_generalization(A(0, 1, 2, 3, 4, 5), 1)

    def test_node_count(self):
        assert self.build().node_count() == 4
