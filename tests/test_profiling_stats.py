"""Tests for column statistics and the markdown report."""

from __future__ import annotations

import math

from repro.profiling import (
    column_stats,
    markdown_report,
    profile,
    relation_stats,
)
from repro.relational.null import NULL
from repro.relational.relation import Relation


class TestColumnStats:
    def test_constant_column(self, city_relation):
        stats = column_stats(city_relation, 3)
        assert stats.is_constant
        assert not stats.is_unique
        assert stats.cardinality == 1
        assert stats.entropy_bits == 0.0
        assert stats.top_values == (("nc", 6),)

    def test_unique_column(self, city_relation):
        stats = column_stats(city_relation, 0)
        assert stats.is_unique
        assert stats.distinct_fraction == 1.0
        assert math.isclose(stats.entropy_bits, math.log2(6))

    def test_null_fraction(self, null_relation):
        stats = column_stats(null_relation, 1)
        assert stats.null_count == 2
        assert stats.null_fraction == 0.5

    def test_top_values_sorted(self, city_relation):
        stats = column_stats(city_relation, 2, top_k=2)
        assert stats.top_values[0] == ("c1", 3)
        assert stats.top_values[1] == ("c2", 2)

    def test_relation_stats_covers_all_columns(self, city_relation):
        all_stats = relation_stats(city_relation)
        assert [s.name for s in all_stats] == city_relation.schema.names

    def test_empty_relation(self):
        rel = Relation.from_rows([("a", "b")]).project_rows([])
        stats = column_stats(rel, 0)
        assert stats.n_rows == 0
        assert stats.null_fraction == 0.0
        assert not stats.is_constant


class TestMarkdownReport:
    def test_sections_present(self, city_relation):
        report = markdown_report(profile(city_relation), title="City data")
        assert report.startswith("# City data")
        assert "## Columns" in report
        assert "## Functional dependencies" in report
        assert "## FDs ranked by data redundancy" in report
        assert "## Normalization" in report

    def test_mentions_key_and_constant(self, city_relation):
        report = markdown_report(profile(city_relation))
        assert "unique (key)" in report
        assert "constant" in report
        assert "zip -> city" in report

    def test_no_ranking_section_when_skipped(self, city_relation):
        report = markdown_report(profile(city_relation, rank=False))
        assert "ranked by data redundancy" not in report

    def test_normalization_toggle(self, city_relation):
        report = markdown_report(
            profile(city_relation), include_normalization=False
        )
        assert "## Normalization" not in report

    def test_null_flagging(self):
        rows = [("a", NULL), ("b", NULL), ("c", NULL), ("d", "v")]
        rel = Relation.from_rows(rows, ["id", "sparse"])
        report = markdown_report(profile(rel))
        assert "mostly null" in report
