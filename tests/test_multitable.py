"""Tests for repro.multitable: schema graphs, virtual joins, join FDs.

The acceptance bar (ISSUE 10): ``discover_join_fds`` over the virtual
join is byte-identical — cover, relation fingerprint, ranked order and
any ``top_k`` cut — to running the same algorithm on the materialized
join, across small random schemas x EQ/NEQ null semantics x
python/numpy backends x jobs=1/2, while the virtual path never builds
a joined row (asserted via the ``multitable.materialize`` telemetry
counter).  Inclusion testing treats nulls identically under both
semantics, dangling rows follow the pad/drop/raise policies, and the
service, router and CLI layers surface all of it.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.algorithms.registry import make_algorithm
from repro.cli import build_parser, main
from repro.datasets.star import (
    STAR_PATH,
    reddit_star_graph,
    reddit_star_joined,
    reddit_star_tables,
)
from repro.multitable import (
    PAD,
    DanglingRowError,
    ForeignKey,
    MultitableError,
    SchemaGraph,
    build_provenance,
    discover_join_fds,
    fd_scope,
    fd_tables,
    inclusion_coverage,
    lift_partition,
    lift_relation,
    materialize_join,
    resolve_policy,
)
from repro.partitions.stripped import StrippedPartition
from repro.ranking.ranker import rank_cover
from repro.relational import attrset
from repro.relational.fd_io import cover_to_json
from repro.relational.io import write_csv
from repro.relational.null import NullSemantics
from repro.relational.relation import Relation
from repro.service import (
    ConfigError,
    FDService,
    JobConfig,
    ServiceClient,
    ServiceError,
    UnknownSchemaError,
    start_in_thread,
)
from repro.telemetry import Tracer, use_tracer
from repro.ucc import discover_uccs

from .test_ucc import brute_force_uccs


# ----------------------------------------------------------------------
# Fixtures: a tiny hand-checkable two-table schema plus random stars
# ----------------------------------------------------------------------

PARENT_ROWS = [
    ("p0", "us", "en"),
    ("p1", "uk", "en"),
    ("p2", "de", "de"),
]
PARENT_COLS = ["pid", "country", "lang"]

CHILD_ROWS = [
    ("c0", "p0", "t1"),
    ("c1", "p0", "t2"),
    ("c2", "p1", "t1"),
    ("c3", "p2", "t3"),
]
CHILD_COLS = ["cid", "pid_ref", "tag"]


def two_table_graph(child_rows=None, semantics=NullSemantics.EQ,
                    require_inclusion=True):
    parent = Relation.from_rows(PARENT_ROWS, PARENT_COLS, semantics=semantics)
    child = Relation.from_rows(
        list(child_rows if child_rows is not None else CHILD_ROWS),
        CHILD_COLS,
        semantics=semantics,
    )
    graph = SchemaGraph()
    graph.add_table("parent", parent, key=["pid"])
    graph.add_table("child", child, key=["cid"])
    graph.add_foreign_key(
        "child", ["pid_ref"], "parent", ["pid"],
        require_inclusion=require_inclusion,
    )
    return graph


def random_star(seed, semantics=NullSemantics.EQ, dirty=True):
    """A small random two-table star with planted FDs and optional dirt.

    Dirt means dangling refs (ghost parents) plus null FK values plus
    nulls in ordinary attribute columns, so EQ and NEQ genuinely differ
    on the lifted codes while the covers must still match the
    materialized join exactly.
    """
    import random as _random

    rng = _random.Random(seed)
    n_parent = rng.randint(3, 7)
    parent_rows = []
    for i in range(n_parent):
        a = f"a{rng.randrange(3)}"
        parent_rows.append([
            f"p{i}",
            a,
            f"f({a})",  # planted: pa -> pb
            None if dirty and rng.random() < 0.15 else f"x{rng.randrange(2)}",
        ])
    parent = Relation.from_rows(
        parent_rows, ["pid", "pa", "pb", "px"], semantics=semantics
    )
    n_child = rng.randint(8, 20)
    child_rows = []
    for i in range(n_child):
        roll = rng.random()
        if dirty and roll < 0.1:
            ref = None
        elif dirty and roll < 0.2:
            ref = f"ghost{i}"
        else:
            ref = f"p{rng.randrange(n_parent)}"
        child_rows.append([
            f"c{i}",
            ref,
            f"u{rng.randrange(3)}",
            None if dirty and rng.random() < 0.15 else f"m{rng.randrange(2)}",
        ])
    child = Relation.from_rows(
        child_rows, ["cid", "pid_ref", "ca", "cb"], semantics=semantics
    )
    graph = SchemaGraph()
    graph.add_table("parent", parent, key=["pid"])
    graph.add_table("child", child, key=["cid"])
    graph.add_foreign_key(
        "child", ["pid_ref"], "parent", ["pid"], require_inclusion=False
    )
    return graph


def ranked_snapshot(ranking):
    """Comparable form of a ranking: exact FDs in exact order + counts."""
    return [
        (entry.fd, entry.redundancy, entry.redundancy_excluding_null)
        for entry in ranking.ranked
    ]


# ----------------------------------------------------------------------
# Schema graphs: tables, keys, FKs, paths
# ----------------------------------------------------------------------


class TestSchemaGraph:
    def test_declared_key_is_validated(self):
        parent = Relation.from_rows(PARENT_ROWS, PARENT_COLS)
        graph = SchemaGraph()
        with pytest.raises(MultitableError, match="does not uniquely"):
            graph.add_table("parent", parent, key=["lang"])

    def test_declared_superkey_is_minimized(self):
        parent = Relation.from_rows(
            PARENT_ROWS + [("p3", "us", "en")], PARENT_COLS
        )
        graph = SchemaGraph()
        graph.add_table("parent", parent, key=["pid", "country"])
        assert graph.primary_key("parent") == ("pid",)

    def test_inferred_keys_are_bounded_minimal_uccs(self):
        parent = Relation.from_rows(PARENT_ROWS, PARENT_COLS)
        graph = SchemaGraph()
        keys = graph.add_table("parent", parent)
        expected = [
            u for u in brute_force_uccs(parent) if attrset.count(u) <= 3
        ]
        assert sorted(keys) == sorted(expected)

    def test_table_name_rules(self):
        parent = Relation.from_rows(PARENT_ROWS, PARENT_COLS)
        graph = SchemaGraph()
        for bad in ("", "a.b", "a/b"):
            with pytest.raises(MultitableError):
                graph.add_table(bad, parent)
        graph.add_table("ok", parent)
        with pytest.raises(MultitableError, match="already registered"):
            graph.add_table("ok", parent)

    def test_mixed_semantics_rejected(self):
        graph = SchemaGraph()
        graph.add_table(
            "a", Relation.from_rows(PARENT_ROWS, PARENT_COLS,
                                    semantics=NullSemantics.EQ)
        )
        with pytest.raises(MultitableError, match="null semantics"):
            graph.add_table(
                "b", Relation.from_rows(CHILD_ROWS, CHILD_COLS,
                                        semantics=NullSemantics.NEQ)
            )

    def test_fk_parent_side_must_be_key(self):
        graph = two_table_graph()
        with pytest.raises(MultitableError, match="must form a key"):
            graph.add_foreign_key("child", ["pid_ref"], "parent", ["lang"])

    def test_fk_inclusion_enforced_by_default(self):
        rows = CHILD_ROWS + [("c9", "ghost", "t1")]
        with pytest.raises(MultitableError, match="dangling"):
            two_table_graph(child_rows=rows)
        graph = two_table_graph(child_rows=rows, require_inclusion=False)
        assert len(graph.foreign_keys) == 1

    def test_infer_foreign_keys_unary(self):
        parent = Relation.from_rows(PARENT_ROWS, PARENT_COLS)
        child = Relation.from_rows(CHILD_ROWS, CHILD_COLS)
        graph = SchemaGraph()
        graph.add_table("parent", parent, key=["pid"])
        graph.add_table("child", child, key=["cid"])
        added = graph.infer_foreign_keys()
        assert (
            ForeignKey("child", ("pid_ref",), "parent", ("pid",)) in added
        )

    def test_infer_skips_all_null_columns(self):
        parent = Relation.from_rows(PARENT_ROWS, PARENT_COLS)
        child = Relation.from_rows(
            [("c0", None), ("c1", None)], ["cid", "ref"]
        )
        graph = SchemaGraph()
        graph.add_table("parent", parent, key=["pid"])
        graph.add_table("child", child, key=["cid"])
        added = graph.infer_foreign_keys()
        # an all-null column is vacuously included — no edge for it
        assert not any(fk.child_columns == ("ref",) for fk in added)

    def test_resolve_path_directions(self):
        graph = two_table_graph()
        forward = graph.resolve_path(["child", "parent"])
        assert [s.direction for s in forward] == ["forward"]
        expand = graph.resolve_path(["parent", "child"])
        assert [s.direction for s in expand] == ["expand"]

    def test_resolve_path_errors(self):
        graph = two_table_graph()
        with pytest.raises(MultitableError, match="at least two"):
            graph.resolve_path(["child"])
        with pytest.raises(MultitableError, match="repeats"):
            graph.resolve_path(["child", "parent", "child"])
        with pytest.raises(MultitableError, match="unknown table"):
            graph.resolve_path(["child", "orders"])
        graph.add_table(
            "island", Relation.from_rows([("i0",)], ["iid"]), key=["iid"]
        )
        with pytest.raises(MultitableError, match="no foreign-key edge"):
            graph.resolve_path(["child", "island"])

    def test_fingerprint_depends_on_names_and_edges(self):
        a = two_table_graph()
        b = two_table_graph()
        assert a.fingerprint() == b.fingerprint()
        renamed = SchemaGraph()
        renamed.add_table(
            "parents", Relation.from_rows(PARENT_ROWS, PARENT_COLS),
            key=["pid"],
        )
        renamed.add_table(
            "child", Relation.from_rows(CHILD_ROWS, CHILD_COLS), key=["cid"]
        )
        renamed.add_foreign_key("child", ["pid_ref"], "parents", ["pid"])
        assert renamed.fingerprint() != a.fingerprint()

    def test_describe_is_json_friendly(self):
        graph = two_table_graph()
        payload = json.loads(json.dumps(graph.describe()))
        assert payload["tables"]["parent"]["keys"] == [["pid"]]
        assert payload["foreign_keys"][0]["child"] == "child"


# ----------------------------------------------------------------------
# Inclusion testing: null and dangling handling (satellite 3)
# ----------------------------------------------------------------------


class TestInclusionCoverage:
    def relations(self, semantics):
        parent = Relation.from_rows(
            PARENT_ROWS, PARENT_COLS, semantics=semantics
        )
        child = Relation.from_rows(
            [
                ("c0", "p0", "t1"),
                ("c1", None, "t1"),   # null FK: neither covered nor dangling
                ("c2", "ghost", "t2"),  # dangling
                ("c3", "p2", "t3"),
                ("c4", None, "t3"),
            ],
            CHILD_COLS,
            semantics=semantics,
        )
        return child, parent

    @pytest.mark.parametrize(
        "semantics", [NullSemantics.EQ, NullSemantics.NEQ]
    )
    def test_null_fk_rows_counted_separately(self, semantics):
        child, parent = self.relations(semantics)
        report = inclusion_coverage(child, [1], parent, [0])
        assert report.total_rows == 5
        assert report.null_rows == 2
        assert report.covered_rows == 2
        assert report.dangling_rows == 1
        assert not report.satisfied
        assert report.coverage == pytest.approx(2 / 3)

    def test_eq_and_neq_reports_identical(self):
        child_eq, parent_eq = self.relations(NullSemantics.EQ)
        child_neq, parent_neq = self.relations(NullSemantics.NEQ)
        eq = inclusion_coverage(child_eq, [1], parent_eq, [0])
        neq = inclusion_coverage(child_neq, [1], parent_neq, [0])
        assert eq == neq

    @pytest.mark.parametrize(
        "semantics", [NullSemantics.EQ, NullSemantics.NEQ]
    )
    def test_null_parent_key_rows_never_match(self, semantics):
        parent = Relation.from_rows(
            [("p0", "us"), (None, "uk")], ["pid", "c"], semantics=semantics
        )
        child = Relation.from_rows(
            [("c0", "p0"), ("c1", None)], ["cid", "ref"], semantics=semantics
        )
        report = inclusion_coverage(child, [1], parent, [0])
        # the child null does NOT match the parent null row, under
        # either semantics (two nulls never witness an inclusion)
        assert report.null_rows == 1
        assert report.covered_rows == 1
        assert report.dangling_rows == 0

    def test_all_null_child_is_vacuously_satisfied(self):
        parent = Relation.from_rows(PARENT_ROWS, PARENT_COLS)
        child = Relation.from_rows(
            [("c0", None, "t1")], CHILD_COLS
        )
        report = inclusion_coverage(child, [1], parent, [0])
        assert report.satisfied
        assert report.coverage == 1.0

    def test_arity_mismatch_rejected(self):
        child, parent = self.relations(NullSemantics.EQ)
        with pytest.raises(MultitableError, match="arity mismatch"):
            inclusion_coverage(child, [0, 1], parent, [0])


# ----------------------------------------------------------------------
# Provenance: policies, padding, backends
# ----------------------------------------------------------------------

DIRTY_CHILD = [
    ("c0", "p0", "t1"),
    ("c1", "ghost", "t1"),  # dangling
    ("c2", None, "t2"),     # null FK
    ("c3", "p2", "t3"),
]


class TestProvenance:
    def test_policy_validation(self):
        assert resolve_policy(None) == "raise"
        with pytest.raises(MultitableError, match="on_dangling"):
            resolve_policy("explode")

    @pytest.mark.parametrize("backend", ["python", "numpy"])
    def test_raise_on_dangling(self, backend):
        graph = two_table_graph(
            child_rows=DIRTY_CHILD, require_inclusion=False
        )
        with pytest.raises(DanglingRowError):
            build_provenance(graph, ["child", "parent"], backend=backend)

    @pytest.mark.parametrize("backend", ["python", "numpy"])
    def test_null_fk_is_not_a_violation_under_raise(self, backend):
        rows = [("c0", "p0", "t1"), ("c1", None, "t2")]
        graph = two_table_graph(child_rows=rows)
        prov = build_provenance(
            graph, ["child", "parent"], on_dangling="raise", backend=backend
        )
        # the null row matches nothing and is dropped, not an error
        assert prov.n_rows == 1
        assert prov.dropped_rows == 1

    @pytest.mark.parametrize("backend", ["python", "numpy"])
    def test_drop_vs_pad_counters(self, backend):
        graph = two_table_graph(
            child_rows=DIRTY_CHILD, require_inclusion=False
        )
        dropped = build_provenance(
            graph, ["child", "parent"], on_dangling="drop", backend=backend
        )
        assert dropped.n_rows == 2
        assert dropped.dropped_rows == 2
        assert dropped.padded_cells == 0
        assert not np.any(dropped.index["parent"] == PAD)

        padded = build_provenance(
            graph, ["child", "parent"], on_dangling="pad", backend=backend
        )
        assert padded.n_rows == 4
        assert padded.dropped_rows == 0
        assert padded.padded_cells == 2
        assert int(np.sum(padded.index["parent"] == PAD)) == 2

    @pytest.mark.parametrize("policy", ["drop", "pad"])
    def test_backends_produce_identical_arrays(self, policy):
        for seed in range(4):
            graph = random_star(seed)
            for path in (["child", "parent"], ["parent", "child"]):
                py = build_provenance(
                    graph, path, on_dangling=policy, backend="python"
                )
                nmp = build_provenance(
                    graph, path, on_dangling=policy, backend="numpy"
                )
                assert py.n_rows == nmp.n_rows
                assert py.dropped_rows == nmp.dropped_rows
                assert py.padded_cells == nmp.padded_cells
                for table in py.tables:
                    assert np.array_equal(
                        py.index[table], nmp.index[table]
                    ), (seed, path, table)

    def test_expand_childless_parent_dropped_or_padded(self):
        rows = [("c0", "p0", "t1")]  # p1, p2 have no children
        graph = two_table_graph(child_rows=rows)
        dropped = build_provenance(
            graph, ["parent", "child"], on_dangling="raise"
        )
        assert dropped.n_rows == 1 and dropped.dropped_rows == 2
        padded = build_provenance(
            graph, ["parent", "child"], on_dangling="pad"
        )
        assert padded.n_rows == 3 and padded.padded_cells == 2


# ----------------------------------------------------------------------
# The lift: byte-identical to materializing (satellite 4's core)
# ----------------------------------------------------------------------


class TestLift:
    @pytest.mark.parametrize(
        "semantics", [NullSemantics.EQ, NullSemantics.NEQ]
    )
    @pytest.mark.parametrize("policy", ["drop", "pad"])
    @pytest.mark.parametrize("backend", ["python", "numpy"])
    def test_lifted_relation_fingerprints_like_materialized(
        self, semantics, policy, backend
    ):
        for seed in range(4):
            graph = random_star(seed, semantics=semantics)
            for path in (["child", "parent"], ["parent", "child"]):
                prov = build_provenance(
                    graph, path, on_dangling=policy, backend=backend
                )
                lifted = lift_relation(graph, prov, backend=backend)
                mat = materialize_join(graph, path, on_dangling=policy)
                assert lifted.schema.names == mat.schema.names
                assert lifted.n_rows == mat.n_rows
                assert lifted.fingerprint() == mat.fingerprint(), (
                    seed, path, policy, semantics, backend,
                )
                for attr in range(lifted.n_cols):
                    a, b = lifted.column(attr), mat.column(attr)
                    assert np.array_equal(a.codes, b.codes)
                    assert np.array_equal(a.null_mask, b.null_mask)
                    assert a.decoder == b.decoder

    @pytest.mark.parametrize(
        "semantics", [NullSemantics.EQ, NullSemantics.NEQ]
    )
    @pytest.mark.parametrize("backend", ["python", "numpy"])
    def test_lift_partition_matches_lifted_relation(self, semantics, backend):
        graph = random_star(1, semantics=semantics)
        prov = build_provenance(
            graph, ["parent", "child"], on_dangling="pad", backend=backend
        )
        lifted = lift_relation(graph, prov, backend=backend)
        offset = 0
        for table in prov.tables:
            relation = graph.table(table)
            idx = prov.index[table]
            for n_attrs in (1, 2):
                attrs = attrset.from_attrs(range(n_attrs))
                direct = lift_partition(
                    relation, attrs, idx, semantics, backend=backend
                )
                via_relation = StrippedPartition.for_attrs(
                    lifted,
                    attrset.from_attrs(offset + a for a in range(n_attrs)),
                )
                assert sorted(map(sorted, direct.clusters)) == sorted(
                    map(sorted, via_relation.clusters)
                )
            offset += relation.n_cols

    def test_virtual_path_never_materializes(self):
        graph = two_table_graph()
        tracer = Tracer()
        with use_tracer(tracer):
            result = discover_join_fds(graph, ["child", "parent"])
        assert tracer.counter("multitable.materialize.calls").value == 0
        assert tracer.counter("multitable.lift.columns").value == 6
        assert result.relation.n_rows == 4


# ----------------------------------------------------------------------
# The differential grid (satellite 4): virtual == materialized, always
# ----------------------------------------------------------------------


class TestDiscoveryDifferential:
    @pytest.mark.parametrize(
        "semantics", [NullSemantics.EQ, NullSemantics.NEQ]
    )
    @pytest.mark.parametrize("seed", range(4))
    def test_grid_against_materialized_join(self, seed, semantics):
        """Covers, ranked order and top_k: virtual vs materialized.

        One materialized reference per (seed, semantics, policy, path);
        every (backend, jobs) virtual run must match it byte for byte.
        """
        graph = random_star(seed, semantics=semantics)
        for policy in ("drop", "pad"):
            for path in (["child", "parent"], ["parent", "child"]):
                mat = materialize_join(graph, path, on_dangling=policy)
                reference = make_algorithm("dhyfd").discover(mat)
                ref_cover = cover_to_json(reference.fds, mat.schema)
                ref_rank = ranked_snapshot(
                    rank_cover(mat, reference.fds)
                )
                for backend in ("python", "numpy"):
                    for jobs in (1, 2):
                        result = discover_join_fds(
                            graph,
                            path,
                            on_dangling=policy,
                            backend=backend,
                            jobs=jobs,
                        )
                        tag = (seed, policy, path, backend, jobs)
                        assert (
                            result.relation.fingerprint()
                            == mat.fingerprint()
                        ), tag
                        assert (
                            cover_to_json(
                                result.discovery.fds, result.relation.schema
                            )
                            == ref_cover
                        ), tag
                        assert (
                            ranked_snapshot(result.ranking) == ref_rank
                        ), tag

    def test_top_k_cut_matches_materialized_prefix(self):
        graph = random_star(2)
        mat = materialize_join(graph, ["parent", "child"], on_dangling="pad")
        full = rank_cover(mat, make_algorithm("dhyfd").discover(mat).fds)
        for k in (1, 3, 5):
            result = discover_join_fds(
                graph, ["parent", "child"], on_dangling="pad", top_k=k
            )
            assert ranked_snapshot(result.ranking) == ranked_snapshot(full)[:k]

    def test_tane_agrees_with_dhyfd_on_the_join(self):
        graph = two_table_graph()
        a = discover_join_fds(graph, ["child", "parent"], algorithm="dhyfd")
        b = discover_join_fds(graph, ["child", "parent"], algorithm="tane")
        schema = a.relation.schema
        assert cover_to_json(a.discovery.fds, schema) == cover_to_json(
            b.discovery.fds, schema
        )

    def test_scope_tags_partition_the_cover(self):
        result = discover_join_fds(
            two_table_graph(), ["child", "parent"]
        )
        owners = result.attribute_owners
        assert owners == ["child"] * 3 + ["parent"] * 3
        for entry in result.fds:
            assert entry.scope == fd_scope(entry.fd, owners)
            assert entry.tables == fd_tables(entry.fd, owners)
            assert entry.scope in ("intra", "inter")
            assert (entry.scope == "intra") == (len(entry.tables) == 1)
        assert result.intra_count + result.inter_count == len(result.fds)
        payload = json.loads(json.dumps(result.payload()))
        assert payload["n_join_rows"] == result.provenance.n_rows
        assert len(payload["fds"]) == len(result.fds)


# ----------------------------------------------------------------------
# The star workload
# ----------------------------------------------------------------------


class TestStarWorkload:
    def test_tables_shape_and_dirt(self):
        tables = reddit_star_tables(n_posts=100, seed=3)
        posts = tables["posts"]
        author_col = posts.column(posts.schema.resolve("author_id"))
        assert posts.n_rows == 100
        assert int(author_col.null_mask.sum()) == 2  # half of 5 dirty rows
        assert tables["authors"].n_rows == 25

    def test_graph_validates_and_joins(self):
        graph = reddit_star_graph(n_posts=80, seed=0)
        assert graph.primary_key("posts") == ("post_id",)
        steps = graph.resolve_path(STAR_PATH)
        assert [s.direction for s in steps] == ["expand", "forward"]

    def test_joined_equals_materialized(self):
        joined = reddit_star_joined(n_posts=60, seed=1)
        graph = reddit_star_graph(n_posts=60, seed=1)
        mat = materialize_join(graph, STAR_PATH, on_dangling="pad")
        assert joined.fingerprint() == mat.fingerprint()

    def test_registered_in_benchmark_registry(self):
        from repro.datasets.benchmarks import benchmark_names, load_benchmark

        assert "reddit_star" in benchmark_names()
        loaded = load_benchmark("reddit_star", n_rows=60, seed=1)
        assert loaded.fingerprint() == reddit_star_joined(
            n_posts=60, seed=1
        ).fingerprint()

    def test_planted_inter_table_fds_surface(self):
        graph = reddit_star_graph(n_posts=120, seed=0, dirty_fraction=0.0)
        result = discover_join_fds(graph, STAR_PATH)
        formatted = result.format_fds()
        assert any("country" in line and "lang" in line for line in formatted)
        assert result.inter_count > 0


# ----------------------------------------------------------------------
# UCC max_arity bound (satellite 2)
# ----------------------------------------------------------------------


class TestUCCMaxArity:
    @pytest.mark.parametrize("seed", range(4))
    @pytest.mark.parametrize("max_arity", [1, 2, 3])
    def test_bound_is_sound_and_complete_below_cut(self, seed, max_arity):
        from repro.datasets.synthetic import random_relation

        rel = random_relation(25, 5, domain_sizes=4, seed=seed)
        bounded = discover_uccs(rel, max_arity=max_arity).uccs
        expected = [
            u
            for u in brute_force_uccs(rel)
            if attrset.count(u) <= max_arity
        ]
        assert sorted(bounded) == sorted(expected)

    def test_bad_bound_rejected(self):
        rel = Relation.from_rows([("a", "b")])
        with pytest.raises(ValueError):
            discover_uccs(rel, max_arity=0)


# ----------------------------------------------------------------------
# Service layer: schemas, jobs, caching, HTTP
# ----------------------------------------------------------------------


def register_star(target, n_posts=60, seed=0, name="star"):
    """Upload the star tables and declare the schema on a service/client."""
    tables = reddit_star_tables(n_posts=n_posts, seed=seed)
    if isinstance(target, FDService):
        for table_name, relation in tables.items():
            target.register_relation(relation, name=f"ds_{table_name}")
        register = target.register_schema
    else:  # ServiceClient (possibly via a router)
        for table_name, relation in tables.items():
            rows = [
                [
                    None if relation.column(a).null_mask[r] else
                    relation.column(a).decode(int(relation.column(a).codes[r]))
                    for a in range(relation.n_cols)
                ]
                for r in range(relation.n_rows)
            ]
            target.upload_rows(
                relation.schema.names, rows, name=f"ds_{table_name}",
                colocate_with="ds_posts" if table_name != "posts" else None,
            )
        register = target.register_schema
    return register(
        name,
        {t: f"ds_{t}" for t in tables},
        keys={
            "posts": ["post_id"],
            "authors": ["author_id"],
            "subreddits": ["subreddit_id"],
        },
        foreign_keys=[
            {
                "child": "posts",
                "child_columns": ["author_id"],
                "parent": "authors",
                "parent_columns": ["author_id"],
            },
            {
                "child": "posts",
                "child_columns": ["subreddit_id"],
                "parent": "subreddits",
            },
        ],
    )


@pytest.fixture
def service():
    with FDService(max_workers=2) as svc:
        yield svc


@pytest.fixture
def http_service():
    svc = FDService(max_workers=2)
    server, _ = start_in_thread(svc)
    client = ServiceClient(f"http://127.0.0.1:{server.server_port}")
    yield svc, client
    server.shutdown()
    svc.close()


class TestJobConfigMultitable:
    def test_round_trip(self):
        config = JobConfig.from_dict(
            {"join_path": ["a", "b"], "on_dangling": "pad"}
        )
        assert config.join_path == ("a", "b")
        assert config.on_dangling == "pad"
        assert JobConfig.from_dict(config.to_dict()) == config

    def test_fields_participate_in_cache_key(self):
        base = JobConfig.from_dict({"join_path": ["a", "b"]})
        other_path = JobConfig.from_dict({"join_path": ["b", "a"]})
        other_policy = JobConfig.from_dict(
            {"join_path": ["a", "b"], "on_dangling": "pad"}
        )
        assert base.key() != other_path.key()
        assert base.key() != other_policy.key()

    def test_fields_never_reach_the_algorithm(self):
        config = JobConfig.from_dict(
            {"join_path": ["a", "b"], "on_dangling": "drop"}
        )
        kwargs = config.algorithm_kwargs()
        assert "join_path" not in kwargs
        assert "on_dangling" not in kwargs

    def test_validation(self):
        with pytest.raises(ConfigError):
            JobConfig.from_dict({"join_path": ["solo"]})
        with pytest.raises(ConfigError):
            JobConfig.from_dict({"join_path": "a,b"})
        with pytest.raises(ConfigError):
            JobConfig.from_dict({"on_dangling": "explode"})


class TestServiceSchemas:
    def test_register_and_resolve(self, service):
        entry = register_star(service)
        assert service.schemas.resolve("star") == entry.fingerprint
        assert service.schemas.get(entry.fingerprint) is entry
        described = entry.describe()
        assert described["name"] == "star"
        assert set(described["datasets"]) == {
            "posts", "authors", "subreddits",
        }

    def test_register_is_idempotent_by_fingerprint(self, service):
        first = register_star(service)
        second = register_star(service, name="star2")
        assert second is first
        counters = service.metrics_payload()["counters"]
        assert counters["service.schemas.registered"] == 1
        assert counters["service.schemas.duplicate_registrations"] == 1
        # both names alias the same schema
        assert service.schemas.resolve("star2") == first.fingerprint

    def test_unknown_schema_raises(self, service):
        with pytest.raises(UnknownSchemaError):
            service.schemas.get("nope")

    def test_unknown_dataset_ref_fails_registration(self, service):
        from repro.service import UnknownDatasetError

        with pytest.raises(UnknownDatasetError):
            service.register_schema("bad", {"t": "missing-dataset"})

    def test_persistence_across_restart(self, tmp_path):
        dirs = {
            "store_dir": tmp_path,
            "dataset_dir": tmp_path / "datasets",
        }
        with FDService(max_workers=1, **dirs) as svc:
            entry = register_star(svc)
            fingerprint = entry.fingerprint
        with FDService(max_workers=1, **dirs) as reborn:
            assert reborn.schemas.resolve("star") == fingerprint
            revived = reborn.schemas.get("star")
            assert revived.graph.fingerprint() == fingerprint
            # and the revived graph still answers jobs
            job = reborn.multitable(
                "star",
                config={"join_path": list(STAR_PATH), "on_dangling": "pad"},
            )
            assert job.status == "done"

    def test_corrupt_persisted_schema_skipped(self, tmp_path):
        dirs = {
            "store_dir": tmp_path,
            "dataset_dir": tmp_path / "datasets",
        }
        with FDService(max_workers=1, **dirs) as svc:
            register_star(svc)
        junk = tmp_path / "schemas" / "junk.json"
        junk.write_text("{not json", encoding="utf-8")
        with FDService(max_workers=1, **dirs) as reborn:
            assert len(reborn.schemas) == 1

    def test_schema_without_datasets_not_revived(self, tmp_path):
        # store_dir only: the schema JSON persists but its datasets
        # don't, so the rebuild must skip (never trust) the entry.
        with FDService(max_workers=1, store_dir=tmp_path) as svc:
            register_star(svc)
        with FDService(max_workers=1, store_dir=tmp_path) as reborn:
            assert len(reborn.schemas) == 0
            counters = reborn.metrics_payload()["counters"]
            assert counters["service.schemas.load_errors"] == 1


class TestServiceMultitableJobs:
    def config(self, **extra):
        return {
            "join_path": list(STAR_PATH), "on_dangling": "pad", **extra
        }

    def test_job_matches_direct_discovery(self, service):
        register_star(service, n_posts=60, seed=0)
        job = service.multitable("star", config=self.config())
        assert job.status == "done"

        graph = reddit_star_graph(n_posts=60, seed=0)
        direct = discover_join_fds(graph, STAR_PATH, on_dangling="pad")
        assert cover_to_json(
            job.result.fds, direct.relation.schema
        ) == cover_to_json(direct.discovery.fds, direct.relation.schema)

        payload = job.status_payload()
        block = payload["multitable"]
        assert block["path"] == list(STAR_PATH)
        assert block["on_dangling"] == "pad"
        assert block["n_join_rows"] == direct.provenance.n_rows
        assert block["intra_count"] + block["inter_count"] == len(
            payload["ranking"]
        )
        # The service ranks the canonicalized cover (same as its rank
        # jobs); scope/table tags must match the library primitives.
        from repro.covers.canonical import canonical_cover
        from repro.multitable.provenance import attribute_tables

        owners = attribute_tables(graph, direct.provenance.tables)
        expected = [
            (
                e.fd.format(direct.relation.schema),
                fd_scope(e.fd, owners),
                list(fd_tables(e.fd, owners)),
            )
            for e in rank_cover(
                direct.relation, canonical_cover(direct.discovery.fds)
            ).ranked
        ]
        got_ranking = [
            (r["fd"], r["scope"], r["tables"]) for r in payload["ranking"]
        ]
        assert got_ranking == expected

    def test_repeat_job_is_a_cache_hit(self, service):
        register_star(service)
        config = self.config()
        service.multitable("star", config=config)
        counters = service.metrics_payload()["counters"]
        runs = counters["service.discovery.runs"]
        job = service.multitable("star", config=config)
        assert job.status == "done"
        counters = service.metrics_payload()["counters"]
        assert counters["service.discovery.runs"] == runs
        assert counters["service.jobs.cache_hits"] >= 1

    def test_top_k_bounds_ranking_not_cover(self, service):
        register_star(service)
        full = service.multitable("star", config=self.config())
        cut = service.multitable("star", config=self.config(top_k=3))
        assert len(cut.ranking) == 3
        assert cut.ranking == full.ranking[:3]
        assert len(cut.result.fds) == len(full.result.fds)

    def test_missing_join_path_rejected(self, service):
        register_star(service)
        with pytest.raises(ConfigError, match="join_path"):
            service.submit("star", "multitable", config={})

    def test_bad_path_rejected_at_submit(self, service):
        register_star(service)
        with pytest.raises(MultitableError):
            service.submit(
                "star", "multitable",
                config={"join_path": ["authors", "subreddits"]},
            )

    def test_unknown_schema_rejected_at_submit(self, service):
        with pytest.raises(UnknownSchemaError):
            service.submit(
                "ghost", "multitable", config={"join_path": ["a", "b"]}
            )

    def test_scheduler_rejects_unknown_kind(self, service):
        register_star(service)
        with pytest.raises(ValueError, match="multitable"):
            service.scheduler.submit("x", "join", JobConfig())


class TestHTTPMultitable:
    def test_full_flow_over_http(self, http_service):
        _, client = http_service
        described = register_star(client, n_posts=60, seed=0)
        assert described["name"] == "star"

        listing = client.schemas()
        assert [s["fingerprint"] for s in listing] == [
            described["fingerprint"]
        ]

        status = client.multitable(
            "star", STAR_PATH, on_dangling="pad", timeout=30.0
        )
        assert status["status"] == "done"
        assert status["multitable"]["n_join_rows"] > 0
        assert {r["scope"] for r in status["ranking"]} <= {"intra", "inter"}

        graph = reddit_star_graph(n_posts=60, seed=0)
        direct = discover_join_fds(graph, STAR_PATH, on_dangling="pad")
        result = ServiceClient.result_from_status(status)
        assert cover_to_json(
            result.fds, direct.relation.schema
        ) == cover_to_json(direct.discovery.fds, direct.relation.schema)

    def test_top_k_query_param(self, http_service):
        _, client = http_service
        register_star(client)
        status = client.multitable(
            "star", STAR_PATH, on_dangling="pad", timeout=30.0, top_k=2
        )
        assert len(status["ranking"]) == 2

    def test_unknown_schema_404(self, http_service):
        _, client = http_service
        with pytest.raises(ServiceError) as excinfo:
            client.multitable("ghost", ["a", "b"], timeout=5.0)
        assert excinfo.value.status == 404

    def test_bad_path_400(self, http_service):
        _, client = http_service
        register_star(client)
        with pytest.raises(ServiceError) as excinfo:
            client.multitable(
                "star", ["authors", "subreddits"], timeout=5.0
            )
        assert excinfo.value.status == 400

    def test_schema_detail_endpoint(self, http_service):
        _, client = http_service
        described = register_star(client)
        detail = client._request(
            "GET", f"/multitable/schemas/{described['fingerprint']}"
        )
        assert detail["fingerprint"] == described["fingerprint"]
        with pytest.raises(ServiceError) as excinfo:
            client._request("GET", "/multitable/schemas/ghost")
        assert excinfo.value.status == 404


# ----------------------------------------------------------------------
# Cluster router: colocation, schema routing, proxied jobs
# ----------------------------------------------------------------------


class TestRouterMultitable:
    @pytest.fixture
    def cluster(self, tmp_path):
        from .test_cluster import InThreadCluster

        cluster = InThreadCluster(tmp_path)
        yield cluster
        cluster.close()

    @pytest.fixture
    def client(self, cluster):
        return ServiceClient(
            cluster.router.url, timeout=30.0, retries=1, backoff=0.05
        )

    def shard_of(self, client, dataset_name):
        for entry in client.datasets():
            if entry.get("name") == dataset_name:
                return entry["replica"]
        raise AssertionError(f"dataset {dataset_name!r} not in listing")

    def test_colocate_with_routes_to_named_shard(self, client):
        register_star(client, n_posts=40, seed=0)
        posts_shard = self.shard_of(client, "ds_posts")
        for name in ("ds_authors", "ds_subreddits"):
            assert self.shard_of(client, name) == posts_shard

    def test_split_schema_409_then_colocated_succeeds(self, client):
        # Find two tiny datasets that hash to different shards.
        from repro.cluster import shard_for, upload_fingerprint

        a_rows = [["k0", "v0"], ["k1", "v1"]]
        columns = ["k", "v"]
        a_fp = upload_fingerprint({"columns": columns, "rows": a_rows})
        b_rows = None
        for i in range(64):
            candidate = [["k0", f"w{i}"], ["k1", "v1"]]
            fp = upload_fingerprint({"columns": columns, "rows": candidate})
            if shard_for(fp, 2) != shard_for(a_fp, 2):
                b_rows = candidate
                break
        assert b_rows is not None

        client.upload_rows(columns, a_rows, name="ta")
        client.upload_rows(columns, b_rows, name="tb")
        with pytest.raises(ServiceError) as excinfo:
            client.register_schema("split", {"a": "ta", "b": "tb"})
        assert excinfo.value.status == 409
        assert "colocate_with" in str(excinfo.value)

        client.upload_rows(columns, b_rows, name="tb2", colocate_with="ta")
        described = client.register_schema(
            "joined",
            {"a": "ta", "b": "tb2"},
            keys={"a": ["k"], "b": ["k"]},
            foreign_keys=[
                {
                    "child": "b",
                    "child_columns": ["k"],
                    "parent": "a",
                    "parent_columns": ["k"],
                }
            ],
        )
        assert described["name"] == "joined"

    def test_multitable_job_through_router_matches_direct(self, client):
        register_star(client, n_posts=50, seed=1)
        status = client.multitable(
            "star", STAR_PATH, on_dangling="pad", timeout=30.0
        )
        assert status["status"] == "done"
        # job ids carry the shard namespace and are re-routable
        assert status["job_id"].startswith("s")
        again = client.status(status["job_id"])
        assert again["status"] == "done"

        graph = reddit_star_graph(n_posts=50, seed=1)
        direct = discover_join_fds(graph, STAR_PATH, on_dangling="pad")
        result = ServiceClient.result_from_status(status)
        assert cover_to_json(
            result.fds, direct.relation.schema
        ) == cover_to_json(direct.discovery.fds, direct.relation.schema)

    def test_schema_listing_fans_out_with_replica_tags(self, client):
        register_star(client, n_posts=40, seed=0)
        listing = client.schemas()
        assert len(listing) == 1
        assert listing[0]["replica"].startswith("replica-")
        detail = client._request(
            "GET", f"/multitable/schemas/{listing[0]['fingerprint']}"
        )
        assert detail["fingerprint"] == listing[0]["fingerprint"]


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------


class TestCLIMultitable:
    def test_star_demo(self, capsys):
        assert main(["multitable", "--star", "--rows", "80"]) == 0
        out = capsys.readouterr().out
        assert "never materialized" in out
        assert "[intra]" in out or "[inter]" in out

    def test_star_json(self, capsys):
        assert main(
            ["multitable", "--star", "--rows", "80", "--json", "--top-k", "5"]
        ) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["path"] == list(STAR_PATH)
        assert len(payload["fds"]) <= 5
        assert all(f["scope"] in ("intra", "inter") for f in payload["fds"])

    def test_csv_mode(self, tmp_path, capsys):
        parent = Relation.from_rows(PARENT_ROWS, PARENT_COLS)
        child = Relation.from_rows(CHILD_ROWS, CHILD_COLS)
        write_csv(parent, tmp_path / "parent.csv")
        write_csv(child, tmp_path / "child.csv")
        code = main([
            "multitable",
            "--table", f"parent={tmp_path / 'parent.csv'}",
            "--table", f"child={tmp_path / 'child.csv'}",
            "--key", "parent=pid",
            "--key", "child=cid",
            "--fk", "child.pid_ref=parent.pid",
            "--path", "child,parent",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "child -> parent" in out

    def test_csv_mode_requires_path(self, tmp_path, capsys):
        parent = Relation.from_rows(PARENT_ROWS, PARENT_COLS)
        write_csv(parent, tmp_path / "parent.csv")
        code = main([
            "multitable", "--table", f"parent={tmp_path / 'parent.csv'}"
        ])
        assert code == 2
        assert "--path" in capsys.readouterr().err

    def test_bad_fk_spec_rejected_by_parser(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["multitable", "--fk", "nonsense"]
            )

    def test_bad_path_reports_error(self, capsys):
        code = main([
            "multitable", "--star", "--rows", "40",
            "--path", "authors,ghosts",
        ])
        assert code == 2
        assert "error" in capsys.readouterr().err
