"""Unit tests for the benchmark replica registry."""

from __future__ import annotations

import pytest

from repro.datasets.benchmarks import (
    BenchmarkSpec,
    benchmark_names,
    get_spec,
    load_benchmark,
)

PAPER_TABLE2 = {
    # name: (rows, cols, fds) straight from Table II
    "iris": (150, 5, 4),
    "balance": (625, 5, 1),
    "chess": (28056, 7, 1),
    "abalone": (4177, 9, 137),
    "nursery": (12960, 9, 1),
    "breast": (699, 11, 46),
    "bridges": (108, 13, 142),
    "echo": (132, 13, 527),
    "adult": (48842, 14, 78),
    "letter": (20000, 17, 61),
    "ncvoter": (1000, 19, 758),
    "hepatitis": (155, 20, 8250),
    "horse": (368, 29, 128727),
    "plista": (1000, 63, 178152),
    "flight": (1000, 109, 982631),
    "fd_reduced": (250000, 30, 89571),
    "weather": (262920, 18, 918),
    "diabetic": (101766, 30, 40195),
    "pdbx": (17305799, 13, 68),
    "lineitem": (6001215, 16, 3984),
    "uniprot": (512000, 30, 3703),
}


class TestRegistry:
    def test_all_table2_datasets_present(self):
        assert set(PAPER_TABLE2) <= set(benchmark_names())

    def test_china_present_for_table4(self):
        assert "china" in benchmark_names()

    def test_paper_metadata_matches_table2(self):
        for name, (rows, cols, fds) in PAPER_TABLE2.items():
            spec = get_spec(name)
            assert spec.paper_rows == rows, name
            assert spec.paper_cols == cols, name
            assert spec.paper_fds == fds, name

    def test_unknown_name(self):
        with pytest.raises(ValueError):
            get_spec("not-a-dataset")

    def test_spec_type(self):
        assert isinstance(get_spec("iris"), BenchmarkSpec)


class TestLoading:
    @pytest.mark.parametrize("name", sorted(PAPER_TABLE2))
    def test_loads_small_fragment(self, name):
        rel = load_benchmark(name, n_rows=30)
        # engineered replicas add a bounded number of twin/duplicate
        # rows on top of the requested base rows
        assert rel.n_rows >= 30
        assert rel.n_rows <= 30 + 20 * rel.n_cols
        spec = get_spec(name)
        # bench replicas of very wide sets use fewer columns
        assert rel.n_cols <= spec.paper_cols

    def test_default_bench_rows(self):
        spec = get_spec("iris")
        rel = load_benchmark("iris")
        assert rel.n_rows >= spec.bench_rows

    def test_deterministic(self):
        a = load_benchmark("bridges", n_rows=40, seed=5)
        b = load_benchmark("bridges", n_rows=40, seed=5)
        assert list(a.iter_rows()) == list(b.iter_rows())

    def test_seed_varies(self):
        a = load_benchmark("abalone", n_rows=40, seed=1)
        b = load_benchmark("abalone", n_rows=40, seed=2)
        assert list(a.iter_rows()) != list(b.iter_rows())

    def test_null_flags_honest(self):
        for name in benchmark_names():
            spec = get_spec(name)
            rel = load_benchmark(name, n_rows=min(spec.bench_rows, 300))
            if spec.has_nulls:
                assert rel.null_count() > 0, name
            else:
                assert rel.null_count() == 0, name


class TestStructure:
    def test_ncvoter_constant_state(self):
        rel = load_benchmark("ncvoter", n_rows=200)
        state = rel.schema.index_of("state")
        assert rel.cardinality(state) == 1

    def test_ncvoter_has_dirty_duplicate_voter_id(self):
        rel = load_benchmark("ncvoter", n_rows=500)
        voter = rel.schema.index_of("voter_id")
        assert rel.cardinality(voter) < rel.n_rows

    def test_balance_class_derived(self):
        from repro.core.validation import check_fd
        from repro.relational import attrset

        rel = load_benchmark("balance")
        assert check_fd(
            rel, attrset.from_attrs([0, 1, 2, 3]), attrset.singleton(4)
        )

    def test_chess_single_fd(self):
        from repro.algorithms import DHyFD

        rel = load_benchmark("chess", n_rows=400)
        fds = DHyFD().discover(rel).fds
        assert len(fds) == 1
