"""Unit tests for Armstrong relation construction."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algorithms import DHyFD
from repro.covers.canonical import canonical_cover
from repro.covers.implication import equivalent
from repro.datasets.armstrong import armstrong_relation, closed_sets
from repro.relational import attrset
from repro.relational.fd import FD


def A(*attrs):
    return attrset.from_attrs(attrs)


class TestClosedSets:
    def test_no_fds_all_subsets_closed(self):
        sets = closed_sets(3, [])
        assert len(sets) == 7  # all subsets except R itself

    def test_chain(self):
        # 0 -> 1 -> 2: closed sets are ∅, {1,2}... let's verify key facts
        sets = closed_sets(3, [FD(A(0), A(1)), FD(A(1), A(2))])
        assert attrset.EMPTY in sets
        assert A(2) in sets
        assert A(1, 2) in sets
        assert A(0) not in sets  # closure of {0} is R
        for closed in sets:
            assert closed != A(0, 1, 2)

    def test_width_guard(self):
        with pytest.raises(ValueError):
            closed_sets(20, [])


class TestArmstrongRelation:
    def test_roundtrip_simple(self):
        fds = [FD(A(0), A(1))]
        rel = armstrong_relation(3, fds)
        discovered = DHyFD().discover(rel).fds
        assert equivalent(discovered, fds)

    def test_roundtrip_chain(self):
        fds = [FD(A(0), A(1)), FD(A(1), A(2))]
        rel = armstrong_relation(4, fds)
        discovered = DHyFD().discover(rel).fds
        assert equivalent(discovered, fds)

    def test_roundtrip_empty(self):
        rel = armstrong_relation(3, [])
        discovered = DHyFD().discover(rel).fds
        assert len(discovered) == 0

    def test_exact_canonical_recovery(self):
        fds = [FD(A(0), A(1, 2)), FD(A(1, 3), A(0))]
        rel = armstrong_relation(4, fds)
        discovered = DHyFD().discover(rel).fds
        assert canonical_cover(discovered) == canonical_cover(fds)

    def test_constant_fd(self):
        fds = [FD(attrset.EMPTY, A(0))]
        rel = armstrong_relation(2, fds)
        discovered = DHyFD().discover(rel).fds
        assert equivalent(discovered, fds)

    @settings(deadline=None, max_examples=20)
    @given(
        raw=st.lists(
            st.tuples(st.integers(0, 15), st.integers(0, 3)), max_size=4
        )
    )
    def test_roundtrip_property(self, raw):
        """discover(armstrong(Σ)) ≡ Σ for arbitrary small FD sets."""
        fds = []
        for lhs_bits, rhs_attr in raw:
            lhs = lhs_bits & ~attrset.singleton(rhs_attr)
            fds.append(FD(lhs, attrset.singleton(rhs_attr)))
        rel = armstrong_relation(4, fds)
        discovered = DHyFD().discover(rel).fds
        assert equivalent(discovered, fds)
