"""Unit tests for synergized and classical FD induction (Algorithm 2)."""

from __future__ import annotations

from repro.fdtree.classic import ClassicFDTree
from repro.fdtree.extended import ExtendedFDTree
from repro.fdtree.induction import (
    classic_induct,
    non_redundant_non_fds,
    sort_non_fds,
    synergized_induct,
)
from repro.relational import attrset
from repro.relational.fd import FD, normalize_singleton_cover


def A(*attrs):
    return attrset.from_attrs(attrs)


class TestSynergizedInduction:
    def test_paper_example3(self):
        """AC -> E and AC -> BE under non-FD AC !-> BDE (R = A..E)."""
        # attrs: A=0, B=1, C=2, D=3, E=4
        tree = ExtendedFDTree(5)
        tree.add_fd(A(0, 2), A(1, 4))  # merges AC->E and AC->BE
        synergized_induct(tree, A(0, 2), A(1, 3, 4))
        result = set(tree.iter_fds())
        # Candidates from the paper: ABC->E, ACD->E / ACD->BE, ACE->B.
        expected = {
            FD(A(0, 1, 2), A(4)),
            FD(A(0, 2, 3), A(1, 4)),
            FD(A(0, 2, 4), A(1)),
        }
        assert result == expected

    def test_removes_subset_fds(self):
        tree = ExtendedFDTree(4)
        tree.add_fd(A(0), A(2))
        synergized_induct(tree, A(0, 1), A(2))
        for fd in tree.iter_fds():
            assert not (attrset.is_subset(fd.lhs, A(0, 1)) and fd.rhs & A(2))

    def test_keeps_unrelated_fds(self):
        tree = ExtendedFDTree(4)
        tree.add_fd(A(3), A(2))
        synergized_induct(tree, A(0, 1), A(2))
        assert FD(A(3), A(2)) in set(tree.iter_fds())

    def test_trivial_rhs_filtered(self):
        tree = ExtendedFDTree(4)
        tree.add_fd(A(0), A(1))
        # rhs overlapping the lhs must be ignored gracefully
        synergized_induct(tree, A(0), A(0, 1))
        assert FD(A(0), A(1)) not in set(tree.iter_fds())

    def test_no_redundant_specializations(self):
        tree = ExtendedFDTree(4)
        tree.add_fd(A(0), A(3))
        tree.add_fd(A(1), A(3))
        # kill 0 -> 3; specialization 01 -> 3 is implied by 1 -> 3
        synergized_induct(tree, A(0), A(3))
        fds = set(tree.iter_fds())
        assert FD(A(0, 1), A(3)) not in fds
        assert FD(A(1), A(3)) in fds
        assert FD(A(0, 2), A(3)) in fds

    def test_fd_count_consistent(self):
        tree = ExtendedFDTree(5)
        tree.add_fd(attrset.EMPTY, A(0, 1, 2, 3, 4))
        synergized_induct(tree, A(0, 1), A(2, 3, 4))
        assert tree.fd_count == sum(
            attrset.count(fd.rhs) for fd in tree.iter_fds()
        )

    def test_dead_paths_pruned(self):
        tree = ExtendedFDTree(5)
        tree.add_fd(A(0, 1, 2), A(3))
        synergized_induct(tree, A(0, 1, 2, 4), A(3))
        # every surviving node must lead to an FD-node
        def subtree_has_fd(node):
            if node.rhs:
                return True
            return any(subtree_has_fd(c) for c in node.children.values())

        for child in tree.root.children.values():
            assert subtree_has_fd(child)


class TestClassicInduction:
    def test_matches_synergized_result(self):
        """Both induction styles converge to the same minimal cover."""
        non_fds = [
            (A(0, 1), A(2, 3)),
            (A(2), A(0, 3)),
            (A(1, 3), A(0, 2)),
        ]
        classic = ClassicFDTree(4)
        for attr in range(4):
            classic.add_fd(attrset.EMPTY, attr)
        extended = ExtendedFDTree(4)
        extended.add_fd(attrset.EMPTY, A(0, 1, 2, 3))
        for lhs, rhs in sort_non_fds(non_fds):
            classic_induct(classic, lhs, rhs)
            synergized_induct(extended, lhs, rhs)
        assert normalize_singleton_cover(classic.iter_fds()) == (
            normalize_singleton_cover(extended.iter_fds())
        )

    def test_single_attr(self):
        tree = ClassicFDTree(3)
        tree.add_fd(attrset.EMPTY, 2)
        classic_induct(tree, A(0), A(2))
        assert normalize_singleton_cover(tree.iter_fds()) == (
            normalize_singleton_cover([FD(A(1), A(2))])
        )


class TestNonFdHelpers:
    def test_sort_descending(self):
        pairs = [(A(0), A(1, 2)), (A(0, 1, 2), A(3)), (A(1, 2), A(0))]
        ordered = sort_non_fds(pairs)
        sizes = [attrset.count(lhs) for lhs, _ in ordered]
        assert sizes == sorted(sizes, reverse=True)

    def test_sort_deterministic(self):
        pairs = [(A(1), A(0)), (A(0), A(1))]
        assert sort_non_fds(pairs) == sort_non_fds(list(reversed(pairs)))

    def test_non_redundant_drops_dominated(self):
        # over R = {0..3}: X = {0} is dominated by X' = {0,1} for every
        # RHS attr outside {0,1}; attr 1 stays only with {0}.
        pairs = [(A(0), A(1, 2, 3)), (A(0, 1), A(2, 3))]
        reduced = dict(non_redundant_non_fds(pairs))
        assert reduced[A(0, 1)] == A(2, 3)
        assert reduced[A(0)] == A(1)

    def test_non_redundant_keeps_incomparable(self):
        pairs = [(A(0), A(1, 2)), (A(1), A(0, 2))]
        reduced = non_redundant_non_fds(pairs)
        assert len(reduced) == 2

    def test_non_redundant_drops_fully_covered(self):
        pairs = [(A(0), A(2)), (A(0, 1), A(2, 3))]
        reduced = dict(non_redundant_non_fds(pairs))
        assert A(0) not in reduced
