"""Unit tests for the redundancy-based FD ranking."""

from __future__ import annotations

from repro.ranking.ranker import (
    DEFAULT_BUCKET_FRACTIONS,
    RankedFD,
    rank_cover,
    redundancy_histogram,
)
from repro.relational import attrset
from repro.relational.fd import FD, FDSet
from repro.relational.null import NULL
from repro.relational.relation import Relation


def A(*attrs):
    return attrset.from_attrs(attrs)


class TestRankCover:
    def test_descending_order(self, city_relation):
        cover = FDSet([FD(A(1), A(2)), FD(attrset.EMPTY, A(3)), FD(A(0), A(1))])
        ranking = rank_cover(city_relation, cover)
        reds = [r.redundancy for r in ranking.ranked]
        assert reds == sorted(reds, reverse=True)
        assert ranking.ranked[0].fd == FD(attrset.EMPTY, A(3))
        assert ranking.max_redundancy == 6

    def test_zero_redundancy_bucket(self, city_relation):
        cover = FDSet([FD(A(0), A(1))])  # key LHS
        ranking = rank_cover(city_relation, cover)
        assert [r.fd for r in ranking.zero_redundancy()] == [FD(A(0), A(1))]
        assert ranking.ranked[0].likely_key_based

    def test_top(self, city_relation):
        cover = FDSet([FD(A(1), A(2)), FD(attrset.EMPTY, A(3))])
        ranking = rank_cover(city_relation, cover)
        assert len(ranking.top(1)) == 1
        assert ranking.top(10) == ranking.ranked

    def test_likely_accidental_flags_null_heavy(self):
        rows = [
            ("a", "g", NULL),
            ("b", "g", NULL),
            ("c", "h", NULL),
            ("d", "h", NULL),
        ]
        rel = Relation.from_rows(rows, ["id", "grp", "sfx"])
        cover = FDSet([FD(A(1), A(2))])
        ranking = rank_cover(rel, cover)
        ranked = ranking.ranked[0]
        assert ranked.redundancy == 4
        assert ranked.redundancy_excluding_null == 0
        assert ranked.null_fraction == 1.0
        assert ranked.likely_accidental
        assert ranking.likely_accidental() == [ranked]

    def test_null_fraction_zero_without_nulls(self, city_relation):
        ranking = rank_cover(city_relation, FDSet([FD(A(1), A(2))]))
        assert ranking.ranked[0].null_fraction == 0.0

    def test_format(self, city_relation):
        ranking = rank_cover(city_relation, FDSet([FD(A(1), A(2))]))
        text = ranking.ranked[0].format(city_relation.schema)
        assert "zip -> city" in text
        assert "#red+0=4" in text

    def test_empty_cover(self, city_relation):
        ranking = rank_cover(city_relation, FDSet())
        assert ranking.ranked == []
        assert ranking.max_redundancy == 0


class TestHistogram:
    def test_paper_fractions(self):
        assert DEFAULT_BUCKET_FRACTIONS[0] == 0.0
        assert DEFAULT_BUCKET_FRACTIONS[-1] == 1.0
        assert len(DEFAULT_BUCKET_FRACTIONS) == 10

    def test_bucket_partition(self):
        reds = [0, 0, 1, 5, 10, 40, 100]
        buckets = redundancy_histogram(reds)
        assert sum(count for _, count in buckets) == len(reds)
        assert buckets[0] == (0, 2)  # the two zero-redundancy FDs
        assert buckets[-1][0] == 100

    def test_exclusive_lower_bound(self):
        reds = [0, 2, 3, 100]
        buckets = redundancy_histogram(reds, fractions=[0.0, 0.03, 1.0])
        # thresholds 0, 3, 100
        assert buckets == [(0, 1), (3, 2), (100, 1)]

    def test_empty(self):
        buckets = redundancy_histogram([])
        assert all(count == 0 for _, count in buckets)

    def test_all_zero(self):
        buckets = redundancy_histogram([0, 0, 0])
        assert buckets[0] == (0, 3)
        assert sum(c for _, c in buckets[1:]) == 0

    def test_no_duplicate_thresholds_when_max_small(self):
        """Fractions of a small max collapse to the same integer
        threshold; duplicates must merge instead of repeating
        ``(threshold, 0)`` buckets (Fig. 10 has distinct x positions)."""
        buckets = redundancy_histogram([0, 1, 2], fractions=[0.0, 0.1, 0.2, 1.0])
        thresholds = [threshold for threshold, _ in buckets]
        assert thresholds == sorted(set(thresholds))
        assert sum(count for _, count in buckets) == 3

    def test_all_zero_collapses_to_single_bucket(self):
        assert redundancy_histogram([0, 0, 0, 0]) == [(0, 4)]

    def test_empty_collapses_to_single_bucket(self):
        assert redundancy_histogram([]) == [(0, 0)]

    def test_max_one_merges_to_two_buckets(self):
        # max = 1: every fractional threshold is 0 or 1; counts land in
        # exactly two merged buckets covering all FDs.
        buckets = redundancy_histogram([0, 1, 1])
        assert buckets == [(0, 1), (1, 2)]
