"""Tests for the ncvoter replica's engineered qualitative structure."""

from __future__ import annotations

from repro.algorithms import DHyFD
from repro.core.validation import check_fd
from repro.covers.canonical import canonical_cover
from repro.datasets.ncvoter import NCVOTER_COLUMNS, ncvoter_like
from repro.ranking.ranker import rank_cover
from repro.relational import attrset


class TestShape:
    def test_schema(self):
        rel = ncvoter_like(100)
        assert rel.schema.names == NCVOTER_COLUMNS
        assert rel.n_cols == 19

    def test_row_count(self):
        assert ncvoter_like(321).n_rows == 321

    def test_deterministic(self):
        a = ncvoter_like(150, seed=4)
        b = ncvoter_like(150, seed=4)
        assert list(a.iter_rows()) == list(b.iter_rows())


class TestPaperStructure:
    def test_sigma1_constant_state(self):
        rel = ncvoter_like(300)
        state = rel.schema.index_of("state")
        assert check_fd(rel, attrset.EMPTY, attrset.singleton(state))

    def test_sigma4_voter_id_near_key(self):
        """voter_id has exactly one dirty duplicate, so voter_id -> city
        holds (the duplicate keeps the city) but voter_id -> street is
        violated by the dirty pair."""
        rel = ncvoter_like(300)
        voter = rel.schema.index_of("voter_id")
        street = rel.schema.index_of("street_address")
        city = rel.schema.index_of("city")
        assert check_fd(rel, attrset.singleton(voter), attrset.singleton(city))
        assert not check_fd(
            rel, attrset.singleton(voter), attrset.singleton(street)
        )

    def test_zip_alone_does_not_determine_city(self):
        rel = ncvoter_like(600)
        zip_code = rel.schema.index_of("zip_code")
        city = rel.schema.index_of("city")
        assert not check_fd(
            rel, attrset.singleton(zip_code), attrset.singleton(city)
        )

    def test_null_heavy_suffix_column(self):
        rel = ncvoter_like(400)
        suffix = rel.schema.index_of("name_suffix")
        null_fraction = rel.null_mask(suffix).mean()
        assert null_fraction > 0.8

    def test_precinct_determined_by_city_street(self):
        rel = ncvoter_like(300)
        mask = rel.schema.attr_set(["city", "street_address"])
        precinct = rel.schema.index_of("precinct")
        assert check_fd(rel, mask, attrset.singleton(precinct))


class TestRankingNarrative:
    def test_sigma4_low_rank_from_dirty_pair(self):
        """The dirty voter-id duplicate causes exactly 2 redundant
        occurrences for voter_id-LHS FDs — the paper's σ4 story."""
        rel = ncvoter_like(400)
        cover = canonical_cover(DHyFD().discover(rel).fds)
        ranking = rank_cover(rel, cover)
        voter = rel.schema.index_of("voter_id")
        voter_fds = [
            r for r in ranking.ranked
            if r.fd.lhs == attrset.singleton(voter)
        ]
        assert voter_fds
        for ranked in voter_fds:
            assert ranked.redundancy == 2 * ranked.fd.rhs_size
