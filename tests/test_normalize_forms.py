"""Unit tests for BCNF/3NF checks."""

from __future__ import annotations

from repro.normalize.forms import check_3nf, check_bcnf
from repro.relational import attrset
from repro.relational.fd import FD


def A(*attrs):
    return attrset.from_attrs(attrs)


class TestBCNF:
    def test_key_based_fds_pass(self):
        # 0 is the key; 0 -> everything
        fds = [FD(A(0), A(1, 2))]
        report = check_bcnf(3, fds)
        assert report.satisfied
        assert report.keys == [A(0)]

    def test_non_key_determinant_fails(self):
        # 0 -> 1,2 but also 1 -> 2 with 1 not a key
        fds = [FD(A(0), A(1, 2)), FD(A(1), A(2))]
        report = check_bcnf(3, fds)
        assert not report.satisfied
        assert report.violations == [FD(A(1), A(2))]

    def test_trivial_fds_ignored(self):
        report = check_bcnf(2, [])
        assert report.satisfied
        assert report.keys == [A(0, 1)]

    def test_all_singleton_keys(self):
        fds = [FD(A(0), A(1)), FD(A(1), A(0))]
        report = check_bcnf(2, fds)
        assert report.satisfied  # both determinants are keys


class Test3NF:
    def test_bcnf_implies_3nf(self):
        fds = [FD(A(0), A(1, 2))]
        assert check_3nf(3, fds).satisfied

    def test_prime_rhs_allowed(self):
        # classic 3NF-but-not-BCNF: R(street(0), city(1), zip(2))
        # street,city -> zip; zip -> city
        fds = [FD(A(0, 1), A(2)), FD(A(2), A(1))]
        bcnf = check_bcnf(3, fds)
        third = check_3nf(3, fds)
        assert not bcnf.satisfied
        assert third.satisfied
        assert set(third.keys) == {A(0, 1), A(0, 2)}

    def test_nonprime_rhs_fails(self):
        # 0 is key; 1 -> 2 where 2 is non-prime
        fds = [FD(A(0), A(1, 2)), FD(A(1), A(2))]
        report = check_3nf(3, fds)
        assert not report.satisfied
        assert report.violations == [FD(A(1), A(2))]

    def test_violation_strips_prime_attrs(self):
        # 1 -> {0, 2}: 0 is prime (the key), 2 is not
        fds = [FD(A(0), A(1, 2, 3)), FD(A(1), A(2))]
        report = check_3nf(4, fds)
        assert report.violations == [FD(A(1), A(2))]
