"""Unit tests for sorted-neighborhood non-FD sampling."""

from __future__ import annotations

from repro.core.sampling import AgreeSetSampler, all_agree_sets, initial_sample
from repro.datasets.synthetic import random_relation
from repro.partitions.stripped import StrippedPartition
from repro.relational import attrset


def singletons(relation):
    return [
        StrippedPartition.for_attribute(relation, attr)
        for attr in range(relation.n_cols)
    ]


class TestAllAgreeSets:
    def test_exact_pairs(self, city_relation):
        agree_sets = all_agree_sets(city_relation)
        # ann/bob agree on zip, city, state
        assert attrset.from_attrs([1, 2, 3]) in agree_sets
        # full-schema agreement is impossible here (all rows distinct)
        assert city_relation.schema.all_attrs() not in agree_sets

    def test_every_set_is_true_agree_set(self, city_relation):
        matrix = city_relation.matrix()
        for agree in all_agree_sets(city_relation):
            witnessed = False
            for i in range(city_relation.n_rows):
                for j in range(i + 1, city_relation.n_rows):
                    mask = attrset.EMPTY
                    for col in range(city_relation.n_cols):
                        if matrix[i][col] == matrix[j][col]:
                            mask = attrset.add(mask, col)
                    if mask == agree:
                        witnessed = True
            assert witnessed

    def test_duplicates_excluded(self, duplicate_relation):
        # identical rows produce the trivial full agree set -> dropped
        agree_sets = all_agree_sets(duplicate_relation)
        assert duplicate_relation.schema.all_attrs() not in agree_sets


class TestSampler:
    def test_sampled_subset_of_exact(self, city_relation):
        sampler = AgreeSetSampler(city_relation, singletons(city_relation))
        sampled, stats = sampler.sample_round()
        exact = all_agree_sets(city_relation)
        assert sampled <= exact
        assert stats.comparisons > 0
        assert stats.new_agree_sets == len(sampled)

    def test_rounds_eventually_exhaust(self):
        rel = random_relation(20, 3, domain_sizes=2, seed=3)
        sampler = AgreeSetSampler(rel, singletons(rel))
        rounds = 0
        while not sampler.exhausted() and rounds < 100:
            sampler.sample_round()
            rounds += 1
        assert sampler.exhausted()

    def test_exhausted_sampler_finds_everything_within_clusters(self):
        """After exhaustion every within-cluster pair has been compared."""
        rel = random_relation(25, 4, domain_sizes=2, seed=5)
        sampler = AgreeSetSampler(rel, singletons(rel))
        while not sampler.exhausted():
            sampler.sample_round()
        # any two rows sharing a value sit in one cluster, so every
        # non-empty agree set must have been seen; pairs disagreeing
        # everywhere (agree set ∅) share no cluster and stay invisible
        expected = {s for s in all_agree_sets(rel) if s != attrset.EMPTY}
        assert sampler.seen == expected

    def test_rounds_only_report_new(self, city_relation):
        sampler = AgreeSetSampler(city_relation, singletons(city_relation))
        first, _ = sampler.sample_round()
        second, _ = sampler.sample_round()
        assert not (first & second)

    def test_efficiency_metric(self, city_relation):
        sampler = AgreeSetSampler(city_relation, singletons(city_relation))
        _, stats = sampler.sample_round()
        assert 0.0 <= stats.efficiency <= 1.0


class TestInitialSample:
    def test_matches_one_round(self, city_relation):
        direct = initial_sample(city_relation, singletons(city_relation))
        sampler = AgreeSetSampler(city_relation, singletons(city_relation))
        round_sets, _ = sampler.sample_round()
        assert direct == round_sets

    def test_empty_relation_fragment(self):
        rel = random_relation(1, 3, domain_sizes=2, seed=0)
        assert initial_sample(rel, singletons(rel)) == set()
