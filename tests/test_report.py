"""Unit tests for the column-determinant report (paper §VI-B)."""

from __future__ import annotations

from repro.ranking.report import column_determinants
from repro.relational import attrset
from repro.relational.fd import FD, FDSet
from repro.relational.null import NULL
from repro.relational.relation import Relation


def A(*attrs):
    return attrset.from_attrs(attrs)


def make_relation():
    rows = [
        ("ann", "z1", "c1", NULL),
        ("bob", "z1", "c1", "s1"),
        ("cat", NULL, "c2", "s1"),
        ("dan", NULL, "c2", "s2"),
    ]
    return Relation.from_rows(rows, ["name", "zip", "city", "suffix"])


class TestColumnDeterminants:
    def test_filters_to_target_column(self, city_relation):
        cover = FDSet([FD(A(1), A(2)), FD(A(0), A(1))])
        rows = column_determinants(city_relation, cover, "city")
        assert len(rows) == 1
        assert rows[0].lhs == A(1)

    def test_counts(self, city_relation):
        cover = FDSet([FD(A(1), A(2))])
        rows = column_determinants(city_relation, cover, "city")
        assert rows[0].red == 4
        assert rows[0].red_null_free == 4

    def test_null_free_column_counts(self):
        rel = make_relation()
        cover = FDSet([FD(A(1), A(2))])
        rows = column_determinants(rel, cover, "city")
        # zip clusters: {ann,bob} (z1) and {cat,dan} (NULL=NULL) -> red 4
        assert rows[0].red == 4
        # null-free drops the NULL-zip cluster entirely -> 2
        assert rows[0].red_null_free == 2

    def test_null_target_values_excluded(self):
        rel = make_relation()
        cover = FDSet([FD(A(2), A(3))])  # city -> suffix (violated? c2: s1,s2)
        # use city -> name? name unique. Use zip -> suffix instead: z1 rows
        cover = FDSet([FD(A(1), A(3))])
        rows = column_determinants(rel, cover, "suffix")
        # red: all 4 rows sit in clusters of π_zip
        assert rows[0].red == 4
        # null-free: drop the NULL-zip cluster and ann's NULL suffix -> 1
        assert rows[0].red_null_free == 1

    def test_multi_rhs_fd_matches_target(self, city_relation):
        cover = FDSet([FD(A(1), A(2, 3))])
        rows = column_determinants(city_relation, cover, "state")
        assert len(rows) == 1

    def test_sorted_by_red_desc(self, city_relation):
        cover = FDSet([FD(A(1), A(2)), FD(attrset.EMPTY, A(2))])
        # ∅ -> city is not valid but the report does not re-validate;
        # counting still works on any provided cover
        rows = column_determinants(city_relation, cover, "city")
        assert rows[0].red >= rows[1].red

    def test_format(self, city_relation):
        cover = FDSet([FD(A(1), A(2))])
        rows = column_determinants(city_relation, cover, "city")
        text = rows[0].format(city_relation)
        assert "zip" in text and "#red=4" in text

    def test_empty_result(self, city_relation):
        rows = column_determinants(city_relation, FDSet(), "city")
        assert rows == []
