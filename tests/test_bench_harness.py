"""Unit tests for the shared benchmark harness."""

from __future__ import annotations

from repro.bench.runner import RunRecord, measure, run_discovery, run_matrix
from repro.bench.tables import format_series, format_table
from repro.datasets.synthetic import random_relation


class TestMeasure:
    def test_returns_result_and_metrics(self):
        result, seconds, peak = measure(lambda: sum(range(1000)))
        assert result == 499500
        assert seconds >= 0
        assert peak >= 0

    def test_exception_propagates(self):
        import pytest

        with pytest.raises(RuntimeError):
            measure(lambda: (_ for _ in ()).throw(RuntimeError("boom")))


class TestRunDiscovery:
    def test_successful_run(self, city_relation):
        record, result = run_discovery(city_relation, "dhyfd", dataset="city")
        assert not record.timed_out
        assert record.fd_count == result.fd_count
        assert record.seconds is not None and record.seconds >= 0
        assert record.seconds_text != "TL"
        assert record.memory_mb_text != "-"

    def test_timeout_marked_tl(self):
        rel = random_relation(300, 8, domain_sizes=2, seed=0)
        record, result = run_discovery(
            rel, "fdep", dataset="big", time_limit=0.0
        )
        assert record.timed_out
        assert result is None
        assert record.seconds_text == "TL"
        assert record.memory_mb_text == "-"

    def test_no_memory_tracking(self, city_relation):
        record, _ = run_discovery(city_relation, "dhyfd", track_memory=False)
        assert record.peak_memory_bytes == 0


class TestRunMatrix:
    def test_full_sweep(self, city_relation, duplicate_relation):
        records = run_matrix(
            {"city": city_relation, "dup": duplicate_relation},
            ["dhyfd", "tane"],
        )
        assert len(records) == 4
        cells = {(r.dataset, r.algorithm) for r in records}
        assert ("city", "tane") in cells


class TestTables:
    def test_format_table_alignment(self):
        text = format_table(["name", "value"], [["a", 1], ["long-name", 22]])
        lines = text.splitlines()
        assert lines[0].startswith("name")
        assert len({len(line) for line in lines[1:]}) >= 1
        assert "long-name" in text

    def test_format_table_title(self):
        text = format_table(["x"], [[1]], title="Table II")
        assert text.splitlines()[0] == "Table II"

    def test_format_series(self):
        text = format_series("rows", "seconds", [(1000, 0.5), (2000, 1.0)])
        assert "rows" in text and "2000" in text

    def test_ragged_rows_tolerated(self):
        text = format_table(["a"], [["x", "extra"]])
        assert "extra" in text
