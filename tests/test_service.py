"""Tests for repro.service: registry, result store, scheduler, HTTP layer.

The acceptance bar (ISSUE 5): covers served by the service — in
process or over HTTP, concurrently — are byte-identical to direct
``make_algorithm(...).discover(relation)`` calls; repeat requests come
from the result store without extra discovery runs (asserted via
metrics); appends migrate cached covers via synergized induction; and
a budget-tripped job surfaces ``completed=False`` + ``limit_reason``
through the HTTP status endpoint.
"""

from __future__ import annotations

import threading

import pytest

from repro.algorithms.registry import make_algorithm
from repro.core.result import DiscoveryResult
from repro.relational.fd_io import cover_to_json
from repro.service import (
    ConfigError,
    FDService,
    JobConfig,
    JobScheduler,
    ResultStore,
    ServiceClient,
    ServiceError,
    UnknownDatasetError,
    start_in_thread,
)

from .conftest import make_random_relation

CITY_CSV = "\n".join(
    [
        "name,zip,city,state",
        "ann,z1,c1,nc",
        "bob,z1,c1,nc",
        "cat,z2,c1,nc",
        "dan,z3,c2,nc",
        "eve,z3,c2,nc",
        "fay,z4,c3,nc",
    ]
)


def direct_cover_json(relation, algorithm="dhyfd", **kwargs):
    """The byte-exact cover JSON of a direct in-process discovery."""
    result = make_algorithm(algorithm, **kwargs).discover(relation)
    return cover_to_json(result.fds, relation.schema)


@pytest.fixture
def service():
    with FDService(max_workers=2) as svc:
        yield svc


@pytest.fixture
def http_service():
    svc = FDService(max_workers=2)
    server, _ = start_in_thread(svc)
    client = ServiceClient(f"http://127.0.0.1:{server.server_port}")
    yield svc, client
    server.shutdown()
    svc.close()


# ----------------------------------------------------------------------
# JobConfig
# ----------------------------------------------------------------------


class TestJobConfig:
    def test_key_is_order_independent(self):
        a = JobConfig.from_dict({"jobs": 2, "algorithm": "dhyfd"})
        b = JobConfig.from_dict({"algorithm": "dhyfd", "jobs": 2})
        assert a.key() == b.key()

    def test_key_normalizes_byte_suffixes(self):
        a = JobConfig.from_dict({"memory_budget": "64m"})
        b = JobConfig.from_dict({"memory_budget": 64 * 1024 * 1024})
        assert a.key() == b.key()

    def test_distinct_configs_distinct_keys(self):
        assert (
            JobConfig.from_dict({"jobs": 1}).key()
            != JobConfig.from_dict({"jobs": 2}).key()
        )
        assert (
            JobConfig.from_dict({"algorithm": "tane"}).key()
            != JobConfig.from_dict({"algorithm": "dhyfd"}).key()
        )

    def test_unknown_algorithm_rejected(self):
        with pytest.raises(ConfigError):
            JobConfig.from_dict({"algorithm": "not-an-algorithm"})

    def test_bad_on_limit_rejected(self):
        with pytest.raises(ConfigError):
            JobConfig.from_dict({"on_limit": "explode"})

    def test_extra_kwargs_survive_round_trip(self):
        config = JobConfig.from_dict({"ratio_threshold": 2.0})
        assert JobConfig.from_dict(config.to_dict()) == config
        assert config.algorithm_kwargs()["ratio_threshold"] == 2.0

    def test_memory_budget_becomes_run_budget(self):
        config = JobConfig.from_dict({"memory_budget": "1m", "time_limit": 5.0})
        kwargs = config.algorithm_kwargs()
        assert kwargs["budget"].memory_limit_bytes == 1024 * 1024
        assert kwargs["budget"].time_limit == 5.0

    def test_on_limit_forwarded_only_when_partial(self):
        assert "on_limit" not in JobConfig.from_dict({}).algorithm_kwargs()
        partial = JobConfig.from_dict({"on_limit": "partial"})
        assert partial.algorithm_kwargs()["on_limit"] == "partial"

    def test_top_k_is_part_of_the_cache_key(self):
        base = JobConfig.from_dict({})
        topk = JobConfig.from_dict({"top_k": 5})
        assert base.key() != topk.key()
        assert topk.without_top_k().key() == base.key()
        assert JobConfig.from_dict(topk.to_dict()).key() == topk.key()

    def test_top_k_not_forwarded_to_constructors(self):
        # discover_top_k(k) is a call-time argument, never a kwarg.
        assert "top_k" not in JobConfig.from_dict({"top_k": 3}).algorithm_kwargs()

    def test_invalid_top_k_rejected(self):
        with pytest.raises(ConfigError):
            JobConfig.from_dict({"top_k": 0})
        with pytest.raises(ConfigError):
            JobConfig.from_dict({"top_k": "many"})


# ----------------------------------------------------------------------
# DatasetRegistry (through the service facade)
# ----------------------------------------------------------------------


class TestDatasetRegistry:
    def test_register_is_idempotent(self, service, city_relation):
        first = service.register_relation(city_relation, name="city")
        again = service.register_relation(city_relation)
        assert first is again
        assert len(service.registry) == 1

    def test_resolve_by_name_and_fingerprint(self, service, city_relation):
        entry = service.register_relation(city_relation, name="city")
        assert service.registry.resolve("city") == entry.fingerprint
        assert service.registry.resolve(entry.fingerprint) == entry.fingerprint

    def test_unknown_dataset_raises(self, service):
        with pytest.raises(UnknownDatasetError):
            service.registry.get("nope")

    def test_append_creates_new_version(self, service, city_relation):
        old = service.register_relation(city_relation, name="city")
        new = service.append_rows("city", [("gus", "z9", "c9", "nc")])
        assert new.fingerprint != old.fingerprint
        assert new.parent == old.fingerprint
        assert new.relation.n_rows == 7
        # the alias moved; the old version stays reachable by fingerprint
        assert service.registry.resolve("city") == new.fingerprint
        assert service.registry.get(old.fingerprint) is old

    def test_csv_upload_matches_relation(self, service, city_relation):
        entry = service.register_csv(CITY_CSV, name="city-csv")
        assert entry.fingerprint == city_relation.fingerprint()


# ----------------------------------------------------------------------
# ResultStore
# ----------------------------------------------------------------------


class TestResultStore:
    def make_result(self, relation, algorithm="dhyfd"):
        return make_algorithm(algorithm).discover(relation)

    def test_hit_and_miss_accounting(self, city_relation):
        store = ResultStore()
        config = JobConfig()
        fp = city_relation.fingerprint()
        assert store.get(fp, config) is None
        store.put(fp, config, self.make_result(city_relation))
        assert store.get(fp, config) is not None
        assert store.counters()["hits"] == 1
        assert store.counters()["misses"] == 1

    def test_partial_results_not_cached(self, city_relation):
        store = ResultStore()
        result = self.make_result(city_relation)
        partial = DiscoveryResult(
            algorithm=result.algorithm,
            schema=result.schema,
            fds=result.fds,
            completed=False,
            limit_reason="time",
        )
        assert store.put(city_relation.fingerprint(), JobConfig(), partial) is False
        assert len(store) == 0

    def test_persistence_across_restart(self, tmp_path, city_relation):
        config = JobConfig.from_dict({"jobs": 1})
        fp = city_relation.fingerprint()
        result = self.make_result(city_relation)
        store = ResultStore(persist_dir=tmp_path)
        store.put(fp, config, result)

        reborn = ResultStore(persist_dir=tmp_path)
        cached = reborn.get(fp, config)
        assert cached is not None
        assert cached.fds == result.fds
        assert cover_to_json(cached.fds, cached.schema) == cover_to_json(
            result.fds, result.schema
        )

    def test_malformed_persisted_files_skipped(self, tmp_path, city_relation):
        (tmp_path / "junk.json").write_text("{not json", encoding="utf-8")
        (tmp_path / "other.json").write_text('{"format": "x"}', encoding="utf-8")
        store = ResultStore(persist_dir=tmp_path)
        assert len(store) == 0

    def test_results_for_filters_by_fingerprint(self, city_relation, null_relation):
        store = ResultStore()
        store.put(city_relation.fingerprint(), JobConfig(), self.make_result(city_relation))
        store.put(null_relation.fingerprint(), JobConfig(), self.make_result(null_relation))
        assert len(store.results_for(city_relation.fingerprint())) == 1


# ----------------------------------------------------------------------
# Append migration (cache invalidation via synergized induction)
# ----------------------------------------------------------------------


class TestAppendMigration:
    def test_append_updates_cover_without_rerun(self, service, city_relation):
        service.register_relation(city_relation, name="city")
        job = service.discover("city")
        assert job.status == "done" and not job.cached
        runs_before = service.metrics_payload()["counters"]["service.discovery.runs"]
        assert runs_before == 1

        # Break zip -> city: reuse z1 with a new city.
        new_entry = service.append_rows("city", [("gus", "z1", "c9", "nc")])

        counters = service.metrics_payload()["counters"]
        # The stored cover was migrated by synergized induction...
        assert counters["service.store.incremental_updates"] == 1
        # ...NOT by re-running discovery.
        assert counters["service.discovery.runs"] == runs_before

        # A request against the new version is a pure cache hit and the
        # migrated cover equals a from-scratch discovery byte for byte.
        job2 = service.discover(new_entry.fingerprint)
        assert job2.cached
        assert service.metrics_payload()["counters"]["service.discovery.runs"] == runs_before
        assert cover_to_json(
            job2.result.fds, new_entry.relation.schema
        ) == direct_cover_json(new_entry.relation)

    def test_append_migrates_every_cached_config(self, service, city_relation):
        service.register_relation(city_relation, name="city")
        service.discover("city", config={"algorithm": "dhyfd"})
        service.discover("city", config={"algorithm": "tane"})
        new_entry = service.append_rows("city", [("gus", "z1", "c9", "nc")])
        counters = service.metrics_payload()["counters"]
        assert counters["service.store.incremental_updates"] == 2
        for algorithm in ("dhyfd", "tane"):
            job = service.discover(
                new_entry.fingerprint, config={"algorithm": algorithm}
            )
            assert job.cached, algorithm

    def test_old_version_cover_still_served(self, service, city_relation):
        old = service.register_relation(city_relation, name="city")
        service.discover("city")
        service.append_rows("city", [("gus", "z1", "c9", "nc")])
        job = service.discover(old.fingerprint)
        assert job.cached
        assert cover_to_json(job.result.fds, city_relation.schema) == direct_cover_json(
            city_relation
        )


# ----------------------------------------------------------------------
# Top-k store-key semantics
# ----------------------------------------------------------------------


class TestTopKService:
    """Cache-key contract: a top-k result is never served as a full
    cover, while a cached full cover answers top-k requests via a
    cheap bounded ranking (no new discovery run)."""

    def test_top_k_derived_from_cached_full_cover(self, service, city_relation):
        service.register_relation(city_relation, name="city")
        full = service.discover("city")
        job = service.discover("city", config={"top_k": 2})
        assert job.status == "done" and job.cached
        assert job.result.top_k == 2
        assert job.result.fd_count == min(2, full.result.fd_count)
        counters = service.metrics_payload()["counters"]
        assert counters["service.jobs.topk_derived"] == 1
        assert counters["service.discovery.runs"] == 1

    def test_top_k_never_served_as_full_cover(self, service, city_relation):
        service.register_relation(city_relation, name="city")
        topk = service.discover("city", config={"top_k": 1})
        assert not topk.cached
        assert topk.result.top_k == 1
        full = service.discover("city")
        # The cached k-prefix must not shadow the full cover: this is a
        # genuine second discovery run, and it returns everything.
        assert not full.cached
        assert full.result.top_k is None
        assert full.result.fd_count >= topk.result.fd_count
        assert service.metrics_payload()["counters"]["service.discovery.runs"] == 2

    def test_fresh_top_k_uses_rank_aware_discovery(self, service):
        relation = make_random_relation(3)
        service.register_relation(relation, name="rand")
        job = service.discover("rand", config={"top_k": 2})
        assert not job.cached
        assert job.result.top_k == 2
        counters = service.metrics_payload()["counters"]
        assert counters["service.discovery.runs"] == 1
        assert counters.get("service.jobs.topk_derived", 0) == 0

    def test_append_skips_top_k_entries(self, service, city_relation):
        service.register_relation(city_relation, name="city")
        service.discover("city", config={"top_k": 2})
        service.discover("city")
        new_entry = service.append_rows("city", [("gus", "z1", "c9", "nc")])
        counters = service.metrics_payload()["counters"]
        # Only the full cover is migrated by synergized induction —
        # inducting over a k-prefix would be unsound.
        assert counters["service.store.incremental_updates"] == 1
        assert counters["service.store.topk_skipped"] == 1
        # The new version still answers top-k cheaply: derived from the
        # migrated full cover, no discovery re-run.
        job = service.discover(new_entry.fingerprint, config={"top_k": 2})
        assert job.cached
        assert job.result.top_k == 2
        counters = service.metrics_payload()["counters"]
        assert counters["service.discovery.runs"] == 2
        assert counters["service.jobs.topk_derived"] == 1

    def test_rank_job_honors_top_k(self, service, city_relation):
        service.register_relation(city_relation, name="city")
        full = service.rank("city")
        job = service.rank("city", config={"top_k": 2})
        assert job.status == "done"
        assert len(job.ranking) == min(2, len(full.ranking))
        assert job.ranking == full.ranking[: len(job.ranking)]


# ----------------------------------------------------------------------
# JobScheduler (with a controllable executor)
# ----------------------------------------------------------------------


class TestJobScheduler:
    def test_priorities_order_execution(self):
        started = threading.Event()
        release = threading.Event()
        order = []

        def executor(job):
            if job.dataset == "gate":
                started.set()
                release.wait(5.0)
            order.append(job.dataset)

        scheduler = JobScheduler(executor, max_workers=1)
        try:
            gate = scheduler.submit("gate", "discover", JobConfig())
            assert started.wait(5.0)  # worker is busy; the queue is ours
            low = scheduler.submit("low", "discover", JobConfig(), priority=0)
            high = scheduler.submit("high", "discover", JobConfig(), priority=10)
            release.set()
            for job in (gate, low, high):
                scheduler.wait(job.job_id, timeout=10.0)
            assert order == ["gate", "high", "low"]
        finally:
            scheduler.shutdown()

    def test_cancel_queued_job(self):
        started = threading.Event()
        release = threading.Event()

        def executor(job):
            started.set()
            release.wait(5.0)

        scheduler = JobScheduler(executor, max_workers=1)
        try:
            scheduler.submit("gate", "discover", JobConfig())
            assert started.wait(5.0)
            queued = scheduler.submit("victim", "discover", JobConfig())
            assert scheduler.cancel(queued.job_id) == "cancelled"
            release.set()
            done = scheduler.wait(queued.job_id, timeout=5.0)
            assert done.status == "cancelled"
        finally:
            scheduler.shutdown()

    def test_failed_job_captures_error(self):
        def executor(job):
            raise RuntimeError("boom")

        scheduler = JobScheduler(executor, max_workers=1)
        try:
            job = scheduler.submit("x", "discover", JobConfig())
            scheduler.wait(job.job_id, timeout=5.0)
            assert job.status == "failed"
            assert "boom" in job.error
        finally:
            scheduler.shutdown()

    def test_shutdown_cancels_queued(self):
        started = threading.Event()
        release = threading.Event()

        def executor(job):
            started.set()
            release.wait(5.0)

        scheduler = JobScheduler(executor, max_workers=1)
        scheduler.submit("gate", "discover", JobConfig())
        assert started.wait(5.0)
        queued = scheduler.submit("waiting", "discover", JobConfig())
        release.set()
        scheduler.shutdown()
        assert queued.status == "cancelled"
        with pytest.raises(RuntimeError):
            scheduler.submit("late", "discover", JobConfig())

    def test_bad_kind_rejected(self):
        scheduler = JobScheduler(lambda job: None, max_workers=1)
        try:
            with pytest.raises(ValueError):
                scheduler.submit("x", "explode", JobConfig())
        finally:
            scheduler.shutdown()


# ----------------------------------------------------------------------
# FDService in process
# ----------------------------------------------------------------------


class TestFDService:
    def test_discover_matches_direct(self, service, city_relation):
        service.register_relation(city_relation, name="city")
        job = service.discover("city")
        assert job.status == "done"
        assert cover_to_json(job.result.fds, city_relation.schema) == direct_cover_json(
            city_relation
        )

    def test_repeat_request_cached(self, service, city_relation):
        service.register_relation(city_relation, name="city")
        first = service.discover("city")
        second = service.discover("city")
        assert not first.cached and second.cached
        assert second.result.fds == first.result.fds
        counters = service.metrics_payload()["counters"]
        assert counters["service.discovery.runs"] == 1
        assert counters["service.jobs.cache_hits"] == 1

    def test_distinct_configs_are_distinct_entries(self, service, city_relation):
        service.register_relation(city_relation, name="city")
        service.discover("city", config={"algorithm": "dhyfd"})
        service.discover("city", config={"algorithm": "fdep"})
        assert service.metrics_payload()["counters"]["service.discovery.runs"] == 2

    def test_rank_job_carries_ranking(self, service, city_relation):
        service.register_relation(city_relation, name="city")
        job = service.rank("city")
        assert job.status == "done"
        assert job.ranking, "rank job should produce ranked FDs"
        assert {"fd", "redundancy", "redundancy_excluding_null"} <= set(
            job.ranking[0]
        )

    def test_job_trace_summary_attached(self, service, city_relation):
        service.register_relation(city_relation, name="city")
        job = service.discover("city")
        assert job.trace is not None
        assert "service.job" in job.trace.get("spans", {})

    def test_persisted_store_reused_across_service_restarts(
        self, tmp_path, city_relation
    ):
        with FDService(max_workers=1, store_dir=tmp_path) as first:
            first.register_relation(city_relation, name="city")
            job = first.discover("city")
            assert not job.cached
        with FDService(max_workers=1, store_dir=tmp_path) as second:
            second.register_relation(city_relation, name="city")
            job = second.discover("city")
            assert job.cached
            assert second.metrics_payload()["counters"].get(
                "service.discovery.runs", 0
            ) == 0


# ----------------------------------------------------------------------
# HTTP server + client
# ----------------------------------------------------------------------


class TestHTTPService:
    def test_health_and_metrics(self, http_service):
        _, client = http_service
        health = client.health()
        assert health["status"] == "ok"
        assert "jobs" in health
        assert "counters" in client.metrics()

    def test_upload_discover_byte_identical(self, http_service, city_relation):
        _, client = http_service
        info = client.upload_csv(CITY_CSV, name="city")
        assert info["fingerprint"] == city_relation.fingerprint()
        status = client.discover("city")
        assert status["status"] == "done"
        result = ServiceClient.result_from_status(status)
        assert cover_to_json(result.fds, city_relation.schema) == direct_cover_json(
            city_relation
        )

    def test_upload_rows_roundtrip(self, http_service, null_relation):
        _, client = http_service
        info = client.upload_rows(
            null_relation.schema.names,
            list(null_relation.iter_rows()),
            name="nulls",
        )
        assert info["fingerprint"] == null_relation.fingerprint()

    def test_async_submit_and_poll(self, http_service, city_relation):
        _, client = http_service
        info = client.upload_csv(CITY_CSV)
        job_id = client.submit(info["fingerprint"])
        status = client.wait(job_id, timeout=30.0)
        assert status["status"] == "done"
        assert status["result"]["algorithm"] == "dhyfd"

    def test_append_over_http(self, http_service, city_relation):
        service, client = http_service
        client.upload_csv(CITY_CSV, name="city")
        client.discover("city")
        info = client.append("city", [["gus", "z1", "c9", "nc"]])
        assert info["n_rows"] == 7
        counters = client.metrics()["counters"]
        assert counters["service.store.incremental_updates"] == 1
        status = client.discover(info["fingerprint"])
        assert status["cached"] is True

    def test_rank_over_http(self, http_service):
        _, client = http_service
        info = client.upload_csv(CITY_CSV)
        status = client.rank(info["fingerprint"])
        assert status["status"] == "done"
        assert status["ranking"]

    def test_top_k_query_param_over_http(self, http_service, city_relation):
        _, client = http_service
        client.upload_csv(CITY_CSV, name="city")
        full = ServiceClient.result_from_status(client.discover("city"))
        status = client.discover("city", top_k=2)
        result = ServiceClient.result_from_status(status)
        assert result.top_k == 2
        assert result.fd_count == min(2, full.fd_count)
        counters = client.metrics()["counters"]
        # Served from the cached full cover, not a second discovery.
        assert counters["service.jobs.topk_derived"] == 1
        assert counters["service.discovery.runs"] == 1

    def test_rank_top_k_over_http(self, http_service):
        _, client = http_service
        info = client.upload_csv(CITY_CSV)
        full = client.rank(info["fingerprint"])
        status = client.rank(info["fingerprint"], top_k=2)
        assert status["status"] == "done"
        assert len(status["ranking"]) == min(2, len(full["ranking"]))
        assert status["ranking"] == full["ranking"][: len(status["ranking"])]

    def test_bad_top_k_query_400(self, http_service):
        _, client = http_service
        client.upload_csv(CITY_CSV, name="city")
        with pytest.raises(ServiceError) as excinfo:
            client._request("POST", "/discover?top_k=zero", {"dataset": "city"})
        assert excinfo.value.status == 400

    def test_unknown_dataset_404(self, http_service):
        _, client = http_service
        with pytest.raises(ServiceError) as excinfo:
            client.discover("no-such-dataset")
        assert excinfo.value.status == 404

    def test_unknown_job_404(self, http_service):
        _, client = http_service
        with pytest.raises(ServiceError) as excinfo:
            client.status("job-999")
        assert excinfo.value.status == 404

    def test_bad_upload_400(self, http_service):
        _, client = http_service
        with pytest.raises(ServiceError) as excinfo:
            client._request("POST", "/datasets", {"name": "empty"})
        assert excinfo.value.status == 400

    def test_bad_config_400(self, http_service):
        _, client = http_service
        info = client.upload_csv(CITY_CSV)
        with pytest.raises(ServiceError) as excinfo:
            client.submit(info["fingerprint"], config={"algorithm": "bogus"})
        assert excinfo.value.status == 400

    def test_unknown_endpoint_404(self, http_service):
        _, client = http_service
        with pytest.raises(ServiceError) as excinfo:
            client._request("GET", "/teapot")
        assert excinfo.value.status == 404

    def test_jobs_listing(self, http_service):
        _, client = http_service
        info = client.upload_csv(CITY_CSV)
        client.discover(info["fingerprint"])
        jobs = client.jobs()
        assert len(jobs) == 1
        assert "result" not in jobs[0]  # listing omits result bodies

    def test_cancel_endpoint(self, http_service):
        _, client = http_service
        info = client.upload_csv(CITY_CSV)
        job_id = client.submit(info["fingerprint"])
        response = client.cancel(job_id)
        assert response["status"] in ("cancelled", "running", "done")


# ----------------------------------------------------------------------
# Acceptance: concurrent clients, budgets over HTTP
# ----------------------------------------------------------------------


class TestAcceptance:
    def test_concurrent_clients_byte_identical_and_deduplicated(
        self, http_service, city_relation, null_relation
    ):
        """N threads, same and different (dataset, config) jobs: every
        cover byte-identical to direct discovery, repeats served from
        the store with zero extra discovery runs (asserted via metrics).
        """
        service, client = http_service
        base = client.base_url
        city_info = client.upload_csv(CITY_CSV, name="city")
        nulls_info = client.upload_rows(
            null_relation.schema.names,
            list(null_relation.iter_rows()),
            name="nulls",
        )
        combos = [
            (city_info["fingerprint"], {"algorithm": "dhyfd"}, city_relation),
            (city_info["fingerprint"], {"algorithm": "tane"}, city_relation),
            (nulls_info["fingerprint"], {"algorithm": "dhyfd"}, null_relation),
        ]
        expected = {
            (fp, cfg["algorithm"]): direct_cover_json(rel, cfg["algorithm"])
            for fp, cfg, rel in combos
        }

        outcomes = []
        errors = []

        def worker(index):
            fp, cfg, _rel = combos[index % len(combos)]
            try:
                thread_client = ServiceClient(base)
                status = thread_client.discover(fp, config=dict(cfg), timeout=60.0)
                result = ServiceClient.result_from_status(status)
                outcomes.append(
                    (
                        (fp, cfg["algorithm"]),
                        cover_to_json(result.fds, result.schema),
                    )
                )
            except Exception as exc:  # noqa: BLE001 — surfaced below
                errors.append(f"thread {index}: {type(exc).__name__}: {exc}")

        threads = [
            threading.Thread(target=worker, args=(i,)) for i in range(12)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=120.0)

        assert not errors, errors
        assert len(outcomes) == 12
        for key, cover in outcomes:
            assert cover == expected[key], f"cover mismatch for {key}"
        counters = client.metrics()["counters"]
        # 12 requests over 3 unique (dataset, config) combos: exactly 3
        # discovery runs; every repeat was a store hit or coalesced onto
        # an in-flight leader.
        assert counters["service.discovery.runs"] == len(combos)
        hits = counters.get("service.jobs.cache_hits", 0)
        coalesced = counters.get("service.jobs.coalesced", 0)
        assert hits + coalesced >= 12 - len(combos)

    def test_budget_tripped_job_surfaces_partial_over_http(self, http_service):
        """A job with an impossible time budget and on_limit="partial"
        reports completed=False and its limit_reason through the HTTP
        status endpoint."""
        _, client = http_service
        relation = make_random_relation(11)  # 40 rows x 5 columns
        info = client.upload_rows(
            relation.schema.names, list(relation.iter_rows()), name="big"
        )
        status = client.discover(
            info["fingerprint"],
            config={"time_limit": 0.0, "on_limit": "partial"},
            timeout=60.0,
        )
        assert status["status"] == "done"
        result = status["result"]
        assert result["completed"] is False
        assert result["limit_reason"] == "time"
        # partial covers are answers, not facts: they must not be cached
        assert client.metrics()["store"]["entries"] == 0

    def test_partial_results_not_served_to_followers(self, http_service):
        """A later identical request after a partial run re-discovers
        (the partial cover never enters the store)."""
        _, client = http_service
        info = client.upload_csv(CITY_CSV)
        config = {"time_limit": 0.0, "on_limit": "partial"}
        first = client.discover(info["fingerprint"], config=dict(config))
        second = client.discover(info["fingerprint"], config=dict(config))
        assert second["cached"] is False
