"""Tests for the repro.telemetry subsystem and its wiring."""

from __future__ import annotations

import io
import json

import pytest

from repro.bench.runner import run_discovery
from repro.core.dhyfd import DHyFD
from repro.partitions.cache import PartitionCache
from repro.profiling.profiler import profile
from repro.relational import attrset
from repro.telemetry import (
    NOOP_TRACER,
    MetricsRegistry,
    Tracer,
    current_tracer,
    format_trace,
    read_trace_jsonl,
    trace_records,
    trace_summary,
    use_tracer,
    write_trace_jsonl,
)


class FakeClock:
    """Deterministic clock: every call advances time by ``step``."""

    def __init__(self, step: float = 1.0):
        self.now = 0.0
        self.step = step

    def __call__(self) -> float:
        value = self.now
        self.now += self.step
        return value


class TestSpans:
    def test_nesting_structure(self):
        tracer = Tracer()
        with tracer.span("outer"):
            with tracer.span("inner_a"):
                pass
            with tracer.span("inner_b"):
                with tracer.span("leaf"):
                    pass
        assert [s.name for s in tracer.roots] == ["outer"]
        outer = tracer.roots[0]
        assert [s.name for s in outer.children] == ["inner_a", "inner_b"]
        assert [s.name for s in outer.children[1].children] == ["leaf"]
        assert tracer.span_names() == ["outer", "inner_a", "inner_b", "leaf"]

    def test_deterministic_timing(self):
        # FakeClock ticks once per call: origin, open, close -> duration 1.
        tracer = Tracer(clock=FakeClock())
        with tracer.span("phase"):
            pass
        span = tracer.roots[0]
        assert span.duration == pytest.approx(1.0)

    def test_durations_are_nested(self):
        tracer = Tracer()
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
        outer, inner = tracer.roots[0], tracer.roots[0].children[0]
        assert outer.duration >= inner.duration >= 0.0
        assert inner.start >= outer.start

    def test_annotate_and_attrs(self):
        tracer = Tracer()
        with tracer.span("phase", level=3) as span:
            span.annotate(candidates=7)
        assert tracer.roots[0].attrs == {"level": 3, "candidates": 7}

    def test_span_closes_on_exception(self):
        tracer = Tracer()
        with pytest.raises(ValueError):
            with tracer.span("broken"):
                raise ValueError("boom")
        assert tracer.roots[0].duration is not None

    def test_events_attach_to_open_span(self):
        tracer = Tracer()
        with tracer.span("phase"):
            tracer.event("decision", ratio=2.5)
        tracer.event("top_level")
        assert len(tracer.events) == 2
        assert tracer.events[0].span == "phase"
        assert tracer.events[1].span is None
        assert tracer.find_events("decision")[0].attrs == {"ratio": 2.5}
        assert tracer.roots[0].events[0].name == "decision"

    def test_find_spans(self):
        tracer = Tracer()
        for level in (1, 2):
            with tracer.span("validation", level=level):
                pass
        found = tracer.find_spans("validation")
        assert [s.attrs["level"] for s in found] == [1, 2]


class TestMetrics:
    def test_counter_aggregation(self):
        registry = MetricsRegistry()
        registry.counter("hits").inc()
        registry.counter("hits").inc(4)
        assert registry.counter("hits").value == 5

    def test_gauge(self):
        registry = MetricsRegistry()
        registry.gauge("mem").set(10.0)
        registry.gauge("mem").set_max(5.0)
        assert registry.gauge("mem").value == 10.0
        registry.gauge("mem").set_max(20.0)
        assert registry.gauge("mem").value == 20.0

    def test_histogram_aggregation(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("latency")
        for value in (1.0, 3.0, 2.0):
            histogram.observe(value)
        assert histogram.count == 3
        assert histogram.total == pytest.approx(6.0)
        assert histogram.min == 1.0
        assert histogram.max == 3.0
        assert histogram.mean == pytest.approx(2.0)
        assert histogram.percentile(0.5) == 2.0

    def test_as_dict_shape(self):
        registry = MetricsRegistry()
        registry.counter("c").inc()
        registry.gauge("g").set(2.5)
        registry.histogram("h").observe(1.0)
        payload = registry.as_dict()
        assert payload["counters"] == {"c": 1}
        assert payload["gauges"] == {"g": 2.5}
        assert payload["histograms"]["h"]["count"] == 1
        json.dumps(payload)  # JSON-friendly


class TestNoopTracer:
    def test_default_is_noop(self):
        assert current_tracer() is NOOP_TRACER
        assert not current_tracer().enabled

    def test_noop_records_nothing(self):
        tracer = NOOP_TRACER
        with tracer.span("phase") as span:
            span.annotate(level=1)
            tracer.event("decision", ratio=1.0)
            tracer.counter("hits").inc(100)
            tracer.gauge("mem").set(9.9)
            tracer.histogram("lat").observe(1.0)
        assert list(tracer.roots) == []
        assert list(tracer.events) == []
        assert tracer.span_names() == []
        assert tracer.metrics.as_dict() == {
            "counters": {},
            "gauges": {},
            "histograms": {},
        }

    def test_use_tracer_restores_previous(self):
        tracer = Tracer()
        with use_tracer(tracer):
            assert current_tracer() is tracer
            with use_tracer(None):
                assert current_tracer() is NOOP_TRACER
            assert current_tracer() is tracer
        assert current_tracer() is NOOP_TRACER

    def test_tracer_as_context_manager(self):
        with Tracer() as tracer:
            assert current_tracer() is tracer
        assert current_tracer() is NOOP_TRACER


class TestExporters:
    def _traced(self) -> Tracer:
        tracer = Tracer(clock=FakeClock())
        with tracer.span("discovery", algorithm="dhyfd"):
            with tracer.span("sampling") as span:
                span.annotate(non_fds=3)
            tracer.event("ratio_decision", level=1, ratio=float("inf"))
        tracer.counter("partition_cache.hits").inc(5)
        tracer.gauge("partition_cache.memory_bytes").set(1024)
        tracer.histogram("level_seconds").observe(0.5)
        return tracer

    def test_format_trace_tree(self):
        text = format_trace(self._traced())
        lines = text.splitlines()
        assert lines[0].startswith("discovery")
        assert any(line.startswith("  sampling") for line in lines)
        assert "ratio_decision" in text
        assert "partition_cache.hits = 5" in text

    def test_jsonl_round_trip(self, tmp_path):
        tracer = self._traced()
        path = tmp_path / "trace.jsonl"
        count = write_trace_jsonl(tracer, str(path))
        records = read_trace_jsonl(str(path))
        assert len(records) == count
        by_type = {}
        for record in records:
            by_type.setdefault(record["type"], []).append(record)
        assert by_type["meta"][0]["version"] == 1
        span_names = [r["name"] for r in by_type["span"]]
        assert span_names == ["discovery", "sampling"]
        assert by_type["span"][1]["depth"] == 1
        assert by_type["span"][1]["attrs"] == {"non_fds": 3}
        event = by_type["event"][0]
        assert event["name"] == "ratio_decision"
        assert event["span"] == "discovery"
        # non-finite floats are clamped so every line is strict JSON
        assert event["attrs"]["ratio"] == pytest.approx(1e9)
        counter = by_type["counter"][0]
        assert (counter["name"], counter["value"]) == ("partition_cache.hits", 5)
        assert by_type["histogram"][0]["count"] == 1

    def test_jsonl_stream_target(self):
        buffer = io.StringIO()
        write_trace_jsonl(self._traced(), buffer)
        buffer.seek(0)
        for line in buffer.read().splitlines():
            json.loads(line)

    def test_trace_records_iterates_fresh(self):
        tracer = self._traced()
        assert list(trace_records(tracer)) == list(trace_records(tracer))

    def test_trace_summary_aggregates_by_name(self):
        tracer = Tracer(clock=FakeClock())
        for level in (1, 2):
            with tracer.span("validation", level=level):
                pass
        tracer.event("ratio_decision", level=1)
        tracer.event("ratio_decision", level=2)
        summary = trace_summary(tracer)
        assert summary["spans"]["validation"]["count"] == 2
        assert summary["spans"]["validation"]["seconds"] > 0
        assert summary["events"]["ratio_decision"] == 2
        json.dumps(summary)


class TestStackWiring:
    def test_dhyfd_trace_has_expected_phases(self, city_relation):
        tracer = Tracer()
        with use_tracer(tracer):
            DHyFD().discover(city_relation)
        names = set(tracer.span_names())
        assert {"discovery", "sampling", "validation", "induction"} <= names
        assert tracer.find_events("ratio_decision")
        decision = tracer.find_events("ratio_decision")[0]
        assert {"level", "efficiency", "inefficiency", "ratio", "refresh"} <= set(
            decision.attrs
        )
        cache_events = tracer.find_events("partition_cache")
        assert cache_events and "hits" in cache_events[0].attrs

    def test_dhyfd_stats_surface_ddm_cache(self, city_relation):
        result = DHyFD().discover(city_relation)
        stats = result.stats
        # singleton-id resolutions are by design, tracked apart from
        # hits (dynamic partitions) and misses (stale fallbacks)
        lookups = (
            stats.partition_cache_hits
            + stats.partition_cache_misses
            + stats.partition_singleton_lookups
        )
        assert lookups > 0
        assert stats.induction_nodes_visited > 0

    def test_naive_stats_surface_partition_cache(self, city_relation):
        from repro.algorithms.naive import NaiveFDDiscovery

        stats = NaiveFDDiscovery().discover(city_relation).stats
        assert stats.partition_cache_misses > 0

    def test_partition_cache_counts_evictions(self, city_relation):
        cache = PartitionCache(city_relation)
        mask = attrset.add(attrset.add(attrset.EMPTY, 0), 1)
        cache.get(mask)
        cache.evict_level(2)
        assert cache.evictions == 1

    def test_partition_cache_feeds_telemetry_counters(self, city_relation):
        tracer = Tracer()
        with use_tracer(tracer):
            cache = PartitionCache(city_relation)
            mask = attrset.add(attrset.add(attrset.EMPTY, 0), 1)
            cache.get(mask)
            cache.get(mask)
        counters = tracer.metrics.as_dict()["counters"]
        assert counters["partition_cache.hits"] == 1
        assert counters["partition_cache.misses"] == 1

    def test_discovery_runs_clean_without_tracer(self, city_relation):
        # The no-op default: discovery works and records nothing.
        result = DHyFD().discover(city_relation)
        assert result.fd_count > 0
        assert current_tracer() is NOOP_TRACER

    def test_profile_trace_smoke(self, city_relation):
        outcome = profile(city_relation, trace=True)
        tracer = outcome.tracer
        assert tracer is not None
        names = set(tracer.span_names())
        assert {
            "discovery",
            "sampling",
            "validation",
            "induction",
            "covers",
            "ranking",
            "redundancy",
        } <= names
        # ranking + redundancy both report their partition caches
        scopes = {e.attrs["scope"] for e in tracer.find_events("partition_cache")}
        assert {"ranking", "redundancy"} <= scopes

    def test_profile_accepts_existing_tracer(self, city_relation):
        tracer = Tracer()
        outcome = profile(city_relation, trace=tracer, rank=False)
        assert outcome.tracer is tracer
        assert tracer.find_spans("discovery")

    def test_profile_without_trace_has_no_tracer(self, city_relation):
        outcome = profile(city_relation, rank=False)
        assert outcome.tracer is None

    def test_hyfd_trace_phases(self, city_relation):
        tracer = Tracer()
        with use_tracer(tracer):
            from repro.algorithms.hyfd import HyFD

            HyFD().discover(city_relation)
        names = set(tracer.span_names())
        assert {"discovery", "sampling", "validation", "induction"} <= names

    def test_bench_runner_emits_telemetry_summary(self, city_relation):
        record, result = run_discovery(city_relation, "dhyfd", trace=True)
        assert result is not None
        assert record.telemetry is not None
        assert record.telemetry["spans"]["discovery"]["count"] == 1
        assert "validation" in record.telemetry["spans"]
        json.dumps(record.telemetry)

    def test_bench_runner_without_trace(self, city_relation):
        record, _ = run_discovery(city_relation, "dhyfd")
        assert record.telemetry is None

    def test_memory_tracking_records_deltas(self, city_relation):
        tracer = Tracer(track_memory=True)
        try:
            with use_tracer(tracer):
                DHyFD().discover(city_relation)
            sampling = tracer.find_spans("sampling")[0]
            assert sampling.memory_delta_bytes is not None
            assert sampling.memory_peak_bytes is not None
        finally:
            tracer.close()
